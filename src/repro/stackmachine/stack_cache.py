"""Top-of-stack cache window with hardware spill/refill.

"the top few entries of each stack are typically cached in registers
and backed by a region of main memory with overflows and underflows of
the stack cache automatically and transparently handled in hardware"
(§4). :class:`StackCache` models exactly that: a ``capacity``-entry
window over an unbounded architectural stack. Pushing past capacity
spills the bottom of the window to backing memory; popping into an
empty window refills from it. Spill/refill events are reported to a
callback — under stack-EM² those become accesses to the native core's
stack memory (i.e. forced migrations home).
"""

from __future__ import annotations

from typing import Callable

from repro.util.errors import ConfigError, ProtocolError

SpillHook = Callable[[str, int], None]  # ("spill"|"refill", count)


class StackCache:
    """Bounded window over an unbounded stack."""

    def __init__(
        self,
        capacity: int,
        spill_hook: SpillHook | None = None,
    ) -> None:
        if capacity < 2:
            raise ConfigError("stack cache needs capacity >= 2")
        self.capacity = capacity
        self.spill_hook = spill_hook
        self._window: list[int] = []  # top is the end
        self._backing: list[int] = []  # architectural stack below the window
        self.spills = 0
        self.refills = 0

    # -- architectural operations ------------------------------------------
    def push(self, value: int) -> None:
        if len(self._window) == self.capacity:
            self._backing.append(self._window.pop(0))
            self.spills += 1
            if self.spill_hook:
                self.spill_hook("spill", 1)
        self._window.append(value)

    def pop(self) -> int:
        if not self._window:
            if not self._backing:
                raise ProtocolError("stack underflow: architectural stack empty")
            self._window.append(self._backing.pop())
            self.refills += 1
            if self.spill_hook:
                self.spill_hook("refill", 1)
        return self._window.pop()

    def peek(self, index: int = 0) -> int:
        """Value ``index`` entries below the top (0 = top). Refills as
        needed so deep peeks behave like hardware."""
        if index >= self.capacity:
            raise ProtocolError(
                f"peek depth {index} exceeds stack-cache capacity {self.capacity}"
            )
        while index >= len(self._window):
            if not self._backing:
                raise ProtocolError("stack underflow on peek")
            self._window.insert(0, self._backing.pop())
            self.refills += 1
            if self.spill_hook:
                self.spill_hook("refill", 1)
        return self._window[-1 - index]

    # -- measurements --------------------------------------------------------
    @property
    def depth(self) -> int:
        """Total architectural stack depth (window + backing)."""
        return len(self._window) + len(self._backing)

    @property
    def window_depth(self) -> int:
        return len(self._window)

    def snapshot(self) -> list[int]:
        """Architectural stack bottom-to-top (diagnostics/tests)."""
        return list(self._backing) + list(self._window)
