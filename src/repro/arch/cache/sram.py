"""Set-associative cache array (tag store + per-line metadata).

The array tracks presence, dirtiness, and an opaque ``state`` byte the
directory-CC baseline uses for MSI state. Data values are not stored —
all the paper's metrics are about *where* data lives and *what traffic
moves it*, not its contents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import CacheConfig
from repro.arch.cache.replacement import ReplacementPolicy, make_policy


@dataclass
class CacheLine:
    """One resident line."""

    tag: int
    dirty: bool = False
    state: int = 0  # protocol-specific (MSI state for the CC baseline)


class CacheArray:
    """A single set-associative cache level."""

    def __init__(self, config: CacheConfig, policy: str = "lru") -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self._line_shift = config.line_bytes.bit_length() - 1
        # sets[i] maps tag -> way index; lines[i][way] holds metadata
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._lines: list[list[CacheLine | None]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        self._policies: list[ReplacementPolicy] = [
            make_policy(policy, self.ways) for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- address helpers ------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Address truncated to its cache-line base."""
        return addr >> self._line_shift

    def set_index(self, addr: int) -> int:
        return self.line_addr(addr) % self.num_sets

    def tag_of(self, addr: int) -> int:
        return self.line_addr(addr) // self.num_sets

    # -- operations ------------------------------------------------------
    def lookup(self, addr: int, touch: bool = True) -> CacheLine | None:
        """Return the resident line (updating recency), or None on miss.

        Updates hit/miss counters; use :meth:`probe` for a side-effect-
        free check. Index math is inlined (not via the address helpers):
        this runs once per simulated memory access.
        """
        line_addr = addr >> self._line_shift
        si = line_addr % self.num_sets
        way = self._sets[si].get(line_addr // self.num_sets)
        if way is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._policies[si].touch(way)
        return self._lines[si][way]

    def probe(self, addr: int) -> CacheLine | None:
        """Check residency without touching counters or recency."""
        line_addr = addr >> self._line_shift
        si = line_addr % self.num_sets
        way = self._sets[si].get(line_addr // self.num_sets)
        return None if way is None else self._lines[si][way]

    def fill(self, addr: int, dirty: bool = False, state: int = 0) -> CacheLine | None:
        """Insert the line for ``addr``; return the victim line if one
        was evicted (caller decides whether a writeback is needed)."""
        line_addr = addr >> self._line_shift
        si = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        existing = self._sets[si].get(tag)
        if existing is not None:  # refill of a resident line: update in place
            line = self._lines[si][existing]
            assert line is not None
            line.dirty = line.dirty or dirty
            line.state = state
            self._policies[si].touch(existing)
            return None

        victim_line: CacheLine | None = None
        # plain loop, not a genexpr: fill is on the per-miss hot path and
        # the generator frame showed up in coherence profiles
        row = self._lines[si]
        free_way = None
        for w in range(self.ways):
            if row[w] is None:
                free_way = w
                break
        if free_way is None:
            free_way = self._policies[si].victim()
            victim_line = row[free_way]
            assert victim_line is not None
            del self._sets[si][victim_line.tag]
            self.evictions += 1
            if victim_line.dirty:
                self.writebacks += 1

        row[free_way] = CacheLine(tag=tag, dirty=dirty, state=state)
        self._sets[si][tag] = free_way
        self._policies[si].touch(free_way)
        return victim_line

    def invalidate(self, addr: int) -> CacheLine | None:
        """Remove the line for ``addr`` (directory-CC invalidations).

        Returns the removed line, or None if it was not resident.
        """
        line_addr = addr >> self._line_shift
        si = line_addr % self.num_sets
        tag = line_addr // self.num_sets
        way = self._sets[si].pop(tag, None)
        if way is None:
            return None
        line = self._lines[si][way]
        self._lines[si][way] = None
        return line

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def resident_addrs(self) -> list[int]:
        """Line base addresses currently resident (diagnostics/tests)."""
        out = []
        for si, s in enumerate(self._sets):
            for tag in s:
                out.append((tag * self.num_sets + si) << self._line_shift)
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")
