"""Optimal offline migrate-vs-RA decisions (the paper's dynamic program, §3).

Recurrence (verbatim from the paper, with OPT(k, c) the optimal cost
of serving accesses m_1..m_k with the thread ending at core c):

* core miss (c != d(m_{k+1})):
      OPT(k+1, c) = OPT(k, c) + cost_ra(c, d(m_{k+1}))
* core hit (c == d(m_{k+1})):
      OPT(k+1, c) = min( OPT(k, c),
                         min_{i != c} OPT(k, i) + cost_mig(i, c) )

The paper states O(N * P^2) time. Because each access has a *single*
home core, only one entry per step takes the inner min — every other
entry is a vector add — so the implementation below runs in **O(N * P)**
with two vectorized operations per access. (The P^2 bound is the worst
case for a cost structure where every end core needs the inner min;
see DESIGN.md §2.)

Path reconstruction stores one predecessor per access: for end cores
c != home the predecessor is trivially c itself (the thread stayed and
did an RA), so only the home entry's argmin needs recording — O(N)
memory instead of O(N * P).

Semantics notes, matching the paper's model:

* a local access (thread already at the home) is free;
* the model "considers one thread at a time", ignores evictions and
  local memory delays — costs are the network costs from
  :class:`~repro.core.costs.CostModel`;
* the thread starts at its native core ``start_core``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostModel
from repro.core.decision.base import Decision
from repro.util.errors import ConfigError

_INF = np.inf


@dataclass
class OptimalResult:
    """Output of the DP: cost, per-access decisions, and the core path."""

    total_cost: float
    decisions: np.ndarray  # (N,) Decision values
    cores: np.ndarray  # (N,) core where each access executed
    end_core: int

    @property
    def num_migrations(self) -> int:
        return int((self.decisions == Decision.MIGRATE).sum())

    @property
    def num_remote_accesses(self) -> int:
        return int((self.decisions == Decision.REMOTE).sum())

    @property
    def num_local(self) -> int:
        return int((self.decisions == Decision.LOCAL).sum())


def _cost_matrices(cost_model: CostModel):
    mig = np.asarray(cost_model.migration, dtype=np.float64)
    ra_r = np.asarray(cost_model.remote_read, dtype=np.float64)
    ra_w = np.asarray(cost_model.remote_write, dtype=np.float64)
    return mig, ra_r, ra_w


def optimal_cost(
    homes: np.ndarray,
    writes: np.ndarray,
    start_core: int,
    cost_model: CostModel,
) -> float:
    """Forward DP only (no path reconstruction) — minimal memory."""
    res = _run_dp(homes, writes, start_core, cost_model, reconstruct=False)
    return res[0]


def optimal_decisions(
    homes: np.ndarray,
    writes: np.ndarray,
    start_core: int,
    cost_model: CostModel,
) -> OptimalResult:
    """Full DP with per-access decision/core reconstruction."""
    total, decisions, cores, end_core = _run_dp(
        homes, writes, start_core, cost_model, reconstruct=True
    )
    return OptimalResult(
        total_cost=total, decisions=decisions, cores=cores, end_core=end_core
    )


def _run_dp(
    homes: np.ndarray,
    writes: np.ndarray,
    start_core: int,
    cost_model: CostModel,
    reconstruct: bool,
):
    homes = np.asarray(homes, dtype=np.int64)
    writes = np.asarray(writes).astype(bool)
    if homes.shape != writes.shape or homes.ndim != 1:
        raise ConfigError("homes and writes must be 1-D arrays of equal length")
    mig, ra_r, ra_w = _cost_matrices(cost_model)
    P = mig.shape[0]
    if homes.size and not (0 <= homes.min() and homes.max() < P):
        raise ConfigError(f"home core out of range [0, {P})")
    if not (0 <= start_core < P):
        raise ConfigError(f"start_core {start_core} out of range [0, {P})")
    N = homes.size

    cost = np.full(P, _INF)
    cost[start_core] = 0.0
    # pred[k]: predecessor core of the *home* entry at step k
    pred = np.empty(N, dtype=np.int32) if reconstruct else None

    mig_T = mig.T.copy()  # mig_T[h] = migration cost INTO core h from each source
    for k in range(N):
        h = homes[k]
        ra = ra_w if writes[k] else ra_r
        stay_home = cost[h]
        # candidate: arrive at h by migration from any other core
        arrive = cost + mig_T[h]
        arrive[h] = _INF  # staying is the stay_home term, not a self-migration
        best_src = int(np.argmin(arrive))
        best_arrive = arrive[best_src]
        # all non-home cores stay put and pay an RA to h
        cost += ra[:, h]
        if stay_home <= best_arrive:
            cost[h] = stay_home
            if reconstruct:
                pred[k] = h
        else:
            cost[h] = best_arrive
            if reconstruct:
                pred[k] = best_src

    end_core = int(np.argmin(cost))
    total = float(cost[end_core])

    if not reconstruct:
        return total, None, None, end_core

    decisions = np.empty(N, dtype=np.int8)
    cores = np.empty(N, dtype=np.int64)
    cur = end_core
    for k in range(N - 1, -1, -1):
        h = homes[k]
        if cur != h:
            # this access was served by RA from `cur`
            decisions[k] = Decision.REMOTE
            cores[k] = cur
        else:
            p = int(pred[k])
            cores[k] = h
            if p == h:
                # thread was already at h; LOCAL unless this is where a
                # previous migration landed — distinguish below
                decisions[k] = Decision.LOCAL
            else:
                decisions[k] = Decision.MIGRATE
            cur = p
    # Note: a LOCAL mark means the thread sat at the home before this
    # access (free local cache access); MIGRATE means it moved here for
    # this access.
    return total, decisions, cores, end_core


def decision_cost(
    homes: np.ndarray,
    writes: np.ndarray,
    decisions: np.ndarray,
    start_core: int,
    cost_model: CostModel,
) -> float:
    """Cost of an explicit decision sequence (the O(N) evaluation, §3).

    Validates consistency: a LOCAL decision requires the thread to be
    at the home, MIGRATE moves it there, REMOTE leaves it in place.

    Fully vectorized: the thread's position before access ``k`` is the
    home of the most recent MIGRATE before ``k`` (or ``start_core``),
    recoverable with one ``maximum.accumulate`` over migrate indices —
    no per-access Python loop.
    """
    homes = np.asarray(homes, dtype=np.int64)
    writes = np.asarray(writes).astype(bool)
    decisions = np.asarray(decisions, dtype=np.int64)
    n = homes.size
    if n == 0:
        return 0.0
    mig, ra_r, ra_w = _cost_matrices(cost_model)

    is_local = decisions == Decision.LOCAL
    is_mig = decisions == Decision.MIGRATE
    is_ra = decisions == Decision.REMOTE
    unknown = ~(is_local | is_mig | is_ra)

    # position before access k: home of the latest MIGRATE strictly
    # before k, else the start core
    idx = np.arange(n)
    last_mig = np.maximum.accumulate(np.where(is_mig, idx, -1))
    prev_mig = np.concatenate(([-1], last_mig[:-1]))
    cur = np.where(prev_mig >= 0, homes[np.maximum(prev_mig, 0)], start_core)

    bad_local = is_local & (cur != homes)
    # report the earliest violation, matching the sequential walk
    first_unknown = int(np.argmax(unknown)) if unknown.any() else n
    first_bad = int(np.argmax(bad_local)) if bad_local.any() else n
    if first_unknown < first_bad:
        raise ConfigError(
            f"access {first_unknown}: unknown decision {int(decisions[first_unknown])}"
        )
    if first_bad < n:
        raise ConfigError(
            f"access {first_bad}: LOCAL decision but thread at "
            f"{int(cur[first_bad])}, home {int(homes[first_bad])}"
        )

    total = float(mig[cur[is_mig], homes[is_mig]].sum())
    ra_read = is_ra & ~writes
    ra_write = is_ra & writes
    total += float(ra_r[cur[ra_read], homes[ra_read]].sum())
    total += float(ra_w[cur[ra_write], homes[ra_write]].sum())
    return total
