"""Unit tests for virtual-channel deadlock validation (§3 / [10])."""

import pytest

from repro.arch.noc.deadlock import (
    VC_PLAN_CC,
    VC_PLAN_EM2,
    VC_PLAN_EM2RA,
    VCPlan,
    check_vc_plan,
)
from repro.arch.noc.packet import VirtualNetwork
from repro.util.errors import DeadlockError

V = VirtualNetwork


def test_builtin_plans_are_safe():
    check_vc_plan(VC_PLAN_EM2, available_vcs=6)
    check_vc_plan(VC_PLAN_EM2RA, available_vcs=6)
    check_vc_plan(VC_PLAN_CC, available_vcs=6)


def test_em2ra_plan_uses_separate_ra_subnetwork():
    # §3: "the remote-access virtual subnetwork must be separate from
    # the subnetworks used for migrations"
    mig_vcs = {VC_PLAN_EM2RA.vc_of[V.MIGRATION], VC_PLAN_EM2RA.vc_of[V.EVICTION]}
    ra_vcs = {VC_PLAN_EM2RA.vc_of[V.RA_REQUEST], VC_PLAN_EM2RA.vc_of[V.RA_REPLY]}
    assert mig_vcs.isdisjoint(ra_vcs)


def test_plan_rejected_when_too_few_vcs():
    with pytest.raises(DeadlockError, match="only 2 VCs"):
        check_vc_plan(VC_PLAN_EM2RA, available_vcs=2)


def test_shared_vc_between_dependent_classes_rejected():
    plan = VCPlan(
        name="bad",
        vc_of={V.MIGRATION: 0, V.EVICTION: 0},
        depends=frozenset({(V.MIGRATION, V.EVICTION)}),
    )
    with pytest.raises(DeadlockError, match="share VC"):
        check_vc_plan(plan, available_vcs=6)


def test_cyclic_dependency_rejected():
    plan = VCPlan(
        name="cycle",
        vc_of={V.MIGRATION: 0, V.EVICTION: 1, V.RA_REQUEST: 2},
        depends=frozenset(
            {
                (V.MIGRATION, V.EVICTION),
                (V.EVICTION, V.RA_REQUEST),
                (V.RA_REQUEST, V.MIGRATION),
            }
        ),
    )
    with pytest.raises(DeadlockError, match="cyclic"):
        check_vc_plan(plan, available_vcs=6)


def test_dependency_on_unassigned_class_rejected():
    plan = VCPlan(
        name="dangling",
        vc_of={V.MIGRATION: 0},
        depends=frozenset({(V.MIGRATION, V.EVICTION)}),
    )
    with pytest.raises(DeadlockError, match="no VC assignment"):
        check_vc_plan(plan, available_vcs=6)


def test_independent_classes_may_share_vc():
    plan = VCPlan(
        name="ok-shared",
        vc_of={V.MIGRATION: 0, V.COHERENCE_REQ: 0},
        depends=frozenset(),
    )
    check_vc_plan(plan, available_vcs=1)  # no dependency -> sharing is fine


def test_num_vcs_counts_distinct():
    assert VC_PLAN_EM2RA.num_vcs == 4
    assert VC_PLAN_EM2.num_vcs == 2
