"""Property-based tests: run-length analysis, placement, coherence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arch.config import small_test_config
from repro.coherence import DirectoryCCSimulator
from repro.placement import first_touch, profile_optimal, striped
from repro.trace.events import MultiTrace, make_trace
from repro.trace.runlength import run_length_histogram, run_lengths

home_seqs = hnp.arrays(np.int64, st.integers(1, 200), elements=st.integers(0, 7))


@given(home_seqs)
def test_rle_roundtrip(seq):
    cores, lengths = run_lengths(seq)
    rebuilt = np.repeat(cores, lengths)
    assert (rebuilt == seq).all()


@given(home_seqs)
def test_rle_no_adjacent_equal_cores(seq):
    cores, _ = run_lengths(seq)
    assert (cores[1:] != cores[:-1]).all()


@given(home_seqs, st.integers(0, 7))
def test_histogram_counts_all_nonnative_accesses(seq, native):
    h = run_length_histogram(seq, native)
    assert h.count + h.overflow * 0 == int((seq != native).sum())


@given(home_seqs, st.integers(0, 7))
def test_runcount_histogram_counts_runs(seq, native):
    h = run_length_histogram(seq, native, weight_by_accesses=False)
    cores, _ = run_lengths(seq)
    assert h.count == int((cores != native).sum())


# ---------------------------------------------------------------- placement
addr_lists = st.lists(st.integers(0, 1023), min_size=1, max_size=100)


@settings(max_examples=40)
@given(addr_lists, addr_lists)
def test_first_touch_total_function(a0, a1):
    mt = MultiTrace(threads=[make_trace(a0), make_trace(a1)])
    pl = first_touch(mt, 4, block_words=8)
    homes = pl.home_of(np.array(a0 + a1))
    assert ((homes >= 0) & (homes < 4)).all()


@settings(max_examples=40)
@given(addr_lists, addr_lists)
def test_placements_agree_on_granularity(a0, a1):
    """Same block -> same home, for every policy."""
    mt = MultiTrace(threads=[make_trace(a0), make_trace(a1)])
    for pl in (
        first_touch(mt, 4, block_words=8),
        striped(4, block_words=8),
        profile_optimal(mt, 4, block_words=8),
    ):
        addrs = np.array(a0 + a1)
        homes = pl.home_of(addrs)
        blocks = addrs // 8
        for b in np.unique(blocks):
            assert len(set(homes[blocks == b].tolist())) == 1


@settings(max_examples=30)
@given(addr_lists)
def test_profile_opt_maximizes_local_fraction_single_thread(a0):
    """With one thread, profile-opt homes everything at that thread."""
    mt = MultiTrace(threads=[make_trace(a0)])
    pl = profile_optimal(mt, 4, block_words=8)
    assert (pl.home_of(np.array(a0)) == 0).all()


# ---------------------------------------------------------------- coherence
@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 127), st.booleans()),
        min_size=1,
        max_size=150,
    )
)
def test_directory_invariants_under_arbitrary_access_interleavings(ops):
    cfg = small_test_config(num_cores=4)
    mt = MultiTrace(threads=[make_trace([0])])
    sim = DirectoryCCSimulator(mt, striped(4, block_words=16), cfg)
    for core, addr, write in ops:
        lat = sim.access(core, addr, write)
        assert lat > 0
    for entry in sim.directory.values():
        entry.check_invariants()
    # single-writer invariant: every EXCLUSIVE line resident only at owner
    from repro.coherence.msi import DirState, MSIState

    for line, entry in sim.directory.items():
        byte_addr = line * cfg.l2.line_bytes
        if entry.state == DirState.EXCLUSIVE:
            for c in range(4):
                present = sim.caches[c].probe(byte_addr) is not None
                assert present == (c == entry.owner)
