"""Regenerate the golden-fixture snapshots used by the parity tests.

The detailed simulators (EM², EM²-RA, RA-only, directory-CC) are
hot-path-optimized under a *bit-identical results* contract: any
refactor of the per-access loops must reproduce exactly the
``results()`` dicts captured here on fixed-seed traces. The snapshots
in ``tests/fixtures/golden_results.json`` were generated **before**
the columnar-decode optimization and committed; the tier-1 test
``tests/integration/test_golden_fixtures.py`` recomputes every
scenario and asserts exact equality, so a refactor that changes
behaviour fails loudly.

Only rerun this script when simulator *semantics* change on purpose::

    PYTHONPATH=src python benchmarks/make_golden_fixtures.py

and say so in the commit message — silently regenerating fixtures
defeats the regression gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.arch.config import small_test_config
from repro.coherence.simulator import DirectoryCCSimulator
from repro.core.costs import CostModel
from repro.core.decision.history import HistoryRunLength
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.remote_access import RemoteAccessMachine
from repro.placement import first_touch
from repro.trace.synthetic import make_workload

FIXTURE_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "fixtures"
    / "golden_results.json"
)

CORES = 4

# Fixed-seed traces: generators are deterministic given their seed
# (default 0), so these reproduce exactly on every machine.
TRACES = {
    "pingpong": dict(name="pingpong", num_threads=4, rounds=12, run=3),
    "uniform": dict(name="uniform", num_threads=4, accesses_per_thread=96,
                    region_words=256),
}


def _make(trace_key: str):
    params = dict(TRACES[trace_key])
    trace = make_workload(params.pop("name"), **params)
    placement = first_touch(trace, CORES)
    config = small_test_config(num_cores=CORES)
    return trace, placement, config


def _history_scheme(config) -> HistoryRunLength:
    cost = CostModel(config)
    return HistoryRunLength(
        threshold=cost.break_even_run_length(0, config.num_cores - 1)
    )


def _cc_results(sim: DirectoryCCSimulator) -> dict:
    r = sim.run()
    return {
        "completion_time": r.completion_time,
        "per_thread_time": r.per_thread_time,
        "traffic_bits": r.traffic_bits,
        "stats": r.stats,
        "directory_overhead_bits": sim.directory_overhead_bits(),
    }


def scenario_results() -> dict:
    """Run every (trace, architecture) scenario and collect results()."""
    out: dict[str, dict] = {}
    for trace_key in sorted(TRACES):
        trace, placement, config = _make(trace_key)

        m = EM2Machine(trace, placement, config)
        m.run()
        out[f"{trace_key}/em2"] = m.results()

        trace, placement, config = _make(trace_key)
        m = EM2RAMachine(trace, placement, config, _history_scheme(config))
        m.run()
        out[f"{trace_key}/em2ra-history"] = m.results()

        trace, placement, config = _make(trace_key)
        m = RemoteAccessMachine(trace, placement, config)
        m.run()
        out[f"{trace_key}/ra-only"] = m.results()

        for protocol in ("msi", "mesi"):
            trace, placement, config = _make(trace_key)
            sim = DirectoryCCSimulator(trace, placement, config,
                                       protocol=protocol)
            out[f"{trace_key}/cc-{protocol}"] = _cc_results(sim)
    return out


def main() -> int:
    results = scenario_results()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(results)} scenarios to {FIXTURE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
