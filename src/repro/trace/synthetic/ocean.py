"""OCEAN-like grid relaxation workload (SPLASH-2 OCEAN stand-in).

Structure copied from the real benchmark's memory behaviour:

* an ``n x n`` shared grid, row-block partitioned across threads;
* an **init phase** where each thread writes its own rows (so
  first-touch placement homes each row block at its owner);
* per iteration, a **5-point stencil sweep** over the thread's rows —
  interior points touch only the thread's own rows, while the first and
  last row reach one row into the neighbouring thread's block. Each
  boundary point's remote access is sandwiched between local accesses,
  producing remote runs of length 1 (migrate for one word, migrate
  back);
* per iteration, a **boundary reduction phase** (residual/multigrid
  restriction in the real code): the thread reads its neighbours'
  boundary rows end-to-end, accumulating in registers — producing long
  remote runs (length ≈ n); plus a read-modify-write on a shared
  global-sum cell.

With ``n`` columns, the stencil contributes ≈ 2(n-2) non-native
accesses in runs of length 1, and the reduction ≈ 2n accesses in two
long runs — i.e. *about half* of the non-native accesses sit at run
length 1, which is exactly the bimodal shape of Figure 2.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("ocean", "OCEAN-like grid relaxation workload (SPLASH-2 stand-in, Figure 2)")
class OceanGenerator(WorkloadGenerator):
    name = "ocean"

    def __init__(
        self,
        num_threads: int = 64,
        grid_n: int | None = None,
        iterations: int = 2,
        stencil_icount: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if grid_n is None:
            grid_n = 6 * num_threads + 2  # >= 6 rows per thread
        if grid_n < 2 * num_threads:
            raise ConfigError(
                f"grid_n={grid_n} too small for {num_threads} threads "
                "(need >= 2 rows per thread)"
            )
        if iterations <= 0:
            raise ConfigError("iterations must be positive")
        self.grid_n = grid_n
        self.iterations = iterations
        self.stencil_icount = stencil_icount
        self.grid_base = self.space.shared_region("grid", grid_n * grid_n)
        self.sums_base = self.space.shared_region("global_sums", num_threads)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "grid_n": self.grid_n,
            "iterations": self.iterations,
        }

    # -- geometry --------------------------------------------------------
    def rows_of(self, thread: int) -> tuple[int, int]:
        """Half-open row range [r0, r1) owned by ``thread``."""
        n, t, T = self.grid_n, thread, self.num_threads
        r0 = (n * t) // T
        r1 = (n * (t + 1)) // T
        return r0, r1

    def addr(self, r: int | np.ndarray, c: int | np.ndarray):
        return self.grid_base + np.asarray(r, dtype=np.int64) * self.grid_n + np.asarray(
            c, dtype=np.int64
        )

    # -- phases ------------------------------------------------------------
    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        r0, r1 = self.rows_of(thread)
        rows = np.arange(r0, r1, dtype=np.int64)
        cols = np.arange(self.grid_n, dtype=np.int64)
        b.emit(
            (self.grid_base + rows[:, None] * self.grid_n + cols[None, :]).ravel(),
            writes=1,
            icounts=1,
        )

    def _stencil_sweep(self, thread: int, b: TraceBuilder) -> None:
        n = self.grid_n
        r0, r1 = self.rows_of(thread)
        # physical grid boundary rows are fixed
        rows = np.arange(max(r0, 1), min(r1, n - 1), dtype=np.int64)
        if rows.size == 0:
            return
        cols = np.arange(1, n - 1, dtype=np.int64)
        center = self.grid_base + rows[:, None] * n + cols[None, :]
        # per-point order: N S E W C(read) C(write), row-major over the block
        seq = np.stack(
            [center - n, center + n, center + 1, center - 1, center, center], axis=-1
        ).ravel()
        writes = np.tile(
            np.array([0, 0, 0, 0, 0, 1], dtype=np.uint8), rows.size * cols.size
        )
        b.emit(seq, writes=writes, icounts=self.stencil_icount)

    def _reduction_phase(self, thread: int, b: TraceBuilder) -> None:
        n = self.grid_n
        r0, r1 = self.rows_of(thread)
        cols = np.arange(n, dtype=np.int64)
        # register-accumulated read of each neighbour's boundary row:
        # a single long run homed at the neighbour's core
        if r0 > 0:
            b.emit(self.addr(r0 - 1, cols), writes=0, icounts=1)
        if r1 < n:
            b.emit(self.addr(r1, cols), writes=0, icounts=1)
        # private scratch accumulation (native-homed)
        scratch = self.space.private_base(thread)
        b.emit(scratch + np.arange(8, dtype=np.int64), writes=1, icounts=2)
        # read-modify-write of this thread's cell in the shared sum array
        b.emit_one(self.sums_base + thread, write=False, icount=1)
        b.emit_one(self.sums_base + thread, write=True, icount=0)

    # -- driver ------------------------------------------------------------
    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        for _ in range(self.iterations):
            self._stencil_sweep(thread, b)
            self._reduction_phase(thread, b)
