"""RAYTRACE-like workload (SPLASH-2 RAYTRACE stand-in).

RAYTRACE reads a large shared, read-only scene (BVH + primitives) with
a popularity skew (rays concentrate on the same hot geometry) and
writes only to private ray stacks and a thread-owned framebuffer band.

* shared ``scene``: Zipf-distributed read probes, 2-6 words per node
  visit — short remote read runs all over the machine;
* private ray-stack pushes/pops between scene probes — so remote runs
  are almost always length 1-2 (ideal for remote access, hopeless for
  migration amortization);
* thread-owned framebuffer rows, written locally.

A work-stealing flag region adds a small RMW-contended shared set.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("raytrace", "RAYTRACE-like shared-scene workload (SPLASH-2 stand-in)")
class RaytraceGenerator(WorkloadGenerator):
    name = "raytrace"

    def __init__(
        self,
        num_threads: int = 64,
        rays_per_thread: int = 128,
        scene_words: int = 1 << 14,
        zipf_s: float = 1.2,
        nodes_per_ray: int = 8,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if rays_per_thread <= 0 or nodes_per_ray <= 0:
            raise ConfigError("rays_per_thread and nodes_per_ray must be positive")
        if scene_words < num_threads:
            raise ConfigError("scene must have at least one word per thread")
        if zipf_s <= 1.0:
            raise ConfigError("zipf_s must be > 1 for a proper Zipf law")
        self.rpt = rays_per_thread
        self.scene_words = scene_words
        self.zipf_s = zipf_s
        self.npr = nodes_per_ray
        self.scene_base = self.space.shared_region("scene", scene_words)
        self.fb_base = self.space.shared_region("framebuffer", num_threads * rays_per_thread)
        self.work_base = self.space.shared_region("workqueue", num_threads)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "rays_per_thread": self.rpt,
            "scene_words": self.scene_words,
            "zipf_s": self.zipf_s,
            "nodes_per_ray": self.npr,
        }

    def _zipf_nodes(self, count: int) -> np.ndarray:
        """Zipf-skewed scene offsets folded into the scene region."""
        raw = self.rng.zipf(self.zipf_s, size=count)
        return (raw - 1) % self.scene_words

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        # each thread first-touches an equal slice of the scene (the real
        # code's scene build is parallelized the same way)
        lo = (self.scene_words * thread) // self.num_threads
        hi = (self.scene_words * (thread + 1)) // self.num_threads
        b.emit(
            self.scene_base + np.arange(lo, hi, dtype=np.int64), writes=1, icounts=1
        )
        rows = np.arange(self.rpt, dtype=np.int64)
        b.emit(self.fb_base + thread * self.rpt + rows, writes=1, icounts=1)
        b.emit_one(self.work_base + thread, write=True, icount=1)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        stack = self.space.private_base(thread)
        # Rays are processed in poll-aligned groups of 16: the zipf node
        # draws batch across the group (rejection sampling consumes the
        # bit stream per sample, so one big draw equals the per-ray
        # draws it replaced), and the work-queue poll draw lands after
        # every 16th ray exactly as in the scalar loop.
        npr = self.npr
        stack_words = stack + np.arange(npr, dtype=np.int64)
        # per-node record template: probe, probe+1 (clamped), push, pop
        node_writes = np.tile(np.array([0, 0, 1, 0], dtype=np.uint8), npr)
        node_icounts = np.tile(np.array([5, 5, 2, 2], dtype=np.uint16), npr)
        ray_writes = np.concatenate([node_writes, np.array([1], dtype=np.uint8)])
        ray_icounts = np.concatenate([node_icounts, np.array([3], dtype=np.uint16)])
        for g in range(0, self.rpt, 16):
            cnt = min(16, self.rpt - g)
            nodes = self._zipf_nodes(cnt * npr).reshape(cnt, npr)
            probe = self.scene_base + nodes
            probe2 = probe + 1 - (nodes == self.scene_words - 1)
            push = np.broadcast_to(stack_words, (cnt, npr))
            # (cnt, npr, 4) -> per ray: probe, probe2, push, pop per node
            records = np.stack([probe, probe2, push, push], axis=-1).reshape(cnt, -1)
            pixels = (
                self.fb_base + thread * self.rpt + np.arange(g, g + cnt, dtype=np.int64)
            )[:, None]
            b.emit(
                np.hstack([records, pixels]).ravel(),
                writes=np.tile(ray_writes, cnt),
                icounts=np.tile(ray_icounts, cnt),
            )
            # occasionally poll the work queue (contended shared RMW)
            if cnt == 16:
                victim = int(self.rng.integers(0, self.num_threads))
                b.emit(
                    np.array([self.work_base + victim] * 2, dtype=np.int64),
                    writes=np.array([0, 1], dtype=np.uint8),
                    icounts=np.array([1, 0], dtype=np.uint16),
                )
