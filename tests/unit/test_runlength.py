"""Unit tests for run-length analysis (the Figure 2 statistic)."""

import numpy as np
import pytest

from repro.sim.stats import Histogram
from repro.trace.runlength import (
    fraction_single_access_runs,
    merge_histograms,
    run_length_histogram,
    run_lengths,
)


class TestRunLengths:
    def test_basic_rle(self):
        cores, lengths = run_lengths(np.array([1, 1, 2, 2, 2, 3]))
        assert cores.tolist() == [1, 2, 3]
        assert lengths.tolist() == [2, 3, 1]

    def test_single_run(self):
        cores, lengths = run_lengths(np.array([7, 7, 7]))
        assert cores.tolist() == [7]
        assert lengths.tolist() == [3]

    def test_alternating(self):
        cores, lengths = run_lengths(np.array([0, 1, 0, 1]))
        assert lengths.tolist() == [1, 1, 1, 1]

    def test_empty(self):
        cores, lengths = run_lengths(np.array([], dtype=np.int64))
        assert cores.size == 0 and lengths.size == 0

    def test_lengths_sum_to_input_size(self):
        seq = np.array([3, 3, 1, 4, 4, 4, 4, 2])
        _, lengths = run_lengths(seq)
        assert lengths.sum() == seq.size


class TestRunLengthHistogram:
    def test_native_runs_excluded(self):
        # thread native at core 0; runs: [0 x3], [5 x2], [0 x1]
        seq = np.array([0, 0, 0, 5, 5, 0])
        h = run_length_histogram(seq, native_core=0)
        assert h.bins() == {2: 2}  # one run of length 2, access-weighted

    def test_access_weighting(self):
        seq = np.array([5, 5, 5, 5])  # native 0: one non-native run of 4
        h = run_length_histogram(seq, native_core=0)
        assert h[4] == 4  # 4 accesses contributed at run length 4

    def test_run_count_weighting(self):
        seq = np.array([5, 5, 5, 5])
        h = run_length_histogram(seq, native_core=0, weight_by_accesses=False)
        assert h[4] == 1

    def test_all_native_empty(self):
        h = run_length_histogram(np.array([2, 2, 2]), native_core=2)
        assert h.count == 0


class TestMergeAndFractions:
    def test_merge_preserves_counts(self):
        h1 = run_length_histogram(np.array([1, 1, 2]), native_core=0)
        h2 = run_length_histogram(np.array([3]), native_core=0)
        merged = merge_histograms([h1, h2])
        assert merged.count == h1.count + h2.count

    def test_merge_overflow_carried(self):
        h = Histogram(max_bin=4)
        h.add(9)  # overflow
        merged = merge_histograms([h], max_bin=4)
        assert merged.overflow == 1

    def test_fraction_single_access_runs(self):
        # native 0; runs: [1 x1], [0 x1], [2 x3] -> non-native accesses: 1 + 3
        seq = np.array([1, 0, 2, 2, 2])
        h = run_length_histogram(seq, native_core=0)
        assert fraction_single_access_runs(h) == pytest.approx(0.25)
