"""Farm worker: serve sweep points to a :mod:`repro.analysis.farm`
coordinator.

``repro worker --listen HOST:PORT`` runs one of these. The server is a
plain accept loop — one thread per connection, one coordinator per
connection — speaking the framed protocol defined in
:mod:`repro.analysis.farm`. Chunk evaluation happens on a background
thread so the connection loop keeps answering heartbeat PINGs while a
long point runs; the coordinator distinguishes "slow but alive" from
"dead" by exactly those PONGs.

Traces arrive by reference: the coordinator sends
``WorkloadSpec.cache_key`` digests, the worker answers with what its
local :class:`~repro.trace.store.TraceStore` already holds, and only
the missing traces are pushed — each installed once into the store
(persistent across connections, so a second sweep pushes nothing) and
seeded into the per-process build memo. Workloads the coordinator
never pushed are simply regenerated from their spec, which is always
correct because specs are deterministic.
"""

from __future__ import annotations

import os
import selectors
import shutil
import socket
import tempfile
import threading
import time

from repro.analysis.farm import (
    BEGIN,
    CHUNK,
    DONE,
    ERROR,
    HELLO,
    HELLO_ACK,
    KIND_NAMES,
    NEXT,
    PING,
    PONG,
    PROTOCOL_VERSION,
    RESULT,
    TRACE_HAVE,
    TRACE_OK,
    TRACE_PUT,
    TRACE_QUERY,
    FrameError,
    ProtocolMismatch,
    parse_hostport,
    recv_frame,
    send_frame,
)
from repro.trace.store import TraceStore

# While a chunk evaluates on the worker thread, the connection loop
# polls the socket this often so coordinator PINGs are answered promptly.
EVAL_POLL_SECONDS = 0.25


class WorkerServer:
    """A loopback-or-remote sweep worker.

    ``fail_after_chunks`` is a test hook: the connection is dropped
    without a result when that many chunks have been received, which is
    how the requeue-on-death tests kill a worker mid-chunk
    deterministically.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_dir: str | None = None,
        idle_timeout: float = 600.0,
        verbose: bool = False,
        fail_after_chunks: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self._own_trace_dir = trace_dir is None
        self.trace_dir = trace_dir or tempfile.mkdtemp(prefix="repro-worker-traces-")
        self.store = TraceStore(self.trace_dir)
        self.idle_timeout = idle_timeout
        self.verbose = verbose
        self.fail_after_chunks = fail_after_chunks
        self.traces_installed = 0
        self.chunks_served = 0
        self.points_served = 0
        self._sock: socket.socket | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "WorkerServer":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(8)
        self.port = sock.getsockname()[1]
        sock.settimeout(0.5)  # so serve_forever notices stop()
        self._sock = sock
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        assert self._sock is not None, "call start() first"
        while not self._stop.is_set():
            try:
                conn, _peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def start_background(self) -> "WorkerServer":
        """start() plus a daemon accept thread (tests, embedded use)."""
        self.start()
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._own_trace_dir:
            shutil.rmtree(self.trace_dir, ignore_errors=True)

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[worker {self.address}] {msg}", flush=True)

    # -- per-connection protocol -------------------------------------------
    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(self.idle_timeout)
        chunks_on_conn = 0
        try:
            while True:
                try:
                    kind, msg = recv_frame(conn)
                except ProtocolMismatch as exc:
                    # tell the peer which version this side speaks, then drop
                    try:
                        send_frame(
                            conn,
                            ERROR,
                            {"message": str(exc), "protocol": PROTOCOL_VERSION},
                        )
                    except OSError:
                        pass
                    return
                except (FrameError, OSError):
                    return  # peer gone or garbage; nothing to answer
                if kind == HELLO:
                    send_frame(
                        conn,
                        HELLO_ACK,
                        {
                            "protocol": PROTOCOL_VERSION,
                            "pid": os.getpid(),
                            "cpu_count": os.cpu_count(),
                        },
                    )
                elif kind == PING:
                    send_frame(conn, PONG, {})
                elif kind == TRACE_QUERY:
                    have = [
                        k
                        for k in msg.get("digests", [])
                        if self.store.contains(k)
                    ]
                    send_frame(conn, TRACE_HAVE, {"have": have})
                elif kind == TRACE_PUT:
                    self._install_trace(conn, msg)
                elif kind == BEGIN:
                    send_frame(conn, NEXT, {})
                elif kind == CHUNK:
                    chunks_on_conn += 1
                    if (
                        self.fail_after_chunks is not None
                        and chunks_on_conn >= self.fail_after_chunks
                    ):
                        self._log("test hook: dropping connection mid-chunk")
                        return  # simulated crash: no RESULT ever comes
                    if not self._serve_chunk(conn, msg):
                        return
                elif kind == DONE:
                    return
                else:
                    send_frame(
                        conn,
                        ERROR,
                        {
                            "message": "unexpected "
                            + KIND_NAMES.get(kind, str(kind))
                        },
                    )
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _install_trace(self, conn: socket.socket, msg: dict) -> None:
        key = msg["key"]
        trace = msg["trace"]
        if not self.store.contains(key):
            self.store.put(key, trace)
            self.traces_installed += 1
        from repro.runner import seed_workload_memo

        seed_workload_memo(msg["workload"], trace)
        send_frame(conn, TRACE_OK, {"key": key})
        self._log(f"installed trace {key[:12]}")

    def _serve_chunk(self, conn: socket.socket, msg: dict) -> bool:
        """Evaluate one chunk; keep answering PINGs meanwhile.

        The eval thread signals completion over a self-pipe so the
        RESULT goes out the instant the chunk finishes (a plain recv
        timeout would add up to a poll interval of latency per chunk,
        which dominates short sweeps). Returns False when the
        coordinator sent DONE mid-evaluation (it gave up on this
        worker; the connection is finished).
        """
        box: dict = {}
        done_r, done_w = socket.socketpair()
        th = threading.Thread(
            target=self._eval_chunk, args=(msg, box, done_w), daemon=True
        )
        th.start()
        sel = selectors.DefaultSelector()
        sel.register(conn, selectors.EVENT_READ, "conn")
        sel.register(done_r, selectors.EVENT_READ, "done")
        try:
            finished = False
            while not finished and th.is_alive():
                events = sel.select(timeout=EVAL_POLL_SECONDS)
                for key, _mask in events:
                    if key.data == "done":
                        finished = True
                        continue
                    try:
                        kind, _ = recv_frame(conn)
                    except (FrameError, OSError):
                        return False
                    if kind == PING:
                        send_frame(conn, PONG, {})
                    elif kind == DONE:
                        return False
        finally:
            sel.close()
            done_r.close()
            done_w.close()
            conn.settimeout(self.idle_timeout)
        th.join()
        send_frame(conn, RESULT, {"chunk_id": msg["chunk_id"], **box})
        send_frame(conn, NEXT, {})
        self.chunks_served += 1
        self.points_served += len(box.get("rows", []))
        return True

    def _eval_chunk(self, msg: dict, box: dict, done_w=None) -> None:
        indices = msg.get("indices", [])
        specs = msg.get("specs", [])
        point_timeout = msg.get("point_timeout")
        rows = []
        t0 = time.perf_counter()
        try:
            self._eval_points(indices, specs, point_timeout, rows, box, t0)
        finally:
            box.setdefault("rows", rows)
            box["elapsed"] = time.perf_counter() - t0
            if done_w is not None:
                try:
                    done_w.send(b"x")
                except OSError:
                    pass

    def _eval_points(self, indices, specs, point_timeout, rows, box, t0) -> None:
        from repro.analysis.cache import canonical_rows
        from repro.runner import run_spec_dict

        for j, spec_dict in enumerate(specs):
            if (
                point_timeout is not None
                and time.perf_counter() - t0 > point_timeout * (j + 1)
            ):
                box["error"] = {
                    "index": indices[j] if j < len(indices) else None,
                    "message": (
                        f"chunk budget exhausted before point {j} "
                        f"(point_timeout={point_timeout}s)"
                    ),
                }
                break
            self._ensure_trace(spec_dict)
            try:
                metrics = run_spec_dict(spec_dict)
            except Exception as exc:
                box["error"] = {
                    "index": indices[j] if j < len(indices) else None,
                    "message": f"{type(exc).__name__}: {exc}",
                }
                break
            rows.append(canonical_rows([metrics])[0])
        box["rows"] = rows
        box["elapsed"] = time.perf_counter() - t0

    def _ensure_trace(self, spec_dict: dict) -> None:
        """Seed the build memo from the worker-local store if needed.

        ``trace_path`` workloads name files that exist on the
        coordinator's disk, not this host's — the pushed copy in the
        local store is the only way to build them here.
        """
        wdict = spec_dict.get("workload")
        if wdict is None:
            return
        from repro.runner import memoized_workload, seed_workload_memo
        from repro.spec import WorkloadSpec

        wspec = WorkloadSpec.from_dict(wdict)
        key = wspec.cache_key()
        if memoized_workload(key) is not None:
            return
        trace = self.store.get(key)
        if trace is not None:
            seed_workload_memo(wspec, trace)


def main(args) -> int:
    """CLI entry point (``repro worker``)."""
    host, port = parse_hostport(args.listen)
    server = WorkerServer(
        host=host,
        port=port,
        trace_dir=args.trace_dir,
        verbose=args.verbose,
    ).start()
    # the exact line scripts parse to learn an ephemeral port
    print(f"repro worker listening on {server.host}:{server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0
