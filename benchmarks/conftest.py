"""Shared benchmark fixtures.

Workloads are generated once per session and cached; each bench prints
its experiment table (visible with ``pytest -s`` and in the saved
``bench_output.txt``) in addition to pytest-benchmark's timing table.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.arch.config import SystemConfig, small_test_config
from repro.core.costs import CostModel
from repro.placement import first_touch
from repro.trace.synthetic import make_workload

sys.stdout.reconfigure(line_buffering=True)


@pytest.fixture(scope="session")
def bench_workers() -> int:
    """Worker count for grid sweeps inside benches.

    Set ``REPRO_BENCH_WORKERS=N`` to fan sweep points out over N
    processes. Callbacks that close over fixtures are unpicklable and
    degrade to the serial path automatically (rows are identical
    either way — see tests/unit/test_parallel.py)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def paper_config() -> SystemConfig:
    """The paper's machine: 64 cores, 16 KB L1 + 64 KB L2 (Fig. 2)."""
    return SystemConfig(num_cores=64)


@pytest.fixture(scope="session")
def paper_cost(paper_config) -> CostModel:
    return CostModel(paper_config)


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    """Scaled-down config for the DES machines (16 cores)."""
    return small_test_config(num_cores=16, guest_contexts=4)


@pytest.fixture(scope="session")
def bench_cost(bench_config) -> CostModel:
    return CostModel(bench_config)


_WORKLOAD_CACHE: dict = {}


def cached_workload(name: str, **kwargs):
    key = (name, tuple(sorted(kwargs.items())))
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = make_workload(name, **kwargs)
    return _WORKLOAD_CACHE[key]


_PLACEMENT_CACHE: dict = {}


def cached_first_touch(trace, num_cores):
    key = (id(trace), num_cores)
    if key not in _PLACEMENT_CACHE:
        _PLACEMENT_CACHE[key] = first_touch(trace, num_cores)
    return _PLACEMENT_CACHE[key]


def emit(title: str, body: str) -> None:
    print(f"\n===== {title} =====\n{body}\n", flush=True)
