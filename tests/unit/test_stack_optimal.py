"""Unit tests for the optimal stack-depth DP (§4).

An independent memoized recursion over explicit states — written
directly from the model definition in the module docstring — must
agree exactly with the vectorized DP, and the DP must lower-bound
every fixed-depth scheme.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision.stack_optimal import (
    _StackCosts,
    fixed_depth_cost,
    optimal_stack_depths,
)
from repro.util.errors import ConfigError


def reference_cost(homes, spops, spushes, native, cm, K):
    """Slow reference: explicit state recursion (memoized)."""
    C = _StackCosts(cm, native, K)
    n0 = native
    N = len(homes)
    NAT = ("nat",)

    @lru_cache(maxsize=None)
    def rec(k, state):
        if k == N:
            return 0.0
        h, spop, spush = int(homes[k]), int(spops[k]), int(spushes[k])
        # phase 1: segment
        if state == NAT:
            st, carry_cost = NAT, 0.0
        else:
            _, c, d = state
            if spop > d:  # underflow
                st, carry_cost = NAT, C.mig_base[c, n0] + C.ser[d]
            else:
                d2 = d - spop + spush
                if d2 > C.K:  # overflow
                    st, carry_cost = NAT, C.mig_base[c, n0] + C.ser[C.K]
                else:
                    st, carry_cost = ("g", c, d2), 0.0
        # phase 2: the access must execute at h
        best = np.inf
        if st == NAT:
            if h == n0:
                best = carry_cost + rec(k + 1, NAT)
            else:
                for delta in range(C.K + 1):
                    cand = (
                        carry_cost
                        + C.mig_base[n0, h]
                        + C.ser[delta]
                        + rec(k + 1, ("g", h, delta))
                    )
                    best = min(best, cand)
        else:
            _, c, d = st
            if c == h:
                best = carry_cost + rec(k + 1, st)
            elif h == n0:
                best = carry_cost + C.mig_base[c, n0] + C.ser[d] + rec(k + 1, NAT)
            else:
                for delta in range(d + 1):
                    fl = C.flush[c, d - delta] if d - delta > 0 else 0.0
                    cand = (
                        carry_cost
                        + C.mig_base[c, h]
                        + C.ser[delta]
                        + fl
                        + rec(k + 1, ("g", h, delta))
                    )
                    best = min(best, cand)
        return float(best)

    return rec(0, NAT)


@pytest.fixture
def cm():
    return CostModel(small_test_config(num_cores=4))


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_small_traces(self, cm, seed):
        rng = np.random.default_rng(seed)
        K = 4
        n = int(rng.integers(1, 14))
        homes = rng.integers(0, 4, n)
        spops = rng.integers(0, K + 1, n)
        spushes = rng.integers(0, K + 1, n)
        native = int(rng.integers(0, 4))
        expect = reference_cost(homes, spops, spushes, native, cm, K)
        got = optimal_stack_depths(homes, spops, spushes, native, cm, max_depth=K)
        assert got.total_cost == pytest.approx(expect)

    def test_deeper_window(self, cm):
        rng = np.random.default_rng(77)
        K = 8
        homes = rng.integers(0, 4, 10)
        spops = rng.integers(0, 5, 10)
        spushes = rng.integers(0, 5, 10)
        expect = reference_cost(homes, spops, spushes, 0, cm, K)
        got = optimal_stack_depths(homes, spops, spushes, 0, cm, max_depth=K)
        assert got.total_cost == pytest.approx(expect)


class TestDominance:
    @pytest.mark.parametrize("depth", [0, 1, 2, 4])
    def test_dp_lower_bounds_fixed_depth(self, cm, depth):
        rng = np.random.default_rng(3)
        K = 4
        homes = rng.integers(0, 4, 120)
        spops = rng.integers(0, 3, 120)
        spushes = rng.integers(0, 3, 120)
        opt = optimal_stack_depths(homes, spops, spushes, 0, cm, max_depth=K)
        fix = fixed_depth_cost(homes, spops, spushes, 0, cm, depth=depth, max_depth=K)
        assert opt.total_cost <= fix.total_cost + 1e-9


class TestSemantics:
    def test_all_local_free(self, cm):
        homes = np.full(10, 1)
        res = optimal_stack_depths(
            homes, np.zeros(10, int), np.zeros(10, int), 1, cm, max_depth=4
        )
        assert res.total_cost == 0.0
        assert res.migrations == 0

    def test_single_remote_access_migrates_minimal_depth(self, cm):
        homes = np.array([2])
        res = optimal_stack_depths(
            homes, np.array([1]), np.array([1]), 0, cm, max_depth=4
        )
        assert res.migrations == 1
        # carrying depth >= 1 avoids an underflow round trip; the DP
        # should carry exactly what the segment needs
        assert res.total_cost <= fixed_depth_cost(
            homes, np.array([1]), np.array([1]), 0, cm, depth=4
        ).total_cost + 1e-9

    def test_underflow_forces_return(self, cm):
        """Carrying 0 entries to a guest that then pops must bounce home."""
        homes = np.array([2, 2])
        spops = np.array([0, 3])
        spushes = np.array([0, 0])
        fix = fixed_depth_cost(homes, spops, spushes, 0, cm, depth=0, max_depth=4)
        assert fix.forced_returns >= 1

    def test_overflow_forces_return(self, cm):
        """A guest whose segment pushes past the window bounces home."""
        homes = np.array([2, 2])
        spops = np.array([0, 0])
        spushes = np.array([0, 4])
        fix = fixed_depth_cost(homes, spops, spushes, 0, cm, depth=4, max_depth=4)
        assert fix.forced_returns >= 1

    def test_stack_context_smaller_than_full_em2(self, cm):
        """§4's headline: stack-EM² moves far fewer bits than EM²."""
        rng = np.random.default_rng(5)
        homes = rng.integers(0, 4, 100)
        spops = rng.integers(0, 3, 100)
        spushes = rng.integers(0, 3, 100)
        res = optimal_stack_depths(homes, spops, spushes, 0, cm, max_depth=4)
        full_bits = res.migrations * cm.config.context.full_context_bits
        assert res.migrated_bits < full_bits

    def test_activity_beyond_window_rejected(self, cm):
        with pytest.raises(ConfigError, match="exceeds window"):
            optimal_stack_depths(
                np.array([1]), np.array([9]), np.array([0]), 0, cm, max_depth=4
            )

    def test_depth_reconstruction_in_range(self, cm):
        rng = np.random.default_rng(13)
        homes = rng.integers(0, 4, 60)
        spops = rng.integers(0, 3, 60)
        spushes = rng.integers(0, 3, 60)
        res = optimal_stack_depths(homes, spops, spushes, 0, cm, max_depth=4)
        d = res.depths
        assert ((d >= -1) & (d <= 4)).all()
        assert (d >= 0).sum() == res.migrations
