"""Distributed sweep farm — wire protocol and coordinator side.

The farm extends :func:`repro.analysis.sweep.sweep_specs` beyond one
box: ``repro worker --listen HOST:PORT`` processes
(:mod:`repro.analysis.worker`) serve sweep points, and a coordinator
built here shards the grid across them. Everything is stdlib
(``socket``/``struct``/``threading``) — the serialization substrate
already exists, because sweep points are canonical
:class:`~repro.spec.ExperimentSpec` dicts and workloads are addressed
by ``WorkloadSpec.cache_key`` digests.

Wire format (RPFM v2): every frame is a fixed header ``!4sBBxxI`` —
magic ``b"RPFM"``, protocol version, message kind, body length —
followed by the body. Control frames carry JSON (insertion-ordered, so
RESULT rows keep the key order a local run produces); only
``TRACE_PUT`` carries pickle (a :class:`~repro.trace.events.MultiTrace`
is numpy columns, which JSON cannot ship losslessly). A frame with the
wrong magic, an unknown kind, an oversized length, or a truncated body
raises :class:`FrameError`; a version field other than
:data:`PROTOCOL_VERSION` raises :class:`ProtocolMismatch` before the
body is read, so incompatible peers are rejected at the first frame —
a live worker answers a foreign version with an ``ERROR`` frame naming
its own version, which the coordinator surfaces as the same typed
:class:`ProtocolMismatch`.

Authentication: a worker started with an auth token challenges every
coordinator after its HELLO (``AUTH_CHALLENGE`` carrying a fresh
nonce); the coordinator proves knowledge of the shared secret with an
HMAC-SHA256 over the nonce (``AUTH_RESPONSE``), and the worker's
``HELLO_ACK`` carries the complementary worker-side proof, so both
directions are gated before any spec, trace, or result crosses the
wire. A bad or missing proof is answered with a *permanent* typed
``ERROR`` (:class:`AuthError` on the coordinator) that is never
retried.

Session, coordinator's view of one worker::

    connect  -> HELLO            {"protocol": 2, "points": N, "auth": bool}
    <- AUTH_CHALLENGE            {"nonce"}              (token-gated workers)
    -> AUTH_RESPONSE             {"mac"}
    <- HELLO_ACK                 {"pid", "cpu_count", ["auth"], ...}
    -> TRACE_QUERY               {"digests": [cache_key, ...]}
    <- TRACE_HAVE                {"have": [cache_key, ...]}
    -> TRACE_PUT (pickle)        one per digest the worker lacks
    <- TRACE_OK                  per TRACE_PUT
    -> BEGIN
    <- NEXT                      worker pulls; this is the work-stealing
    -> CHUNK                     {"chunk_id", "indices", "specs", ...}
    <- RESULT                    {"chunk_id", "rows", "elapsed"}
    <- NEXT                      ... until the grid drains ...
    -> DONE

Pull-based stealing: workers ask (``NEXT``) whenever idle, so a fast
host simply asks more often — there is no static shard. Chunk size
adapts per worker from an EMA of its observed seconds/point, targeting
:data:`CHUNK_TARGET_SECONDS` per round trip while leaving a stealable
tail. Results stream back incrementally and are placed by point index
(first result wins), so the final row order is deterministic no matter
which worker computed what.

Failure semantics: the coordinator PINGs an idle connection every
``heartbeat`` seconds; a worker silent past its liveness ceiling, or
whose socket errors out, is declared dead and its in-flight chunk is
re-queued to the survivors. Dropped links are then *redialed* with
jittered exponential backoff (``reconnect`` attempts per outage) — the
worker's persistent :class:`~repro.trace.store.TraceStore` answers the
re-run trace negotiation from disk, so a reconnect never re-ships a
trace. An idle worker with nothing pending *hedges* the oldest overdue
in-flight chunk of another worker (at most one hedge per chunk);
first-result-wins discards whichever copy loses. ``point_timeout``
travels with each chunk and doubles as the coordinator-side deadline
(timeout × points + grace) — exceeding it raises the same
:class:`~repro.analysis.parallel.SweepPointError` the local pool
raises, with the offending spec attached. Zero reachable workers
raises :class:`FarmUnavailable`, which ``sweep_specs`` degrades to the
local pool with a warning; if every worker dies mid-sweep, the
leftover points are finished locally instead of being lost.

Durability: pass a :class:`~repro.analysis.journal.SweepJournal` and
the coordinator appends every completed ``(spec_key, row)`` as it
lands; a restarted coordinator (same grid, same journal) replays the
journal, enqueues only the missing points, and still returns the
bit-identical row list an uninterrupted run produces.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import json
import pickle
import random
import socket
import struct
import threading
import time
import warnings
from collections import deque
from typing import Mapping

from repro.util.errors import ConfigError, ReproError

# -------------------------------------------------------------- wire layer
#: v2 adds the AUTH_CHALLENGE/AUTH_RESPONSE handshake leg and the
#: ``auth`` fields on HELLO/HELLO_ACK; v1 peers are rejected with a
#: typed :class:`ProtocolMismatch` at the first frame.
PROTOCOL_VERSION = 2
MAGIC = b"RPFM"
HEADER = struct.Struct("!4sBBxxI")  # magic, version, kind, pad, body length
MAX_FRAME = 256 * 1024 * 1024

HELLO = 1
HELLO_ACK = 2
TRACE_QUERY = 3
TRACE_HAVE = 4
TRACE_PUT = 5
TRACE_OK = 6
BEGIN = 7
NEXT = 8
CHUNK = 9
RESULT = 10
DONE = 11
PING = 12
PONG = 13
ERROR = 14
AUTH_CHALLENGE = 15
AUTH_RESPONSE = 16

KIND_NAMES = {
    HELLO: "HELLO",
    HELLO_ACK: "HELLO_ACK",
    TRACE_QUERY: "TRACE_QUERY",
    TRACE_HAVE: "TRACE_HAVE",
    TRACE_PUT: "TRACE_PUT",
    TRACE_OK: "TRACE_OK",
    BEGIN: "BEGIN",
    NEXT: "NEXT",
    CHUNK: "CHUNK",
    RESULT: "RESULT",
    DONE: "DONE",
    PING: "PING",
    PONG: "PONG",
    ERROR: "ERROR",
    AUTH_CHALLENGE: "AUTH_CHALLENGE",
    AUTH_RESPONSE: "AUTH_RESPONSE",
}

# TRACE_PUT bodies are numpy trace columns; everything else is JSON so
# a foreign implementation could speak the control plane without
# trusting pickle for it — and so attacker-controlled control frames
# are never unpickled (the fuzz suite pins this).
_PICKLE_KINDS = frozenset({TRACE_PUT})


class FarmError(ReproError):
    """Base class for distributed-farm failures."""


class FrameError(FarmError):
    """A wire frame was truncated, oversized, or malformed."""


class ProtocolMismatch(FrameError):
    """The peer speaks a different farm protocol version."""


class AuthError(FarmError):
    """The authentication handshake failed (bad or missing shared
    secret). Permanent — the coordinator never retries it."""


class FarmUnavailable(FarmError):
    """No farm worker was reachable; callers degrade to the local pool."""


def encode_frame(kind: int, payload) -> bytes:
    """One wire frame: header plus JSON (or pickle) body."""
    if kind in _PICKLE_KINDS:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        # insertion order is preserved deliberately: RESULT rows keep
        # the exact key order a local evaluation produces, so farm and
        # local sweeps render byte-identical tables
        body = json.dumps(payload).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(
            f"{KIND_NAMES.get(kind, kind)} body is {len(body)} bytes, "
            f"over the {MAX_FRAME}-byte frame ceiling"
        )
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, len(body)) + body


def send_frame(sock: socket.socket, kind: int, payload) -> None:
    sock.sendall(encode_frame(kind, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        piece = sock.recv(n - len(buf))
        if not piece:
            raise FrameError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes read)"
            )
        buf.extend(piece)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> tuple[int, object]:
    """Read one frame; return ``(kind, payload)``.

    Raises :class:`ProtocolMismatch` on a foreign version (checked
    before the body is read) and :class:`FrameError` on anything else
    that is not a well-formed frame. ``socket.timeout`` passes through
    so callers can interleave heartbeats with blocking reads.
    """
    magic, version, kind, length = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolMismatch(
            f"peer speaks farm protocol v{version}, this side v{PROTOCOL_VERSION}"
        )
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if length > MAX_FRAME:
        raise FrameError(
            f"{KIND_NAMES[kind]} frame declares {length} bytes, "
            f"over the {MAX_FRAME}-byte ceiling"
        )
    body = _recv_exact(sock, length)
    try:
        if kind in _PICKLE_KINDS:
            return kind, pickle.loads(body)
        return kind, json.loads(body.decode("utf-8"))
    except Exception as exc:
        raise FrameError(f"malformed {KIND_NAMES[kind]} body: {exc}") from exc


def auth_mac(token: str, role: str, nonce: str) -> str:
    """HMAC-SHA256 proof for one side of the challenge-response.

    ``role`` ("coordinator"/"worker") domain-separates the two
    directions so a worker cannot reflect the coordinator's own proof
    back at it; the protocol version is folded in so a proof minted
    under one protocol revision never validates under another.
    """
    msg = f"rpfm-v{PROTOCOL_VERSION}|{role}|{nonce}".encode()
    return hmac_mod.new(token.encode(), msg, hashlib.sha256).hexdigest()


def check_mac(token: str, role: str, nonce: str, mac) -> bool:
    """Constant-time verification of one proof."""
    if not isinstance(mac, str):
        return False
    return hmac_mod.compare_digest(auth_mac(token, role, nonce), mac)


def parse_hostport(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; :class:`FarmError` otherwise."""
    host, sep, port = str(addr).rpartition(":")
    if not sep or not host:
        raise FarmError(f"farm address must be HOST:PORT, got {addr!r}")
    try:
        return host, int(port)
    except ValueError:
        raise FarmError(f"farm address {addr!r} has a non-integer port") from None


# ------------------------------------------------------------- coordinator
CONNECT_TIMEOUT = 3.0
HEARTBEAT_INTERVAL = 1.0
LIVENESS_TIMEOUT = 15.0
CHUNK_TARGET_SECONDS = 0.5
MAX_CHUNK = 64
DEADLINE_GRACE = 2.0
#: redial attempts per outage before a dropped worker is abandoned
RECONNECT_ATTEMPTS = 2
RECONNECT_BASE_SECONDS = 0.1
RECONNECT_MAX_SECONDS = 10.0
#: an idle worker hedges another's in-flight chunk only when the chunk
#: is older than both this floor and HEDGE_FACTOR x its expected time
HEDGE_MIN_SECONDS = 1.0
HEDGE_FACTOR = 3.0

_FARM_KEYS = frozenset(
    {"addrs", "auth_token", "heartbeat", "liveness", "reconnect", "chunk"}
)


def normalize_farm(farm) -> dict | None:
    """The ``farm=`` argument as a config dict (or None when absent).

    Accepts the historical list of ``"host:port"`` strings, or a
    mapping with ``addrs`` plus optional ``auth_token`` / ``heartbeat``
    / ``liveness`` / ``reconnect`` / ``chunk`` overrides. Unknown keys
    raise :class:`~repro.util.errors.ConfigError` naming the options.
    """
    if not farm:
        return None
    if isinstance(farm, Mapping):
        cfg = dict(farm)
        unknown = sorted(set(cfg) - _FARM_KEYS)
        if unknown:
            raise ConfigError(
                f"unknown farm option(s) {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(_FARM_KEYS))}"
            )
        cfg["addrs"] = [str(a) for a in cfg.get("addrs", []) or []]
        return cfg
    return {"addrs": [str(a) for a in farm]}


def _check_intervals(heartbeat: float, liveness: float) -> tuple[float, float]:
    """Validate the heartbeat/liveness pair; returns them as floats."""
    for name, value in (("heartbeat", heartbeat), ("liveness", liveness)):
        if not isinstance(value, (int, float)) or value <= 0:
            raise ConfigError(
                f"farm {name} must be a positive number of seconds, got {value!r}"
            )
    if liveness <= heartbeat:
        raise ConfigError(
            f"farm liveness timeout ({liveness}s) must exceed the "
            f"heartbeat interval ({heartbeat}s), or every worker is "
            "declared dead between two pings"
        )
    return float(heartbeat), float(liveness)


class _WorkerLink:
    """Coordinator-side state for one worker address (survives redials)."""

    def __init__(self, addr: str, sock: socket.socket) -> None:
        self.addr = addr
        self.sock = sock
        self.sec_per_point: float | None = None  # EMA of observed latency
        self.points_done = 0
        self.chunks_done = 0
        self.traces_pushed = 0
        self.reconnects = 0
        self.dead = False
        #: True once the current session got past BEGIN — used to tell
        #: productive outages (worth redialing again) from barren ones
        #: (e.g. a draining worker that accepts TCP but drops the session)
        self.progressed = False


class FarmCoordinator:
    """Shard one sweep's spec dicts across remote workers.

    ``run()`` returns the list of metrics dicts (JSON-canonical, one
    per spec, in spec order) and fills :attr:`stats` with per-worker
    accounting — chunk counts, points, trace pushes, requeues,
    reconnects, hedges, journal hits — which the tests and the bench
    read directly.
    """

    def __init__(
        self,
        spec_dicts: list[dict],
        farm: list[str],
        point_timeout: float | None = None,
        chunk: int | None = None,
        heartbeat: float = HEARTBEAT_INTERVAL,
        liveness: float = LIVENESS_TIMEOUT,
        connect_timeout: float = CONNECT_TIMEOUT,
        reconnect: int = RECONNECT_ATTEMPTS,
        auth_token: str | None = None,
        journal=None,
    ) -> None:
        if not farm:
            raise FarmUnavailable("empty farm address list")
        if not isinstance(reconnect, int) or reconnect < 0:
            raise ConfigError(
                f"farm reconnect must be a non-negative int, got {reconnect!r}"
            )
        self.spec_dicts = list(spec_dicts)
        self.farm = list(farm)
        self.point_timeout = point_timeout
        self.fixed_chunk = chunk
        self.heartbeat, self.liveness = _check_intervals(heartbeat, liveness)
        self.connect_timeout = connect_timeout
        self.reconnect = reconnect
        self.auth_token = auth_token
        self.journal = journal
        n = len(self.spec_dicts)
        self.rows: list[dict | None] = [None] * n
        self.remaining = n
        self.lock = threading.Lock()
        self.done_evt = threading.Event()
        self.abort_exc: Exception | None = None
        self.live_workers = 0
        self._chunk_ctr = 0
        self._build_lock = threading.Lock()
        self._trace_cache: dict[str, tuple[object, dict]] = {}
        self._rng = random.Random(0xFA12)  # reconnect jitter only
        # in-flight accounting shared across serve threads so idle
        # workers can hedge stragglers: link -> (chunk_id, indices,
        # issued_at, expected_seconds)
        self._inflight: dict[_WorkerLink, tuple[int, list[int], float, float]] = {}
        self._hedged: set[int] = set()  # chunk ids already hedged once
        self._keys: list[str] | None = None
        journal_hits = 0
        if journal is not None:
            from repro.analysis.journal import spec_journal_key

            self._keys = [spec_journal_key(d) for d in self.spec_dicts]
            for i, key in enumerate(self._keys):
                row = journal.get(key)
                if row is not None and self.rows[i] is None:
                    self.rows[i] = row
                    self.remaining -= 1
                    journal_hits += 1
        self.pending: deque[int] = deque(
            i for i in range(n) if self.rows[i] is None
        )
        if self.remaining == 0:
            self.done_evt.set()
        self._workload_by_key: dict[str, dict] = {}
        for i in self.pending:
            wdict = self.spec_dicts[i].get("workload")
            if wdict is not None:
                from repro.spec import WorkloadSpec

                key = WorkloadSpec.from_dict(wdict).cache_key()
                self._workload_by_key.setdefault(key, wdict)
        self.stats: dict = {
            "points": n,
            "workers": {},
            "requeues": 0,
            "chunks": 0,
            "trace_pushes": {},
            "local_leftovers": 0,
            "reconnects": 0,
            "hedges": 0,
            "journal_hits": journal_hits,
        }

    # -- public entry ------------------------------------------------------
    def run(self) -> list[dict]:
        if self.remaining == 0:
            # fully replayed from the journal: nothing to dispatch
            return self.rows
        links = self._connect_all()
        if not links:
            raise FarmUnavailable(
                f"no reachable farm workers among {', '.join(self.farm)}"
            )
        self.live_workers = len(links)
        threads = [
            threading.Thread(target=self._serve, args=(link,), daemon=True)
            for link in links
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if self.abort_exc is not None:
            self._flush_journal()
            raise self.abort_exc
        leftovers = [i for i, r in enumerate(self.rows) if r is None]
        if leftovers:
            # every worker died mid-sweep: degrade, never lose points
            warnings.warn(
                f"all farm workers died; evaluating {len(leftovers)} "
                "remaining point(s) locally",
                RuntimeWarning,
                stacklevel=2,
            )
            self.stats["local_leftovers"] = len(leftovers)
            for i in leftovers:
                self.rows[i] = _eval_local(self.spec_dicts[i])
                self._journal_append(i, self.rows[i])
        for link in links:
            self.stats["workers"][link.addr] = {
                "points": link.points_done,
                "chunks": link.chunks_done,
                "sec_per_point": link.sec_per_point,
                "reconnects": link.reconnects,
                "dead": link.dead,
            }
        self._flush_journal()
        return self.rows  # fully populated

    def _journal_append(self, index: int, row: dict) -> None:
        if self.journal is not None:
            self.journal.append(self._keys[index], row)

    def _flush_journal(self) -> None:
        if self.journal is not None:
            self.journal.flush()

    # -- connection management --------------------------------------------
    def _dial(self, addr: str) -> socket.socket:
        host, port = parse_hostport(addr)
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        # handshake and trace pushes may legitimately take a while;
        # the serving loop tightens this to the heartbeat interval
        sock.settimeout(max(self.liveness, self.connect_timeout))
        return sock

    def _connect_all(self) -> list[_WorkerLink]:
        links = []
        for addr in self.farm:
            try:
                sock = self._dial(addr)
            except OSError as exc:
                warnings.warn(
                    f"farm worker {addr} unreachable: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            links.append(_WorkerLink(addr, sock))
        return links

    def _handshake(self, link: _WorkerLink) -> None:
        send_frame(
            link.sock,
            HELLO,
            {
                "protocol": PROTOCOL_VERSION,
                "points": len(self.spec_dicts),
                "auth": self.auth_token is not None,
            },
        )
        kind, msg = recv_frame(link.sock)
        nonce = None
        if kind == AUTH_CHALLENGE:
            if self.auth_token is None:
                raise AuthError(
                    f"worker {link.addr} requires authentication; "
                    "pass --auth-token / auth_token with the shared secret"
                )
            nonce = msg.get("nonce")
            if not isinstance(nonce, str) or not nonce:
                raise AuthError(f"worker {link.addr} sent a malformed challenge")
            send_frame(
                link.sock,
                AUTH_RESPONSE,
                {"mac": auth_mac(self.auth_token, "coordinator", nonce)},
            )
            kind, msg = recv_frame(link.sock)
        if kind == ERROR:
            peer_proto = msg.get("protocol")
            if peer_proto is not None and peer_proto != PROTOCOL_VERSION:
                raise ProtocolMismatch(
                    f"worker {link.addr} speaks farm protocol v{peer_proto}, "
                    f"this side v{PROTOCOL_VERSION}"
                )
            if msg.get("auth_failed"):
                raise AuthError(
                    f"worker {link.addr} rejected authentication: "
                    f"{msg.get('message')}"
                )
            raise FarmError(f"worker {link.addr} rejected HELLO: {msg.get('message')}")
        if kind != HELLO_ACK:
            raise FarmError(
                f"worker {link.addr} answered HELLO with "
                f"{KIND_NAMES.get(kind, kind)}"
            )
        if self.auth_token is not None:
            # mutual: the worker must prove it holds the secret too —
            # otherwise specs and traces would flow to an imposter
            if nonce is None:
                raise AuthError(
                    f"worker {link.addr} did not request authentication; "
                    "refusing to send work to an unauthenticated peer"
                )
            if not check_mac(self.auth_token, "worker", nonce, msg.get("auth")):
                raise AuthError(
                    f"worker {link.addr} failed to prove the shared secret"
                )

    def _negotiate_traces(self, link: _WorkerLink) -> None:
        """Trace-by-reference: digests first, bodies only where needed.

        After a reconnect the worker's persistent store still holds
        everything already pushed, so the re-negotiation ships nothing.
        """
        keys = sorted(self._workload_by_key)
        if not keys:
            return
        send_frame(link.sock, TRACE_QUERY, {"digests": keys})
        kind, msg = recv_frame(link.sock)
        if kind != TRACE_HAVE:
            raise FarmError(
                f"worker {link.addr} answered TRACE_QUERY with "
                f"{KIND_NAMES.get(kind, kind)}"
            )
        have = set(msg.get("have", []))
        for key in keys:
            if key in have:
                continue
            trace, wdict = self._trace_for(key)
            send_frame(
                link.sock,
                TRACE_PUT,
                {"key": key, "workload": wdict, "trace": trace},
            )
            kind, msg = recv_frame(link.sock)
            if kind != TRACE_OK or msg.get("key") != key:
                raise FarmError(
                    f"worker {link.addr} did not acknowledge trace {key[:12]}"
                )
            link.traces_pushed += 1
        self.stats["trace_pushes"][link.addr] = link.traces_pushed

    def _trace_for(self, key: str):
        """Build (once) the trace a worker reported missing."""
        with self._build_lock:
            cached = self._trace_cache.get(key)
            if cached is None:
                from repro.runner import build_workload
                from repro.spec import WorkloadSpec

                wdict = self._workload_by_key[key]
                cached = (build_workload(WorkloadSpec.from_dict(wdict)), wdict)
                self._trace_cache[key] = cached
            return cached

    # -- work distribution -------------------------------------------------
    def _next_chunk(self, link: _WorkerLink):
        with self.lock:
            if self.pending:
                if self.fixed_chunk is not None:
                    n = max(1, self.fixed_chunk)
                else:
                    spp = link.sec_per_point
                    if spp is None:
                        n = 1  # first chunk calibrates the EMA
                    else:
                        n = max(1, int(CHUNK_TARGET_SECONDS / max(spp, 1e-6)))
                    # leave a stealable tail for the other live workers
                    tail = -(-len(self.pending) // max(1, 2 * self.live_workers))
                    n = min(n, MAX_CHUNK, max(1, tail))
                n = min(n, len(self.pending))
                indices = [self.pending.popleft() for _ in range(n)]
                self._chunk_ctr += 1
                self.stats["chunks"] += 1
                return self._chunk_ctr, indices
            if self.remaining > 0:
                return self._hedge_chunk(link)
        return None

    def _hedge_chunk(self, link: _WorkerLink):
        """Duplicate the oldest overdue in-flight chunk of another
        worker onto this idle one. First result wins; each chunk is
        hedged at most once. Caller holds :attr:`lock`."""
        now = time.monotonic()
        best = None
        for other, (cid, idxs, t0, expect) in self._inflight.items():
            if other is link or cid in self._hedged:
                continue
            undone = [i for i in idxs if self.rows[i] is None]
            if not undone:
                continue
            if now - t0 < max(HEDGE_MIN_SECONDS, HEDGE_FACTOR * expect):
                continue
            if best is None or t0 < best[2]:
                best = (cid, undone, t0)
        if best is None:
            return None
        self._hedged.add(best[0])
        self._chunk_ctr += 1
        self.stats["chunks"] += 1
        self.stats["hedges"] += 1
        return self._chunk_ctr, best[1]

    def _record(self, link: _WorkerLink, indices: list[int], rows: list, elapsed) -> None:
        if len(rows) != len(indices):
            raise FarmError(
                f"worker {link.addr} returned {len(rows)} rows for "
                f"{len(indices)} points"
            )
        with self.lock:
            for i, row in zip(indices, rows):
                if self.rows[i] is None:  # first result wins after a requeue/hedge
                    self.rows[i] = row
                    self.remaining -= 1
                    self._journal_append(i, row)
            if self.remaining == 0:
                self.done_evt.set()
        spp = float(elapsed) / max(len(indices), 1)
        link.sec_per_point = (
            spp
            if link.sec_per_point is None
            else 0.5 * link.sec_per_point + 0.5 * spp
        )
        link.points_done += len(indices)
        link.chunks_done += 1

    def _requeue(self, link: _WorkerLink) -> None:
        """Declare ``link`` down and return its in-flight points (the
        shared registry is authoritative) to the head of the queue."""
        with self.lock:
            link.dead = True
            self.live_workers -= 1
            entry = self._inflight.pop(link, None)
            if entry is not None:
                undone = [i for i in entry[1] if self.rows[i] is None]
                self.pending.extendleft(reversed(undone))
                if undone:
                    self.stats["requeues"] += 1

    def _abort(self, exc: Exception) -> None:
        with self.lock:
            if self.abort_exc is None:
                self.abort_exc = exc
        self.done_evt.set()

    # -- per-worker serving loop -------------------------------------------
    def _serve(self, link: _WorkerLink) -> None:
        """Serve one worker address for the whole sweep, redialing
        dropped connections with jittered exponential backoff until the
        reconnect budget for an outage is spent. Permanent failures
        (protocol or auth mismatch) are never retried, and a link whose
        redials keep dying before BEGIN (a draining worker still
        answers TCP from the listen backlog) is abandoned after a few
        barren sessions rather than redialed forever."""
        barren = 0
        while True:
            link.progressed = False
            try:
                self._serve_connection(link)
                return  # sweep finished (or aborted) cleanly
            except (ProtocolMismatch, AuthError) as exc:
                self._requeue(link)
                warnings.warn(
                    f"farm worker {link.addr} rejected permanently: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
            except (FarmError, OSError) as exc:
                self._requeue(link)
                if self.done_evt.is_set() or self.abort_exc is not None:
                    return
                barren = 0 if link.progressed else barren + 1
                if barren >= 3 or not self._redial(link, exc):
                    warnings.warn(
                        f"farm worker {link.addr} dropped: {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    return

    def _redial(self, link: _WorkerLink, cause: Exception) -> bool:
        """Try to re-establish a dropped link; True on success."""
        for attempt in range(self.reconnect):
            delay = min(
                RECONNECT_BASE_SECONDS * (2.0 ** attempt), RECONNECT_MAX_SECONDS
            )
            # full jitter: desynchronize a fleet redialing one worker
            time.sleep(delay * (0.5 + self._rng.random()))
            if self.done_evt.is_set() or self.abort_exc is not None:
                return False
            try:
                sock = self._dial(link.addr)
            except OSError:
                continue
            try:
                link.sock.close()
            except OSError:
                pass
            link.sock = sock
            with self.lock:
                link.dead = False
                self.live_workers += 1
                link.reconnects += 1
                self.stats["reconnects"] += 1
            return True
        return False

    def _serve_connection(self, link: _WorkerLink) -> None:
        inflight = None  # (chunk_id, indices) awaiting RESULT
        deadline = None
        try:
            self._handshake(link)
            self._negotiate_traces(link)
            send_frame(link.sock, BEGIN, {})
            link.progressed = True
            link.sock.settimeout(self.heartbeat)
            last_frame = time.monotonic()
            while not self.done_evt.is_set() and self.abort_exc is None:
                try:
                    kind, msg = recv_frame(link.sock)
                except socket.timeout:
                    now = time.monotonic()
                    if deadline is not None and now > deadline:
                        idx = inflight[1][0]
                        from repro.analysis.parallel import SweepPointError

                        self._abort(
                            SweepPointError(
                                f"farm point exceeded point_timeout="
                                f"{self.point_timeout}s on worker {link.addr}",
                                point={"spec": self.spec_dicts[idx]},
                            )
                        )
                        break
                    if now - last_frame > self.liveness:
                        raise FarmError(
                            f"worker {link.addr} silent for more than "
                            f"{self.liveness:.0f}s"
                        )
                    send_frame(link.sock, PING, {})
                    continue
                last_frame = time.monotonic()
                if kind == PONG:
                    continue
                if kind == PING:
                    send_frame(link.sock, PONG, {})
                    continue
                if kind == NEXT:
                    assigned = self._next_chunk(link)
                    while assigned is None:
                        if self.done_evt.is_set() or self.abort_exc is not None:
                            break
                        if self.remaining == 0:
                            break
                        time.sleep(0.05)  # idle: a straggler may become hedgeable
                        assigned = self._next_chunk(link)
                    if assigned is None:
                        break
                    chunk_id, indices = assigned
                    send_frame(
                        link.sock,
                        CHUNK,
                        {
                            "chunk_id": chunk_id,
                            "indices": indices,
                            "specs": [self.spec_dicts[i] for i in indices],
                            "point_timeout": self.point_timeout,
                        },
                    )
                    inflight = (chunk_id, indices)
                    expect = max(
                        len(indices) * (link.sec_per_point or 0.0),
                        HEDGE_MIN_SECONDS,
                    )
                    with self.lock:
                        self._inflight[link] = (
                            chunk_id, indices, time.monotonic(), expect
                        )
                    if self.point_timeout is not None:
                        deadline = (
                            time.monotonic()
                            + self.point_timeout * len(indices)
                            + DEADLINE_GRACE
                        )
                    last_frame = time.monotonic()
                    continue
                if kind == RESULT:
                    if inflight is None or msg.get("chunk_id") != inflight[0]:
                        raise FarmError(
                            f"worker {link.addr} sent RESULT for an "
                            "unexpected chunk"
                        )
                    err = msg.get("error")
                    if err is not None:
                        from repro.analysis.parallel import SweepPointError

                        idx = err.get("index", inflight[1][0])
                        self._abort(
                            SweepPointError(
                                f"farm point failed on worker {link.addr}: "
                                f"{err.get('message')}",
                                point={"spec": self.spec_dicts[idx]},
                            )
                        )
                        break
                    self._record(
                        link, inflight[1], msg["rows"], msg.get("elapsed", 0.0)
                    )
                    with self.lock:
                        self._inflight.pop(link, None)
                    inflight = None
                    deadline = None
                    continue
                if kind == ERROR:
                    raise FarmError(
                        f"worker {link.addr} reported: {msg.get('message')}"
                    )
                raise FarmError(
                    f"worker {link.addr} sent unexpected "
                    f"{KIND_NAMES.get(kind, kind)}"
                )
        finally:
            # NB: the shared in-flight entry is NOT popped here — on an
            # error path _requeue (in _serve) pops it and returns the
            # undone points to the queue; RESULT handling pops it on
            # the happy path.
            try:
                send_frame(link.sock, DONE, {})
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:
                pass


def _eval_local(spec_dict: dict) -> dict:
    """Evaluate one leftover point in-process, canonically."""
    from repro.analysis.cache import canonical_rows
    from repro.runner import run_spec_dict

    try:
        return canonical_rows([run_spec_dict(spec_dict)])[0]
    except Exception as exc:
        from repro.analysis.parallel import SweepPointError

        raise SweepPointError(
            f"local fallback point failed: {type(exc).__name__}: {exc}",
            point={"spec": spec_dict},
        ) from exc


def farm_sweep(
    spec_dicts: list[dict],
    farm,
    point_timeout: float | None = None,
    chunk: int | None = None,
    stats_out: dict | None = None,
    heartbeat: float | None = None,
    liveness: float | None = None,
    reconnect: int | None = None,
    auth_token: str | None = None,
    journal=None,
) -> list[dict]:
    """Run ``spec_dicts`` over the farm; return metrics dicts in order.

    ``farm`` is an address list or a :func:`normalize_farm` config
    mapping; explicit keyword arguments override the mapping's values.
    Raises :class:`FarmUnavailable` when no worker is reachable —
    callers (``sweep_specs``) catch that and degrade to the local pool.
    ``stats_out``, when given, is updated with the coordinator's
    accounting (chunk counts, trace pushes, requeues, reconnects,
    hedges, journal hits). ``journal`` is an open
    :class:`~repro.analysis.journal.SweepJournal`: completed rows are
    appended as they land and already-journaled points are never
    re-dispatched.
    """
    cfg = normalize_farm(farm) or {}
    coord = FarmCoordinator(
        spec_dicts,
        cfg.get("addrs", []),
        point_timeout=point_timeout,
        chunk=chunk if chunk is not None else cfg.get("chunk"),
        heartbeat=(
            heartbeat
            if heartbeat is not None
            else cfg.get("heartbeat", HEARTBEAT_INTERVAL)
        ),
        liveness=(
            liveness
            if liveness is not None
            else cfg.get("liveness", LIVENESS_TIMEOUT)
        ),
        reconnect=(
            reconnect
            if reconnect is not None
            else cfg.get("reconnect", RECONNECT_ATTEMPTS)
        ),
        auth_token=(
            auth_token if auth_token is not None else cfg.get("auth_token")
        ),
        journal=journal,
    )
    rows = coord.run()
    if stats_out is not None:
        stats_out.update(coord.stats)
    return rows
