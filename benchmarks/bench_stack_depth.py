"""Experiment ex-stack: stack-machine EM² and optimal migration depths (§4).

Claims exercised:

* a stack context (PC + a few top-of-stack entries) is dramatically
  smaller than the register-file context — measured as migrated bits;
* the optimal per-migration depth varies per access; the DP computes
  it and lower-bounds every fixed-depth scheme;
* carrying too little causes underflow round trips, carrying the full
  window causes overflow round trips ("enough data to continue
  execution ... and enough space to carry back any results").

Workloads are *executed* stack-machine kernels (real programs), plus a
stack-annotated ocean trace.
"""

import pytest

from conftest import cached_first_touch, emit
from repro.analysis.reports import format_table
from repro.analysis.sweep import grid, sweep
from repro.core.decision.stack_optimal import fixed_depth_cost, optimal_stack_depths
from repro.placement import first_touch
from repro.stackmachine import stack_workload
from repro.stackmachine.programs import annotate_stack_activity
from repro.trace.synthetic import make_workload

K = 8


@pytest.fixture(scope="module")
def stack_traces():
    out = {}
    for kernel in ("dot", "reduce", "hist"):
        mt = stack_workload(kernel, num_threads=8, n=48, shared_fraction=0.75)
        out[kernel] = (mt, first_touch(mt, 8))
    return out


def _depth_sweep(mt, placement, cost_model):
    rows = []
    opt_cost = opt_bits = opt_forced = 0.0
    for t, tr in enumerate(mt.threads):
        homes = placement.home_of(tr["addr"])
        res = optimal_stack_depths(homes, tr["spop"], tr["spush"], t, cost_model, K)
        opt_cost += res.total_cost
        opt_bits += res.migrated_bits
        opt_forced += res.forced_returns
    rows.append(
        {"depth": "optimal (DP)", "network_cost": opt_cost,
         "migrated_kbit": opt_bits / 1000, "forced_returns": int(opt_forced)}
    )

    def eval_depth(depth):
        cost = bits = forced = 0
        for t, tr in enumerate(mt.threads):
            homes = placement.home_of(tr["addr"])
            res = fixed_depth_cost(
                homes, tr["spop"], tr["spush"], t, cost_model, depth, K
            )
            cost += res.total_cost
            bits += res.migrated_bits
            forced += res.forced_returns
        return {"network_cost": cost, "migrated_kbit": bits / 1000,
                "forced_returns": forced}

    fixed_rows = sweep(grid(depth=[0, 1, 2, 4, 8]), eval_depth)
    # match the summary table's column order (depth first)
    rows.extend(
        {"depth": r["depth"], "network_cost": r["network_cost"],
         "migrated_kbit": r["migrated_kbit"], "forced_returns": r["forced_returns"]}
        for r in fixed_rows
    )
    return rows


@pytest.mark.parametrize("kernel", ["dot", "reduce", "hist"])
def test_stack_depth_sweep(benchmark, bench_cost, stack_traces, kernel):
    mt, placement = stack_traces[kernel]
    rows = benchmark.pedantic(
        _depth_sweep, args=(mt, placement, bench_cost), rounds=1, iterations=1
    )
    emit(f"ex-stack [{kernel}]: optimal vs fixed migration depths", format_table(rows))
    opt = rows[0]["network_cost"]
    for row in rows[1:]:
        assert opt <= row["network_cost"] + 1e-6


def test_stack_context_vs_full_context_bits(benchmark, bench_cost, stack_traces):
    """§4 headline: stack-EM² migrated bits << register-file EM² bits."""
    mt, placement = stack_traces["reduce"]

    def measure():
        stack_bits = 0
        migrations = 0
        for t, tr in enumerate(mt.threads):
            homes = placement.home_of(tr["addr"])
            res = optimal_stack_depths(
                homes, tr["spop"], tr["spush"], t, bench_cost, K
            )
            stack_bits += res.migrated_bits
            migrations += res.migrations
        full_bits = migrations * bench_cost.config.context.full_context_bits
        return stack_bits, full_bits, migrations

    stack_bits, full_bits, migrations = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    emit(
        "ex-stack: context bits moved (same migration count)",
        format_table(
            [
                {"architecture": "stack-EM2 (optimal depths)",
                 "kbit": stack_bits / 1000, "migrations": migrations},
                {"architecture": "EM2 (full register file)",
                 "kbit": full_bits / 1000, "migrations": migrations},
            ]
        ),
    )
    if migrations:
        assert stack_bits < 0.5 * full_bits


def test_behavioral_stack_em2_vs_register_em2(benchmark):
    """§4 behaviorally: same workload, same protocol machinery, stack
    contexts cut migration traffic by the context-size ratio, including
    forced-return overheads."""
    from repro.arch.config import small_test_config
    from repro.core.em2 import EM2Machine
    from repro.core.stack_em2 import FixedDepth, NeedBasedDepth, StackEM2Machine
    from repro.placement import first_touch

    cfg = small_test_config(num_cores=8, guest_contexts=4)
    mt = stack_workload("reduce", num_threads=8, n=40, shared_fraction=0.75)
    pl = first_touch(mt, 8)

    def run_all():
        rows = []
        reg = EM2Machine(mt, pl, cfg)
        reg.run()
        rows.append(
            {
                "machine": "EM2 (register file)",
                "completion": reg.completion_time,
                "migration_flits": reg.network.stats.counters["flits.MIGRATION"],
                "forced_returns": 0,
            }
        )
        for label, scheme in (
            ("stack-EM2 fixed(4)", FixedDepth(4)),
            ("stack-EM2 need-based", NeedBasedDepth(mt, lookahead=8)),
        ):
            m = StackEM2Machine(mt, pl, cfg, scheme, window=8)
            m.run()
            r = m.results()
            rows.append(
                {
                    "machine": label,
                    "completion": m.completion_time,
                    "migration_flits": m.network.stats.counters["flits.MIGRATION"],
                    "forced_returns": r["underflow_returns"] + r["overflow_returns"],
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ex-stack: behavioral stack-EM2 vs register-file EM2", format_table(rows))
    by = {r["machine"]: r for r in rows}
    for label in ("stack-EM2 fixed(4)", "stack-EM2 need-based"):
        assert by[label]["migration_flits"] < by["EM2 (register file)"]["migration_flits"]


def test_stack_depths_on_annotated_ocean(benchmark, bench_cost):
    """The DP also runs on stack-annotated register traces (DESIGN.md §1)."""
    mt = make_workload("ocean", num_threads=16, grid_n=66, iterations=1)
    placement = cached_first_touch(mt, 16)

    def run():
        tr = annotate_stack_activity(mt.threads[3], max_depth=6, seed=0)
        homes = placement.home_of(tr["addr"])
        return optimal_stack_depths(homes, tr["spop"], tr["spush"], 3, bench_cost, K)

    res = benchmark(run)
    assert res.migrations > 0
    assert res.total_cost > 0
