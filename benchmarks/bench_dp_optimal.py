"""Experiment ex-dp: the optimal offline decision DP (§3).

Two things the paper claims about the algorithm itself:

* it computes the optimal migrate-vs-RA sequence from a trace + data
  placement (we report optimal cost vs the static extremes);
* it runs in O(N * P^2) time — our single-home formulation is O(N * P);
  the scaling sweep measures runtime vs N and P and the bench table
  shows time/N/P ratios staying flat.
"""

import time

import numpy as np
import pytest

from conftest import cached_first_touch, cached_workload, emit
from repro.analysis.reports import format_table
from repro.analysis.sweep import grid, sweep
from repro.arch.config import SystemConfig
from repro.core.costs import CostModel
from repro.core.decision import AlwaysMigrate, NeverMigrate
from repro.core.decision.optimal import optimal_cost, optimal_decisions
from repro.core.evaluation import evaluate_scheme


@pytest.fixture(scope="module")
def pingpong16():
    trace = cached_workload("pingpong", num_threads=16, rounds=128, run=4)
    return trace, cached_first_touch(trace, 16)


def test_dp_optimal_vs_static_extremes(benchmark, bench_cost, pingpong16):
    trace, placement = pingpong16

    def run_dp():
        total = 0.0
        migs = ras = 0
        for t, tr in enumerate(trace.threads):
            homes = placement.home_of(tr["addr"])
            res = optimal_decisions(homes, tr["write"], t, bench_cost)
            total += res.total_cost
            migs += res.num_migrations
            ras += res.num_remote_accesses
        return total, migs, ras

    opt_total, migs, ras = benchmark(run_dp)
    em2 = evaluate_scheme(trace, placement, AlwaysMigrate(), bench_cost)
    ra = evaluate_scheme(trace, placement, NeverMigrate(), bench_cost)
    rows = [
        {"policy": "optimal (DP)", "network_cost": opt_total, "migrations": migs,
         "remote_accesses": ras},
        {"policy": "always-migrate (EM2)", "network_cost": em2.total_cost,
         "migrations": em2.migrations, "remote_accesses": em2.remote_accesses},
        {"policy": "never-migrate (RA-only)", "network_cost": ra.total_cost,
         "migrations": ra.migrations, "remote_accesses": ra.remote_accesses},
    ]
    emit("ex-dp: optimal decision DP vs static extremes (pingpong, 16 cores)",
         format_table(rows))
    assert opt_total <= min(em2.total_cost, ra.total_cost) + 1e-6
    assert migs > 0 and ras > 0  # a true hybrid wins here


def test_dp_runtime_scaling(benchmark, bench_workers):
    """Measure T(N, P); report T / (N*P) — flat ratios mean O(N*P)."""

    def eval_point(P, N):
        rng = np.random.default_rng(P * 100003 + N)
        cm = CostModel(SystemConfig(num_cores=P))
        homes = rng.integers(0, P, N)
        writes = rng.random(N) < 0.3
        t0 = time.perf_counter()
        optimal_cost(homes, writes, 0, cm)
        dt = time.perf_counter() - t0
        return {"seconds": dt,
                "ns_per_NP": dt / (N * P) * 1e9,
                "ns_per_NP2": dt / (N * P * P) * 1e9}

    def run_sweep():
        return sweep(
            grid(P=[16, 64, 256], N=[2000, 8000]), eval_point, workers=bench_workers
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("ex-dp: DP runtime scaling (paper bound O(N*P^2); ours O(N*P))",
         format_table(rows))
    # doubling checks are noisy in CI; assert the gross property instead:
    # runtime grows far slower than N*P^2 (i.e. ns_per_NP2 shrinks with P)
    by_p = {r["P"]: r["ns_per_NP2"] for r in rows if r["N"] == 8000}
    assert by_p[256] < by_p[16]


def test_dp_on_splash_like_workload(benchmark, bench_cost):
    """Optimal vs extremes on ocean (the paper's Figure 2 workload)."""
    trace = cached_workload("ocean", num_threads=16, grid_n=98, iterations=1)
    placement = cached_first_touch(trace, 16)

    def one_thread():
        tr = trace.threads[5]
        homes = placement.home_of(tr["addr"])
        return optimal_decisions(homes, tr["write"], 5, bench_cost)

    res = benchmark(one_thread)
    tr = trace.threads[5]
    homes = placement.home_of(tr["addr"])
    em2_cost, *_ = _eval(homes, tr["write"], 5, AlwaysMigrate(), bench_cost)
    ra_cost, *_ = _eval(homes, tr["write"], 5, NeverMigrate(), bench_cost)
    emit(
        "ex-dp: ocean thread 5",
        format_table(
            [
                {"policy": "optimal", "cost": res.total_cost},
                {"policy": "EM2", "cost": em2_cost},
                {"policy": "RA-only", "cost": ra_cost},
            ]
        ),
    )
    assert res.total_cost <= min(em2_cost, ra_cost) + 1e-6


def _eval(homes, writes, start, scheme, cm):
    from repro.core.evaluation import evaluate_thread

    return evaluate_thread(homes, writes, start, scheme, cm)
