"""Unit tests for farm configuration and the auth primitives (ISSUE 10).

Covers the knobs the CLI exposes (``--heartbeat``/``--worker-timeout``/
``--auth-token``), their :class:`ConfigError` validation, the
``farm=`` mapping form, and the HMAC challenge-response helpers whose
domain separation keeps one side's proof from being reflected back.
"""

import pytest

from repro.analysis.farm import (
    HEARTBEAT_INTERVAL,
    LIVENESS_TIMEOUT,
    PROTOCOL_VERSION,
    FarmCoordinator,
    _check_intervals,
    auth_mac,
    check_mac,
    normalize_farm,
)
from repro.analysis.worker import WorkerServer
from repro.util.errors import ConfigError


# ------------------------------------------------------------ farm mapping
def test_normalize_farm_accepts_list():
    assert normalize_farm(["a:1", "b:2"]) == {"addrs": ["a:1", "b:2"]}


def test_normalize_farm_accepts_mapping():
    cfg = normalize_farm(
        {"addrs": ["a:1"], "auth_token": "s", "heartbeat": 0.5, "liveness": 3.0}
    )
    assert cfg["addrs"] == ["a:1"]
    assert cfg["auth_token"] == "s"


def test_normalize_farm_none_and_empty():
    assert normalize_farm(None) is None
    assert normalize_farm([]) is None
    assert normalize_farm({}) is None


def test_normalize_farm_unknown_key():
    with pytest.raises(ConfigError, match="unknown farm option"):
        normalize_farm({"addrs": ["a:1"], "hartbeat": 0.5})


# --------------------------------------------------------------- intervals
def test_intervals_validated():
    assert _check_intervals(1.0, 15.0) == (1.0, 15.0)
    with pytest.raises(ConfigError, match="heartbeat"):
        _check_intervals(0, 15.0)
    with pytest.raises(ConfigError, match="liveness"):
        _check_intervals(1.0, -1)
    # a liveness ceiling at or under the ping cadence declares every
    # worker dead between two pings
    with pytest.raises(ConfigError, match="exceed"):
        _check_intervals(2.0, 2.0)


def test_coordinator_validates_intervals_and_reconnect():
    with pytest.raises(ConfigError, match="exceed"):
        FarmCoordinator([{}], ["a:1"], heartbeat=5.0, liveness=1.0)
    with pytest.raises(ConfigError, match="reconnect"):
        FarmCoordinator([{}], ["a:1"], reconnect=-1)
    coord = FarmCoordinator([{}], ["a:1"], heartbeat=0.5, liveness=4.0)
    assert (coord.heartbeat, coord.liveness) == (0.5, 4.0)
    assert (HEARTBEAT_INTERVAL, LIVENESS_TIMEOUT) == (1.0, 15.0)  # defaults


def test_worker_validates_its_knobs():
    with pytest.raises(ConfigError, match="idle timeout"):
        WorkerServer(idle_timeout=0)
    with pytest.raises(ConfigError, match="poll interval"):
        WorkerServer(poll_interval=-1)
    with pytest.raises(ConfigError, match="auth token"):
        WorkerServer(auth_token="")


# ------------------------------------------------------------------- auth
def test_auth_mac_roundtrip():
    mac = auth_mac("secret", "worker", "nonce123")
    assert check_mac("secret", "worker", "nonce123", mac)
    assert not check_mac("other", "worker", "nonce123", mac)
    assert not check_mac("secret", "worker", "nonce124", mac)
    assert not check_mac("secret", "worker", "nonce123", mac + "00")
    assert not check_mac("secret", "worker", "nonce123", None)
    assert not check_mac("secret", "worker", "nonce123", 12345)


def test_auth_mac_domain_separation():
    """The two directions' proofs must differ for the same token and
    nonce, or a worker could reflect the coordinator's own proof."""
    assert auth_mac("t", "coordinator", "n") != auth_mac("t", "worker", "n")


def test_auth_mac_binds_protocol_version(monkeypatch):
    import repro.analysis.farm as farm

    before = auth_mac("t", "worker", "n")
    monkeypatch.setattr(farm, "PROTOCOL_VERSION", PROTOCOL_VERSION + 1)
    assert farm.auth_mac("t", "worker", "n") != before
