"""WATER-like molecular dynamics workload (SPLASH-2 WATER stand-in).

WATER-NSQUARED: each thread owns a block of molecules (position,
velocity, force arrays). Per timestep:

* **intra-molecular update** over owned molecules — purely local runs;
* **pairwise force computation** with a cutoff: the thread reads a few
  words of a subset of other threads' molecules and accumulates force
  contributions into those molecules' shared force entries
  (read-modify-write) — short remote runs (≈2-6 accesses) spread over
  a neighbourhood of cores;
* a barrier-protected **global virial/energy accumulation** (tiny
  shared region, heavily contended).

WATER has a much lower shared-access fraction than OCEAN/FFT, so it is
the "mostly-private" point in the workload spectrum.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError

WORDS_PER_MOL = 8  # pos(2) vel(2) force(2) misc(2) — abstracted


@WORKLOADS.register("water", "WATER-like molecular dynamics workload (SPLASH-2 stand-in)")
class WaterGenerator(WorkloadGenerator):
    name = "water"

    def __init__(
        self,
        num_threads: int = 64,
        molecules_per_thread: int = 64,
        timesteps: int = 3,
        interaction_fraction: float = 0.15,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if molecules_per_thread <= 0 or timesteps <= 0:
            raise ConfigError("molecules_per_thread and timesteps must be positive")
        if not (0.0 < interaction_fraction <= 1.0):
            raise ConfigError("interaction_fraction must be in (0, 1]")
        self.mpt = molecules_per_thread
        self.timesteps = timesteps
        self.frac = interaction_fraction
        total = num_threads * molecules_per_thread * WORDS_PER_MOL
        self.mol_base = self.space.shared_region("molecules", total)
        self.global_base = self.space.shared_region("virial", 16)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "molecules_per_thread": self.mpt,
            "timesteps": self.timesteps,
            "interaction_fraction": self.frac,
        }

    def mol_addr(self, thread: int, mol: int) -> int:
        return self.mol_base + (thread * self.mpt + mol) * WORDS_PER_MOL

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(self.mpt * WORDS_PER_MOL, dtype=np.int64)
        b.emit(self.mol_addr(thread, 0) + words, writes=1, icounts=1)

    def _local_update(self, thread: int, b: TraceBuilder) -> None:
        # per molecule: read all words, then write back the first four —
        # one whole-phase column over the thread's molecule block
        w = np.arange(WORDS_PER_MOL, dtype=np.int64)
        tpl = np.concatenate([w, w[:4]])
        bases = self.mol_addr(thread, 0) + np.arange(self.mpt, dtype=np.int64) * (
            WORDS_PER_MOL
        )
        seq = (bases[:, None] + tpl[None, :]).ravel()
        writes = np.tile(
            np.concatenate(
                [np.zeros(WORDS_PER_MOL, dtype=np.uint8), np.ones(4, dtype=np.uint8)]
            ),
            self.mpt,
        )
        b.emit(seq, writes=writes, icounts=6)

    def _pairwise_phase(self, thread: int, b: TraceBuilder) -> None:
        n_pairs = max(int(self.mpt * self.num_threads * self.frac / 8), 1)
        peers = (thread + 1 + self.rng.integers(0, max(self.num_threads - 1, 1), n_pairs)) % (
            self.num_threads
        )
        mols = self.rng.integers(0, self.mpt, n_pairs)
        keep = peers != thread
        peers, mols = peers[keep].astype(np.int64), mols[keep].astype(np.int64)
        if peers.size == 0:
            return
        # per pair: read peer position (2 words), RMW peer force, then
        # RMW our own molecule's force word — emitted as one column
        rbase = self.mol_base + (peers * self.mpt + mols) * WORDS_PER_MOL
        own = self.mol_base + (thread * self.mpt + mols % self.mpt) * WORDS_PER_MOL
        seq = np.stack(
            [rbase, rbase + 1, rbase + 4, rbase + 4, own + 4, own + 4], axis=-1
        ).ravel()
        writes = np.tile(np.array([0, 0, 0, 1, 0, 1], dtype=np.uint8), peers.size)
        icounts = np.tile(np.array([8, 8, 8, 8, 4, 4], dtype=np.uint16), peers.size)
        b.emit(seq, writes=writes, icounts=icounts)

    def _global_accumulate(self, thread: int, b: TraceBuilder) -> None:
        cell = self.global_base + (thread % 16)
        b.emit_one(cell, write=False, icount=2)
        b.emit_one(cell, write=True, icount=0)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        for _ in range(self.timesteps):
            self._local_update(thread, b)
            self._pairwise_phase(thread, b)
            self._global_accumulate(thread, b)
