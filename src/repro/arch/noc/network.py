"""Message-level NoC simulator with optional link contention."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from repro.arch.config import NocConfig
from repro.arch.noc.packet import Message, VirtualNetwork
from repro.arch.topology import Topology
from repro.sim.engine import Engine
from repro.sim.stats import StatSet


class Network:
    """Transports :class:`Message` objects across a :class:`Topology`.

    Latency model (per message of F flits over H hops):

    * zero-load: ``H * (router_latency + link_latency) + (F - 1)``
      — the head flit pays per-hop pipeline latency, the body flits
      stream behind it (wormhole pipelining).
    * with ``contention=True``, each (directed link, VC) is a resource
      occupied for F cycles per traversal; a message queues behind the
      previous occupant. This is a deliberately simple store-and-
      forward-of-trains approximation — adequate because the paper's
      claims concern serialization (context size) and hop distance, not
      router microarchitecture.

    Statistics: per-vnet message counts, flit-hops (the traffic/energy
    proxy used by the energy model), and delivered-latency accumulators.

    ``send`` is on the per-access path of every behavioral machine, so
    all loop-invariant work is hoisted into ``__init__``: hop counts
    come from the topology's :attr:`~Topology.hop_table` scalar path
    (resident rows for hot senders, O(1) coordinate math for cold ones),
    per-vnet counter keys are resolved once into integer-bump cells,
    flit counts are memoized by :meth:`NocConfig.message_flits`, and
    the per-hop latency constant is folded.
    """

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        config: NocConfig,
        injector=None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.config = config
        self.injector = injector
        if injector is not None:
            injector.bind_topology(topology)
        self.stats = StatSet("noc")
        # (src, dst, vc) -> earliest free time, only touched in contention mode
        self._link_free: dict[tuple[int, int, int], float] = defaultdict(float)
        self._hops = topology.hop_table
        self._per_hop = config.router_latency + config.link_latency
        counters = self.stats.counters
        self._vnet_cells = {
            vnet: (
                counters.cell(f"messages.{vnet.name}"),
                counters.cell(f"flits.{vnet.name}"),
            )
            for vnet in VirtualNetwork
        }
        self._flit_hops_cell = counters.cell("flit_hops")
        # delivery LatencyStats stay lazily created (first delivery on a
        # vnet), so as_dict() keys match the unoptimized behaviour
        self._delivery_stats: dict[VirtualNetwork, object] = {}

    # ------------------------------------------------------------------
    def zero_load_latency(self, src: int, dst: int, payload_bits: int) -> float:
        """Latency ignoring contention; also used by the analytical cost model."""
        hops = self._hops.hop(src, dst)
        flits = self.config.message_flits(payload_bits)
        return hops * self._per_hop + (flits - 1)

    # ------------------------------------------------------------------
    def send(
        self,
        msg: Message,
        on_deliver: Callable[[Message], None],
        on_drop: Callable[[Message], None] | None = None,
    ) -> Message:
        """Inject ``msg`` now; schedule ``on_deliver(msg)`` at arrival.

        ``on_drop`` (fault plane only) fires synchronously when the
        injector loses this copy in flight — the sender's recovery
        protocol uses it as an ideal failure detector and schedules its
        retry a timeout later. Without an injector it never fires.
        """
        now = self.engine.now
        msg.inject_time = now
        flits = self.config.message_flits(msg.payload_bits)
        hops = self._hops.hop(msg.src, msg.dst)

        msg_cell, flit_cell = self._vnet_cells[msg.vnet]
        msg_cell.n += 1
        flit_cell.n += flits
        self._flit_hops_cell.n += flits * (hops if hops > 0 else 1)

        if msg.src == msg.dst:
            # Loopback: still pays serialization into/out of the NI.
            arrival = now + (flits - 1) + 1
        elif not self.config.contention:
            arrival = now + hops * self._per_hop + (flits - 1)
        else:
            arrival = self._contended_arrival(msg, flits)

        dup_arrival = None
        injector = self.injector
        if injector is not None and msg.src != msg.dst:
            action, extra = injector.on_message(msg.src, msg.dst, now)
            if action == "drop":
                # Lost in flight: traffic was spent, nothing arrives.
                # The sender's timeout/retry protocol must recover.
                if on_drop is not None:
                    on_drop(msg)
                return msg
            if action == "delay":
                arrival += extra
            elif action == "dup":
                # The duplicate pays its own traversal and traffic; the
                # receiver's dedup logic must suppress it.
                msg_cell.n += 1
                flit_cell.n += flits
                self._flit_hops_cell.n += flits * hops
                dup_arrival = (
                    self._contended_arrival(msg, flits)
                    if self.config.contention
                    else arrival
                )

        delivery = self._delivery_stats.get(msg.vnet)
        if delivery is None:
            delivery = self._delivery_stats[msg.vnet] = self.stats.latency(
                f"delivery.{msg.vnet.name}"
            )

        def _deliver() -> None:
            msg.deliver_time = self.engine.now
            delivery.add(msg.latency)
            on_deliver(msg)

        self.engine.schedule_at(arrival, _deliver)
        if dup_arrival is not None:
            self.engine.schedule_at(dup_arrival, _deliver)
        return msg

    def send_fast(self, msg: Message, on_deliver: Callable[[Message], None]) -> Message:
        """Contention-free, injector-free :meth:`send` (same accounting).

        The classic path allocates one ``_deliver`` closure per message;
        on migration-heavy 1024+-core runs that allocation (plus the
        untaken injector/contention branches) dominated the transport
        profile. This variant schedules the bound
        :meth:`_finish_delivery` with the message as an event argument
        instead. Callers bind it only when ``config.contention`` is off
        and no fault injector is attached; arrival times, counters, and
        delivery statistics are bit-identical to :meth:`send`.
        """
        now = self.engine.now
        msg.inject_time = now
        flits = self.config.message_flits(msg.payload_bits)
        msg_cell, flit_cell = self._vnet_cells[msg.vnet]
        msg_cell.n += 1
        flit_cell.n += flits
        if msg.src == msg.dst:
            # Loopback: still pays serialization into/out of the NI.
            self._flit_hops_cell.n += flits
            arrival = now + (flits - 1) + 1
        else:
            hops = self._hops.hop(msg.src, msg.dst)
            self._flit_hops_cell.n += flits * hops
            arrival = now + hops * self._per_hop + (flits - 1)
        delivery = self._delivery_stats.get(msg.vnet)
        if delivery is None:
            delivery = self._delivery_stats[msg.vnet] = self.stats.latency(
                f"delivery.{msg.vnet.name}"
            )
        self.engine.schedule_at(arrival, self._finish_delivery, msg, delivery, on_deliver)
        return msg

    def _finish_delivery(self, msg: Message, delivery, on_deliver) -> None:
        msg.deliver_time = self.engine.now
        delivery.add(msg.latency)
        on_deliver(msg)

    def _contended_arrival(self, msg: Message, flits: int) -> float:
        """Walk the route reserving each (link, VC) for ``flits`` cycles."""
        per_hop = self._per_hop
        route = self.topology.route_cached(msg.src, msg.dst)
        vc = int(msg.vnet) % self.config.num_virtual_channels
        link_free = self._link_free
        queueing = self.stats.latency("queueing")
        head = self.engine.now
        prev = route[0]
        for v in route[1:]:
            key = (prev, v, vc)
            start = max(head, link_free[key])
            queued = start - head
            if queued > 0:
                queueing.add(queued)
            link_free[key] = start + flits
            head = start + per_hop
            prev = v
        return head + (flits - 1)

    # ------------------------------------------------------------------
    def flit_hops(self) -> int:
        """Total flit-hops transported so far (energy/traffic proxy)."""
        return self.stats.counters["flit_hops"]

    def message_count(self, vnet: VirtualNetwork | None = None) -> int:
        if vnet is None:
            return sum(
                v for k, v in self.stats.counters.as_dict().items() if k.startswith("messages.")
            )
        return self.stats.counters[f"messages.{vnet.name}"]
