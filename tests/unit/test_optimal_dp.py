"""Unit tests for the optimal migrate-vs-RA dynamic program (§3).

The key evidence is an independent brute-force reference: a plain
recursive cost minimizer written in a completely different style from
the vectorized DP. They must agree exactly on many small random
instances, and the DP must lower-bound every heuristic scheme.
"""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import (
    AlwaysMigrate,
    DistanceThreshold,
    HistoryRunLength,
    NeverMigrate,
    RandomScheme,
)
from repro.core.decision.base import Decision
from repro.core.decision.optimal import decision_cost, optimal_cost, optimal_decisions
from repro.core.evaluation import evaluate_thread
from repro.util.errors import ConfigError


def brute_force_cost(homes, writes, start, cm):
    """Exponential-time reference: explicit recursion, no vectorization."""
    mig, ra_r, ra_w = cm.migration, cm.remote_read, cm.remote_write

    def rec(k, cur):
        if k == len(homes):
            return 0.0
        h = homes[k]
        w = writes[k]
        if h == cur:
            return rec(k + 1, cur)
        ra = (ra_w if w else ra_r)[cur, h]
        stay = ra + rec(k + 1, cur)
        move = mig[cur, h] + rec(k + 1, h)
        return min(stay, move)

    return rec(0, start)


@pytest.fixture
def cm():
    return CostModel(small_test_config(num_cores=4))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force_random_traces(self, cm, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 12))
        homes = rng.integers(0, 4, n)
        writes = rng.integers(0, 2, n).astype(bool)
        start = int(rng.integers(0, 4))
        expect = brute_force_cost(homes, writes, start, cm)
        got = optimal_cost(homes, writes, start, cm)
        assert got == pytest.approx(expect)

    def test_matches_brute_force_16_cores(self):
        cm = CostModel(small_test_config(num_cores=16))
        rng = np.random.default_rng(99)
        homes = rng.integers(0, 16, 10)
        writes = rng.integers(0, 2, 10).astype(bool)
        assert optimal_cost(homes, writes, 0, cm) == pytest.approx(
            brute_force_cost(homes, writes, 0, cm)
        )


class TestReconstruction:
    def test_replay_cost_matches(self, cm):
        rng = np.random.default_rng(7)
        homes = rng.integers(0, 4, 40)
        writes = rng.integers(0, 2, 40).astype(bool)
        res = optimal_decisions(homes, writes, 2, cm)
        assert decision_cost(homes, writes, res.decisions, 2, cm) == pytest.approx(
            res.total_cost
        )

    def test_exec_cores_match_decisions(self, cm):
        rng = np.random.default_rng(8)
        homes = rng.integers(0, 4, 30)
        writes = np.zeros(30, dtype=bool)
        res = optimal_decisions(homes, writes, 0, cm)
        cur = 0
        for k in range(30):
            d = res.decisions[k]
            if d == Decision.MIGRATE:
                cur = homes[k]
                assert res.cores[k] == homes[k]
            elif d == Decision.LOCAL:
                assert cur == homes[k]
                assert res.cores[k] == homes[k]
            else:
                assert cur != homes[k]
                assert res.cores[k] == cur
        assert res.end_core == cur

    def test_counts_partition_accesses(self, cm):
        rng = np.random.default_rng(5)
        homes = rng.integers(0, 4, 25)
        res = optimal_decisions(homes, np.zeros(25, dtype=bool), 0, cm)
        assert res.num_migrations + res.num_remote_accesses + res.num_local == 25


class TestDominance:
    @pytest.mark.parametrize(
        "scheme_factory",
        [
            AlwaysMigrate,
            NeverMigrate,
            lambda: RandomScheme(p=0.3, seed=1),
            lambda: HistoryRunLength(threshold=3.0),
        ],
    )
    def test_dp_lower_bounds_schemes(self, cm, scheme_factory):
        rng = np.random.default_rng(11)
        homes = rng.integers(0, 4, 200)
        writes = rng.integers(0, 2, 200).astype(bool)
        opt = optimal_cost(homes, writes, 0, cm)
        cost, *_ = evaluate_thread(homes, writes, 0, scheme_factory(), cm)
        assert opt <= cost + 1e-9

    def test_dp_lower_bounds_distance_thresholds(self, cm):
        rng = np.random.default_rng(12)
        homes = rng.integers(0, 4, 150)
        writes = np.zeros(150, dtype=bool)
        opt = optimal_cost(homes, writes, 0, cm)
        for th in (0, 1, 2, 3):
            s = DistanceThreshold(cm.topology.distance_matrix, th)
            cost, *_ = evaluate_thread(homes, writes, 0, s, cm)
            assert opt <= cost + 1e-9


class TestKnownCases:
    def test_all_local_costs_zero(self, cm):
        homes = np.full(10, 2)
        assert optimal_cost(homes, np.zeros(10, bool), 2, cm) == 0.0

    def test_single_remote_access_prefers_ra(self, cm):
        # one access at a far core, then back to local: RA wins (its
        # round trip is cheaper than 2 migrations of a full context)
        homes = np.array([3, 0, 0, 0])
        res = optimal_decisions(homes, np.zeros(4, bool), 0, cm)
        assert res.decisions[0] == Decision.REMOTE
        assert res.total_cost == pytest.approx(cm.remote_read[0, 3])

    def test_long_run_prefers_migration(self, cm):
        homes = np.array([3] * 50)
        res = optimal_decisions(homes, np.zeros(50, bool), 0, cm)
        assert res.decisions[0] == Decision.MIGRATE
        assert (res.decisions[1:] == Decision.LOCAL).all()
        assert res.total_cost == pytest.approx(cm.migration[0, 3])

    def test_empty_trace(self, cm):
        res = optimal_decisions(np.zeros(0, np.int64), np.zeros(0, bool), 1, cm)
        assert res.total_cost == 0.0
        assert res.end_core == 1

    def test_out_of_range_home_rejected(self, cm):
        with pytest.raises(ConfigError):
            optimal_cost(np.array([9]), np.array([False]), 0, cm)

    def test_out_of_range_start_rejected(self, cm):
        with pytest.raises(ConfigError):
            optimal_cost(np.array([0]), np.array([False]), 7, cm)


class TestDecisionCost:
    def test_local_requires_residence(self, cm):
        homes = np.array([3])
        with pytest.raises(ConfigError, match="LOCAL decision"):
            decision_cost(homes, np.array([False]), np.array([Decision.LOCAL]), 0, cm)

    def test_unknown_decision_rejected(self, cm):
        with pytest.raises(ConfigError, match="unknown decision"):
            decision_cost(np.array([1]), np.array([False]), np.array([9]), 0, cm)

    def test_migrate_then_local(self, cm):
        homes = np.array([2, 2])
        d = np.array([Decision.MIGRATE, Decision.LOCAL])
        assert decision_cost(homes, np.zeros(2, bool), d, 0, cm) == pytest.approx(
            cm.migration[0, 2]
        )


class TestDecisionCostVectorized:
    """The vectorized decision_cost must match a scalar reference walk
    on random valid decision sequences, and report the earliest error
    on invalid ones."""

    @staticmethod
    def _scalar_reference(homes, writes, decisions, start, cm):
        cur = start
        total = 0.0
        for h, w, d in zip(homes, writes, decisions):
            if d == Decision.MIGRATE:
                total += cm.migration[cur, h]
                cur = h
            elif d == Decision.REMOTE:
                total += (cm.remote_write if w else cm.remote_read)[cur, h]
            else:
                assert cur == h
        return total

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scalar_reference(self, cm, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 120))
        homes = rng.integers(0, 4, n)
        writes = rng.random(n) < 0.4
        cur = 0
        decisions = np.empty(n, dtype=np.int64)
        for k in range(n):  # build a *valid* random sequence
            if homes[k] == cur and rng.random() < 0.5:
                decisions[k] = Decision.LOCAL
            elif rng.random() < 0.5:
                decisions[k] = Decision.MIGRATE
                cur = homes[k]
            else:
                decisions[k] = Decision.REMOTE
        expect = self._scalar_reference(homes, writes, decisions, 0, cm)
        assert decision_cost(homes, writes, decisions, 0, cm) == pytest.approx(expect)

    def test_earliest_error_wins(self, cm):
        # access 1 is an invalid LOCAL, access 2 an unknown decision:
        # the report must name access 1
        homes = np.array([0, 3, 0])
        decisions = np.array([Decision.LOCAL, Decision.LOCAL, 9])
        with pytest.raises(ConfigError, match="access 1"):
            decision_cost(homes, np.zeros(3, bool), decisions, 0, cm)

    def test_local_valid_after_migration(self, cm):
        homes = np.array([2, 2, 1, 1])
        d = np.array(
            [Decision.MIGRATE, Decision.LOCAL, Decision.MIGRATE, Decision.LOCAL]
        )
        expect = cm.migration[0, 2] + cm.migration[2, 1]
        assert decision_cost(homes, np.zeros(4, bool), d, 0, cm) == pytest.approx(expect)
