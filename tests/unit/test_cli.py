"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_params, main
from repro.util.errors import ReproError


class TestParseParams:
    def test_int_float_str(self):
        out = _parse_params(["a=3", "b=2.5", "c=hello"])
        assert out == {"a": 3, "b": 2.5, "c": "hello"}

    def test_malformed_rejected(self):
        with pytest.raises(ReproError):
            _parse_params(["nokey"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "workloads:" in out and "ocean" in out

    def test_profile_flag(self, capsys):
        """--profile wraps the command in cProfile and prints a stats
        table (to stderr) without changing the command's output or rc."""
        assert main(["--profile", "5", "info"]) == 0
        captured = capsys.readouterr()
        assert "workloads:" in captured.out
        assert "cumulative" in captured.err
        assert "function calls" in captured.err

    def test_fig2_small(self, capsys):
        rc = main(
            ["fig2", "--threads", "4", "--cores", "4", "--grid", "20",
             "--iterations", "1", "--rows", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "run_length" in out
        assert "fraction at run length 1" in out

    def test_workload_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "w.npz"
        rc = main(
            ["workload", "--workload", "private", "--threads", "2",
             "--param", "accesses_per_thread=32", "--out", str(out_file)]
        )
        assert rc == 0
        assert out_file.exists()
        # and evaluate the saved trace
        rc = main(
            ["evaluate", "--trace", str(out_file), "--cores", "4",
             "--scheme", "always-migrate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "always-migrate" in out

    def test_evaluate_all_schemes(self, capsys):
        rc = main(
            ["evaluate", "--workload", "pingpong", "--threads", "4",
             "--cores", "4", "--param", "rounds=8", "--scheme", "all"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("always-migrate", "never-migrate", "history"):
            assert name in out

    def test_optimal_summary(self, capsys):
        rc = main(
            ["optimal", "--workload", "pingpong", "--threads", "4",
             "--cores", "4", "--param", "rounds=8", "--thread", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal_cost" in out

    def test_shootout_normalizes_to_optimal(self, capsys):
        rc = main(
            ["shootout", "--workload", "pingpong", "--threads", "4",
             "--cores", "4", "--param", "rounds=8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal (DP)" in out
        assert "x_optimal" in out

    def test_error_paths_return_nonzero(self, capsys):
        rc = main(
            ["evaluate", "--workload", "pingpong", "--threads", "3",
             "--cores", "4"]
        )  # pingpong needs even threads -> ReproError -> exit 2
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_stackdepth_command(self, capsys):
        rc = main(
            ["stackdepth", "--kernel", "reduce", "--threads", "4",
             "--cores", "4", "--n", "16", "--max-depth", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal" in out and "migrated_kbit" in out

    def test_dynamic_command(self, capsys):
        rc = main(
            ["dynamic", "--workload", "uniform", "--threads", "4",
             "--cores", "4", "--param", "accesses_per_thread=64",
             "--epochs", "2", "--oracle"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "gain" in out

    def test_evaluate_csv_output(self, capsys):
        rc = main(
            ["evaluate", "--workload", "private", "--threads", "2",
             "--cores", "4", "--param", "accesses_per_thread=16",
             "--scheme", "never-migrate", "--csv"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("scheme,")
        assert "never-migrate" in out

    def test_costaware_scheme_available(self, capsys):
        rc = main(
            ["evaluate", "--workload", "pingpong", "--threads", "4",
             "--cores", "4", "--param", "rounds=8", "--scheme", "costaware"]
        )
        assert rc == 0
        assert "costaware" in capsys.readouterr().out

    def test_striped_placement_option(self, capsys):
        rc = main(
            ["evaluate", "--workload", "private", "--threads", "2",
             "--cores", "4", "--placement", "striped",
             "--param", "accesses_per_thread=16", "--scheme", "never-migrate"]
        )
        assert rc == 0


class TestRegistryErrors:
    """Unknown component names exit 2 with the registered options listed
    (sorted) — a ConfigError from the registry, not a bare KeyError."""

    def test_unknown_scheme_lists_options(self, capsys):
        from repro.registry import SCHEMES

        rc = main(
            ["evaluate", "--workload", "private", "--threads", "2",
             "--cores", "4", "--scheme", "hisstory"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown scheme 'hisstory'" in err
        assert ", ".join(SCHEMES.names()) in err

    def test_unknown_placement_lists_options(self, capsys):
        from repro.registry import PLACEMENTS

        rc = main(
            ["evaluate", "--workload", "private", "--threads", "2",
             "--cores", "4", "--placement", "round-robin"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown placement 'round-robin'" in err
        assert ", ".join(PLACEMENTS.names()) in err

    def test_unknown_workload_lists_options(self, capsys):
        from repro.registry import WORKLOADS

        rc = main(["evaluate", "--workload", "splash2-ocean", "--cores", "4"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown workload 'splash2-ocean'" in err
        assert ", ".join(WORKLOADS.names()) in err


class TestListCommand:
    def test_lists_every_registry_family(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for family in ("machines:", "schemes:", "placements:",
                       "workloads:", "topologies:"):
            assert family in out

    def test_entries_carry_descriptions(self, capsys):
        from repro.registry import ALL_REGISTRIES

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for registry in ALL_REGISTRIES.values():
            for entry in registry.items():
                assert entry.name in out
                assert entry.description  # non-empty one-liner
