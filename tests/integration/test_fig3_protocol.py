"""Figure 3 conformance: the life of a memory access under EM²-RA.

The hybrid adds a decision procedure ahead of the migration path and a
remote-op round trip:

    ... address cacheable in core A? no -> DECISION procedure
        -> migrate  (same as Figure 1, evictions included)
        -> send remote request to home core
             -> home performs access
             -> data (read) or ack (write) returns to core A
             -> core A continues execution

and requires the remote-access subnetwork to be disjoint from the
migration subnetworks (six virtual channels total, §3).
"""

import pytest

from repro.arch.config import small_test_config
from repro.arch.noc.deadlock import VC_PLAN_EM2RA, check_vc_plan
from repro.arch.noc.packet import VirtualNetwork
from repro.core.decision import AlwaysMigrate, Decision, DecisionScheme, NeverMigrate
from repro.core.em2ra import EM2RAMachine
from repro.placement import striped
from repro.trace.events import MultiTrace, make_trace


def _machine(threads, scheme, num_cores=4, guests=2):
    cfg = small_test_config(num_cores=num_cores, guest_contexts=guests)
    mt = MultiTrace(
        threads=[make_trace(a, writes=w, icounts=1) for a, w in threads],
    )
    return EM2RAMachine(mt, striped(num_cores, block_words=16), cfg, scheme=scheme)


class TestRemoteBranch:
    def test_read_gets_data_reply(self):
        m = _machine([([16], [0])], NeverMigrate())
        m.run()
        assert m.network.message_count(VirtualNetwork.RA_REQUEST) == 1
        assert m.network.message_count(VirtualNetwork.RA_REPLY) == 1
        # requester never moved; home performed the access
        assert m.threads[0].core == 0
        assert m.caches[1].l1.misses + m.caches[1].l1.hits == 1

    def test_write_gets_ack(self):
        m = _machine([([16], [1])], NeverMigrate())
        m.run()
        assert m.network.message_count(VirtualNetwork.RA_REPLY) == 1
        # the ack is smaller than a data reply: compare flit counts
        read = _machine([([16], [0])], NeverMigrate())
        read.run()
        assert (
            m.network.stats.counters["flits.RA_REQUEST"]
            >= read.network.stats.counters["flits.RA_REQUEST"]
        )

    def test_ra_subnetwork_disjoint_from_migration(self):
        check_vc_plan(VC_PLAN_EM2RA, available_vcs=6)
        mig = {VC_PLAN_EM2RA.vc_of[VirtualNetwork.MIGRATION],
               VC_PLAN_EM2RA.vc_of[VirtualNetwork.EVICTION]}
        ra = {VC_PLAN_EM2RA.vc_of[VirtualNetwork.RA_REQUEST],
              VC_PLAN_EM2RA.vc_of[VirtualNetwork.RA_REPLY]}
        assert mig.isdisjoint(ra)


class TestDecisionBranch:
    def test_migrate_decision_follows_fig1_path(self):
        m = _machine([([16], [0])], AlwaysMigrate())
        m.run()
        assert m.network.message_count(VirtualNetwork.MIGRATION) == 1
        assert m.network.message_count(VirtualNetwork.RA_REQUEST) == 0
        assert m.threads[0].core == 1

    def test_per_access_decision_consulted(self):
        """A scheme alternating REMOTE/MIGRATE must see both paths used."""

        class Alternating(DecisionScheme):
            name = "alternating"

            def __init__(self):
                self.flip = False

            def decide(self, current, home, addr, write):
                self.flip = not self.flip
                return Decision.MIGRATE if self.flip else Decision.REMOTE

            def clone(self):
                return Alternating()

        # alternate far-home accesses from a single thread
        m = _machine([([16, 0, 16, 0, 16], [0] * 5)], Alternating())
        m.run()
        assert m.network.message_count(VirtualNetwork.MIGRATION) >= 1
        assert m.network.message_count(VirtualNetwork.RA_REQUEST) >= 1

    def test_migration_branch_can_still_evict(self):
        m = _machine(
            [([0], [0]), ([1], [0]), ([1], [0]), ([1], [0])],
            AlwaysMigrate(),
            guests=1,
        )
        m.run()
        assert m.results()["evictions"] >= 1


class TestHybridInvariants:
    def test_ra_preserves_home_only_caching(self):
        m = _machine(
            [([16, 32, 0], [1, 0, 0]), ([32, 16, 48], [0, 1, 0])],
            NeverMigrate(),
        )
        m.run()
        for core, hier in enumerate(m.caches):
            for byte_addr in hier.l1.resident_addrs() + hier.l2.resident_addrs():
                word = byte_addr // m.config.word_bytes
                assert m.placement.home_of_one(word) == core

    def test_all_threads_complete(self):
        m = _machine(
            [([16, 0, 32], [0, 0, 0]), ([0, 16, 48], [0, 1, 0])],
            NeverMigrate(),
        )
        m.run()
        assert all(th.done for th in m.threads)
