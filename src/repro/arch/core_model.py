"""Multi-context cores: native and guest execution slots.

Under EM² each core has one *native* context per thread that originated
there, plus a fixed number of *guest* contexts for visiting threads
(§2). A migration arriving at a core with no free guest context evicts
one resident guest, which travels back to its dedicated native context
on a separate virtual network — the native context is always available,
which is the root of the deadlock-freedom argument [10].

:class:`ContextFile` models exactly this occupancy discipline and
raises :class:`~repro.util.errors.ProtocolError` on violations (e.g. a
thread arriving as a guest at its own native core).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ProtocolError


@dataclass
class ContextSlot:
    """One hardware execution slot."""

    thread: int | None = None
    since: float = 0.0  # occupancy start time (for LRU eviction)


@dataclass
class ContextFile:
    """Execution contexts of one core."""

    core: int
    native_threads: tuple[int, ...]  # threads whose native context lives here
    guest_slots: int
    eviction_policy: str = "lru"  # "lru" | "fifo" (same here) | "newest"
    _guests: list[ContextSlot] = field(default_factory=list)
    _native_home: dict[int, ContextSlot] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.guest_slots < 1:
            raise ProtocolError("each core needs at least one guest context")
        self._guests = [ContextSlot() for _ in range(self.guest_slots)]
        self._native_home = {t: ContextSlot() for t in self.native_threads}

    # ------------------------------------------------------------------
    def is_native(self, thread: int) -> bool:
        return thread in self._native_home

    def resident(self, thread: int) -> bool:
        if self.is_native(thread):
            return self._native_home[thread].thread == thread
        return any(s.thread == thread for s in self._guests)

    def occupancy(self) -> int:
        n = sum(1 for s in self._native_home.values() if s.thread is not None)
        return n + sum(1 for s in self._guests if s.thread is not None)

    # ------------------------------------------------------------------
    def admit_native(self, thread: int, now: float) -> None:
        """Load ``thread`` into its native context (always succeeds)."""
        slot = self._native_home.get(thread)
        if slot is None:
            raise ProtocolError(
                f"thread {thread} has no native context at core {self.core}"
            )
        if slot.thread == thread:
            raise ProtocolError(f"thread {thread} already in its native context")
        slot.thread = thread
        slot.since = now

    def admit_guest(self, thread: int, now: float) -> int | None:
        """Load ``thread`` into a guest context.

        Returns the thread id evicted to make room, or None when a
        free slot existed. Natives must use :meth:`admit_native`.
        """
        self._check_admissible(thread)
        for slot in self._guests:
            if slot.thread is None:
                slot.thread = thread
                slot.since = now
                return None
        victim_slot = self._pick_victim()
        evicted = victim_slot.thread
        victim_slot.thread = thread
        victim_slot.since = now
        return evicted

    def _check_admissible(self, thread: int) -> None:
        if self.is_native(thread):
            raise ProtocolError(
                f"thread {thread} is native to core {self.core}; use admit_native"
            )
        if self.resident(thread):
            raise ProtocolError(f"thread {thread} already resident at core {self.core}")

    def has_free_guest_slot(self) -> bool:
        return any(s.thread is None for s in self._guests)

    def replace_guest(self, victim: int, newcomer: int, now: float) -> None:
        """Displace ``victim``'s context with ``newcomer``'s.

        Used when the machine selects the eviction victim itself (e.g.
        only *evictable* guests may be displaced — a guest awaiting a
        remote-access reply cannot leave mid-transaction).
        """
        self._check_admissible(newcomer)
        for slot in self._guests:
            if slot.thread == victim:
                slot.thread = newcomer
                slot.since = now
                return
        raise ProtocolError(f"victim {victim} not a guest at core {self.core}")

    def guest_slots_info(self) -> list[tuple[int, float]]:
        """(thread, occupancy-start) for each occupied guest slot."""
        return [(s.thread, s.since) for s in self._guests if s.thread is not None]

    def _pick_victim(self) -> ContextSlot:
        occupied = [s for s in self._guests if s.thread is not None]
        if self.eviction_policy in ("lru", "fifo"):
            return min(occupied, key=lambda s: s.since)
        if self.eviction_policy == "newest":
            return max(occupied, key=lambda s: s.since)
        raise ProtocolError(f"unknown eviction policy {self.eviction_policy!r}")

    def release(self, thread: int) -> None:
        """Unload ``thread`` (it is migrating away or finished)."""
        if self.is_native(thread) and self._native_home[thread].thread == thread:
            self._native_home[thread].thread = None
            return
        for slot in self._guests:
            if slot.thread == thread:
                slot.thread = None
                return
        raise ProtocolError(f"thread {thread} not resident at core {self.core}")

    def guest_threads(self) -> list[int]:
        return [s.thread for s in self._guests if s.thread is not None]


def build_context_files(
    num_cores: int,
    thread_native_core: list[int],
    guest_slots: int,
    eviction_policy: str = "lru",
) -> list[ContextFile]:
    """One :class:`ContextFile` per core given each thread's native core."""
    natives: list[list[int]] = [[] for _ in range(num_cores)]
    for t, c in enumerate(thread_native_core):
        if not (0 <= c < num_cores):
            raise ProtocolError(f"thread {t} native core {c} out of range")
        natives[c].append(t)
    return [
        ContextFile(
            core=c,
            native_threads=tuple(natives[c]),
            guest_slots=guest_slots,
            eviction_policy=eviction_policy,
        )
        for c in range(num_cores)
    ]
