"""Post-run protocol audits (see package docstring)."""

from __future__ import annotations

from repro.arch.noc.packet import VirtualNetwork
from repro.coherence.msi import DirState, MSIState
from repro.util.errors import ProtocolError


def audit_home_only_caching(machine) -> dict:
    """Every resident line lives at its home core (EM² §2 premise).

    Applies to the EM² family machines (they share cache + placement
    structure). Returns {'lines_checked': n}.
    """
    if machine.caches is None:
        return {"lines_checked": 0}
    checked = 0
    wb = machine.config.word_bytes
    for core, hier in enumerate(machine.caches):
        for byte_addr in hier.l1.resident_addrs() + hier.l2.resident_addrs():
            home = machine.placement.home_of_one(byte_addr // wb)
            if home != core:
                raise ProtocolError(
                    f"line {byte_addr:#x} cached at core {core} but homed at {home}"
                )
            checked += 1
    return {"lines_checked": checked}


def audit_thread_completion(machine) -> dict:
    """All threads done; no context occupied; nothing in flight."""
    for th in machine.threads:
        if not th.done:
            raise ProtocolError(f"thread {th.tid} unfinished at idx {th.idx}")
        if th.in_transit:
            raise ProtocolError(f"thread {th.tid} still in transit")
    for ctx in machine.contexts:
        if ctx.occupancy() != 0:
            raise ProtocolError(
                f"core {ctx.core} still holds {ctx.occupancy()} contexts after drain"
            )
    for core, waiters in enumerate(machine._waiting):
        if waiters:
            raise ProtocolError(f"core {core} has {len(waiters)} stalled arrivals")
    return {"threads": len(machine.threads)}


def audit_message_conservation(machine) -> dict:
    """Requests and replies balance; migrations+evictions delivered."""
    counts = {
        vnet: machine.network.message_count(vnet) for vnet in VirtualNetwork
    }
    if counts[VirtualNetwork.RA_REQUEST] != counts[VirtualNetwork.RA_REPLY]:
        raise ProtocolError(
            f"RA requests ({counts[VirtualNetwork.RA_REQUEST]}) != replies "
            f"({counts[VirtualNetwork.RA_REPLY]})"
        )
    migrations = machine.stats.counters["migrations"]
    evictions = machine.stats.counters["evictions"]
    if counts[VirtualNetwork.MIGRATION] != migrations:
        raise ProtocolError(
            f"migration messages ({counts[VirtualNetwork.MIGRATION]}) != "
            f"migration count ({migrations})"
        )
    if counts[VirtualNetwork.EVICTION] != evictions:
        raise ProtocolError(
            f"eviction messages ({counts[VirtualNetwork.EVICTION]}) != "
            f"eviction count ({evictions})"
        )
    return {k.name: v for k, v in counts.items() if v}


def audit_directory(sim) -> dict:
    """Directory and caches agree (MSI single-writer / sharer exactness).

    ``sim`` is a :class:`~repro.coherence.simulator.DirectoryCCSimulator`.
    """
    lines = 0
    for line, entry in sim.directory.items():
        entry.check_invariants()
        byte_addr = line * sim.config.l2.line_bytes
        holders = {
            c
            for c in range(sim.config.num_cores)
            if sim.caches[c].probe(byte_addr) is not None
        }
        if entry.state == DirState.EXCLUSIVE:
            if holders != {entry.owner}:
                raise ProtocolError(
                    f"line {line:#x} EXCLUSIVE at {entry.owner} but held by {holders}"
                )
            st = MSIState(sim.caches[entry.owner].probe(byte_addr).state)
            if st not in (MSIState.MODIFIED, MSIState.EXCLUSIVE):
                raise ProtocolError(
                    f"line {line:#x} owner cache state {st.name} not M/E"
                )
        elif entry.state == DirState.SHARED:
            if holders != entry.sharers:
                raise ProtocolError(
                    f"line {line:#x} sharers {entry.sharers} but held by {holders}"
                )
        else:  # UNCACHED
            if holders:
                raise ProtocolError(f"line {line:#x} UNCACHED but held by {holders}")
        lines += 1
    return {"directory_lines": lines}


def full_machine_audit(machine) -> dict:
    """All EM²-family audits in one call."""
    out = {}
    out.update(audit_thread_completion(machine))
    out.update(audit_home_only_caching(machine))
    out.update(audit_message_conservation(machine))
    return out
