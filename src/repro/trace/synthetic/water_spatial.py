"""WATER-SPATIAL-like workload (SPLASH-2 WATER-SPATIAL stand-in).

Where WATER-NSQUARED pairs molecules all-to-all, WATER-SPATIAL bins
them into a 3-D cell grid and interacts only neighbouring cells —
sharing becomes *spatially structured*: each thread owns a contiguous
sub-cube of cells and exchanges only with the threads owning adjacent
sub-cubes (the 3-D analogue of ocean's 2-D boundary pattern, but with
read-modify-write force accumulation instead of read-only stencils).

Generated structure, per timestep and owned boundary cell:

* local update sweep over owned cells (local RMW runs);
* for each face neighbour cell owned by another thread: read its
  molecule positions (short remote read run) and RMW its force words
  (remote write run of 2) — both at the *same* neighbour core,
  giving runs of length ~4-6: squarely in the crossover region
  between RA and migration, unlike ocean's 1-vs-400 bimodal split.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError

WORDS_PER_CELL = 16  # positions + forces for the cell's molecules


@WORKLOADS.register("water-spatial", "WATER-SPATIAL-like cell-decomposed MD workload (SPLASH-2 stand-in)")
class WaterSpatialGenerator(WorkloadGenerator):
    name = "water-spatial"

    def __init__(
        self,
        num_threads: int = 64,
        cells_per_side: int | None = None,
        timesteps: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if cells_per_side is None:
            # one sub-cube per thread: threads arranged on a cube grid
            t_side = max(int(round(num_threads ** (1 / 3))), 1)
            while t_side > 1 and num_threads % (t_side * t_side):
                t_side -= 1
            cells_per_side = 2 * t_side
        if timesteps <= 0:
            raise ConfigError("timesteps must be positive")
        self.n = cells_per_side
        self.timesteps = timesteps
        self.cells_base = self.space.shared_region(
            "cells", self.n**3 * WORDS_PER_CELL
        )

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "cells_per_side": self.n,
            "timesteps": self.timesteps,
        }

    # -- geometry --------------------------------------------------------
    def cell_id(self, x: int, y: int, z: int) -> int:
        return (z * self.n + y) * self.n + x

    def cell_addr(self, cid: int) -> int:
        return self.cells_base + cid * WORDS_PER_CELL

    def owner_of_cell(self, x: int, y: int, z: int) -> int:
        """Contiguous sub-cube decomposition by interleaved slabs."""
        cid = self.cell_id(x, y, z)
        return (cid * self.num_threads) // (self.n**3)

    def _owned_cells(self, thread: int) -> list[tuple[int, int, int]]:
        """Cells owned by ``thread``, in ascending cell-id order.

        ``owner_of_cell`` is monotone in the cell id, so the owned set
        is the contiguous id range [ceil(t*N/T), ceil((t+1)*N/T)) —
        computed directly instead of scanning all n**3 cells.
        """
        total = self.n**3
        lo = -(-thread * total // self.num_threads)
        hi = -(-(thread + 1) * total // self.num_threads)
        cids = np.arange(lo, hi, dtype=np.int64)
        xs = cids % self.n
        ys = (cids // self.n) % self.n
        zs = cids // (self.n * self.n)
        return list(zip(xs.tolist(), ys.tolist(), zs.tolist()))

    # -- phases ------------------------------------------------------------
    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(WORDS_PER_CELL, dtype=np.int64)
        for x, y, z in self._owned_cells(thread):
            b.emit(self.cell_addr(self.cell_id(x, y, z)) + words, writes=1, icounts=1)

    def _neighbors(self, x: int, y: int, z: int):
        for dx, dy, dz in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            nx, ny, nz = x + dx, y + dy, z + dz
            if nx < self.n and ny < self.n and nz < self.n:
                yield nx, ny, nz

    def _timestep(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(WORDS_PER_CELL, dtype=np.int64)
        for x, y, z in self._owned_cells(thread):
            base = self.cell_addr(self.cell_id(x, y, z))
            # intra-cell update: local RMW run
            seq = np.column_stack([base + words[:8], base + words[:8]]).ravel()
            wr = np.tile(np.array([0, 1], dtype=np.uint8), 8)
            b.emit(seq, writes=wr, icounts=4)
            # inter-cell interactions with +x/+y/+z neighbours
            for nx, ny, nz in self._neighbors(x, y, z):
                nbase = self.cell_addr(self.cell_id(nx, ny, nz))
                # read neighbour positions (4 words) + RMW its force pair:
                # one run of ~6 accesses at the neighbour's core
                b.emit(nbase + words[:4], writes=0, icounts=3)
                b.emit(
                    np.array([nbase + 8, nbase + 8], dtype=np.int64),
                    writes=np.array([0, 1], dtype=np.uint8),
                    icounts=2,
                )

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        for _ in range(self.timesteps):
            self._timestep(thread, b)
