"""Experiment ex-schemes: how close to optimal are hardware schemes?

"we therefore outline a simplified analytical model that establishes
an upper bound on performance of decision schemes and thus allows us
to quickly evaluate how close to optimal a given hardware-
implementable scheme is" (§3). This bench is exactly that evaluation:
every scheme's cost is normalized to the DP optimum on the same
trace/placement, per workload.
"""

import pytest

from conftest import cached_first_touch, cached_workload, emit
from repro.analysis.reports import format_table
from repro.analysis.sweep import grid, sweep
from repro.core.decision import (
    AlwaysMigrate,
    DistanceThreshold,
    HistoryRunLength,
    NativeFirst,
    NeverMigrate,
    RandomScheme,
)
from repro.core.decision.costaware import CostAwareHistory
from repro.core.decision.history import AddressIndexedHistory
from repro.core.decision.optimal import optimal_cost
from repro.core.evaluation import evaluate_scheme

WORKLOADS = {
    "ocean": dict(name="ocean", num_threads=16, grid_n=98, iterations=1),
    "fft": dict(name="fft", num_threads=16, points_per_thread=128),
    "cholesky": dict(name="cholesky", num_threads=16, supernodes=48,
                     block_words=32, fanin=3),
    "water-spatial": dict(name="water-spatial", num_threads=16,
                          cells_per_side=6, timesteps=1),
    "pingpong-r1": dict(name="pingpong", num_threads=16, rounds=64, run=1),
    "pingpong-r8": dict(name="pingpong", num_threads=16, rounds=64, run=8),
    "uniform": dict(name="uniform", num_threads=16, accesses_per_thread=512),
}


def _schemes(cost_model):
    dm = cost_model.topology.distance_matrix
    be = cost_model.break_even_run_length(0, cost_model.config.num_cores - 1)
    return [
        ("always-migrate", AlwaysMigrate()),
        ("never-migrate", NeverMigrate()),
        ("distance<=1", DistanceThreshold(dm, 1)),
        ("distance<=2", DistanceThreshold(dm, 2)),
        ("native+dist<=1", NativeFirst(away=DistanceThreshold(dm, 1))),
        ("history(be)", HistoryRunLength(threshold=be)),
        ("addr-history(be)", AddressIndexedHistory(threshold=be)),
        ("costaware", CostAwareHistory(cost_model)),
        ("random(0.5)", RandomScheme(p=0.5, seed=0)),
    ]


def _optimal_total(trace, placement, cost_model):
    total = 0.0
    for t, tr in enumerate(trace.threads):
        homes = placement.home_of(tr["addr"])
        total += optimal_cost(homes, tr["write"], t, cost_model)
    return total


@pytest.mark.parametrize("wl", sorted(WORKLOADS))
def test_scheme_vs_optimal(benchmark, bench_cost, wl):
    params = dict(WORKLOADS[wl])
    name = params.pop("name")
    trace = cached_workload(name, **params)
    placement = cached_first_touch(trace, 16)

    def evaluate_all():
        opt = _optimal_total(trace, placement, bench_cost)
        rows = []
        for label, scheme in _schemes(bench_cost):
            r = evaluate_scheme(trace, placement, scheme, bench_cost)
            rows.append(
                {
                    "scheme": label,
                    "cost": r.total_cost,
                    "vs_optimal": r.total_cost / opt if opt else float("nan"),
                    "migrations": r.migrations,
                    "remote": r.remote_accesses,
                    "traffic_kbit": r.traffic_bits / 1000,
                }
            )
        return opt, rows

    opt, rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    emit(f"ex-schemes [{wl}]: cost relative to DP optimum = 1.0 (opt={opt:.0f})",
         format_table(rows))
    for row in rows:
        assert row["vs_optimal"] >= 1.0 - 1e-9  # optimality
    by = {r["scheme"]: r["vs_optimal"] for r in rows}
    if wl == "cholesky":
        # the documented negative result: cholesky's contended queue
        # RMWs teach the run-length predictors "short runs" while the
        # payoff is in migrating for block gathers — the history family
        # collapses below even coin-flipping (EXPERIMENTS.md ex-schemes)
        assert by["history(be)"] > by["always-migrate"]
    else:
        # elsewhere the informed scheme beats coin-flipping
        assert by["history(be)"] <= by["random(0.5)"] * 1.25


def test_crossover_run_length(benchmark, bench_cost, bench_workers):
    """Ablation: sweep the consumer run length; migration should beat
    RA exactly past the break-even length (the §3 crossover)."""

    def eval_point(run_length):
        trace = cached_workload("pingpong", num_threads=8, rounds=32, run=run_length)
        placement = cached_first_touch(trace, 8)
        em2 = evaluate_scheme(trace, placement, AlwaysMigrate(), bench_cost)
        ra = evaluate_scheme(trace, placement, NeverMigrate(), bench_cost)
        return {
            "em2_cost": em2.total_cost,
            "ra_cost": ra.total_cost,
            "winner": "EM2" if em2.total_cost < ra.total_cost else "RA",
        }

    def run_sweep():
        return sweep(
            grid(run_length=[1, 2, 4, 8, 16, 32]), eval_point, workers=bench_workers
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("ex-schemes: migration-vs-RA crossover in run length", format_table(rows))
    assert rows[0]["winner"] == "RA"  # run length 1: RA must win (§3)
    assert rows[-1]["winner"] == "EM2"  # long runs: migration must win
