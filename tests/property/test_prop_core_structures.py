"""Property-based tests: engine, topology, caches, stack cache."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache.sram import CacheArray
from repro.arch.config import CacheConfig
from repro.arch.topology import Mesh2D, TorusTopology
from repro.sim.engine import Engine
from repro.stackmachine.stack_cache import StackCache


# ---------------------------------------------------------------- engine
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_engine_executes_in_nondecreasing_time(delays):
    eng = Engine()
    times = []
    for d in delays:
        eng.schedule(d, lambda: times.append(eng.now))
    eng.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30),
    st.sets(st.integers(min_value=0, max_value=29)),
)
def test_engine_cancellation_exact(delays, cancel_idx):
    eng = Engine()
    fired = []
    events = [eng.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)]
    for i in cancel_idx:
        if i < len(events):
            events[i].cancel()
    eng.run()
    expected = {i for i in range(len(delays))} - {i for i in cancel_idx if i < len(delays)}
    assert set(fired) == expected


# ---------------------------------------------------------------- topology
mesh_dims = st.tuples(st.integers(1, 8), st.integers(1, 8))


@given(mesh_dims, st.data())
def test_mesh_triangle_inequality(dims, data):
    w, h = dims
    m = Mesh2D(w, h)
    n = w * h
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    assert m.distance(a, c) <= m.distance(a, b) + m.distance(b, c)


@given(mesh_dims, st.data())
def test_mesh_route_valid(dims, data):
    w, h = dims
    m = Mesh2D(w, h)
    n = w * h
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    path = m.route(a, b)
    assert path[0] == a and path[-1] == b
    assert len(path) == m.distance(a, b) + 1
    for u, v in zip(path, path[1:]):
        assert m.distance(u, v) == 1


@given(mesh_dims, st.data())
def test_torus_no_longer_than_mesh(dims, data):
    w, h = dims
    t, m = TorusTopology(w, h), Mesh2D(w, h)
    n = w * h
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    assert t.distance(a, b) <= m.distance(a, b)
    assert t.distance(a, b) == t.distance(b, a)


# ---------------------------------------------------------------- caches
@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 2047), st.booleans()), max_size=300))
def test_cache_never_exceeds_capacity_and_tracks_residency(ops):
    cfg = CacheConfig(size_bytes=512, line_bytes=64, associativity=2)
    cache = CacheArray(cfg)
    resident: dict[int, bool] = {}  # line -> present (reference model)
    for addr, _w in ops:
        line = addr // 64
        hit = cache.lookup(addr) is not None
        assert hit == resident.get(line, False)
        if not hit:
            victim = cache.fill(addr)
            resident[line] = True
            if victim is not None:
                si = cache.set_index(addr)
                vline = victim.tag * cfg.num_sets + si
                resident[vline] = False
        assert cache.occupancy() <= cfg.num_lines
    assert cache.occupancy() == sum(resident.values())


@settings(max_examples=40)
@given(st.lists(st.sampled_from(["push", "pop", "peek"]), max_size=200))
def test_stack_cache_equals_plain_list(ops):
    """StackCache with spills must behave exactly like an unbounded list."""
    sc = StackCache(4)
    ref: list[int] = []
    counter = 0
    for op in ops:
        if op == "push":
            sc.push(counter)
            ref.append(counter)
            counter += 1
        elif op == "pop" and ref:
            assert sc.pop() == ref.pop()
        elif op == "peek" and ref:
            assert sc.peek(0) == ref[-1]
    assert sc.snapshot() == ref
    assert sc.depth == len(ref)
