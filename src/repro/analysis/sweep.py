"""Parameter-sweep utilities for the benchmark harness and examples.

A sweep is a cartesian product over named parameter lists, evaluated
by a callback returning a result dict per point. Results accumulate
into table rows ready for :func:`repro.analysis.reports.format_table`.

``sweep`` composes the two performance layers of ISSUE 1 behind its
original signature: ``workers`` fans points out over
:func:`repro.analysis.parallel.parallel_sweep`, and ``cache`` consults
a :class:`repro.analysis.cache.ResultCache` per point so warm re-runs
skip evaluation entirely. Both default off, so existing callers are
untouched.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Mapping

from repro.analysis.parallel import parallel_sweep
from repro.util.errors import ConfigError


def grid(**params: Iterable) -> list[dict]:
    """Cartesian product of parameter lists as a list of dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not params:
        return [{}]
    keys = list(params)
    values = [list(params[k]) for k in keys]
    for k, v in zip(keys, values):
        if not v:
            raise ConfigError(f"sweep parameter {k!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*values)]


def sweep(
    points: Iterable[Mapping],
    fn: Callable[..., Mapping],
    workers: int = 1,
    chunk: int | None = None,
    cache: "ResultCache | None" = None,
    cache_extra: Mapping | None = None,
    point_timeout: float | None = None,
) -> list[dict]:
    """Evaluate ``fn(**point)`` for every point; each row merges the
    point's parameters with the returned metrics. A metric key that
    collides with a parameter key raises :class:`ConfigError` naming
    the key — silent overwrites corrupt result tables.

    ``workers > 1`` evaluates points in parallel processes (row order
    still matches point order; see
    :func:`repro.analysis.parallel.parallel_sweep`). ``cache`` skips
    points whose rows are already on disk; ``cache_extra`` folds
    context the points don't carry (trace spec/seed, cost config) into
    every cache key. Cached results pass through JSON, so with a cache
    attached *all* rows are JSON-canonicalized for uniformity.
    """
    points = [dict(p) for p in points]
    if cache is None:
        return parallel_sweep(
            points, fn, workers=workers, chunk=chunk, point_timeout=point_timeout
        )

    from repro.analysis.cache import canonical_rows

    keys = [cache.key(point=p, extra=dict(cache_extra or {})) for p in points]
    rows: list[dict | None] = []
    missing: list[int] = []
    for i, k in enumerate(keys):
        hit = cache.get(k)
        if hit is None:
            rows.append(None)
            missing.append(i)
        else:
            rows.append(hit[0])
    if missing:
        fresh = parallel_sweep(
            [points[i] for i in missing],
            fn,
            workers=workers,
            chunk=chunk,
            point_timeout=point_timeout,
        )
        fresh = canonical_rows(fresh)
        for i, row in zip(missing, fresh):
            cache.put(keys[i], [row])
            rows[i] = row
    return rows


def _sharing_engages(share_traces, workers: int, num_points: int) -> bool:
    """Whether a spec sweep should publish workloads over shared memory.

    Sharing only pays when a process pool will actually engage — the
    gate mirrors :func:`repro.analysis.parallel.parallel_sweep`'s own
    serial-fallback conditions, so we never publish segments that only
    the parent would read.
    """
    if share_traces not in ("auto", True, False):
        raise ConfigError(
            f"share_traces must be 'auto', True, or False, got {share_traces!r}"
        )
    if share_traces is False:
        return False
    from repro.analysis.parallel import POOL_MIN_POINTS, effective_workers
    from repro.analysis.shm import shm_available

    if effective_workers(workers) <= 1 or num_points < POOL_MIN_POINTS:
        return False
    return shm_available()


def _open_resume(resume):
    """``resume`` as an open journal plus whether we own (must close) it."""
    if resume is None:
        return None, False
    from repro.analysis.journal import SweepJournal

    if isinstance(resume, SweepJournal):
        return resume, False
    return SweepJournal(resume), True


def _run_spec_points(
    spec_dicts: list[dict],
    share_traces,
    workers: int,
    chunk: int | None,
    point_timeout: float | None = None,
    farm=None,
    resume=None,
) -> list[dict]:
    """Fan ``spec_dicts`` out over :func:`parallel_sweep`, publishing
    each distinct workload once over shared memory when sharing engages.

    The parent builds every unique workload (hitting its own memo and
    the on-disk trace store), publishes the columns, and attaches the
    descriptor to each worker point; workers map the same physical
    pages read-only instead of regenerating the trace per process. The
    ``published_traces`` context manager unlinks every segment on the
    way out — including when a worker death propagates
    ``BrokenProcessPool`` through ``parallel_sweep``.

    ``resume`` (a journal path or an open
    :class:`~repro.analysis.journal.SweepJournal`) checkpoints every
    completed point's canonical metrics and replays them on restart —
    only the missing points are evaluated, and the returned rows are
    bit-identical to an uninterrupted run (all metrics pass through
    JSON canonicalization when a journal engages, mirroring the cache
    path's contract).
    """
    from repro.runner import run_spec_dict

    journal, own_journal = _open_resume(resume)
    try:
        if farm:
            import warnings

            from repro.analysis.farm import FarmUnavailable, farm_sweep
            from repro.analysis.parallel import merge_row

            try:
                metrics = farm_sweep(
                    spec_dicts,
                    farm,
                    point_timeout=point_timeout,
                    chunk=chunk,
                    journal=journal,
                )
            except FarmUnavailable as exc:
                warnings.warn(
                    f"farm has no reachable workers ({exc}); "
                    "degrading to the local pool",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                return [
                    merge_row({"spec": d}, m) for d, m in zip(spec_dicts, metrics)
                ]

        if journal is not None:
            return _journaled_local(
                spec_dicts, share_traces, workers, chunk, point_timeout, journal
            )
    finally:
        if own_journal:
            journal.close()

    if not _sharing_engages(share_traces, workers, len(spec_dicts)):
        worker_points = [{"spec": d} for d in spec_dicts]
        return parallel_sweep(
            worker_points,
            run_spec_dict,
            workers=workers,
            chunk=chunk,
            point_timeout=point_timeout,
        )

    from repro.analysis.shm import published_traces
    from repro.runner import build_workload
    from repro.spec import WorkloadSpec

    workload_keys = []
    unique: dict[str, WorkloadSpec] = {}
    for d in spec_dicts:
        wspec = WorkloadSpec.from_dict(d["workload"])
        key = wspec.cache_key()
        workload_keys.append(key)
        unique.setdefault(key, wspec)
    traces = {key: build_workload(wspec) for key, wspec in unique.items()}
    with published_traces(traces) as descriptors:
        worker_points = [
            {"spec": d, "shm_trace": descriptors[key]}
            for d, key in zip(spec_dicts, workload_keys)
        ]
        return parallel_sweep(
            worker_points,
            run_spec_dict,
            workers=workers,
            chunk=chunk,
            point_timeout=point_timeout,
        )


def _journaled_local(
    spec_dicts: list[dict],
    share_traces,
    workers: int,
    chunk: int | None,
    point_timeout: float | None,
    journal,
) -> list[dict]:
    """Local evaluation through an open journal: replay what it holds,
    evaluate only the rest, checkpoint each fresh point's canonical
    metrics. Rows come back merged the same way the plain path merges
    them (``{"spec": ...}`` plus metrics)."""
    from repro.analysis.cache import canonical_rows
    from repro.analysis.journal import spec_journal_key
    from repro.analysis.parallel import merge_row

    keys = [spec_journal_key(d) for d in spec_dicts]
    metrics: list[dict | None] = [journal.get(k) for k in keys]
    missing = [i for i, m in enumerate(metrics) if m is None]
    if missing:
        raw = _run_spec_points(
            [spec_dicts[i] for i in missing],
            share_traces,
            workers,
            chunk,
            point_timeout,
        )
        for i, row in zip(missing, raw):
            bare = dict(row)
            bare.pop("spec", None)
            bare.pop("shm_trace", None)
            bare = canonical_rows([bare])[0]
            journal.append(keys[i], bare)
            metrics[i] = bare
        journal.flush()
    return [merge_row({"spec": d}, m) for d, m in zip(spec_dicts, metrics)]


def sweep_specs(
    base_spec,
    points: Iterable[Mapping],
    workers: int = 1,
    chunk: int | None = None,
    cache: "ResultCache | None" = None,
    cache_extra: Mapping | None = None,
    share_traces="auto",
    point_timeout: float | None = None,
    farm=None,
    resume=None,
) -> list[dict]:
    """Spec-driven sweep: merge each partial ``point`` into
    ``base_spec`` (:func:`repro.runner.merge_spec`), run the resulting
    :class:`~repro.spec.ExperimentSpec` via :func:`repro.runner.run`,
    and return one row per point merging the point's parameters with
    the metrics.

    Differences from :func:`sweep`:

    * Workers receive **serialized spec dicts**, never closures — the
      callback is the module-level :func:`repro.runner.run_spec_dict`,
      so the parallel path works for every spec the parent can
      describe (no silent serial fallback on unpicklable captures).
    * With ``share_traces`` (default ``"auto"``), the parent builds
      each distinct workload once and publishes it into POSIX shared
      memory; pool workers attach zero-copy read-only views instead of
      regenerating traces per process (:mod:`repro.analysis.shm`).
      ``"auto"`` engages only when the pool itself will (enough points,
      more than one effective worker, shm usable on this host);
      ``False`` forces the old regenerate-in-worker behaviour.
    * Cache keys derive from the canonical spec dict
      (:meth:`ExperimentSpec.to_dict`) — the spec *is* everything that
      determines the numbers, so no ad-hoc context plumbing is needed.
      ``cache_extra`` remains for context genuinely outside the spec
      (e.g. the content of a trace file the spec only names by path).
    * A metric key colliding with a point key (e.g. a ``scheme``
      metric under a ``scheme`` sweep axis) keeps the point's value —
      the axis label is authoritative for its own column.
    * ``farm`` is a list of ``"host:port"`` addresses of running
      ``repro worker`` processes — or a mapping with ``addrs`` plus
      optional ``auth_token`` / ``heartbeat`` / ``liveness`` /
      ``reconnect`` / ``chunk`` (see
      :func:`repro.analysis.farm.normalize_farm`): points are
      dispatched to them over sockets with pull-based work-stealing
      and trace-by-reference distribution
      (:mod:`repro.analysis.farm`). Farm rows pass through JSON
      (values canonical, key order preserved — the same rows, byte for
      byte, a local run yields). When no worker is reachable the sweep
      warns and degrades to the local pool.
    * ``resume`` is a journal path (or an open
      :class:`~repro.analysis.journal.SweepJournal`): every completed
      point's canonical metrics are checkpointed as they land, and a
      re-run with the same grid and journal replays the finished
      points instead of re-evaluating them — the returned rows are
      bit-identical to an uninterrupted run. Composes with ``farm``
      (the coordinator journals results as workers stream them in) and
      with ``cache`` (the cache layer sits above and consults its own
      store first).
    """
    points = [dict(p) for p in points]
    from repro.runner import merge_spec

    spec_dicts = [merge_spec(base_spec, p).to_dict() for p in points]

    def make_row(point: dict, metrics: Mapping) -> dict:
        row = dict(point)
        for key, value in metrics.items():
            if key not in row:
                row[key] = value
        return row

    def metrics_of(raw_rows: list[dict]) -> list[dict]:
        # parallel_sweep merges the worker point ({"spec": ..., maybe
        # "shm_trace": ...}) into each row; strip the plumbing back off
        # to recover the bare metrics.
        out = []
        for raw in raw_rows:
            metrics = dict(raw)
            metrics.pop("spec", None)
            metrics.pop("shm_trace", None)
            out.append(metrics)
        return out

    if cache is None:
        raw = _run_spec_points(
            spec_dicts, share_traces, workers, chunk, point_timeout, farm, resume
        )
        return [make_row(p, m) for p, m in zip(points, metrics_of(raw))]

    from repro.analysis.cache import canonical_rows

    extra = dict(cache_extra or {})
    keys = [cache.key_for_spec(d, extra) for d in spec_dicts]
    rows: list[dict | None] = []
    missing: list[int] = []
    for i, k in enumerate(keys):
        hit = cache.get(k)
        if hit is None:
            rows.append(None)
            missing.append(i)
        else:
            rows.append(hit[0])
    if missing:
        raw = _run_spec_points(
            [spec_dicts[i] for i in missing],
            share_traces,
            workers,
            chunk,
            point_timeout,
            farm,
            resume,
        )
        fresh = canonical_rows(
            [make_row(points[i], m) for i, m in zip(missing, metrics_of(raw))]
        )
        for i, row in zip(missing, fresh):
            cache.put(keys[i], [row])
            rows[i] = row
    return rows


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the standard cross-workload summary statistic).

    Raises :class:`ConfigError` on non-positive inputs — a silent 0 or
    negative value in a ratio geomean is always a bug upstream.
    """
    values = list(values)
    if not values:
        return float("nan")
    for v in values:
        if v <= 0:
            raise ConfigError(f"geomean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(rows: list[dict], key: str, baseline_row: int = 0) -> list[dict]:
    """Add ``key + '_norm'`` columns dividing by the baseline row's value."""
    if not rows:
        return rows
    if not (0 <= baseline_row < len(rows)):
        raise ConfigError(f"baseline_row {baseline_row} out of range")
    base = rows[baseline_row][key]
    if base == 0:
        raise ConfigError(f"baseline value for {key!r} is zero")
    for row in rows:
        row[f"{key}_norm"] = row[key] / base
    return rows
