"""Stack-machine instruction set.

"In a stack-based ISA, most instructions do not specify their operands
but instead access the top of the stack" (§4). This ISA follows the
classic two-stack design: an expression (data) stack for evaluation
and a return stack for procedure linkage and loop counters, exactly
the split the paper describes.

Every opcode documents its data-stack effect as (pops, pushes), which
is also what the interpreter uses to maintain the per-segment
``spop``/``spush`` annotations for the stack-depth DP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import ConfigError


class Opcode(enum.Enum):
    # literals / stack shuffling
    LIT = "lit"  # push immediate
    DUP = "dup"
    DROP = "drop"
    SWAP = "swap"
    OVER = "over"
    ROT = "rot"
    # arithmetic / logic (binary ops pop 2 push 1)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # comparisons (pop 2 push flag)
    EQ = "eq"
    LT = "lt"
    GT = "gt"
    # memory (the migration triggers)
    LOAD = "load"  # ( addr -- value )
    STORE = "store"  # ( value addr -- )
    # control flow
    JMP = "jmp"  # unconditional, immediate target
    JZ = "jz"  # ( flag -- ) jump if zero
    JNZ = "jnz"  # ( flag -- ) jump if nonzero
    CALL = "call"  # pushes return address on the return stack
    RET = "ret"
    # return-stack transfers (loop counters, Forth >r / r> / r@)
    TOR = "tor"  # ( x -- ) data -> return
    FROMR = "fromr"  # ( -- x ) return -> data
    RFETCH = "rfetch"  # ( -- x ) copy of return-stack top
    HALT = "halt"
    NOP = "nop"


# data-stack effect (pops, pushes) per opcode
STACK_EFFECT: dict[Opcode, tuple[int, int]] = {
    Opcode.LIT: (0, 1),
    Opcode.DUP: (1, 2),
    Opcode.DROP: (1, 0),
    Opcode.SWAP: (2, 2),
    Opcode.OVER: (2, 3),
    Opcode.ROT: (3, 3),
    Opcode.ADD: (2, 1),
    Opcode.SUB: (2, 1),
    Opcode.MUL: (2, 1),
    Opcode.DIV: (2, 1),
    Opcode.AND: (2, 1),
    Opcode.OR: (2, 1),
    Opcode.XOR: (2, 1),
    Opcode.SHL: (2, 1),
    Opcode.SHR: (2, 1),
    Opcode.EQ: (2, 1),
    Opcode.LT: (2, 1),
    Opcode.GT: (2, 1),
    Opcode.LOAD: (1, 1),
    Opcode.STORE: (2, 0),
    Opcode.JMP: (0, 0),
    Opcode.JZ: (1, 0),
    Opcode.JNZ: (1, 0),
    Opcode.CALL: (0, 0),
    Opcode.RET: (0, 0),
    Opcode.TOR: (1, 0),
    Opcode.FROMR: (0, 1),
    Opcode.RFETCH: (0, 1),
    Opcode.HALT: (0, 0),
    Opcode.NOP: (0, 0),
}

HAS_OPERAND = {Opcode.LIT, Opcode.JMP, Opcode.JZ, Opcode.JNZ, Opcode.CALL}

MEMORY_OPS = {Opcode.LOAD, Opcode.STORE}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    operand: int | None = None

    def __post_init__(self) -> None:
        if self.opcode in HAS_OPERAND and self.operand is None:
            raise ConfigError(f"{self.opcode.value} requires an operand")
        if self.opcode not in HAS_OPERAND and self.operand is not None:
            raise ConfigError(f"{self.opcode.value} takes no operand")

    @property
    def stack_effect(self) -> tuple[int, int]:
        return STACK_EFFECT[self.opcode]

    def __repr__(self) -> str:
        if self.operand is not None:
            return f"{self.opcode.value} {self.operand}"
        return self.opcode.value
