"""Micro-workloads with analytically known behaviour.

Used by unit tests and the decision-scheme benchmarks: each generator's
migration/RA trade-off can be computed by hand, so they pin down the
simulators and the DP independent of the SPLASH-like generators.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("uniform")
class UniformRandomGenerator(WorkloadGenerator):
    """Every access uniform over a shared region: worst-case locality.

    With striped placement, each access is remote with probability
    (P-1)/P and homes are i.i.d. uniform — run lengths are geometric
    with mean ≈ 1/(1-1/P), i.e. essentially all runs have length 1.
    """

    name = "uniform"

    def __init__(
        self,
        num_threads: int = 16,
        accesses_per_thread: int = 2048,
        region_words: int = 1 << 14,
        write_fraction: float = 0.3,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if accesses_per_thread <= 0 or region_words <= 0:
            raise ConfigError("accesses_per_thread and region_words must be positive")
        if not (0.0 <= write_fraction <= 1.0):
            raise ConfigError("write_fraction must be in [0, 1]")
        self.apt = accesses_per_thread
        self.region_words = region_words
        self.write_fraction = write_fraction
        self.base = self.space.shared_region("uniform", region_words)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "accesses_per_thread": self.apt,
            "region_words": self.region_words,
            "write_fraction": self.write_fraction,
        }

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        offs = self.rng.integers(0, self.region_words, self.apt, dtype=np.int64)
        writes = (self.rng.random(self.apt) < self.write_fraction).astype(np.uint8)
        b.emit(self.base + offs, writes=writes, icounts=2)


@WORKLOADS.register("hotspot")
class HotspotGenerator(WorkloadGenerator):
    """A hot shared block plus private background traffic.

    ``hot_fraction`` of accesses go to a tiny shared region (homed at
    one core under first-touch by thread 0) — the canonical directory/
    home-core hotspot. Run lengths at the hotspot grow with
    ``burst`` (consecutive hot accesses emitted back-to-back).
    """

    name = "hotspot"

    def __init__(
        self,
        num_threads: int = 16,
        accesses_per_thread: int = 2048,
        hot_words: int = 16,
        hot_fraction: float = 0.25,
        burst: int = 1,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if not (0.0 <= hot_fraction <= 1.0):
            raise ConfigError("hot_fraction must be in [0, 1]")
        if burst <= 0 or hot_words <= 0 or accesses_per_thread <= 0:
            raise ConfigError("burst, hot_words, accesses_per_thread must be positive")
        self.apt = accesses_per_thread
        self.hot_words = hot_words
        self.hot_fraction = hot_fraction
        self.burst = burst
        self.hot_base = self.space.shared_region("hot", hot_words)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "accesses_per_thread": self.apt,
            "hot_words": self.hot_words,
            "hot_fraction": self.hot_fraction,
            "burst": self.burst,
        }

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        if thread == 0:
            # first-touch the hot region so it homes at core 0
            b.emit(
                self.hot_base + np.arange(self.hot_words, dtype=np.int64),
                writes=1,
                icounts=1,
            )
        priv = self.space.private_base(thread)
        emitted = 0
        while emitted < self.apt:
            if self.rng.random() < self.hot_fraction:
                offs = self.rng.integers(0, self.hot_words, self.burst, dtype=np.int64)
                wr = (self.rng.random(self.burst) < 0.5).astype(np.uint8)
                b.emit(self.hot_base + offs, writes=wr, icounts=3)
                emitted += self.burst
            else:
                off = int(self.rng.integers(0, 1024))
                b.emit_one(priv + off, write=self.rng.random() < 0.3, icount=3)
                emitted += 1


@WORKLOADS.register("private")
class PrivateOnlyGenerator(WorkloadGenerator):
    """Every access private: zero migrations under first-touch.

    The null test — any architecture charging remote traffic here is
    buggy.
    """

    name = "private"

    def __init__(
        self,
        num_threads: int = 16,
        accesses_per_thread: int = 1024,
        working_set: int = 512,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if accesses_per_thread <= 0 or working_set <= 0:
            raise ConfigError("accesses_per_thread and working_set must be positive")
        self.apt = accesses_per_thread
        self.working_set = working_set

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "accesses_per_thread": self.apt,
            "working_set": self.working_set,
        }

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        priv = self.space.private_base(thread)
        offs = self.rng.integers(0, self.working_set, self.apt, dtype=np.int64)
        writes = (self.rng.random(self.apt) < 0.3).astype(np.uint8)
        b.emit(priv + offs, writes=writes, icounts=2)


@WORKLOADS.register("pingpong")
class PingPongGenerator(WorkloadGenerator):
    """Producer-consumer pairs bouncing on a shared buffer.

    Threads pair up (2i, 2i+1); each pair shares one buffer homed at
    the even thread. The even thread accesses it in long runs (local);
    the odd thread's accesses alternate buffer/private, so all its
    buffer runs have length ``run`` — a dial for the migration-vs-RA
    crossover (run=1 favours RA; large run favours migration).
    """

    name = "pingpong"

    def __init__(
        self,
        num_threads: int = 16,
        rounds: int = 256,
        buffer_words: int = 64,
        run: int = 1,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if num_threads % 2:
            raise ConfigError("pingpong needs an even number of threads")
        if rounds <= 0 or buffer_words <= 0 or run <= 0:
            raise ConfigError("rounds, buffer_words, run must be positive")
        self.rounds = rounds
        self.buffer_words = buffer_words
        self.run = run
        self.buf_base = [
            self.space.shared_region(f"buf{i}", buffer_words)
            for i in range(num_threads // 2)
        ]

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "rounds": self.rounds,
            "buffer_words": self.buffer_words,
            "run": self.run,
        }

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        pair = thread // 2
        base = self.buf_base[pair]
        priv = self.space.private_base(thread)
        if thread % 2 == 0:
            # producer: first-touch the buffer, then long local write runs
            b.emit(
                base + np.arange(self.buffer_words, dtype=np.int64), writes=1, icounts=1
            )
            for r in range(self.rounds):
                offs = np.arange(
                    0, min(self.buffer_words, 8), dtype=np.int64
                )
                b.emit(base + offs, writes=1, icounts=2)
        else:
            # consumer: `run` buffer reads then a private write, repeated
            for r in range(self.rounds):
                offs = (r + np.arange(self.run, dtype=np.int64)) % self.buffer_words
                b.emit(base + offs, writes=0, icounts=2)
                b.emit_one(priv + (r % 64), write=True, icount=2)
