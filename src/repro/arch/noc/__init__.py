"""On-chip network model.

Message-level simulation: a message is injected at a source tile,
traverses the XY route with per-hop router+link latency, serializes
its flits over each link, and triggers a delivery callback at the
destination. Two fidelity modes:

* analytical (default): latency = hops * (router + link) + serialization,
  no queueing — matches the paper's simplified model (§3).
* contention: per-(link, VC) busy-until bookkeeping adds queueing delay,
  for the behavioral simulator.

Virtual channels are first-class: every message names its VC, and
:mod:`repro.arch.noc.deadlock` validates that the VC assignment used by
a protocol family is acyclic (the six-VC requirement of EM²-RA, §3).
"""

from repro.arch.noc.packet import Message, VirtualNetwork
from repro.arch.noc.network import Network
from repro.arch.noc.deadlock import VC_PLAN_EM2, VC_PLAN_EM2RA, check_vc_plan
from repro.arch.noc.flitlevel import FlitNetwork

__all__ = [
    "Message",
    "VirtualNetwork",
    "Network",
    "FlitNetwork",
    "check_vc_plan",
    "VC_PLAN_EM2",
    "VC_PLAN_EM2RA",
]
