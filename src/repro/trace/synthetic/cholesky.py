"""CHOLESKY-like workload (SPLASH-2 CHOLESKY stand-in).

Sparse supernodal Cholesky factors a symmetric matrix column-block by
column-block; unlike dense LU, work is driven by a task queue over
*supernodes* with an irregular dependency structure: a supernode
update reads the factored columns of a sparse subset of earlier
supernodes.

Generated structure:

* ``supernodes`` blocks with randomly-sized sparse parent sets (each
  supernode depends on ``fanin`` random earlier ones);
* a shared **task queue** word per supernode (contended RMW when
  threads claim work);
* claiming thread factors its supernode in place (local RMW run over
  the block — under first-touch, blocks home at whoever claims them
  in the init pass), then reads each parent's block (medium remote
  runs at scattered cores).

Compared to LU's regular 2-D-cyclic reuse of one pivot, CHOLESKY's
remote runs target an *irregular* set of cores with queue contention —
a sharper test for history-based decision schemes (predictions keyed
by home core alias across supernodes).
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("cholesky", "CHOLESKY-like sparse factorization workload (SPLASH-2 stand-in)")
class CholeskyGenerator(WorkloadGenerator):
    name = "cholesky"

    def __init__(
        self,
        num_threads: int = 64,
        supernodes: int = 64,
        block_words: int = 48,
        fanin: int = 3,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if supernodes < num_threads:
            raise ConfigError("need at least one supernode per thread")
        if block_words <= 0 or fanin < 0:
            raise ConfigError("block_words must be positive, fanin >= 0")
        self.supernodes = supernodes
        self.block_words = block_words
        self.fanin = fanin
        self.matrix_base = self.space.shared_region(
            "supernodes", supernodes * block_words
        )
        self.queue_base = self.space.shared_region("taskqueue", supernodes)
        # static task assignment (round-robin claim order) + sparse parents,
        # drawn once so every thread sees the same dependency structure
        self._owner = np.arange(supernodes) % num_threads
        self._parents = [
            np.sort(
                self.rng.choice(max(s, 1), size=min(fanin, s), replace=False)
            )
            if s > 0
            else np.zeros(0, dtype=np.int64)
            for s in range(supernodes)
        ]

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "supernodes": self.supernodes,
            "block_words": self.block_words,
            "fanin": self.fanin,
        }

    def block_base(self, s: int) -> int:
        return self.matrix_base + s * self.block_words

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(self.block_words, dtype=np.int64)
        for s in range(self.supernodes):
            if self._owner[s] == thread:
                b.emit(self.block_base(s) + words, writes=1, icounts=1)
                b.emit_one(self.queue_base + s, write=True, icount=1)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        words = np.arange(self.block_words, dtype=np.int64)
        for s in range(self.supernodes):
            if self._owner[s] != thread:
                continue
            # claim the task: RMW on the queue word (shared, contended)
            b.emit_one(self.queue_base + s, write=False, icount=2)
            b.emit_one(self.queue_base + s, write=True, icount=0)
            # gather parent supernodes (irregular remote runs)
            for p in self._parents[s].tolist():
                stride = 2 if (s + p) % 2 else 1  # sparse column access
                pw = np.arange(0, self.block_words, stride, dtype=np.int64)
                b.emit(self.block_base(int(p)) + pw, writes=0, icounts=2)
            # factor own block in place (local RMW run)
            base = self.block_base(s)
            seq = np.column_stack([base + words, base + words]).ravel()
            wr = np.tile(np.array([0, 1], dtype=np.uint8), words.size)
            b.emit(seq, writes=wr, icounts=3)
