"""Unit tests for epoch-based dynamic placement."""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import AlwaysMigrate, NeverMigrate
from repro.placement import first_touch, striped
from repro.placement.dynamic import (
    evaluate_dynamic_placement,
    rehoming_traffic_bits,
    slice_epochs,
)
from repro.trace.events import MultiTrace, make_trace
from repro.trace.synthetic import make_workload
from repro.util.errors import ConfigError


@pytest.fixture
def cm():
    return CostModel(small_test_config(num_cores=4))


class TestSliceEpochs:
    def test_slices_cover_trace(self):
        mt = make_workload("uniform", num_threads=4, accesses_per_thread=100)
        epochs = slice_epochs(mt, 4)
        assert len(epochs) == 4
        for t in range(4):
            total = sum(e.threads[t].size for e in epochs)
            assert total == mt.threads[t].size
            rebuilt = np.concatenate([e.threads[t] for e in epochs])
            assert (rebuilt == mt.threads[t]).all()

    def test_single_epoch_is_whole_trace(self):
        mt = make_workload("private", num_threads=2, accesses_per_thread=10)
        (epoch,) = slice_epochs(mt, 1)
        assert epoch.total_accesses == mt.total_accesses

    def test_invalid_epoch_count(self):
        mt = make_workload("private", num_threads=2, accesses_per_thread=10)
        with pytest.raises(ConfigError):
            slice_epochs(mt, 0)

    def test_uneven_division(self):
        mt = MultiTrace(threads=[make_trace(list(range(7)))])
        epochs = slice_epochs(mt, 3)
        assert [e.threads[0].size for e in epochs] == [2, 2, 3]


class TestRehomingTraffic:
    def test_identical_placements_free(self, cm):
        mt = MultiTrace(threads=[make_trace([0, 16, 32])])
        pl = first_touch(mt, 4)
        bits, cost = rehoming_traffic_bits(pl, pl, pl.block_of(np.array([0, 16, 32])), cm)
        assert bits == 0 and cost == 0.0

    def test_moved_blocks_charged(self, cm):
        mt0 = MultiTrace(threads=[make_trace([0])])  # block 0 at core 0
        mt1 = MultiTrace(threads=[make_trace([]), make_trace([0])])  # at core 1
        a = first_touch(mt0, 4)
        b = first_touch(mt1, 4)
        bits, cost = rehoming_traffic_bits(a, b, np.array([0]), cm)
        assert bits > 0 and cost > 0

    def test_empty_block_list(self, cm):
        pl = striped(4)
        bits, cost = rehoming_traffic_bits(pl, pl, np.array([], dtype=np.int64), cm)
        assert bits == 0 and cost == 0.0


class TestEvaluateDynamic:
    def test_result_structure(self, cm):
        mt = make_workload("uniform", num_threads=4, accesses_per_thread=200)
        res = evaluate_dynamic_placement(mt, 4, NeverMigrate(), cm, num_epochs=4)
        assert len(res.epoch_costs) == 4
        assert res.total_cost == pytest.approx(
            sum(res.epoch_costs) + res.rehoming_cost
        )
        assert res.static_cost > 0

    def test_oracle_no_worse_than_reactive_on_phases(self, cm):
        """Build a two-phase workload: each thread's hot partner flips
        mid-trace. Oracle re-placement should beat reactive."""
        rng = np.random.default_rng(0)
        threads = []
        for t in range(4):
            # phase 1: hammer region A(t); phase 2: hammer region B(t)
            a = 1000 + ((t + 1) % 4) * 64 + rng.integers(0, 4, 150)
            b = 5000 + ((t + 2) % 4) * 64 + rng.integers(0, 4, 150)
            threads.append(make_trace(np.concatenate([a, b])))
        mt = MultiTrace(threads=threads)
        reactive = evaluate_dynamic_placement(
            mt, 4, NeverMigrate(), cm, num_epochs=2, oracle=False
        )
        oracle = evaluate_dynamic_placement(
            mt, 4, NeverMigrate(), cm, num_epochs=2, oracle=True
        )
        assert oracle.total_cost <= reactive.total_cost + 1e-9

    def test_stable_workload_dynamic_not_catastrophic(self, cm):
        """On a stable private workload dynamic placement must stay
        within a small factor of static (the re-homing is wasted but
        bounded)."""
        mt = make_workload("private", num_threads=4, accesses_per_thread=200)
        res = evaluate_dynamic_placement(mt, 4, AlwaysMigrate(), cm, num_epochs=4)
        # private data: both static and dynamic should be ~zero cost
        assert res.total_cost <= res.static_cost + 1.0

    def test_improvement_metric(self, cm):
        mt = make_workload("uniform", num_threads=4, accesses_per_thread=100)
        res = evaluate_dynamic_placement(mt, 4, NeverMigrate(), cm, num_epochs=2)
        assert res.improvement_over_static > 0
