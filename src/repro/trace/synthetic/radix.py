"""RADIX-sort workload (SPLASH-2 RADIX stand-in).

Per digit pass, each thread:

1. reads its own key partition sequentially and builds a **private**
   histogram (local runs);
2. participates in a prefix-sum over the **shared** histogram array
   (short remote read-modify-write runs at a few cores);
3. permutes: re-reads its keys and writes each to its destination
   bucket in the shared output array — writes scatter across *all*
   threads' output partitions, giving many remote runs of length 1.

RADIX is the adversarial workload for migration-only EM²: the permute
phase's isolated scattered writes are exactly the accesses remote
access handles well (a write needs no data back, only an ack).
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("radix", "RADIX-sort scatter workload (SPLASH-2 stand-in)")
class RadixGenerator(WorkloadGenerator):
    name = "radix"

    def __init__(
        self,
        num_threads: int = 64,
        keys_per_thread: int = 512,
        radix_bits: int = 4,
        passes: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if keys_per_thread <= 0 or passes <= 0:
            raise ConfigError("keys_per_thread and passes must be positive")
        if not (1 <= radix_bits <= 16):
            raise ConfigError("radix_bits must be in [1, 16]")
        self.kpt = keys_per_thread
        self.radix = 1 << radix_bits
        self.passes = passes
        total = num_threads * keys_per_thread
        self.keys_base = self.space.shared_region("keys", total)
        self.out_base = self.space.shared_region("out", total)
        self.hist_base = self.space.shared_region("histogram", num_threads * self.radix)
        # the keys themselves (values determine scatter destinations)
        self._keys = self.rng.integers(0, 1 << 30, size=total, dtype=np.int64)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "keys_per_thread": self.kpt,
            "radix": self.radix,
            "passes": self.passes,
        }

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(self.kpt, dtype=np.int64)
        b.emit(self.keys_base + thread * self.kpt + words, writes=1, icounts=1)
        b.emit(self.out_base + thread * self.kpt + words, writes=1, icounts=1)
        hwords = np.arange(self.radix, dtype=np.int64)
        b.emit(self.hist_base + thread * self.radix + hwords, writes=1, icounts=1)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        my_keys = self._keys[thread * self.kpt : (thread + 1) * self.kpt]
        key_addrs = self.keys_base + thread * self.kpt + np.arange(self.kpt, dtype=np.int64)
        for p in range(self.passes):
            digits = (my_keys >> (p * (self.radix.bit_length() - 1))) % self.radix
            # 1. local histogram: read key, bump private counter
            priv_hist = self.space.private_base(thread) + digits
            seq = np.column_stack([key_addrs, priv_hist, priv_hist]).ravel()
            writes = np.tile(np.array([0, 0, 1], dtype=np.uint8), self.kpt)
            b.emit(seq, writes=writes, icounts=2)
            # 2. prefix sum over shared histogram: touch each peer's bucket
            # row (steps 1, 2, 4), then write our own — one phase column
            rows = np.array(
                [(thread + s) % self.num_threads for s in (1, 2, 4)] + [thread],
                dtype=np.int64,
            )
            hwords = np.arange(self.radix, dtype=np.int64)
            hw = (self.hist_base + rows[:, None] * self.radix + hwords[None, :]).ravel()
            b.emit(
                hw,
                writes=np.repeat(np.array([0, 0, 0, 1], dtype=np.uint8), self.radix),
                icounts=1,
            )
            # 3. permute: read own key (local), scatter-write to global out
            dest_thread = (my_keys % self.num_threads).astype(np.int64)
            dest_slot = (my_keys // self.num_threads) % self.kpt
            dest = self.out_base + dest_thread * self.kpt + dest_slot
            seq = np.column_stack([key_addrs, dest]).ravel()
            writes = np.tile(np.array([0, 1], dtype=np.uint8), self.kpt)
            b.emit(seq, writes=writes, icounts=2)
            # next pass works on the permuted ordering; re-derive keys
            my_keys = np.sort(my_keys) if p % 2 else my_keys[::-1].copy()
