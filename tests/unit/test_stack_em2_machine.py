"""Unit tests for the behavioral stack-EM² machine (§4)."""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.em2 import EM2Machine
from repro.core.stack_em2 import FixedDepth, NeedBasedDepth, StackEM2Machine
from repro.placement import first_touch, striped
from repro.stackmachine import stack_workload
from repro.trace.events import MultiTrace, make_trace
from repro.util.errors import ConfigError, TraceFormatError
from repro.verify import audit_message_conservation, audit_thread_completion


def _stack_mt(*threads):
    built = []
    for addrs, spops, spushes in threads:
        built.append(
            make_trace(
                addrs,
                icounts=[1] * len(addrs),
                spops=spops,
                spushes=spushes,
            )
        )
    return MultiTrace(threads=built)


@pytest.fixture
def cfg():
    return small_test_config(num_cores=4, guest_contexts=2)


class TestBasics:
    def test_plain_trace_rejected(self, cfg):
        mt = MultiTrace(threads=[make_trace([0])])
        with pytest.raises(TraceFormatError, match="stack-annotated"):
            StackEM2Machine(mt, striped(4), cfg, FixedDepth(2))

    def test_local_run_free_of_migrations(self, cfg):
        mt = _stack_mt(([0, 1, 2], [1, 1, 1], [1, 1, 1]))
        m = StackEM2Machine(mt, striped(4, block_words=16), cfg, FixedDepth(2))
        m.run()
        assert m.results()["migrations"] == 0

    def test_remote_access_migrates_with_stack_context(self, cfg):
        mt = _stack_mt(([16], [1], [1]))
        m = StackEM2Machine(mt, striped(4, block_words=16), cfg, FixedDepth(3))
        m.run()
        r = m.results()
        assert r["migrations"] == 1
        assert r["migrated_stack_words"] == 3
        # context on the wire is stack-sized, not register-file-sized
        flits = m.network.stats.counters["flits.MIGRATION"]
        assert flits < cfg.noc.message_flits(cfg.context.full_context_bits)

    def test_invalid_window_rejected(self, cfg):
        mt = _stack_mt(([0], [0], [0]))
        with pytest.raises(ConfigError):
            StackEM2Machine(mt, striped(4), cfg, FixedDepth(2), window=0)


class TestForcedReturns:
    def test_underflow_bounces_home(self, cfg):
        # access 0: migrate out carrying 0; access 1: segment pops 3 -> underflow
        mt = _stack_mt(([16, 16], [0, 3], [0, 0]))
        m = StackEM2Machine(mt, striped(4, block_words=16), cfg, FixedDepth(0))
        m.run()
        r = m.results()
        assert r["underflow_returns"] >= 1
        assert r["migrations"] >= 3  # out, forced home, out again

    def test_overflow_bounces_home(self, cfg):
        # carrying the full window leaves no room for a pushing segment
        mt = _stack_mt(([16, 16], [0, 0], [0, 4]))
        m = StackEM2Machine(
            mt, striped(4, block_words=16), cfg, FixedDepth(4), window=4
        )
        m.run()
        assert m.results()["overflow_returns"] >= 1

    def test_adequate_depth_avoids_returns(self, cfg):
        mt = _stack_mt(([16, 16], [0, 3], [0, 0]))
        m = StackEM2Machine(
            mt, striped(4, block_words=16), cfg, FixedDepth(4), window=8
        )
        m.run()
        r = m.results()
        assert r["underflow_returns"] == 0
        assert r["overflow_returns"] == 0
        assert r["migrations"] == 1

    def test_flush_on_partial_carry_between_guests(self, cfg):
        # guest->guest migration carrying less than held flushes the rest
        mt = _stack_mt(([16, 32], [0, 0], [0, 0]))
        m = StackEM2Machine(
            mt, striped(4, block_words=16), cfg, FixedDepth(4), window=8
        )
        # first migration carries 4 from native; second (guest->guest)
        # also wants 4 but FixedDepth(4) == held, no flush. Use a
        # scheme that reduces depth:
        class Shrinking(FixedDepth):
            def __init__(self):
                super().__init__(0)
                self.calls = 0

            def carry_depth(self, tid, idx, held, window):
                self.calls += 1
                return 4 if self.calls == 1 else 1

        m = StackEM2Machine(
            mt, striped(4, block_words=16), cfg, Shrinking(), window=8
        )
        m.run()
        assert m.results()["flushes"] == 1


class TestSchemes:
    def test_full_lookahead_no_underflow_when_need_fits_window(self, cfg):
        """When every thread's whole-future stack requirement fits the
        window, full-lookahead carries eliminate underflow returns.

        (Thread 0's init phase in stack_workload has a cumulative
        drawdown larger than any window — its mid-run refills are
        *mandatory* §4 behaviour, so it is excluded here; the kernel
        threads' requirement is ~4 <= window 8.)"""
        full = stack_workload("dot", num_threads=4, n=24, shared_fraction=1.0)
        mt = MultiTrace(
            threads=list(full.threads[1:]),
            thread_native_core=[1, 2, 3],
            name="dot-kernels",
        )
        pl = first_touch(full, 4)  # placement from the full run (incl. init)
        m = StackEM2Machine(
            mt, pl, cfg, NeedBasedDepth(mt, lookahead=200), window=8
        )
        m.run()
        assert m.results()["underflow_returns"] == 0

    def test_requirement_beyond_window_forces_refills(self, cfg):
        """The dual claim: a segment chain whose cumulative drawdown
        exceeds the window forces returns regardless of the scheme —
        §4's automatic migrate-back, not a scheme deficiency."""
        # drain 3 entries per segment, 4 segments: requirement 12 > window 8
        mt = _stack_mt(
            ([16, 16, 16, 16, 16], [0, 3, 3, 3, 3], [0, 0, 0, 0, 0])
        )
        m = StackEM2Machine(
            mt, striped(4, block_words=16), cfg,
            NeedBasedDepth(mt, lookahead=200), window=8,
        )
        m.run()
        assert m.results()["underflow_returns"] >= 1

    def test_need_based_beats_zero_depth(self, cfg):
        """Even short lookahead cuts forced returns vs carrying nothing."""
        mt = stack_workload("dot", num_threads=4, n=24, shared_fraction=1.0)
        pl = first_touch(mt, 4)
        zero = StackEM2Machine(mt, pl, cfg, FixedDepth(0), window=8)
        zero.run()
        need = StackEM2Machine(
            mt, pl, cfg, NeedBasedDepth(mt, lookahead=4), window=8
        )
        need.run()
        assert (
            need.results()["underflow_returns"]
            < max(zero.results()["underflow_returns"], 1)
        )

    def test_carry_clamped_when_scheme_overreaches(self, cfg):
        mt = _stack_mt(([16, 32], [0, 0], [0, 0]))
        m = StackEM2Machine(
            mt, striped(4, block_words=16), cfg, FixedDepth(8), window=8
        )
        m.run()
        # second migration holds only what the first carried... held==8
        # from native; guest->guest holds 8, carry 8: no clamp. Build a
        # case with a popping segment first:
        mt2 = _stack_mt(([16, 32], [0, 6], [0, 0]))
        m2 = StackEM2Machine(
            mt2, striped(4, block_words=16), cfg, FixedDepth(8), window=8
        )
        m2.run()
        assert m2.results()["carry_clamped"] >= 1

    def test_negative_fixed_depth_rejected(self):
        with pytest.raises(ConfigError):
            FixedDepth(-1)


class TestReplayDepth:
    def test_planned_depths_are_used(self, cfg):
        from repro.core.costs import CostModel
        from repro.core.stack_em2 import ReplayDepth

        mt = _stack_mt(([16, 16, 0], [0, 1, 1], [2, 1, 0]))
        pl = striped(4, block_words=16)
        cm = CostModel(cfg)
        scheme = ReplayDepth.from_dp(mt, pl, cm, max_depth=8)
        m = StackEM2Machine(mt, pl, cfg, scheme, window=8)
        m.run()
        r = m.results()
        # with one thread and no disturbances, carried words match the plan
        planned = sum(d for d in scheme.depths[0] if d >= 0)
        assert r["migrated_stack_words"] == planned

    def test_fallback_covers_unplanned_migrations(self, cfg):
        """Under eviction pressure the machine migrates where the plan
        did not; the fallback must answer and the run still drains."""
        from repro.core.costs import CostModel
        from repro.core.stack_em2 import ReplayDepth

        cfg1 = small_test_config(num_cores=4, guest_contexts=1)
        mt = stack_workload("dot", num_threads=4, n=16, shared_fraction=1.0)
        pl = first_touch(mt, 4)
        scheme = ReplayDepth.from_dp(mt, pl, CostModel(cfg1), max_depth=8)
        m = StackEM2Machine(mt, pl, cfg1, scheme, window=8)
        m.run()
        audit_thread_completion(m)

    def test_replay_competitive_with_fixed_depths(self, cfg):
        from repro.core.costs import CostModel
        from repro.core.stack_em2 import ReplayDepth

        mt = stack_workload("reduce", num_threads=4, n=24, shared_fraction=1.0)
        pl = first_touch(mt, 4)
        cm = CostModel(cfg)
        replay = StackEM2Machine(
            mt, pl, cfg, ReplayDepth.from_dp(mt, pl, cm, max_depth=8), window=8
        )
        replay.run()
        worst = None
        for d in (0, 8):
            fixed = StackEM2Machine(mt, pl, cfg, FixedDepth(d), window=8)
            fixed.run()
            flits = fixed.network.stats.counters["flits.MIGRATION"]
            worst = flits if worst is None else max(worst, flits)
        assert (
            replay.network.stats.counters["flits.MIGRATION"] <= worst
        )


class TestVsRegisterFileEM2:
    def test_stack_traffic_far_below_register_em2(self, cfg):
        """§4's headline, behaviorally: same workload, same protocol,
        a fraction of the migration traffic."""
        mt = stack_workload("reduce", num_threads=4, n=32, shared_fraction=1.0)
        pl = first_touch(mt, 4)
        stack = StackEM2Machine(mt, pl, cfg, NeedBasedDepth(mt), window=8)
        stack.run()
        reg = EM2Machine(mt, pl, cfg)
        reg.run()
        s_flits = stack.network.stats.counters["flits.MIGRATION"]
        r_flits = reg.network.stats.counters["flits.MIGRATION"]
        assert s_flits < 0.6 * r_flits

    def test_audits_clean(self, cfg):
        mt = stack_workload("hist", num_threads=4, n=24, shared_fraction=0.75)
        pl = first_touch(mt, 4)
        m = StackEM2Machine(mt, pl, cfg, NeedBasedDepth(mt), window=8)
        m.run()
        audit_thread_completion(m)
        # note: flush messages ride the eviction vnet by design, so
        # message conservation for evictions does not apply here;
        # migrations must still balance
        assert (
            m.network.message_count()
            >= m.stats.counters["migrations"]
        )
