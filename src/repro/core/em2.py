"""Pure EM²: every non-local access migrates (Figure 1, executable).

The access flow implemented here is exactly the paper's Figure 1:

    memory access in core A
      -> address cacheable in core A?  yes -> access memory, continue
      -> no: migrate thread to home core
           -> # threads exceeded? yes -> migrate another thread back
              to its native core (eviction, separate virtual network)
           -> access memory and continue execution

Sequential consistency holds trivially: each address is only ever
accessed at its home core, so there is a single serialization point
per address (asserted by the conformance tests, not by runtime
checks — the machine cannot even express a remote read).
"""

from __future__ import annotations

from repro.arch.noc.deadlock import VC_PLAN_EM2
from repro.core.machine import MigrationMachineBase, ThreadState
from repro.registry import MACHINES


class EM2Machine(MigrationMachineBase):
    """Migration-only distributed shared memory."""

    name = "em2"
    vc_plan = VC_PLAN_EM2

    def _handle_nonlocal(
        self, th: ThreadState, addr: int, write: bool, home: int, delay: float
    ) -> None:
        # Fig. 1 "no" branch: migrate to the home core; the pending
        # access re-executes there (idx is not advanced).
        self._migrate(th, home, after_delay=delay)


@MACHINES.register("em2", "pure migration machine (detailed DES, Figure 1)")
def _run_em2(trace, placement, config, scheme=None, topology=None, **params):
    m = EM2Machine(trace, placement, config, topology=topology, **params)
    m.run()
    return m.results()
