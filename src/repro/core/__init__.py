"""The paper's contribution: EM² and its variants.

* :mod:`repro.core.costs` — the simplified analytical cost model (§3):
  migration and remote-access cost matrices over the topology.
* :mod:`repro.core.decision` — migrate-vs-remote-access decision
  schemes, including the optimal offline dynamic program.
* :mod:`repro.core.evaluation` — fast trace evaluators applying a
  scheme to whole applications (the paper's O(N) decision-cost
  procedure), plus run-length/migration statistics.
* :mod:`repro.core.em2`, :mod:`repro.core.em2ra`,
  :mod:`repro.core.remote_access` — behavioral discrete-event machines
  with guest contexts, evictions, and NoC transport (Figures 1 and 3
  as executable protocols).
"""

from repro.core.costs import CostModel
from repro.core.decision import (
    AlwaysMigrate,
    DecisionScheme,
    DistanceThreshold,
    HistoryRunLength,
    NeverMigrate,
    OptimalResult,
    optimal_decisions,
)
from repro.core.evaluation import EvalResult, evaluate_scheme, evaluate_thread
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.remote_access import RemoteAccessMachine

__all__ = [
    "CostModel",
    "DecisionScheme",
    "AlwaysMigrate",
    "NeverMigrate",
    "DistanceThreshold",
    "HistoryRunLength",
    "optimal_decisions",
    "OptimalResult",
    "evaluate_scheme",
    "evaluate_thread",
    "EvalResult",
    "EM2Machine",
    "EM2RAMachine",
    "RemoteAccessMachine",
]
