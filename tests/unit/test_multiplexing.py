"""Unit tests for instruction-granularity context multiplexing (§2)."""

import pytest

from repro.arch.config import small_test_config
from repro.core.em2 import EM2Machine
from repro.placement import striped
from repro.trace.events import MultiTrace, make_trace
from repro.verify import full_machine_audit


def _converging_trace():
    """Threads 1..3 all compute at core 0 (guests) with heavy icounts."""
    t0 = make_trace([0] * 10, icounts=10)
    others = [make_trace([0] * 10, icounts=10) for _ in range(3)]
    return MultiTrace(threads=[t0] + others)


class TestMultiplexing:
    def test_disabled_by_default(self):
        cfg = small_test_config(num_cores=4, guest_contexts=4)
        assert cfg.multiplex_contexts is False

    def test_shared_pipeline_slows_completion(self):
        times = {}
        for mux in (False, True):
            cfg = small_test_config(
                num_cores=4, guest_contexts=4, multiplex_contexts=mux
            )
            m = EM2Machine(_converging_trace(), striped(4, block_words=16), cfg)
            m.run()
            times[mux] = m.completion_time
        assert times[True] > times[False]

    def test_isolated_thread_unaffected(self):
        """A lone thread on its core pays no multiplexing penalty."""
        mt = MultiTrace(threads=[make_trace([0] * 10, icounts=10)])
        times = {}
        for mux in (False, True):
            cfg = small_test_config(
                num_cores=4, guest_contexts=2, multiplex_contexts=mux
            )
            m = EM2Machine(mt, striped(4, block_words=16), cfg)
            m.run()
            times[mux] = m.completion_time
        assert times[True] == times[False]

    def test_protocol_still_audits_clean(self):
        cfg = small_test_config(num_cores=4, guest_contexts=2,
                                multiplex_contexts=True)
        m = EM2Machine(_converging_trace(), striped(4, block_words=16), cfg)
        m.run()
        full_machine_audit(m)
