"""Experiment ex-arch: EM² vs EM²-RA vs RA-only vs directory CC.

The comparison the announcement inherits from its companion papers
(§2): "EM² can potentially outperform traditional directory-based
cache coherence by avoiding the data replication and loss of effective
cache capacity of CC and by enabling data access through a one-way
migration protocol. However, migrations can negatively affect
performance..."

Run the full architecture matrix over the SPLASH-like workloads with
the behavioral machines (EM² family) and the directory simulator (CC),
reporting completion time, traffic, and energy. Shape assertions:

* EM²-RA never moves more traffic than pure EM²;
* CC pays invalidations on write-shared workloads, EM² pays none;
* EM² caches each line once (no replication) — its aggregate cache
  occupancy of shared lines is lower than CC's.
"""

import pytest

from conftest import emit
from repro.analysis.energy import EnergyModel
from repro.analysis.reports import format_table
from repro.arch.config import small_test_config
from repro.coherence import DirectoryCCSimulator
from repro.core.costs import CostModel
from repro.core.decision import HistoryRunLength, optimal_replay_for
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.remote_access import RemoteAccessMachine
from repro.placement import first_touch
from repro.trace.synthetic import make_workload

WORKLOADS = {
    "ocean": dict(name="ocean", num_threads=16, grid_n=50, iterations=1),
    "fft": dict(name="fft", num_threads=16, points_per_thread=64,
                butterfly_stages=2),
    "lu": dict(name="lu", num_threads=16, blocks=6, block_words=32),
    "radix": dict(name="radix", num_threads=16, keys_per_thread=96, passes=1),
}

CFG = small_test_config(num_cores=16, guest_contexts=4)
ENERGY = EnergyModel()


def _arch_matrix(trace, placement):
    cm = CostModel(CFG)
    be = cm.break_even_run_length(0, CFG.num_cores - 1)
    rows = []

    em2 = EM2Machine(trace, placement, CFG)
    em2.run()
    rows.append(_row("EM2", em2.results()))

    hybrid = EM2RAMachine(
        trace, placement, CFG, scheme=HistoryRunLength(threshold=be)
    )
    hybrid.run()
    rows.append(_row("EM2-RA (history)", hybrid.results()))

    optimal = EM2RAMachine(
        trace, placement, CFG, scheme=optimal_replay_for(trace, placement, cm)
    )
    optimal.run()
    rows.append(_row("EM2-RA (optimal)", optimal.results()))

    ra = RemoteAccessMachine(trace, placement, CFG)
    ra.run()
    rows.append(_row("RA-only", ra.results()))

    cc = None
    for protocol in ("msi", "mesi"):
        sim = DirectoryCCSimulator(trace, placement, CFG, protocol=protocol)
        res = sim.run()
        flit_hops = sim.stats.counters["flit_hops"]
        rows.append(
            {
                "architecture": f"directory-CC ({protocol.upper()})",
                "completion": res.completion_time,
                "traffic_kbit_hops": flit_hops * CFG.noc.flit_bits / 1000,
                "migrations": 0,
                "remote_ops": res.stats.get("count.misses", 0),
                "invalidations": res.invalidations,
                "energy_uJ": ENERGY.network_energy(flit_hops * CFG.noc.flit_bits)
                / 1e6,
            }
        )
        if protocol == "msi":
            cc = sim
    return rows, em2, cc


def _row(name, r):
    return {
        "architecture": name,
        "completion": r["completion_time"],
        "traffic_kbit_hops": r["flit_hops"] * CFG.noc.flit_bits / 1000,
        "migrations": r["migrations"],
        "remote_ops": r["remote_accesses"],
        "invalidations": 0,
        "energy_uJ": ENERGY.network_energy(r["flit_hops"] * CFG.noc.flit_bits) / 1e6,
    }


@pytest.mark.parametrize("wl", sorted(WORKLOADS))
def test_architecture_matrix(benchmark, wl):
    params = dict(WORKLOADS[wl])
    name = params.pop("name")
    trace = make_workload(name, **params)
    placement = first_touch(trace, CFG.num_cores)

    rows, em2, cc = benchmark.pedantic(
        _arch_matrix, args=(trace, placement), rounds=1, iterations=1
    )
    emit(f"ex-arch [{wl}]: architecture comparison (16 cores)", format_table(rows))

    by = {r["architecture"]: r for r in rows}
    # the optimally-decided hybrid replaces exactly the unprofitable
    # migrations: its traffic must not exceed pure EM2's (the history
    # scheme is reported but unconstrained — it can and does lose on
    # workloads it mispredicts, which is the point of the upper bound)
    assert (
        by["EM2-RA (optimal)"]["traffic_kbit_hops"]
        <= by["EM2"]["traffic_kbit_hops"] * 1.05
    )
    # EM2 never invalidates; CC does whenever writes share lines
    assert by["EM2"]["invalidations"] == 0
    if wl in ("ocean", "radix", "lu"):
        assert by["directory-CC (MSI)"]["invalidations"] > 0
        assert by["directory-CC (MESI)"]["invalidations"] > 0


def test_no_replication_under_em2(benchmark):
    """EM² keeps one copy per line; CC replicates read-shared lines."""
    trace = make_workload("hotspot", num_threads=8, accesses_per_thread=200,
                          hot_fraction=0.6, burst=4, seed=2)
    cfg = small_test_config(num_cores=8, guest_contexts=4)
    placement = first_touch(trace, 8)

    def run_both():
        em2 = EM2Machine(trace, placement, cfg)
        em2.run()
        cc = DirectoryCCSimulator(trace, placement, cfg)
        cc.run()
        # how many cores hold a copy of the hot block?
        from repro.trace.synthetic.micro import HotspotGenerator

        hot_word = HotspotGenerator(
            num_threads=8, accesses_per_thread=200, hot_fraction=0.6, burst=4, seed=2
        ).hot_base
        byte_addr = hot_word * cfg.word_bytes
        em2_copies = sum(
            1 for h in em2.caches if h.l1.probe(byte_addr) or h.l2.probe(byte_addr)
        )
        cc_copies = sum(1 for c in cc.caches if c.probe(byte_addr) is not None)
        return em2_copies, cc_copies

    em2_copies, cc_copies = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "ex-arch: copies of the hot line at end of run",
        format_table(
            [
                {"architecture": "EM2", "copies": em2_copies},
                {"architecture": "directory-CC", "copies": cc_copies},
            ]
        ),
    )
    assert em2_copies <= 1  # home-only caching
