"""Unit tests for compiled_workload (compiler -> machine -> MultiTrace)."""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import fixed_depth_cost, optimal_stack_depths
from repro.placement import first_touch
from repro.stackmachine import compiled_workload
from repro.trace.events import STACK_TRACE_DTYPE
from repro.trace.synthetic.base import PRIVATE_BASE, PRIVATE_SPAN, SHARED_BASE

SUM_SRC = """
    acc = 0; i = 0;
    while (i < n) { acc = acc + load(base + i); i = i + 1; }
    store(out, acc);
"""


def _constants(t):
    return {
        "base": SHARED_BASE,
        "n": 16,
        "out": PRIVATE_BASE + t * PRIVATE_SPAN,
    }


def _memory(t):
    return {SHARED_BASE + i: i for i in range(16)}


class TestCompiledWorkload:
    def test_produces_stack_multitrace(self):
        mt = compiled_workload(
            SUM_SRC, num_threads=4, constants_for=_constants, memory_for=_memory
        )
        assert mt.num_threads == 4
        assert mt.is_stack
        assert all(tr.dtype == STACK_TRACE_DTYPE for tr in mt.threads)

    def test_shared_reads_visible_to_placement(self):
        mt = compiled_workload(
            SUM_SRC, num_threads=4, constants_for=_constants, memory_for=_memory
        )
        pl = first_touch(mt, 4)
        homes = pl.home_of(mt.threads[2]["addr"])
        assert (homes != 2).any()  # the shared array is remote for thread 2

    def test_feeds_stack_depth_dp(self):
        cm = CostModel(small_test_config(num_cores=4))
        mt = compiled_workload(
            SUM_SRC, num_threads=4, constants_for=_constants, memory_for=_memory
        )
        pl = first_touch(mt, 4)
        tr = mt.threads[3]
        homes = pl.home_of(tr["addr"])
        opt = optimal_stack_depths(homes, tr["spop"], tr["spush"], 3, cm, max_depth=8)
        fix = fixed_depth_cost(homes, tr["spop"], tr["spush"], 3, cm, 8, max_depth=8)
        assert opt.total_cost <= fix.total_cost + 1e-9

    def test_locals_frame_is_private(self):
        mt = compiled_workload(
            SUM_SRC, num_threads=2, constants_for=_constants, memory_for=_memory
        )
        pl = first_touch(mt, 2)
        # frame accesses (above PRIVATE_BASE + span/2) home at the owner
        for t in range(2):
            addrs = mt.threads[t]["addr"].astype(np.int64)
            frame_lo = PRIVATE_BASE + t * PRIVATE_SPAN + PRIVATE_SPAN // 2
            frame = addrs[(addrs >= frame_lo) & (addrs < frame_lo + 1024)]
            assert frame.size > 0
            assert (pl.home_of(frame) == t).all()

    def test_default_no_constants_runs(self):
        mt = compiled_workload("x = 1; store(100, x);", num_threads=2)
        assert mt.total_accesses > 0
