"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``info`` — version, available workloads and schemes.
* ``list`` — every registered machine, scheme, placement, workload,
  and topology with one-line descriptions.
* ``workload`` — generate a synthetic workload and save it as ``.npz``.
* ``fig2`` — print the Figure 2 run-length table for an ocean run.
* ``evaluate`` — score a decision scheme on a workload (or saved trace).
* ``optimal`` — run the §3 optimal DP on one thread and summarize.
* ``shootout`` — analytical EM² / RA-only / history / optimal comparison.
* ``trace`` — manage the on-disk trace store (``build``/``ls``/``gc``).
* ``faults`` — fault-injection sweep (machines × drop rates) with a
  zero-fault golden-parity check; ``--smoke`` is the CI gate.
* ``chaos-soak`` — run the sweep farm under seeded *host*-level chaos
  (resets, partial frames, stalls, partitions) and gate on row streams
  staying bit-identical to a clean serial run; ``--smoke`` is the CI
  gate.

Every command resolves component names through the registries
(:mod:`repro.registry`) and constructs experiments through
:class:`~repro.spec.ExperimentSpec` + :mod:`repro.runner` — the same
path the benches and golden fixtures use. Unknown names raise
:class:`~repro.util.errors.ConfigError` listing the registered
options; exit status is nonzero on invalid arguments so the CLI is
scriptable.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import __version__
from repro.analysis.cache import ResultCache
from repro.analysis.reports import format_table, runlength_table
from repro.analysis.sweep import sweep_specs
from repro.core.decision.optimal import optimal_cost, optimal_decisions
from repro.registry import (
    ALL_REGISTRIES,
    MACHINES,
    PLACEMENTS,
    SCHEMES,
    WORKLOADS,
)
from repro.runner import build, build_scheme, build_workload
from repro.spec import (
    ExperimentSpec,
    MachineSpec,
    PlacementSpec,
    SchemeSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.trace.io import save_multitrace
from repro.trace.runlength import (
    fraction_single_access_runs,
    merge_histograms,
    run_length_histogram,
)
from repro.util.errors import ConfigError, ReproError


def _parse_params(pairs: list[str]) -> dict:
    """key=value pairs; values parsed as int, then float, else str."""
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--param expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        for cast in (int, float):
            try:
                out[key] = cast(raw)
                break
            except ValueError:
                continue
        else:
            out[key] = raw
    return out


def _workload_spec(args) -> WorkloadSpec:
    """The workload the command line describes: a saved trace by path,
    or a registered generator by name (validated eagerly so typos fail
    with the registry's sorted-options message, not mid-sweep)."""
    if getattr(args, "trace", None):
        return WorkloadSpec(name="trace-file", trace_path=args.trace)
    WORKLOADS.entry(args.workload)  # raises ConfigError listing options
    params = _parse_params(getattr(args, "param", []) or [])
    params.setdefault("num_threads", args.threads)
    return WorkloadSpec(name=args.workload, params=params)


def _base_spec(args, machine: str = "analytical") -> ExperimentSpec:
    """The ExperimentSpec shared by every point of a command's sweep."""
    PLACEMENTS.entry(args.placement)
    topology = getattr(args, "topology", None) or "auto"
    return ExperimentSpec(
        workload=_workload_spec(args),
        machine=MachineSpec(
            name=machine,
            cores=args.cores,
            preset=getattr(args, "preset", "default"),
        ),
        placement=PlacementSpec(name=args.placement),
        topology=TopologySpec(name=topology),
    )


def _scheme_names(args) -> list[str]:
    if args.scheme == "all":
        return SCHEMES.names()
    SCHEMES.entry(args.scheme)  # raises ConfigError listing options
    return [args.scheme]


def _cache_for(args) -> ResultCache | None:
    """Build the result cache implied by --cache-dir/--no-cache.

    Returns None when caching is off (no directory configured, or
    --no-cache given — the latter bypasses both reads and writes).
    """
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR")
    if cache_dir is None or getattr(args, "no_cache", False):
        return None
    return ResultCache(cache_dir)


def _trace_cache_extra(spec: ExperimentSpec, trace) -> dict | None:
    """Extra cache-key context for path-referenced traces: the spec
    carries only the file path, so fold the loaded trace's identity in
    (a generated workload is fully described by the spec — no extra)."""
    if spec.workload.trace_path is None:
        return None
    return {
        "trace": {
            "name": trace.name,
            "params": trace.params,
            "threads": trace.num_threads,
            "accesses": trace.total_accesses,
            "native_cores": list(trace.thread_native_core),
        }
    }


# ---------------------------------------------------------------- commands
def cmd_info(args) -> int:
    print(f"repro {__version__} — EM2 (SPAA'11) reproduction")
    print(f"workloads: {', '.join(WORKLOADS.names())}")
    print(f"schemes:   {', '.join(SCHEMES.names())}")
    print(f"placements: {', '.join(PLACEMENTS.names())}")
    print(f"machines:  {', '.join(MACHINES.names())}")
    return 0


def cmd_list(args) -> int:
    """Enumerate every registry, then the CLI commands themselves."""
    for family, registry in ALL_REGISTRIES.items():
        print(f"{family}:")
        width = max((len(e.name) for e in registry.items()), default=0)
        for entry in registry.items():
            print(f"  {entry.name:<{width}}  {entry.description}")
    sub = next(
        a
        for a in build_parser()._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    print("commands:")
    width = max(len(ca.dest) for ca in sub._choices_actions)
    for ca in sub._choices_actions:
        print(f"  {ca.dest:<{width}}  {ca.help}")
    print(
        "farm: run `repro worker --listen HOST:PORT` on each host, then "
        "pass --farm HOST:PORT,... to evaluate/shootout/faults"
    )
    return 0


def cmd_worker(args) -> int:
    from repro.analysis.worker import main as worker_main

    return worker_main(args)


def cmd_workload(args) -> int:
    trace = build_workload(_workload_spec(args))
    path = save_multitrace(trace, args.out)
    s = trace.summary()
    print(format_table([s]))
    print(f"saved to {path}")
    return 0


def cmd_fig2(args) -> int:
    spec = ExperimentSpec(
        workload=WorkloadSpec(
            name="ocean",
            params=dict(
                num_threads=args.threads, grid_n=args.grid, iterations=args.iterations
            ),
        ),
        machine=MachineSpec(cores=args.cores),
        placement=PlacementSpec(name="first-touch"),
    )
    built = build(spec)
    trace, placement = built.trace, built.placement
    hists = [
        run_length_histogram(placement.home_of(tr["addr"]), trace.thread_native_core[t])
        for t, tr in enumerate(trace.threads)
    ]
    hist = merge_histograms(hists)
    print(runlength_table(hist, max_rows=args.rows))
    print(f"\nfraction at run length 1: {fraction_single_access_runs(hist):.3f}")
    return 0


def _farm_of(args) -> dict | None:
    """The ``--farm`` flag (plus its companions) as a farm config dict
    for :func:`repro.analysis.farm.normalize_farm` (None when absent).

    ``--auth-token`` falls back to ``$REPRO_FARM_TOKEN`` so the secret
    can stay out of shell history; ``--heartbeat``/``--worker-timeout``
    only appear in the config when given, so the farm's own validated
    defaults apply otherwise."""
    raw = getattr(args, "farm", None)
    if not raw:
        return None
    cfg: dict = {"addrs": [a.strip() for a in raw.split(",") if a.strip()]}
    token = getattr(args, "auth_token", None) or os.environ.get("REPRO_FARM_TOKEN")
    if token:
        cfg["auth_token"] = token
    if getattr(args, "heartbeat", None) is not None:
        cfg["heartbeat"] = args.heartbeat
    if getattr(args, "worker_timeout", None) is not None:
        cfg["liveness"] = args.worker_timeout
    return cfg


def cmd_evaluate(args) -> int:
    MACHINES.entry(args.machine)  # raises ConfigError listing options
    base = _base_spec(args, machine=args.machine)
    names = _scheme_names(args)
    cache = _cache_for(args)
    extra = _trace_cache_extra(base, build_workload(base.workload)) if cache else None
    rows = sweep_specs(
        base,
        [{"scheme": name} for name in names],
        workers=args.workers,
        cache=cache,
        cache_extra=extra,
        farm=_farm_of(args),
        resume=getattr(args, "resume", None),
    )
    if cache is not None:
        print(f"cache: {cache.stats()}", file=sys.stderr)
    if getattr(args, "csv", False):
        from repro.analysis.reports import to_csv

        print(to_csv(rows), end="")
    else:
        print(format_table(rows))
    return 0


def cmd_optimal(args) -> int:
    built = build(_base_spec(args))
    trace, placement, cost = built.trace, built.placement, built.cost
    tr = trace.threads[args.thread]
    homes = placement.home_of(tr["addr"])
    start = trace.thread_native_core[args.thread] % args.cores
    res = optimal_decisions(homes, tr["write"], start, cost)
    print(
        format_table(
            [
                {
                    "thread": args.thread,
                    "accesses": tr.size,
                    "optimal_cost": res.total_cost,
                    "migrations": res.num_migrations,
                    "remote_accesses": res.num_remote_accesses,
                    "local": res.num_local,
                    "end_core": res.end_core,
                }
            ]
        )
    )
    return 0


def cmd_shootout(args) -> int:
    base = _base_spec(args)
    built = build(base)
    trace, placement, cost = built.trace, built.placement, built.cost
    opt = sum(
        optimal_cost(
            placement.home_of(tr["addr"]),
            tr["write"],
            trace.thread_native_core[t] % args.cores,
            cost,
        )
        for t, tr in enumerate(trace.threads)
        if tr.size
    )
    cache = _cache_for(args)
    scheme_rows = sweep_specs(
        base,
        [{"scheme": name} for name in SCHEMES.names()],
        workers=args.workers,
        cache=cache,
        cache_extra=_trace_cache_extra(base, trace) if cache else None,
        farm=_farm_of(args),
        resume=getattr(args, "resume", None),
    )
    if cache is not None:
        print(f"cache: {cache.stats()}", file=sys.stderr)
    rows = [{"scheme": "optimal (DP)", "total_cost": opt, "x_optimal": 1.0}]
    for r in scheme_rows:
        rows.append(
            {
                "scheme": r["scheme"],
                "total_cost": r["total_cost"],
                "x_optimal": r["total_cost"] / opt if opt else float("nan"),
            }
        )
    print(format_table(rows))
    return 0


def cmd_stackdepth(args) -> int:
    from repro.core.decision.stack_optimal import fixed_depth_cost, optimal_stack_depths
    from repro.core.costs import CostModel
    from repro.arch.config import SystemConfig
    from repro.placement import first_touch
    from repro.stackmachine import stack_workload

    mt = stack_workload(args.kernel, num_threads=args.threads, n=args.n,
                        shared_fraction=0.75)
    config = SystemConfig(num_cores=args.cores)
    cost = CostModel(config)
    placement = first_touch(mt, args.cores)
    rows = []
    opt_cost = opt_bits = 0.0
    for t, tr in enumerate(mt.threads):
        homes = placement.home_of(tr["addr"])
        r = optimal_stack_depths(
            homes, tr["spop"], tr["spush"], t, cost, args.max_depth
        )
        opt_cost += r.total_cost
        opt_bits += r.migrated_bits
    rows.append({"depth": "optimal", "cost": opt_cost, "migrated_kbit": opt_bits / 1000})
    for depth in range(args.max_depth + 1):
        c = b = 0.0
        for t, tr in enumerate(mt.threads):
            homes = placement.home_of(tr["addr"])
            r = fixed_depth_cost(
                homes, tr["spop"], tr["spush"], t, cost, depth, args.max_depth
            )
            c += r.total_cost
            b += r.migrated_bits
        rows.append({"depth": depth, "cost": c, "migrated_kbit": b / 1000})
    print(format_table(rows))
    return 0


def _trace_store(args) -> "TraceStore":
    from repro.trace.store import TraceStore, _ENV_DIR

    root = args.dir or os.environ.get(_ENV_DIR)
    if root is None:
        root = os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")
    return TraceStore(root)


def cmd_trace(args) -> int:
    """Manage the content-addressed trace store (see repro.trace.store)."""
    store = _trace_store(args)
    if args.trace_cmd == "build":
        wspec = _workload_spec(args)
        if wspec.trace_path is not None:
            raise ReproError("`trace build` generates workloads; --trace is not valid here")
        key = wspec.cache_key()
        cached = store.get(key)
        if cached is not None:
            print(f"already cached: {store.path_for(key)}")
            return 0
        from repro.registry import WORKLOADS as _W

        mt = _W.get(wspec.name)(**wspec.params).generate()
        path = store.put(key, mt)
        print(format_table([mt.summary()]))
        print(f"stored to {path}")
        return 0
    if args.trace_cmd == "ls":
        entries = store.entries()
        if not entries:
            print(f"trace store {store.root} is empty")
            return 0
        rows = [
            {
                "name": e.get("name", "?"),
                "threads": e.get("threads", "?"),
                "accesses": e.get("accesses", "?"),
                "mbytes": round(e["bytes"] / 1e6, 2),
                "key": e["key"][:12],
            }
            for e in entries
        ]
        print(format_table(rows))
        print(f"{len(entries)} entries, {store.total_bytes() / 1e6:.1f} MB in {store.root}")
        return 0
    if args.trace_cmd == "gc":
        evicted = store.gc(int(args.max_mbytes * 1e6))
        print(
            f"evicted {len(evicted)} entries; "
            f"{store.total_bytes() / 1e6:.1f} MB remain in {store.root}"
        )
        return 0
    raise ReproError(f"unknown trace sub-command {args.trace_cmd!r}")


def cmd_dynamic(args) -> int:
    from repro.placement.dynamic import evaluate_dynamic_placement

    built = build(_base_spec(args))
    trace, cost = built.trace, built.cost
    res = evaluate_dynamic_placement(
        trace, args.cores, build_scheme(SchemeSpec(name="never-migrate"), cost), cost,
        num_epochs=args.epochs, oracle=args.oracle,
    )
    print(
        format_table(
            [
                {
                    "mode": "oracle" if args.oracle else "reactive",
                    "epochs": args.epochs,
                    "dynamic_cost": res.total_cost,
                    "static_cost": res.static_cost,
                    "gain": res.improvement_over_static,
                    "rehomed_kbit": res.rehoming_bits / 1000,
                }
            ]
        )
    )
    return 0


def cmd_bench(args) -> int:
    """Run the performance bench suite through the installed entry point.

    ``repro bench --quick`` is an alias for ``bench_perf.py --smoke`` —
    users get the throughput/parity report without knowing the
    ``benchmarks/`` layout. Runs in a subprocess so the bench's own
    ``main()`` (JSON report, exit status) is reused verbatim.
    """
    import subprocess
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    script = root / "benchmarks" / "bench_perf.py"
    if not script.exists():
        print(
            f"bench_perf.py not found at {script}; 'repro bench' needs a "
            "source checkout (benchmarks/ is not installed)",
            file=sys.stderr,
        )
        return 2
    cmd = [sys.executable, str(script)]
    if args.quick:
        cmd.append("--smoke")
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return subprocess.call(cmd, env=env, cwd=str(root))


def cmd_faults(args) -> int:
    """Fault-injection sweep: detailed machines × message drop rates.

    Every point runs the same workload under a seeded fault plane, so
    the table shows how completion time and the recovery ledger
    (retries, drops survived, stall cycles) scale with the drop rate.
    Zero-rate points are additionally compared field for field against
    a ``faults=None`` run of the same spec — the golden-parity gate
    proving the fault plane is free when disabled. ``--smoke`` pins a
    tiny deterministic configuration for CI and exits nonzero if the
    parity gate fails.
    """
    from repro.analysis.cache import canonical_rows
    from repro.runner import merge_spec, run

    if args.smoke:
        # tiny deterministic CI configuration; overrides the trace args
        args.workload, args.trace = "pingpong", None
        args.threads = args.cores = 4
        args.param = ["rounds=16"]
        args.machines = "em2,em2ra,cc-msi"
        args.rates = "0,0.1"
        args.preset = "small-test"
    machines = [m.strip() for m in args.machines.split(",") if m.strip()]
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    if not machines or not rates:
        raise ConfigError("faults sweep needs at least one machine and one rate")
    for name in machines:
        MACHINES.entry(name)  # raises ConfigError listing options
    SCHEMES.entry(args.scheme)
    base = _base_spec(args, machine=machines[0]).replace(
        machine=MachineSpec(
            name=machines[0], cores=args.cores, preset=args.preset
        ),
        scheme=SchemeSpec(name=args.scheme),
    )
    # --rates sweeps the model's drop knob: per-message for iid,
    # bad-state for the bursty Gilbert-Elliott channel
    rate_key = {"bursty": "drop_rate_bad"}.get(args.model, "drop_rate")
    points = [
        {
            "machine": {"name": name},
            "faults": {
                "name": args.model,
                "seed": args.fault_seed,
                "params": {
                    rate_key: rate,
                    "dup_rate": args.dup_rate,
                    "delay_rate": args.delay_rate,
                },
            },
        }
        for name in machines
        for rate in rates
    ]
    cache = _cache_for(args)
    extra = _trace_cache_extra(base, build_workload(base.workload)) if cache else None
    rows = sweep_specs(
        base,
        points,
        workers=args.workers,
        cache=cache,
        cache_extra=extra,
        point_timeout=args.point_timeout,
        farm=_farm_of(args),
        resume=getattr(args, "resume", None),
    )

    display = []
    parity_failures = []
    parity_checked = 0
    for point, row in zip(points, rows):
        name = point["machine"]["name"]
        rate = point["faults"]["params"][rate_key]
        disp = {
            "machine": name,
            "drop_rate": rate,
            "completion_time": row.get("completion_time"),
            "retries": row.get("retries", 0),
            "drops_survived": row.get("drops_survived", 0),
            "dup_ignored": row.get("dup_ignored", 0),
            "recovery_stall": row.get("recovery_stall_cycles", 0.0),
            "faults_injected": row.get("faults.total", 0),
        }
        if rate == 0.0 and args.dup_rate == 0.0 and args.delay_rate == 0.0:
            # the parity gate: a fully quiet fault plane must reproduce
            # the fault-free run bit for bit on every shared metric
            # (skipped when --dup-rate/--delay-rate keep faults active)
            clean = canonical_rows(
                [run(merge_spec(base, {"machine": {"name": name}}))]
            )[0]
            faulted = canonical_rows([row])[0]
            mismatched = [
                k for k, v in clean.items()
                # fast_path is engagement diagnostics: the clean run
                # batches, the faulted run (by design) cannot
                if k != "fast_path" and faulted.get(k, object()) != v
            ]
            parity_checked += 1
            if mismatched:
                parity_failures.append((name, mismatched))
            disp["zero_fault_parity"] = "FAIL" if mismatched else "ok"
        display.append(disp)
    columns = list(display[0].keys())
    if parity_checked and "zero_fault_parity" not in columns:
        columns.append("zero_fault_parity")
    print(format_table(display, columns=columns))
    if cache is not None:
        print(f"cache: {cache.stats()}", file=sys.stderr)
    if parity_failures:
        for name, keys in parity_failures:
            print(
                f"zero-fault parity FAIL: {name}: "
                f"{', '.join(keys[:8])}{'…' if len(keys) > 8 else ''}",
                file=sys.stderr,
            )
        return 1
    if parity_checked:
        print(f"zero-fault parity: ok ({parity_checked} machine(s))")
    return 0


def cmd_chaos_soak(args) -> int:
    """Soak the sweep farm under seeded host chaos and gate bit-identity.

    Spins up N embedded workers behind the deterministic chaos proxy
    (:mod:`repro.analysis.chaos`), runs the scheme sweep K times under
    injected resets/partial frames/stalls/partitions, and compares each
    run's rows byte-for-byte against a clean serial reference. Exits
    nonzero unless every sweep's rows were identical *and* every sweep
    re-derived the same injected-event schedule digest. ``--smoke``
    pins a tiny deterministic configuration for CI.
    """
    from repro.analysis.chaos import ChaosSpec, chaos_soak
    from repro.runner import merge_spec

    if args.smoke:
        # tiny deterministic CI configuration; overrides the trace args
        args.workload, args.trace = "pingpong", None
        args.threads = args.cores = 4
        args.param = ["rounds=16"]
        args.num_workers = 2
        args.sweeps = 2
        args.reset_rate = 0.10
        args.partial_rate = 0.10
        args.stall_rate = 0.15
        args.partition_rate = 0.05
        # the smoke sweep's control traffic is small, so plant the
        # event triggers shallow enough to actually fire
        args.trigger_span = 1500
        args.max_events = 6
    base = _base_spec(args)
    points = [{"scheme": name} for name in SCHEMES.names()]
    spec_dicts = [merge_spec(base, p).to_dict() for p in points]
    chaos = ChaosSpec(
        seed=args.chaos_seed,
        reset_rate=args.reset_rate,
        partial_rate=args.partial_rate,
        stall_rate=args.stall_rate,
        partition_rate=args.partition_rate,
        trigger_span=args.trigger_span,
        max_events_per_conn=args.max_events,
    )
    summary = chaos_soak(
        spec_dicts,
        chaos,
        workers=args.num_workers,
        sweeps=args.sweeps,
        heartbeat=args.heartbeat if args.heartbeat is not None else 0.25,
        liveness=args.worker_timeout if args.worker_timeout is not None else 2.0,
        auth_token=args.auth_token or os.environ.get("REPRO_FARM_TOKEN") or None,
        verbose=args.verbose,
    )
    display = [
        {
            "sweep": s["sweep"],
            "identical": "ok" if s["rows_identical"] else "FAIL",
            "points_per_sec": round(s["points_per_sec"], 2),
            "resets": s["applied"]["reset"],
            "partials": s["applied"]["partial"],
            "stalls": s["applied"]["stall"],
            "partitions": s["applied"]["partition"],
            "requeues": s["requeues"],
            "reconnects": s["reconnects"],
            "hedges": s["hedges"],
        }
        for s in summary["sweeps"]
    ]
    print(format_table(display))
    print(f"schedule digest: {summary['schedule_digest']}")
    ok = summary["rows_identical"] and summary["digest_stable"]
    if ok:
        print(
            f"chaos-soak: {len(summary['sweeps'])} sweep(s) x "
            f"{summary['points']} points bit-identical to the clean "
            "serial reference"
        )
        return 0
    if not summary["rows_identical"]:
        print("chaos-soak FAIL: rows diverged from the clean reference",
              file=sys.stderr)
    if not summary["digest_stable"]:
        print("chaos-soak FAIL: schedule digest varied across sweeps",
              file=sys.stderr)
    return 1


# ---------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="EM2 (SPAA'11) reproduction toolkit"
    )
    p.add_argument(
        "--profile",
        nargs="?",
        type=int,
        const=25,
        default=None,
        metavar="N",
        help="run the command under cProfile and print the top N "
        "functions by cumulative time (default 25)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version + available components").set_defaults(
        fn=cmd_info
    )

    sub.add_parser(
        "list", help="registered machines/schemes/placements/workloads"
    ).set_defaults(fn=cmd_list)

    # Component names deliberately have no argparse `choices`: the
    # registries validate them and their ConfigError lists the options.
    def add_trace_args(sp, with_out=False):
        sp.add_argument("--workload", default="ocean",
                        help="registered workload name (see `repro list`)")
        sp.add_argument("--trace", help="load a saved .npz trace instead")
        sp.add_argument("--threads", type=int, default=16)
        sp.add_argument("--cores", type=int, default=16)
        sp.add_argument("--placement", default="first-touch",
                        help="registered placement name (see `repro list`)")
        sp.add_argument(
            "--param", action="append", default=[], help="generator key=value"
        )
        sp.add_argument("--preset", default="default",
                        help="registered SystemConfig preset (see `repro list`)")
        sp.add_argument("--topology", default="auto",
                        help="registered topology name (see `repro list`)")

    def add_perf_args(sp):
        sp.add_argument(
            "--workers",
            type=int,
            default=1,
            help="evaluate sweep points in N parallel processes (default 1)",
        )
        sp.add_argument(
            "--cache-dir",
            default=None,
            help="content-addressed result cache directory "
            "(default: $REPRO_CACHE_DIR, unset = no caching)",
        )
        sp.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the result cache entirely (no reads, no writes)",
        )
        sp.add_argument(
            "--farm",
            default=None,
            metavar="HOST:PORT,...",
            help="comma-separated addresses of running `repro worker` "
            "processes; sweep points are dispatched to them with "
            "work-stealing (unreachable farm degrades to the local pool)",
        )
        add_farm_tuning(sp)
        sp.add_argument(
            "--resume",
            default=None,
            metavar="JOURNAL",
            help="checkpoint completed sweep points to this journal file "
            "and replay it on restart (rows stay bit-identical to an "
            "uninterrupted run)",
        )

    def add_farm_tuning(sp):
        """Heartbeat/liveness/auth knobs shared by both farm surfaces
        (coordinator-side sweeps and the worker itself)."""
        sp.add_argument(
            "--auth-token",
            default=None,
            metavar="SECRET",
            help="shared secret for the HMAC challenge-response handshake "
            "(default: $REPRO_FARM_TOKEN; unset = unauthenticated)",
        )
        sp.add_argument(
            "--heartbeat",
            type=float,
            default=None,
            metavar="SEC",
            help="heartbeat interval in seconds (coordinator PING cadence / "
            "worker poll cadence); must be positive",
        )
        sp.add_argument(
            "--worker-timeout",
            type=float,
            default=None,
            metavar="SEC",
            help="declare a silent peer dead after this many seconds; must "
            "exceed the heartbeat interval",
        )

    sp = sub.add_parser(
        "worker", help="serve sweep points to a farm coordinator"
    )
    sp.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address; port 0 picks an ephemeral port, printed on "
        "the first stdout line (default 127.0.0.1:0)",
    )
    sp.add_argument(
        "--trace-dir",
        default=None,
        help="worker-local trace store directory for pushed traces "
        "(default: a private temp dir, removed on exit)",
    )
    add_farm_tuning(sp)
    sp.add_argument("--verbose", action="store_true", help="log protocol events")
    sp.set_defaults(fn=cmd_worker)

    sp = sub.add_parser("workload", help="generate + save a workload")
    add_trace_args(sp)
    sp.add_argument("--out", required=True)
    sp.set_defaults(fn=cmd_workload)

    sp = sub.add_parser("fig2", help="Figure 2 run-length table")
    sp.add_argument("--threads", type=int, default=64)
    sp.add_argument("--cores", type=int, default=64)
    sp.add_argument("--grid", type=int, default=386)
    sp.add_argument("--iterations", type=int, default=2)
    sp.add_argument("--rows", type=int, default=25)
    sp.set_defaults(fn=cmd_fig2)

    sp = sub.add_parser("evaluate", help="score a scheme on a workload")
    add_trace_args(sp)
    add_perf_args(sp)
    sp.add_argument("--scheme", default="all",
                    help="registered scheme name, or 'all' (see `repro list`)")
    sp.add_argument("--machine", default="analytical",
                    help="registered machine name (see `repro list`); "
                    "e.g. em2 for the detailed simulator")
    sp.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    sp.set_defaults(fn=cmd_evaluate)

    sp = sub.add_parser("optimal", help="optimal DP on one thread")
    add_trace_args(sp)
    sp.add_argument("--thread", type=int, default=0)
    sp.set_defaults(fn=cmd_optimal)

    sp = sub.add_parser("shootout", help="all schemes vs the DP optimum")
    add_trace_args(sp)
    add_perf_args(sp)
    sp.set_defaults(fn=cmd_shootout)

    sp = sub.add_parser("stackdepth", help="stack-EM2 depth DP vs fixed depths")
    sp.add_argument("--kernel", default="dot", choices=["dot", "reduce", "hist"])
    sp.add_argument("--threads", type=int, default=8)
    sp.add_argument("--cores", type=int, default=8)
    sp.add_argument("--n", type=int, default=48)
    sp.add_argument("--max-depth", type=int, default=8)
    sp.set_defaults(fn=cmd_stackdepth)

    sp = sub.add_parser("trace", help="manage the on-disk trace store")
    tsub = sp.add_subparsers(dest="trace_cmd", required=True)

    def add_store_dir(tsp):
        tsp.add_argument(
            "--dir",
            default=None,
            help="trace store directory (default: $REPRO_TRACE_DIR, "
            "else ~/.cache/repro/traces)",
        )

    tsp = tsub.add_parser("build", help="generate a workload into the store")
    add_trace_args(tsp)
    add_store_dir(tsp)
    tsp.set_defaults(fn=cmd_trace)
    tsp = tsub.add_parser("ls", help="list stored traces")
    add_store_dir(tsp)
    tsp.set_defaults(fn=cmd_trace)
    tsp = tsub.add_parser("gc", help="evict LRU entries over a size cap")
    add_store_dir(tsp)
    tsp.add_argument(
        "--max-mbytes",
        type=float,
        default=512.0,
        help="keep at most this many MB of traces (default 512)",
    )
    tsp.set_defaults(fn=cmd_trace)

    sp = sub.add_parser("dynamic", help="epoch re-placement vs static first-touch")
    add_trace_args(sp)
    sp.add_argument("--epochs", type=int, default=4)
    sp.add_argument("--oracle", action="store_true")
    sp.set_defaults(fn=cmd_dynamic)

    sp = sub.add_parser(
        "faults", help="fault-injection sweep + zero-fault parity gate"
    )
    add_trace_args(sp)
    add_perf_args(sp)
    sp.add_argument(
        "--machines",
        default="em2,em2ra,ra-only,cc-msi",
        help="comma-separated detailed machine names (see `repro list`)",
    )
    sp.add_argument(
        "--rates",
        default="0,0.01,0.05,0.1",
        help="comma-separated message drop rates; 0 triggers the parity check",
    )
    sp.add_argument("--scheme", default="history",
                    help="migration decision scheme for the EM2 machines")
    sp.add_argument("--model", default="iid",
                    help="registered fault model (see `repro list`)")
    sp.add_argument("--fault-seed", type=int, default=0,
                    help="fault-plane PCG64 seed (schedule is a pure "
                    "function of spec + seed)")
    sp.add_argument("--dup-rate", type=float, default=0.0)
    sp.add_argument("--delay-rate", type=float, default=0.0)
    sp.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        help="kill any sweep point running longer than this many seconds",
    )
    sp.add_argument(
        "--smoke",
        action="store_true",
        help="tiny deterministic CI sweep (overrides workload/machines/"
        "rates) gated on zero-fault parity",
    )
    sp.set_defaults(fn=cmd_faults)

    sp = sub.add_parser(
        "chaos-soak",
        help="soak the farm under seeded host chaos; gate on bit-identity",
    )
    add_trace_args(sp)
    add_farm_tuning(sp)
    sp.add_argument("--num-workers", type=int, default=2,
                    help="embedded farm workers behind the chaos proxy")
    sp.add_argument("--sweeps", type=int, default=2,
                    help="how many chaos sweeps to run against the reference")
    sp.add_argument("--chaos-seed", type=int, default=0,
                    help="ChaosSpec seed (the event schedule is a pure "
                    "function of the spec)")
    sp.add_argument("--reset-rate", type=float, default=0.05,
                    help="per-event-slot probability of a connection RST")
    sp.add_argument("--partial-rate", type=float, default=0.05,
                    help="probability of a truncated frame followed by RST")
    sp.add_argument("--stall-rate", type=float, default=0.10,
                    help="probability of an injected forwarding stall")
    sp.add_argument("--partition-rate", type=float, default=0.05,
                    help="probability of a one-direction partition window")
    sp.add_argument("--trigger-span", type=int, default=65536,
                    help="event triggers are planted in the first N bytes "
                    "of each connection (smaller = chaos fires earlier)")
    sp.add_argument("--max-events", type=int, default=4,
                    help="planned event slots per connection")
    sp.add_argument("--verbose", action="store_true",
                    help="log per-sweep chaos accounting")
    sp.add_argument(
        "--smoke",
        action="store_true",
        help="tiny deterministic CI soak (overrides workload/rates) gated "
        "on row bit-identity and digest stability",
    )
    sp.set_defaults(fn=cmd_chaos_soak)

    sp = sub.add_parser(
        "bench", help="run the perf bench suite (--quick = smoke mode)"
    )
    sp.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: small workloads, same metrics and parity gates",
    )
    sp.set_defaults(fn=cmd_bench)

    return p


def run_profiled(fn, top_n: int = 25, stream=None):
    """Run ``fn()`` under cProfile; print the top ``top_n`` functions
    by cumulative time to ``stream`` (default stderr). Returns ``fn``'s
    result. Shared by the CLI ``--profile`` flag and the benchmark
    harness so hot-path regressions are one flag away from a profile."""
    import cProfile
    import pstats

    stream = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(
            top_n
        )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile is not None:
            return run_profiled(lambda: args.fn(args), args.profile)
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
