"""Unit tests for the cholesky and water-spatial generators."""

import numpy as np
import pytest

from repro.placement import first_touch
from repro.trace.runlength import run_length_histogram
from repro.trace.synthetic import make_workload
from repro.trace.synthetic.cholesky import CholeskyGenerator
from repro.trace.synthetic.water_spatial import WaterSpatialGenerator
from repro.util.errors import ConfigError


class TestCholesky:
    def test_all_threads_own_supernodes(self):
        g = CholeskyGenerator(num_threads=4, supernodes=8)
        assert set(g._owner.tolist()) == {0, 1, 2, 3}

    def test_parents_precede_children(self):
        g = CholeskyGenerator(num_threads=4, supernodes=16, fanin=3)
        for s, parents in enumerate(g._parents):
            assert (parents < max(s, 1)).all() or parents.size == 0

    def test_remote_gather_reaches_other_cores(self):
        mt = make_workload("cholesky", num_threads=4, supernodes=16, fanin=3)
        pl = first_touch(mt, 4)
        remote = np.mean(
            [
                (pl.home_of(tr["addr"]) != t).mean()
                for t, tr in enumerate(mt.threads)
            ]
        )
        assert remote > 0.05

    def test_irregular_run_homes(self):
        """Remote runs should hit several distinct cores (irregular
        parents), unlike ocean's two fixed neighbours."""
        mt = make_workload("cholesky", num_threads=8, supernodes=32, fanin=4)
        pl = first_touch(mt, 8)
        homes = pl.home_of(mt.threads[5]["addr"])
        foreign = set(np.unique(homes[homes != 5]).tolist())
        assert len(foreign) >= 3

    def test_too_few_supernodes_rejected(self):
        with pytest.raises(ConfigError):
            make_workload("cholesky", num_threads=8, supernodes=4)

    def test_deterministic(self):
        a = make_workload("cholesky", num_threads=4, supernodes=16, seed=9)
        b = make_workload("cholesky", num_threads=4, supernodes=16, seed=9)
        for ta, tb in zip(a.threads, b.threads):
            assert (ta == tb).all()


class TestWaterSpatial:
    def test_cells_partitioned_completely(self):
        g = WaterSpatialGenerator(num_threads=8, cells_per_side=4)
        owned = sum(len(g._owned_cells(t)) for t in range(8))
        assert owned == 4**3

    def test_owner_in_range(self):
        g = WaterSpatialGenerator(num_threads=8, cells_per_side=4)
        for z in range(4):
            for y in range(4):
                for x in range(4):
                    assert 0 <= g.owner_of_cell(x, y, z) < 8

    def test_neighbour_exchange_is_remote(self):
        mt = make_workload("water-spatial", num_threads=8, cells_per_side=4)
        pl = first_touch(mt, 8)
        remote = np.mean(
            [(pl.home_of(tr["addr"]) != t).mean() for t, tr in enumerate(mt.threads)]
        )
        assert 0.02 < remote < 0.8

    def test_crossover_region_run_lengths(self):
        """The design intent: neighbour-cell runs land in the 3-8
        range (the migrate-vs-RA crossover region)."""
        mt = make_workload("water-spatial", num_threads=8, cells_per_side=4)
        pl = first_touch(mt, 8)
        mids = 0
        total = 0
        for t, tr in enumerate(mt.threads):
            h = run_length_histogram(pl.home_of(tr["addr"]), t)
            mids += sum(c for v, c in h.bins().items() if 3 <= v <= 8)
            total += h.count
        if total:
            assert mids / total > 0.3

    def test_default_cells_scale_with_threads(self):
        g = WaterSpatialGenerator(num_threads=8)
        assert g.n >= 2

    def test_bad_timesteps_rejected(self):
        with pytest.raises(ConfigError):
            make_workload("water-spatial", num_threads=4, timesteps=0)
