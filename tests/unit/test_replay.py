"""Unit tests for OptimalReplay (DP decisions driving the machines)."""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import Decision, OptimalReplay, optimal_replay_for
from repro.core.em2ra import EM2RAMachine
from repro.placement import first_touch, striped
from repro.trace.events import MultiTrace, make_trace
from repro.trace.synthetic import make_workload
from repro.util.errors import ConfigError


@pytest.fixture
def cfg():
    return small_test_config(num_cores=4, guest_contexts=4)


class TestOptimalReplay:
    def test_decision_for_indexes_thread_and_access(self):
        r = OptimalReplay(
            [np.array([Decision.LOCAL, Decision.REMOTE]), np.array([Decision.MIGRATE])]
        )
        assert r.decision_for(0, 1) == Decision.REMOTE
        assert r.decision_for(1, 0) == Decision.MIGRATE

    def test_local_plan_entry_becomes_migrate(self):
        # consulted as non-local (after eviction displacement) -> MIGRATE
        r = OptimalReplay([np.array([Decision.LOCAL])])
        assert r.decision_for(0, 0) == Decision.MIGRATE

    def test_out_of_range_access_rejected(self):
        r = OptimalReplay([np.array([Decision.REMOTE])])
        with pytest.raises(ConfigError, match="no decision"):
            r.decision_for(0, 5)

    def test_decide_directs_to_proper_api(self):
        r = OptimalReplay([np.array([Decision.REMOTE])])
        with pytest.raises(ConfigError, match="index-addressed"):
            r.decide(0, 1, 0, False)

    def test_clone_shares_plan(self):
        r = OptimalReplay([np.zeros(3, dtype=np.int8)])
        assert r.clone() is r


class TestOptimalReplayFor:
    def test_plans_cover_every_access(self, cfg):
        trace = make_workload("pingpong", num_threads=4, rounds=8, run=2)
        pl = first_touch(trace, 4)
        replay = optimal_replay_for(trace, pl, CostModel(cfg))
        for t, tr in enumerate(trace.threads):
            assert len(replay.decisions_per_thread[t]) == tr.size

    def test_empty_thread_supported(self, cfg):
        mt = MultiTrace(threads=[make_trace([]), make_trace([16])])
        pl = striped(4, block_words=16)
        replay = optimal_replay_for(mt, pl, CostModel(cfg))
        assert len(replay.decisions_per_thread[0]) == 0


class TestReplayThroughMachine:
    def test_machine_follows_the_plan(self, cfg):
        # single thread, one far access then back: plan says REMOTE
        mt = MultiTrace(threads=[make_trace([16, 0, 0], icounts=1)])
        pl = striped(4, block_words=16)
        cm = CostModel(cfg)
        replay = optimal_replay_for(mt, pl, cm)
        assert Decision(int(replay.decisions_per_thread[0][0])) == Decision.REMOTE
        m = EM2RAMachine(mt, pl, cfg, scheme=replay)
        m.run()
        assert m.results()["remote_accesses"] == 1
        assert m.results()["migrations"] == 0

    def test_long_run_plan_migrates(self, cfg):
        mt = MultiTrace(threads=[make_trace([16] * 30, icounts=1)])
        pl = striped(4, block_words=16)
        cm = CostModel(cfg)
        replay = optimal_replay_for(mt, pl, cm)
        m = EM2RAMachine(mt, pl, cfg, scheme=replay)
        m.run()
        assert m.results()["migrations"] == 1
        assert m.results()["remote_accesses"] == 0

    def test_replay_completes_under_eviction_pressure(self):
        """Evictions displace threads mid-plan; replay must still drain."""
        cfg = small_test_config(num_cores=4, guest_contexts=1)
        rng = np.random.default_rng(0)
        threads = [
            make_trace((rng.integers(0, 2, 20) * 16).astype(np.int64), icounts=1)
            for _ in range(6)
        ]
        mt = MultiTrace(threads=threads, thread_native_core=[0, 1, 2, 3, 0, 1])
        pl = striped(4, block_words=16)
        replay = optimal_replay_for(mt, pl, CostModel(cfg))
        m = EM2RAMachine(mt, pl, cfg, scheme=replay)
        m.run()
        assert all(th.done for th in m.threads)

    def test_replay_traffic_not_above_em2(self, cfg):
        from repro.core.em2 import EM2Machine

        trace = make_workload("ocean", num_threads=4, grid_n=20, iterations=1)
        pl = first_touch(trace, 4)
        cm = CostModel(cfg)
        em2 = EM2Machine(trace, pl, cfg)
        em2.run()
        opt = EM2RAMachine(trace, pl, cfg, scheme=optimal_replay_for(trace, pl, cm))
        opt.run()
        assert opt.results()["flit_hops"] <= em2.results()["flit_hops"] * 1.05
