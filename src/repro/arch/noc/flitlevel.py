"""Flit-level NoC: credit-based wormhole routers, cycle by cycle.

The message-level model in :mod:`repro.arch.noc.network` charges an
analytical latency; this model actually moves flits through finite
input buffers with credit flow control, one cycle at a time. It exists
for three reasons:

1. **validation** — at zero load its head-flit latency must match the
   analytical formula exactly (asserted in tests and `bench_noc`);
2. **saturation** — congested latency/throughput curves the analytical
   model cannot produce;
3. **deadlock, for real** — the paper's whole virtual-channel argument
   ([10], §3) is about cyclic channel dependencies. On a ring/torus,
   wraparound links close a cycle: uniform traffic on a single VC
   *actually deadlocks* this model (every buffer in the cycle full,
   no flit can advance), while the classic **dateline** discipline
   (switch to the escape VC when crossing the dateline) drains it.
   The tests demonstrate both, making the deadlock-freedom claims of
   the VC plans executable rather than rhetorical.

Model details (standard wormhole router, simplified allocation):

* routers have one input FIFO per (input port, VC) holding
  ``buffer_flits`` flits, with credit counts mirroring each
  downstream buffer;
* routing is deterministic: XY on meshes, fixed-direction on rings;
* a packet holds its VC for its whole path (no VC reallocation
  mid-route) except at a torus/ring dateline, where it moves to the
  paired escape VC;
* each output port forwards at most one flit per cycle; arbitration is
  round-robin over (input port, VC) pairs, switching only at packet
  boundaries (wormhole: a body flit follows its head's allocation);
* a ``progress guard`` raises :class:`~repro.util.errors.DeadlockError`
  when flits remain but none has moved for ``deadlock_cycles`` cycles.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.arch.topology import Mesh2D, RingTopology, Topology
from repro.util.errors import ConfigError, DeadlockError

_pkt_ids = itertools.count()


@dataclass
class Flit:
    pkt: int
    is_head: bool
    is_tail: bool
    dst: int
    vc: int
    injected_at: int = 0
    payload: object = None  # head flit carries the packet metadata


@dataclass
class _Buffer:
    """One (input port, VC) FIFO."""

    capacity: int
    flits: list[Flit] = field(default_factory=list)

    def can_accept(self) -> bool:
        return len(self.flits) < self.capacity

    @property
    def head(self) -> Flit | None:
        return self.flits[0] if self.flits else None


class FlitNetwork:
    """Cycle-accurate wormhole network over a topology.

    Ports are encoded as neighbour core ids plus the special ``-1``
    local (injection/ejection) port. ``on_deliver(packet_payload,
    cycle)`` fires when a tail flit ejects.
    """

    def __init__(
        self,
        topology: Topology,
        num_vcs: int = 2,
        buffer_flits: int = 4,
        deadlock_cycles: int = 10_000,
        dateline: bool = False,
        on_deliver: Callable[[object, int], None] | None = None,
        injector=None,
    ) -> None:
        if num_vcs < 1:
            raise ConfigError("need at least one VC")
        if buffer_flits < 1:
            raise ConfigError("need at least one buffer slot")
        if dateline and num_vcs < 2:
            raise ConfigError("dateline discipline needs >= 2 VCs")
        self.topology = topology
        self.num_vcs = num_vcs
        self.buffer_flits = buffer_flits
        self.deadlock_cycles = deadlock_cycles
        self.dateline = dateline
        self.on_deliver = on_deliver
        self.injector = injector
        if injector is not None:
            injector.bind_topology(topology)
        self.cycle = 0
        self.delivered = 0
        self.dropped = 0
        self.flit_moves = 0
        self._last_progress = 0
        self.latencies: list[int] = []

        # node -> input port (-1 local, or upstream-neighbour id) -> vc -> buffer
        self._ports: dict[int, dict[int, list[_Buffer]]] = {}
        for node in range(topology.num_cores):
            ports = {-1: [_Buffer(buffer_flits) for _ in range(num_vcs)]}
            for nb in self._in_neighbors(node):
                ports[nb] = [_Buffer(buffer_flits) for _ in range(num_vcs)]
            self._ports[node] = ports
        # (node, out_neighbor_or_-1, vc) -> (in_port, vc) owning that
        # *virtual* channel: packets hold a VC, never the physical link —
        # flits of different VCs interleave on the link, which is
        # precisely how an escape VC bypasses a blocked packet
        self._owner: dict[tuple[int, int, int], tuple[int, int] | None] = {}
        self._rr: dict[tuple[int, int], int] = {}
        self._inject_queue: dict[int, list[list[Flit]]] = {
            n: [] for n in range(topology.num_cores)
        }
        # fault-delayed packets waiting for their release cycle
        self._delayed: dict[int, list[tuple[int, list[Flit]]]] = {
            n: [] for n in range(topology.num_cores)
        }
        self._pkt_payload: dict[int, object] = {}  # head payload until tail ejects

    # -- topology helpers ------------------------------------------------
    def _in_neighbors(self, node: int) -> list[int]:
        """Upstream senders: nodes one hop *toward* this node.

        Distinct from out-neighbours on directed topologies (the
        unidirectional ring); identical on meshes/tori.
        """
        return [
            n
            for n in range(self.topology.num_cores)
            if n != node and self.topology.distance(n, node) == 1
        ]

    def _next_hop(self, node: int, dst: int) -> int:
        route = self.topology.route(node, dst)
        return route[1]

    def _crosses_dateline(self, node: int, nxt: int) -> bool:
        """Dateline = the wraparound edge (max id -> 0 direction)."""
        n = self.topology.num_cores
        return (node == n - 1 and nxt == 0) or (node == 0 and nxt == n - 1)

    # -- injection -----------------------------------------------------------
    def send(self, src: int, dst: int, num_flits: int, vc: int = 0, payload=None) -> None:
        """Queue a packet of ``num_flits`` flits for injection at ``src``."""
        if not (0 <= vc < self.num_vcs):
            raise ConfigError(f"vc {vc} out of range")
        if num_flits < 1:
            raise ConfigError("packet needs at least one flit")
        copies = 1
        delay = 0
        if self.injector is not None and src != dst:
            action, extra = self.injector.on_message(src, dst, float(self.cycle))
            if action == "drop":
                self.dropped += 1
                return
            if action == "dup":
                copies = 2
            elif action == "delay":
                delay = int(extra)
        for _ in range(copies):
            pkt = next(_pkt_ids)
            flits = [
                Flit(
                    pkt=pkt,
                    is_head=(i == 0),
                    is_tail=(i == num_flits - 1),
                    dst=dst,
                    vc=vc,
                    injected_at=self.cycle,
                    payload=payload if i == 0 else None,
                )
                for i in range(num_flits)
            ]
            if delay > 0:
                self._delayed[src].append((self.cycle + delay, flits))
            else:
                self._inject_queue[src].append(flits)

    # -- simulation -------------------------------------------------------
    def _try_inject(self) -> None:
        for node, delayed in self._delayed.items():
            if not delayed:
                continue
            matured = [entry for entry in delayed if entry[0] <= self.cycle]
            if matured:
                self._delayed[node] = [e for e in delayed if e[0] > self.cycle]
                self._inject_queue[node].extend(flits for _, flits in matured)
                self._last_progress = self.cycle
        for node, queue in self._inject_queue.items():
            if not queue:
                continue
            flits = queue[0]
            buf = self._ports[node][-1][flits[0].vc]
            while flits and buf.can_accept():
                buf.flits.append(flits.pop(0))
                self.flit_moves += 1
                self._last_progress = self.cycle
            if not flits:
                queue.pop(0)

    def _output_targets(self, node: int, flit: Flit) -> tuple[int, int]:
        """(next node or -1 for ejection, vc at next hop)."""
        if flit.dst == node:
            return -1, flit.vc
        nxt = self._next_hop(node, flit.dst)
        vc = flit.vc
        if self.dateline and self._crosses_dateline(node, nxt):
            vc = 1  # escape VC past the dateline
        return nxt, vc

    def step(self) -> None:
        """Advance one cycle: each output port moves at most one flit."""
        self.cycle += 1
        self._try_inject()
        moves: list[tuple[int, int, int, int, int]] = []
        # plan phase: (node, in_port, out, vc_now, vc_next)
        for node, ports in self._ports.items():
            candidates: dict[int, list[tuple[int, int, int]]] = {}
            for in_port, bufs in ports.items():
                for vc, buf in enumerate(bufs):
                    flit = buf.head
                    if flit is None:
                        continue
                    out, vc_next = self._output_targets(node, flit)
                    owner = self._owner.get((node, out, vc_next))
                    if owner is not None and owner != (in_port, vc):
                        continue  # that downstream VC belongs to another packet
                    if out == -1 or self._downstream_accepts(node, out, vc_next):
                        candidates.setdefault(out, []).append((in_port, vc, vc_next))
            for out, cands in candidates.items():
                # one flit per physical output port per cycle; round-robin
                # across the competing (in_port, vc) heads
                rr = self._rr.get((node, out), 0)
                pick = cands[rr % len(cands)]
                self._rr[(node, out)] = rr + 1
                moves.append((node, pick[0], out, pick[1], pick[2]))
        # commit phase
        for node, in_port, out, vc, vc_next in moves:
            buf = self._ports[node][in_port][vc]
            flit = buf.flits.pop(0)
            self.flit_moves += 1
            self._last_progress = self.cycle
            key = (node, out, vc_next)
            if out == -1:
                if flit.is_head:
                    self._pkt_payload[flit.pkt] = flit.payload
                if flit.is_tail:
                    self._owner[key] = None
                    self.delivered += 1
                    self.latencies.append(self.cycle - flit.injected_at)
                    payload = self._pkt_payload.pop(flit.pkt, flit.payload)
                    if self.on_deliver is not None:
                        self.on_deliver(payload, self.cycle)
                else:
                    self._owner[key] = (in_port, vc)
            else:
                flit.vc = vc_next
                self._ports[out][node][vc_next].flits.append(flit)
                self._owner[key] = None if flit.is_tail else (in_port, vc)

    def _downstream_accepts(self, node: int, out: int, vc: int) -> bool:
        return self._ports[out][node][vc].can_accept()

    def pending_flits(self) -> int:
        n = sum(
            len(buf.flits)
            for ports in self._ports.values()
            for bufs in ports.values()
            for buf in bufs
        )
        n += sum(len(f) for q in self._inject_queue.values() for f in q)
        n += sum(len(f) for q in self._delayed.values() for _, f in q)
        return n

    def run_until_drained(self, max_cycles: int = 1_000_000) -> int:
        """Run until every packet is delivered; returns the cycle count.

        Raises :class:`DeadlockError` when no flit has moved for
        ``deadlock_cycles`` cycles while flits remain — an *actual*
        routing deadlock (or an unroutable configuration).
        """
        while self.pending_flits() > 0:
            if self.cycle - self._last_progress > self.deadlock_cycles and not any(
                self._delayed.values()  # fault-delayed packets still mature
            ):
                raise DeadlockError(
                    f"no flit progress for {self.deadlock_cycles} cycles; "
                    f"{self.pending_flits()} flits stuck at cycle {self.cycle}"
                )
            if self.cycle >= max_cycles:
                raise DeadlockError(f"exceeded max_cycles={max_cycles}")
            self.step()
        return self.cycle
