"""Unit tests for mesh/torus/ring topologies."""

import numpy as np
import pytest

from repro.arch.topology import (
    Mesh2D,
    RingTopology,
    TorusTopology,
    UnidirectionalRing,
    topology_for,
)
from repro.arch.config import SystemConfig
from repro.util.errors import ConfigError


class TestMesh2D:
    def test_coords_roundtrip(self):
        m = Mesh2D(4, 4)
        for core in range(16):
            x, y = m.coords(core)
            assert m.core_at(x, y) == core

    def test_manhattan_distance(self):
        m = Mesh2D(4, 4)
        assert m.distance(0, 15) == 6  # (0,0) -> (3,3)
        assert m.distance(0, 3) == 3
        assert m.distance(5, 5) == 0

    def test_distance_symmetric(self):
        m = Mesh2D(4, 3)
        for i in range(12):
            for j in range(12):
                assert m.distance(i, j) == m.distance(j, i)

    def test_route_is_xy(self):
        m = Mesh2D(4, 4)
        path = m.route(0, 10)  # (0,0) -> (2,2): X first then Y
        assert path == [0, 1, 2, 6, 10]

    def test_route_length_matches_distance(self):
        m = Mesh2D(5, 3)
        for i in range(15):
            for j in range(15):
                assert len(m.route(i, j)) == m.distance(i, j) + 1

    def test_route_hops_are_neighbors(self):
        m = Mesh2D(4, 4)
        path = m.route(3, 12)
        for u, v in zip(path, path[1:]):
            assert m.distance(u, v) == 1

    def test_distance_matrix_matches_pairwise(self):
        m = Mesh2D(3, 3)
        mat = m.distance_matrix
        for i in range(9):
            for j in range(9):
                assert mat[i, j] == m.distance(i, j)

    def test_distance_matrix_readonly(self):
        m = Mesh2D(2, 2)
        with pytest.raises(ValueError):
            m.distance_matrix[0, 0] = 5

    def test_square_factory(self):
        m = Mesh2D.square(64)
        assert (m.width, m.height) == (8, 8)
        m = Mesh2D.square(12)
        assert m.width * m.height == 12

    def test_out_of_range_core_rejected(self):
        m = Mesh2D(2, 2)
        with pytest.raises(ConfigError):
            m.distance(0, 4)

    def test_links_are_mesh_edges(self):
        m = Mesh2D(2, 2)
        links = set(m.links())
        assert links == {(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 1), (2, 3), (3, 2)}


class TestTorus:
    def test_wraparound_shortens(self):
        t = TorusTopology(4, 4)
        assert t.distance(0, 3) == 1  # wrap in x
        assert t.distance(0, 12) == 1  # wrap in y

    def test_never_longer_than_mesh(self):
        t = TorusTopology(4, 4)
        m = Mesh2D(4, 4)
        assert (t.distance_matrix <= m.distance_matrix).all()

    def test_route_length_matches_distance(self):
        t = TorusTopology(4, 3)
        for i in range(12):
            for j in range(12):
                assert len(t.route(i, j)) == t.distance(i, j) + 1

    def test_matrix_matches_scalar(self):
        t = TorusTopology(3, 3)
        mat = t.distance_matrix
        for i in range(9):
            for j in range(9):
                assert mat[i, j] == t.distance(i, j)


class TestRing:
    def test_distance_both_directions(self):
        r = RingTopology(8)
        assert r.distance(0, 1) == 1
        assert r.distance(0, 7) == 1
        assert r.distance(0, 4) == 4

    def test_route_wraps(self):
        r = RingTopology(8)
        assert r.route(0, 7) == [0, 7]
        assert r.route(1, 3) == [1, 2, 3]


class TestUnidirectionalRing:
    def test_distance_is_clockwise_only(self):
        r = UnidirectionalRing(8)
        assert r.distance(0, 1) == 1
        assert r.distance(1, 0) == 7  # must go all the way around
        assert r.distance(3, 3) == 0

    def test_route_wraps_forward(self):
        r = UnidirectionalRing(4)
        assert r.route(2, 1) == [2, 3, 0, 1]

    def test_route_length_matches_distance(self):
        r = UnidirectionalRing(6)
        for i in range(6):
            for j in range(6):
                assert len(r.route(i, j)) == r.distance(i, j) + 1

    def test_links_form_one_cycle(self):
        r = UnidirectionalRing(5)
        links = r.links()
        assert len(links) == 5
        nxt = dict(links)
        node, seen = 0, set()
        while node not in seen:
            seen.add(node)
            node = nxt[node]
        assert seen == set(range(5))


def test_topology_for_matches_config():
    cfg = SystemConfig(num_cores=64)
    topo = topology_for(cfg)
    assert topo.num_cores == 64
    assert (topo.width, topo.height) == (8, 8)
