"""Unit tests for the typed, frozen experiment specifications."""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.spec import (
    SPEC_SCHEMA_VERSION,
    ExperimentSpec,
    MachineSpec,
    PlacementSpec,
    SchemeSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.util.errors import ConfigError

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


def _sample_spec() -> ExperimentSpec:
    return ExperimentSpec(
        workload=WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 8}),
        machine=MachineSpec(name="analytical", cores=8, preset="small-test"),
        scheme=SchemeSpec(name="history", params={"threshold": 3}),
        placement=PlacementSpec(name="striped", params={"stripe_words": 8}),
        topology=TopologySpec(name="mesh"),
    )


class TestRoundTrip:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (WorkloadSpec, dict(name="ocean", params={"grid_n": 20})),
            (WorkloadSpec, dict(name="trace-file", trace_path="/tmp/t.npz")),
            (SchemeSpec, dict(name="costaware", params={"alpha": 0.5})),
            (PlacementSpec, dict(name="first-touch")),
            (TopologySpec, dict(name="torus")),
            (MachineSpec, dict(name="em2", cores=4, preset="small-test",
                               config={"cache_detail": True})),
        ],
    )
    def test_subspec_round_trip(self, cls, kwargs):
        spec = cls(**kwargs)
        assert cls.from_dict(spec.to_dict()) == spec

    def test_experiment_round_trip(self):
        spec = _sample_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json(self):
        spec = _sample_spec()
        assert ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_defaults_round_trip(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_carries_schema_version(self):
        assert _sample_spec().to_dict()["schema"] == SPEC_SCHEMA_VERSION


class TestStrictness:
    def test_unknown_experiment_field_rejected(self):
        data = _sample_spec().to_dict()
        data["schedule"] = {"name": "fifo"}
        with pytest.raises(ConfigError, match="'schedule'"):
            ExperimentSpec.from_dict(data)

    def test_unknown_subspec_field_rejected(self):
        with pytest.raises(ConfigError, match="'threshold'"):
            SchemeSpec.from_dict({"name": "history", "threshold": 3})

    @pytest.mark.parametrize("schema", [None, 0, 2, "1"])
    def test_foreign_schema_version_rejected(self, schema):
        data = _sample_spec().to_dict()
        data["schema"] = schema
        with pytest.raises(ConfigError, match="schema"):
            ExperimentSpec.from_dict(data)

    def test_missing_schema_rejected(self):
        data = _sample_spec().to_dict()
        del data["schema"]
        with pytest.raises(ConfigError, match="schema"):
            ExperimentSpec.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec.from_dict([("workload", {})])

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name=""),
            dict(name=42),
            dict(name="ok", params=[1, 2]),
        ],
    )
    def test_bad_scheme_fields_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SchemeSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(cores=0), dict(cores="16"), dict(preset="huge")],
    )
    def test_bad_machine_fields_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MachineSpec(**kwargs)

    def test_subspec_type_enforced(self):
        with pytest.raises(ConfigError, match="workload"):
            ExperimentSpec(workload={"name": "ocean"})

    def test_frozen(self):
        spec = _sample_spec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.scheme = SchemeSpec(name="never-migrate")


class TestReplace:
    def test_replace_swaps_subspec_without_mutating(self):
        spec = _sample_spec()
        other = spec.replace(scheme=SchemeSpec(name="never-migrate"))
        assert other.scheme.name == "never-migrate"
        assert spec.scheme.name == "history"
        assert other.workload == spec.workload


class TestCacheKey:
    def test_key_is_sha256_hex(self):
        key = _sample_spec().cache_key()
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_key_ignores_dict_ordering(self):
        spec = _sample_spec()
        reordered = json.loads(json.dumps(spec.to_dict()))
        scrambled = dict(reversed(list(reordered.items())))
        assert ExperimentSpec.from_dict(scrambled).cache_key() == spec.cache_key()

    def test_key_differs_when_spec_differs(self):
        spec = _sample_spec()
        assert spec.cache_key() != spec.replace(
            scheme=SchemeSpec(name="never-migrate")
        ).cache_key()

    def test_key_stable_across_processes(self):
        """The content address must be reproducible in a fresh
        interpreter — that is what makes the on-disk cache shareable."""
        spec = _sample_spec()
        code = (
            "import json, sys\n"
            "from repro.spec import ExperimentSpec\n"
            "print(ExperimentSpec.from_dict(json.load(sys.stdin)).cache_key())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            input=json.dumps(spec.to_dict()),
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert out.stdout.strip() == spec.cache_key()
