"""Unit tests for the spec -> live-objects construction path."""

import pytest

from repro.arch.config import small_test_config
from repro.arch.topology import Mesh2D
from repro.core.costs import CostModel
from repro.core.evaluation import evaluate_scheme
from repro.placement import first_touch
from repro.runner import (
    build,
    build_topology,
    build_workload,
    clear_build_memo,
    merge_spec,
    run,
    run_spec_dict,
)
from repro.spec import (
    ExperimentSpec,
    MachineSpec,
    PlacementSpec,
    SchemeSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.trace.synthetic import make_workload
from repro.util.errors import ConfigError

WORKLOAD = WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 8})


def _spec(machine="analytical", scheme="history") -> ExperimentSpec:
    return ExperimentSpec(
        workload=WORKLOAD,
        machine=MachineSpec(name=machine, cores=4, preset="small-test"),
        scheme=SchemeSpec(name=scheme),
        placement=PlacementSpec(name="first-touch"),
    )


class TestEquivalence:
    """run(spec) reproduces direct construction bit for bit — the
    property that lets every consumer switch to specs safely."""

    def test_analytical_matches_direct_evaluation(self):
        spec = _spec()
        trace = make_workload("pingpong", num_threads=4, rounds=8)
        placement = first_touch(trace, 4)
        cost = CostModel(small_test_config(num_cores=4))
        built = build(spec)
        direct = evaluate_scheme(trace, placement, built.scheme.clone(), cost)
        assert run(spec) == direct.as_dict()

    def test_em2_matches_direct_machine(self):
        from repro.core.em2 import EM2Machine

        trace = make_workload("pingpong", num_threads=4, rounds=8)
        placement = first_touch(trace, 4)
        machine = EM2Machine(trace, placement, small_test_config(num_cores=4))
        machine.run()
        assert run(_spec(machine="em2")) == machine.results()

    def test_run_spec_dict_round_trips(self):
        spec = _spec()
        assert run_spec_dict(spec.to_dict()) == run(spec)


class TestBuild:
    def test_build_yields_every_component(self):
        built = build(_spec())
        assert built.trace.num_threads == 4
        assert built.config.num_cores == 4
        assert built.cost.config is built.config
        assert built.scheme is not None
        assert built.topology is None  # "auto" defers to the machine default

    def test_auto_topology_with_params_rejected(self):
        # "auto" is the absence of a choice; parameterizing it is a
        # config error that names the topologies that do take params.
        with pytest.raises(ConfigError, match="'auto' takes no params"):
            build_topology(
                TopologySpec(name="auto", params={"width": 2}),
                small_test_config(num_cores=4),
            )

    def test_named_topology_is_built(self):
        topo = build_topology(TopologySpec(name="mesh"), small_test_config(num_cores=4))
        assert isinstance(topo, Mesh2D)

    def test_workload_memoized_per_spec(self):
        clear_build_memo()
        a = build_workload(WORKLOAD)
        b = build_workload(WorkloadSpec(name="pingpong",
                                        params={"num_threads": 4, "rounds": 8}))
        assert a is b
        clear_build_memo()
        assert build_workload(WORKLOAD) is not a

    def test_workload_memo_evicts_least_recently_used(self):
        """Round-robin over cap+1 workloads with one kept hot: the hot
        entry must survive eviction (LRU), where FIFO would drop it."""
        import repro.runner as runner

        clear_build_memo()
        specs = [
            WorkloadSpec(name="pingpong", params={"num_threads": 2, "rounds": r})
            for r in range(2, 2 + runner._MEMO_CAP + 1)
        ]
        hot = build_workload(specs[0])
        for spec in specs[1:]:
            build_workload(specs[0])  # keep the first entry recently used
            build_workload(spec)
        assert build_workload(specs[0]) is hot
        clear_build_memo()

    def test_seed_workload_memo_short_circuits_build(self):
        from repro.runner import seed_workload_memo

        clear_build_memo()
        sentinel = make_workload("pingpong", num_threads=4, rounds=8)
        seed_workload_memo(WORKLOAD, sentinel)
        assert build_workload(WORKLOAD) is sentinel
        # dict form (what a pool worker holds) seeds the same slot
        clear_build_memo()
        seed_workload_memo(WORKLOAD.to_dict(), sentinel)
        assert build_workload(WORKLOAD) is sentinel
        clear_build_memo()

    def test_unknown_names_raise_config_error(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            run(_spec(machine="quantum"))
        with pytest.raises(ConfigError, match="unknown scheme"):
            build(_spec(scheme="clairvoyant"))


class TestMergeSpec:
    def test_string_swaps_component_with_defaults(self):
        merged = merge_spec(_spec(), {"scheme": "never-migrate"})
        assert merged.scheme == SchemeSpec(name="never-migrate")
        assert merged.workload == WORKLOAD  # untouched axes pass through

    def test_mapping_overlays_subspec_fields(self):
        merged = merge_spec(_spec(), {"workload": {"params": {"num_threads": 8}}})
        assert merged.workload.name == "pingpong"
        assert merged.workload.params == {"num_threads": 8}

    def test_subspec_instance_passes_through(self):
        sub = PlacementSpec(name="striped")
        assert merge_spec(_spec(), {"placement": sub}).placement is sub

    def test_unknown_point_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep-spec key 'schem'"):
            merge_spec(_spec(), {"schem": "history"})

    def test_bad_value_type_rejected(self):
        with pytest.raises(ConfigError, match="must be a name, dict"):
            merge_spec(_spec(), {"scheme": 42})

    def test_merge_does_not_mutate_base(self):
        base = _spec()
        merge_spec(base, {"scheme": "random", "workload": {"name": "uniform"}})
        assert base.scheme.name == "history"
        assert base.workload.name == "pingpong"
