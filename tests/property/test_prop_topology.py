"""Topology conformance properties at scale.

Every registered point-to-point topology must satisfy the same
contract the NoC and cost model rely on: routes are walks over
physical links, route length equals the advertised hop distance,
distances are symmetric (uni-ring excepted by construction), and the
vectorized ``distance_row`` agrees with the scalar ``distance``. The
existing unit tests pin these at toy sizes with exhaustive O(P²)
loops; these tests sample pairs so the same contract is checked at 64,
256, and 1024 cores — the sizes the scaling study actually runs —
without quadratic test cost. They also pin the two memory bounds the
1024+-core refactor introduced: the route cache and the lazy hop
table never grow past their caps.
"""

import numpy as np
import pytest

from repro.arch.topology import (
    ClusterMesh,
    LazyHopTable,
    Mesh2D,
    RingTopology,
    TorusTopology,
    UnidirectionalRing,
)

# name -> factory(num_cores); cluster shapes chosen so cluster grid and
# cluster size both grow with the machine, like cluster_mesh_for does.
_CLUSTER_SHAPES = {64: (4, 4, 2, 2), 256: (4, 4, 4, 4), 1024: (8, 8, 4, 4)}

TOPOLOGIES = {
    "mesh": lambda n: Mesh2D.square(n),
    "torus": lambda n: TorusTopology.square(n),
    "ring": lambda n: RingTopology(n),
    "uni-ring": lambda n: UnidirectionalRing(n),
    "cluster": lambda n: ClusterMesh(*_CLUSTER_SHAPES[n]),
}

SIZES = [64, 256, 1024]


def _sample_pairs(num_cores: int, seed: int, count: int = 200):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, num_cores, size=(count, 2))
    # always include the corner-to-corner worst case and a self-pair
    return [(0, num_cores - 1), (3, 3)] + [(int(s), int(d)) for s, d in pairs]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_routes_are_link_walks_of_advertised_length(name, size):
    topo = TOPOLOGIES[name](size)
    links = set(topo.links())
    for src, dst in _sample_pairs(size, seed=size + hash(name) % 1000):
        path = topo.route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) == topo.distance(src, dst) + 1
        for u, v in zip(path, path[1:]):
            assert (u, v) in links, f"{name}@{size}: hop {u}->{v} not a link"


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(set(TOPOLOGIES) - {"uni-ring"}))
def test_distance_symmetric(name, size):
    topo = TOPOLOGIES[name](size)
    for src, dst in _sample_pairs(size, seed=7 * size):
        assert topo.distance(src, dst) == topo.distance(dst, src)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_distance_row_matches_scalar(name, size):
    topo = TOPOLOGIES[name](size)
    rng = np.random.default_rng(size)
    for src in rng.integers(0, size, size=4):
        row = topo.distance_row(int(src))
        assert row.shape == (size,)
        for dst in rng.integers(0, size, size=32):
            assert int(row[dst]) == topo.distance(int(src), int(dst))
        assert int(row[src]) == 0


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_links_are_distance_one_and_sorted(name, size):
    topo = TOPOLOGIES[name](size)
    links = topo.links()
    assert links == sorted(links)  # fault-injection determinism contract
    assert len(links) == len(set(links))
    for u, v in links:
        assert topo.distance(u, v) == 1


def test_cluster_distance_decomposes_through_hubs():
    topo = ClusterMesh(*_CLUSTER_SHAPES[1024])
    for src, dst in _sample_pairs(1024, seed=42):
        scx, scy = topo.cluster_of(src)
        dcx, dcy = topo.cluster_of(dst)
        d = topo.distance(src, dst)
        if (scx, scy) == (dcx, dcy):
            assert d == Mesh2D.distance(topo, src, dst)
        else:
            hs, hd = topo.hub(scx, scy), topo.hub(dcx, dcy)
            assert d == (
                Mesh2D.distance(topo, src, hs)
                + abs(dcx - scx)
                + abs(dcy - scy)
                + Mesh2D.distance(topo, hd, dst)
            )


# ------------------------------------------------------- memory bounds
def test_route_cache_never_exceeds_cap():
    topo = Mesh2D.square(1024)
    cap = topo.route_cache_cap
    assert cap < 1024 * 1024  # the point: far below P² pairs
    rng = np.random.default_rng(0)
    for src, dst in rng.integers(0, 1024, size=(cap + 500, 2)):
        topo.route_cached(int(src), int(dst))
    assert len(topo._route_cache) <= cap
    # evicted entries are rebuilt correctly on demand
    path = topo.route_cached(0, 1023)
    assert path == topo.route(0, 1023)
    assert len(topo._route_cache) <= cap


def test_hop_table_rows_are_bounded():
    topo = Mesh2D.square(1024)
    hops = topo.hop_table
    for src in range(LazyHopTable.ROW_CAP + 50):
        row = hops[src]
        assert row[src] == 0
        # a same-row mesh neighbor is always one hop
        assert row[src + 1 if (src % 32) + 1 < 32 else src - 1] == 1
    assert len(hops._rows) <= LazyHopTable.ROW_CAP
    # a dropped row re-materializes with correct contents
    assert hops[0][1023] == topo.distance(0, 1023)
