"""Property-based tests for the decision DPs — the paper's core claims.

These are the highest-value properties in the repo: the DP is *optimal*
(lower-bounds every strategy, matches brute force) and *consistent*
(reconstructed decisions replay to the same cost).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import (
    AlwaysMigrate,
    HistoryRunLength,
    NeverMigrate,
    RandomScheme,
)
from repro.core.decision.optimal import decision_cost, optimal_cost, optimal_decisions
from repro.core.decision.stack_optimal import fixed_depth_cost, optimal_stack_depths
from repro.core.evaluation import evaluate_thread

CM = CostModel(small_test_config(num_cores=4))
CM9 = CostModel(small_test_config(num_cores=9))

trace_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.booleans()), min_size=1, max_size=60
)


def _unpack(tr):
    homes = np.array([h for h, _ in tr], dtype=np.int64)
    writes = np.array([w for _, w in tr], dtype=bool)
    return homes, writes


@settings(max_examples=60)
@given(trace_strategy, st.integers(0, 3))
def test_dp_matches_bruteforce(tr, start):
    homes, writes = _unpack(tr[:10])  # keep brute force tractable
    mig, ra_r, ra_w = CM.migration, CM.remote_read, CM.remote_write

    def rec(k, cur):
        if k == len(homes):
            return 0.0
        h = homes[k]
        if h == cur:
            return rec(k + 1, cur)
        ra = (ra_w if writes[k] else ra_r)[cur, h]
        return min(ra + rec(k + 1, cur), mig[cur, h] + rec(k + 1, h))

    assert optimal_cost(homes, writes, start, CM) == pytest.approx(rec(0, start))


@settings(max_examples=40)
@given(trace_strategy, st.integers(0, 3))
def test_dp_reconstruction_replays_to_same_cost(tr, start):
    homes, writes = _unpack(tr)
    res = optimal_decisions(homes, writes, start, CM)
    assert decision_cost(homes, writes, res.decisions, start, CM) == pytest.approx(
        res.total_cost
    )


@settings(max_examples=30)
@given(trace_strategy, st.integers(0, 3), st.integers(0, 4))
def test_dp_lower_bounds_every_scheme(tr, start, scheme_id):
    homes, writes = _unpack(tr)
    schemes = [
        AlwaysMigrate(),
        NeverMigrate(),
        RandomScheme(p=0.5, seed=scheme_id),
        HistoryRunLength(threshold=2.0),
        RandomScheme(p=0.9, seed=scheme_id + 7),
    ]
    opt = optimal_cost(homes, writes, start, CM)
    cost, *_ = evaluate_thread(homes, writes, start, schemes[scheme_id], CM)
    assert opt <= cost + 1e-6


@settings(max_examples=30)
@given(trace_strategy)
def test_dp_cost_nonnegative_and_zero_iff_all_local(tr):
    homes, writes = _unpack(tr)
    cost = optimal_cost(homes, writes, 0, CM)
    assert cost >= 0
    if (homes == 0).all():
        assert cost == 0.0
    elif cost == 0.0:
        # zero cost must mean every access was local
        assert (homes == 0).all()


@settings(max_examples=30)
@given(trace_strategy, st.integers(0, 3))
def test_dp_monotone_under_trace_extension(tr, start):
    """Appending accesses can only increase the optimal cost."""
    homes, writes = _unpack(tr)
    full = optimal_cost(homes, writes, start, CM)
    prefix = optimal_cost(homes[:-1], writes[:-1], start, CM)
    assert prefix <= full + 1e-9


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        min_size=1,
        max_size=40,
    ),
    st.integers(0, 3),
    st.integers(0, 3),
)
def test_stack_dp_lower_bounds_fixed_depths(segs, native, depth):
    homes = np.array([h for h, _, _ in segs])
    spops = np.array([p for _, p, _ in segs])
    spushes = np.array([q for _, _, q in segs])
    opt = optimal_stack_depths(homes, spops, spushes, native, CM, max_depth=3)
    fix = fixed_depth_cost(homes, spops, spushes, native, CM, depth=depth, max_depth=3)
    assert opt.total_cost <= fix.total_cost + 1e-6


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 2), st.integers(0, 2)),
        min_size=1,
        max_size=30,
    )
)
def test_stack_dp_zero_cost_iff_all_native(segs):
    homes = np.array([h for h, _, _ in segs])
    spops = np.array([p for _, p, _ in segs])
    spushes = np.array([q for _, _, q in segs])
    res = optimal_stack_depths(homes, spops, spushes, 0, CM9, max_depth=4)
    if (homes == 0).all():
        assert res.total_cost == 0.0
        assert res.migrations == 0
    else:
        assert res.total_cost > 0.0
