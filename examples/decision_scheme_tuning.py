#!/usr/bin/env python
"""Evaluate hardware decision schemes against the DP upper bound (§3).

"a simplified analytical model that establishes an upper bound on
performance of decision schemes and thus allows us to quickly evaluate
how close to optimal a given hardware-implementable scheme is."

Sweeps the distance-threshold scheme and the history predictor over
several workloads and normalizes every cost to the per-trace optimum.

Run:  python examples/decision_scheme_tuning.py
"""

from repro import (
    AlwaysMigrate,
    CostModel,
    DistanceThreshold,
    HistoryRunLength,
    NeverMigrate,
    evaluate_scheme,
    first_touch,
    make_workload,
    small_test_config,
)
from repro.analysis.reports import format_table
from repro.core.decision.optimal import optimal_cost

WORKLOADS = {
    "ocean": dict(name="ocean", num_threads=16, grid_n=98, iterations=1),
    "fft": dict(name="fft", num_threads=16, points_per_thread=128),
    "radix": dict(name="radix", num_threads=16, keys_per_thread=128, passes=1),
    "pingpong(run=6)": dict(name="pingpong", num_threads=16, rounds=64, run=6),
}


def main() -> None:
    config = small_test_config(num_cores=16)
    cost = CostModel(config)
    dm = cost.topology.distance_matrix
    break_even = cost.break_even_run_length(0, 15)
    schemes = [
        ("always-migrate (EM2)", lambda: AlwaysMigrate()),
        ("never-migrate (RA-only)", lambda: NeverMigrate()),
        ("distance<=1", lambda: DistanceThreshold(dm, 1)),
        ("distance<=3", lambda: DistanceThreshold(dm, 3)),
        (f"history(thr={break_even:.1f})", lambda: HistoryRunLength(break_even)),
    ]

    for wl_name, params in WORKLOADS.items():
        params = dict(params)
        gen = params.pop("name")
        trace = make_workload(gen, **params)
        placement = first_touch(trace, 16)
        opt = sum(
            optimal_cost(placement.home_of(tr["addr"]), tr["write"], t, cost)
            for t, tr in enumerate(trace.threads)
        )
        rows = []
        for label, factory in schemes:
            r = evaluate_scheme(trace, placement, factory(), cost)
            rows.append(
                {
                    "scheme": label,
                    "cost": round(r.total_cost),
                    "x_optimal": round(r.total_cost / opt, 3) if opt else float("nan"),
                    "migrations": r.migrations,
                    "remote": r.remote_accesses,
                }
            )
        print(f"\n=== {wl_name}  (optimal = {opt:,.0f}) ===")
        print(format_table(rows))


if __name__ == "__main__":
    main()
