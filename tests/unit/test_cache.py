"""Unit tests for replacement policies, cache arrays, and the hierarchy."""

import pytest

from repro.arch.cache.hierarchy import CacheHierarchy, ServiceLevel
from repro.arch.cache.replacement import (
    LRUPolicy,
    PseudoLRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.arch.cache.sram import CacheArray
from repro.arch.config import CacheConfig
from repro.util.errors import ConfigError


class TestLRU:
    def test_untouched_is_victim(self):
        p = LRUPolicy(4)
        for w in (1, 2, 3):
            p.touch(w)
        assert p.victim() == 0

    def test_touch_order_drives_victim(self):
        p = LRUPolicy(3)
        p.touch(0)
        p.touch(1)
        p.touch(2)
        p.touch(0)
        assert p.victim() == 1

    def test_victim_does_not_mutate(self):
        p = LRUPolicy(2)
        p.touch(1)
        assert p.victim() == p.victim() == 0


class TestPseudoLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            PseudoLRUPolicy(3)

    def test_victim_avoids_most_recent(self):
        p = PseudoLRUPolicy(4)
        for w in range(4):
            p.touch(w)
        assert p.victim() != 3

    def test_two_way_behaves_like_lru(self):
        plru, lru = PseudoLRUPolicy(2), LRUPolicy(2)
        for w in (0, 1, 0, 1, 1):
            plru.touch(w)
            lru.touch(w)
            assert plru.victim() == lru.victim()


class TestRandom:
    def test_deterministic_given_seed(self):
        a, b = RandomPolicy(8, seed=7), RandomPolicy(8, seed=7)
        assert [a.victim() for _ in range(10)] == [b.victim() for _ in range(10)]

    def test_victims_in_range(self):
        p = RandomPolicy(4, seed=1)
        assert all(0 <= p.victim() < 4 for _ in range(50))


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown replacement"):
        make_policy("mru", 4)


def _small_cache(**kw):
    defaults = dict(size_bytes=512, line_bytes=64, associativity=2)
    defaults.update(kw)
    return CacheArray(CacheConfig(**defaults))


class TestCacheArray:
    def test_miss_then_hit(self):
        c = _small_cache()
        assert c.lookup(0x100) is None
        c.fill(0x100)
        assert c.lookup(0x100) is not None
        assert c.hits == 1 and c.misses == 1

    def test_same_line_addresses_alias(self):
        c = _small_cache()
        c.fill(0x100)
        assert c.lookup(0x13F) is not None  # same 64-byte line
        assert c.lookup(0x140) is None  # next line

    def test_eviction_on_set_overflow(self):
        c = _small_cache()  # 4 sets x 2 ways
        s = 0x40 * c.num_sets  # set stride in bytes
        c.fill(0x000)
        c.fill(0x000 + s)
        victim = c.fill(0x000 + 2 * s)  # third line in set 0
        assert victim is not None
        assert c.evictions == 1

    def test_lru_eviction_order(self):
        c = _small_cache()
        s = 0x40 * c.num_sets
        c.fill(0x000)
        c.fill(s)
        c.lookup(0x000)  # make line 0 MRU
        c.fill(2 * s)
        assert c.probe(0x000) is not None
        assert c.probe(s) is None

    def test_dirty_victim_counts_writeback(self):
        c = _small_cache()
        s = 0x40 * c.num_sets
        c.fill(0x000, dirty=True)
        c.fill(s)
        c.fill(2 * s)
        assert c.writebacks == 1

    def test_refill_resident_line_keeps_dirty(self):
        c = _small_cache()
        c.fill(0x80, dirty=True)
        assert c.fill(0x80, dirty=False) is None
        assert c.dirty[c.probe(0x80)]

    def test_invalidate(self):
        c = _small_cache()
        c.fill(0x100)
        line = c.invalidate(0x100)
        assert line is not None
        assert c.probe(0x100) is None
        assert c.invalidate(0x100) is None

    def test_probe_no_side_effects(self):
        c = _small_cache()
        c.fill(0x100)
        h, m = c.hits, c.misses
        c.probe(0x100)
        c.probe(0x999)
        assert (c.hits, c.misses) == (h, m)

    def test_resident_addrs_roundtrip(self):
        c = _small_cache()
        addrs = [0x000, 0x040, 0x080, 0x1C0]
        for a in addrs:
            c.fill(a)
        assert sorted(c.resident_addrs()) == sorted(addrs)

    def test_occupancy(self):
        c = _small_cache()
        c.fill(0x000)
        c.fill(0x040)
        assert c.occupancy() == 2


class TestHierarchy:
    def _h(self):
        return CacheHierarchy(
            CacheConfig(size_bytes=256, line_bytes=64, associativity=2, hit_latency=2),
            CacheConfig(size_bytes=1024, line_bytes=64, associativity=4, hit_latency=6),
        )

    def test_first_access_goes_to_memory(self):
        h = self._h()
        res = h.access(0x100, write=False)
        assert res.level is ServiceLevel.MEMORY
        assert not res.hit

    def test_second_access_l1(self):
        h = self._h()
        h.access(0x100, write=False)
        res = h.access(0x100, write=False)
        assert res.level is ServiceLevel.L1
        assert res.latency == 2

    def test_l1_victim_found_in_l2(self):
        h = self._h()
        # fill enough distinct lines to overflow L1 set 0 (2 ways, 2 sets)
        stride = 64 * h.l1.num_sets
        addrs = [i * stride for i in range(4)]
        for a in addrs:
            h.access(a, write=False)
        res = h.access(addrs[0], write=False)
        assert res.level in (ServiceLevel.L2, ServiceLevel.L1)

    def test_write_makes_line_dirty(self):
        h = self._h()
        h.access(0x100, write=True)
        assert h.l1.dirty[h.l1.probe(0x100)]

    def test_mixed_line_sizes_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(
                CacheConfig(size_bytes=256, line_bytes=32, associativity=2),
                CacheConfig(size_bytes=1024, line_bytes=64, associativity=4),
            )

    def test_invalidate_clears_both_levels(self):
        h = self._h()
        h.access(0x100, write=False)
        assert h.contains(0x100)
        assert h.invalidate(0x100)
        assert not h.contains(0x100)

    def test_stats_keys(self):
        h = self._h()
        h.access(0x0, write=False)
        s = h.stats()
        assert s["memory_fills"] == 1
        assert "l1.hit_rate" in s
