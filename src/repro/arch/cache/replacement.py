"""Replacement policies for the set-associative cache arrays.

A policy is stateful per set; the array owns one policy instance per
set. Policies see way indices, never addresses, so they compose with
any array geometry.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.rng import as_generator


class ReplacementPolicy(ABC):
    """Per-set replacement state machine."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways

    @abstractmethod
    def touch(self, way: int) -> None:
        """Record a hit/fill on ``way``."""

    @abstractmethod
    def victim(self) -> int:
        """Way to evict next (does not mutate state)."""


class LRUPolicy(ReplacementPolicy):
    """True LRU via an explicit recency list (cheap at small ways)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order = list(range(ways))  # front = LRU, back = MRU

    def touch(self, way: int) -> None:
        order = self._order
        if order[-1] != way:  # already MRU: common case for repeated hits
            order.remove(way)
            order.append(way)

    def victim(self) -> int:
        return self._order[0]


class PseudoLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU (hardware-realistic for power-of-two ways)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ValueError("PseudoLRU requires power-of-two ways")
        self._bits = np.zeros(max(ways - 1, 1), dtype=np.uint8)

    def touch(self, way: int) -> None:
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point away: right half is colder
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                lo = mid
        assert lo == way

    def victim(self) -> int:
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node]:  # 1 -> go right (colder)
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim; baseline for replacement-sensitivity tests."""

    def __init__(self, ways: int, seed: int | np.random.Generator | None = 0) -> None:
        super().__init__(ways)
        self._rng = as_generator(seed)
        self._last_victim = 0

    def touch(self, way: int) -> None:  # stateless on hits
        pass

    def victim(self) -> int:
        self._last_victim = int(self._rng.integers(self.ways))
        return self._last_victim


POLICIES = {
    "lru": LRUPolicy,
    "plru": PseudoLRUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, ways: int) -> ReplacementPolicy:
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}; options: {sorted(POLICIES)}")
    return cls(ways)
