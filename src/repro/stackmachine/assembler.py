"""Tiny assembler for the stack ISA.

Syntax: one instruction per line; ``;`` starts a comment; labels end
with ``:``; operands are decimal/hex integers or label names (for
jump/call targets). Example::

    ; sum N array words starting at BASE
        lit 0          ; acc
        lit 100        ; base
    loop:
        dup
        load
        rot            ; hmm - see programs.py for idiomatic code
        add
        swap
        lit 1
        add
        ...
        jnz loop
        halt
"""

from __future__ import annotations

from repro.stackmachine.isa import HAS_OPERAND, Instruction, Opcode
from repro.util.errors import ReproError

_MNEMONICS = {op.value: op for op in Opcode}


class AssemblyError(ReproError):
    """Malformed assembly source."""


def assemble(source: str) -> list[Instruction]:
    """Assemble ``source`` into an instruction list (two passes)."""
    lines = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        code = raw.split(";", 1)[0].strip()
        if code:
            lines.append((lineno, code))

    # pass 1: label addresses
    labels: dict[str, int] = {}
    pc = 0
    for lineno, code in lines:
        if code.endswith(":"):
            name = code[:-1].strip()
            if not name.isidentifier():
                raise AssemblyError(f"line {lineno}: bad label {name!r}")
            if name in labels:
                raise AssemblyError(f"line {lineno}: duplicate label {name!r}")
            labels[name] = pc
        else:
            pc += 1

    # pass 2: encode
    program: list[Instruction] = []
    for lineno, code in lines:
        if code.endswith(":"):
            continue
        parts = code.split()
        mnem = parts[0].lower()
        op = _MNEMONICS.get(mnem)
        if op is None:
            raise AssemblyError(f"line {lineno}: unknown mnemonic {mnem!r}")
        if op in HAS_OPERAND:
            if len(parts) != 2:
                raise AssemblyError(f"line {lineno}: {mnem} needs exactly one operand")
            tok = parts[1]
            if tok in labels:
                operand = labels[tok]
            else:
                try:
                    operand = int(tok, 0)
                except ValueError:
                    raise AssemblyError(
                        f"line {lineno}: operand {tok!r} is neither an int nor a label"
                    ) from None
            program.append(Instruction(op, operand))
        else:
            if len(parts) != 1:
                raise AssemblyError(f"line {lineno}: {mnem} takes no operand")
            program.append(Instruction(op))
    return program
