"""String-keyed component registries: the one name→component map.

Every executable component family in the repo — detailed machines,
decision schemes, data placements, synthetic workload generators, and
topologies — registers itself here under a stable string name via the
``@REGISTRY.register("name")`` decorator at import time. Consumers
(:mod:`repro.cli`, :mod:`repro.runner`, the benches, the golden-fixture
generator) resolve names through :meth:`Registry.get` instead of
keeping private name→constructor tables, so adding a component is a
one-registry-entry change and every consumer picks it up at once.

Lookup of an unknown name raises :class:`~repro.util.errors.ConfigError`
listing the registered names (sorted), so CLI typos are self-explaining.

Registries load lazily: each is declared with the modules that contain
its entries, and the first ``get``/``names``/``items`` call imports
them. That keeps :mod:`repro.registry` a leaf module (components import
it, never the reverse at import time) while guaranteeing a registry is
fully populated no matter which consumer touches it first.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: the object plus its one-line description."""

    name: str
    obj: Any
    description: str


def _first_doc_line(obj: Any) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


class Registry:
    """A named map from string keys to components.

    ``kind`` names the family in error messages ("scheme", "workload"
    ...). ``modules`` are dotted module paths imported on first access
    so their ``@register`` decorators have run before any lookup.
    """

    def __init__(self, kind: str, modules: tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._modules = tuple(modules)
        self._entries: dict[str, RegistryEntry] = {}
        self._loaded = False

    # -- registration ------------------------------------------------------
    def register(
        self, name: str, description: str | None = None
    ) -> Callable[[Any], Any]:
        """Decorator: ``@SCHEMES.register("history")`` above a factory
        or class. The description defaults to the first docstring line.
        Duplicate names are a programming error and raise eagerly."""

        def deco(obj: Any) -> Any:
            if name in self._entries:
                raise ConfigError(
                    f"duplicate {self.kind} registration {name!r} "
                    f"({self._entries[name].obj!r} vs {obj!r})"
                )
            self._entries[name] = RegistryEntry(
                name=name,
                obj=obj,
                description=description if description is not None else _first_doc_line(obj),
            )
            return obj

        return deco

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in self._modules:
            importlib.import_module(module)

    # -- lookup ------------------------------------------------------------
    def get(self, name: str) -> Any:
        """The registered object, or :class:`ConfigError` naming every
        registered option (sorted) — the message users see on a typo."""
        return self.entry(name).obj

    def entry(self, name: str) -> RegistryEntry:
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{', '.join(self.names())}"
            ) from None

    def names(self) -> list[str]:
        self._ensure_loaded()
        return sorted(self._entries)

    def items(self) -> Iterator[RegistryEntry]:
        self._ensure_loaded()
        for name in self.names():
            yield self._entries[name]

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)


#: Detailed/analytical experiment executors. Entries are functions
#: ``fn(trace, placement, config, *, scheme=None, topology=None, **params)
#: -> dict`` returning the scenario's metrics dict.
MACHINES = Registry(
    "machine",
    modules=(
        "repro.core.evaluation",
        "repro.core.em2",
        "repro.core.em2ra",
        "repro.core.remote_access",
        "repro.coherence.simulator",
    ),
)

#: Decision schemes. Entries are factories
#: ``fn(cost: CostModel, **params) -> DecisionScheme``.
SCHEMES = Registry(
    "scheme",
    modules=(
        "repro.core.decision.static",
        "repro.core.decision.history",
        "repro.core.decision.costaware",
    ),
)

#: Data placements. Entries are factories
#: ``fn(trace: MultiTrace, num_cores: int, **params) -> Placement``.
PLACEMENTS = Registry(
    "placement",
    modules=(
        "repro.placement.first_touch",
        "repro.placement.striped",
        "repro.placement.profile_opt",
    ),
)

#: Synthetic workload generators. Entries are
#: :class:`~repro.trace.synthetic.base.WorkloadGenerator` subclasses.
WORKLOADS = Registry(
    "workload",
    modules=(
        "repro.trace.synthetic.ocean",
        "repro.trace.synthetic.fft",
        "repro.trace.synthetic.lu",
        "repro.trace.synthetic.radix",
        "repro.trace.synthetic.water",
        "repro.trace.synthetic.water_spatial",
        "repro.trace.synthetic.barnes",
        "repro.trace.synthetic.cholesky",
        "repro.trace.synthetic.raytrace",
        "repro.trace.synthetic.micro",
    ),
)

#: Topologies. Entries are factories
#: ``fn(config: SystemConfig, **params) -> Topology``.
TOPOLOGIES = Registry("topology", modules=("repro.arch.topology",))

#: Fault models. Entries are factories
#: ``fn(rng: numpy.random.Generator, **params) -> FaultModel``.
FAULTS = Registry("fault model", modules=("repro.faults.models",))

#: System-configuration presets. Entries are factories
#: ``fn(num_cores=<preset default>, **overrides) -> SystemConfig`` —
#: what :class:`~repro.spec.MachineSpec.preset` names resolve to.
PRESETS = Registry("preset", modules=("repro.arch.config",))

#: Every registry, keyed by family name — what ``repro list`` walks.
ALL_REGISTRIES: dict[str, Registry] = {
    "machines": MACHINES,
    "schemes": SCHEMES,
    "placements": PLACEMENTS,
    "workloads": WORKLOADS,
    "topologies": TOPOLOGIES,
    "faults": FAULTS,
    "presets": PRESETS,
}
