"""Typed, frozen experiment specifications.

An :class:`ExperimentSpec` is the complete declarative description of
one experiment: which workload, which machine (analytical evaluator or
a detailed DES simulator), which decision scheme, which placement, and
which topology. It is

* **typed and frozen** — construction validates field types; specs
  never mutate after creation;
* **serializable** — ``to_dict``/``from_dict`` round-trip through
  plain JSON-able dicts with a schema version, rejecting unknown
  fields and foreign versions;
* **hashable for caching** — the canonical dict feeds the SHA-256
  result-cache key (:func:`repro.analysis.cache.stable_key`), so the
  same spec produces the same key in every process;
* **the one construction path** — :func:`repro.runner.build` and
  :func:`repro.runner.run` turn a spec into live objects and metrics
  through the component registries, and every consumer (CLI, sweeps,
  benches, golden fixtures) goes through them.

Component ``name`` fields are registry keys (:mod:`repro.registry`);
``params`` dicts hold the component's constructor keyword arguments
and must contain only JSON-representable scalars/lists/dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.util.errors import ConfigError

#: Bump when the serialized layout changes incompatibly.
SPEC_SCHEMA_VERSION = 1


def _check_params(owner: str, params: Any) -> None:
    if not isinstance(params, dict):
        raise ConfigError(f"{owner}.params must be a dict, got {type(params).__name__}")
    for key in params:
        if not isinstance(key, str):
            raise ConfigError(f"{owner}.params keys must be strings, got {key!r}")


def _check_str(owner: str, fieldname: str, value: Any) -> None:
    if not isinstance(value, str) or not value:
        raise ConfigError(f"{owner}.{fieldname} must be a non-empty string, got {value!r}")


def _from_dict(cls, data: Mapping, *, owner: str):
    """Shared strict constructor: every key must name a dataclass field."""
    if not isinstance(data, Mapping):
        raise ConfigError(f"{owner} spec must be a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(
            f"unknown field(s) {', '.join(map(repr, unknown))} in {owner} spec; "
            f"known fields: {', '.join(sorted(known))}"
        )
    return cls(**{k: data[k] for k in data})


@dataclass(frozen=True)
class WorkloadSpec:
    """A synthetic workload by registered generator name, or a saved
    ``.npz`` trace by path (``trace_path`` set, ``name`` ignored)."""

    name: str = "ocean"
    params: dict = field(default_factory=dict)
    trace_path: str | None = None

    def __post_init__(self) -> None:
        _check_str("workload", "name", self.name)
        _check_params("workload", self.params)
        if self.trace_path is not None and not isinstance(self.trace_path, str):
            raise ConfigError("workload.trace_path must be a string or None")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "params": dict(self.params),
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        return _from_dict(cls, data, owner="workload")

    def cache_key(self) -> str:
        """Deterministic SHA-256 over the canonical workload dict — the
        content address of this spec's trace in the on-disk trace store
        (:mod:`repro.trace.store`) and the cross-process identity the
        shared-memory distribution layer keys attachments by."""
        from repro.analysis.cache import stable_key

        return stable_key(self.to_dict())


@dataclass(frozen=True)
class SchemeSpec:
    """A decision scheme by registered name plus factory parameters."""

    name: str = "history"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_str("scheme", "name", self.name)
        _check_params("scheme", self.params)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SchemeSpec":
        return _from_dict(cls, data, owner="scheme")


@dataclass(frozen=True)
class PlacementSpec:
    """A data placement policy by registered name plus parameters."""

    name: str = "first-touch"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_str("placement", "name", self.name)
        _check_params("placement", self.params)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PlacementSpec":
        return _from_dict(cls, data, owner="placement")


@dataclass(frozen=True)
class TopologySpec:
    """An on-chip network topology. ``"auto"`` means the default mesh
    for the system configuration (:func:`repro.arch.topology.topology_for`)."""

    name: str = "auto"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_str("topology", "name", self.name)
        _check_params("topology", self.params)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "TopologySpec":
        return _from_dict(cls, data, owner="topology")


@dataclass(frozen=True)
class FaultSpec:
    """A fault process plus the recovery protocol's knobs.

    ``name`` keys the :data:`repro.registry.FAULTS` registry (a fault
    *model*: ``"iid"`` independent per-message faults, ``"bursty"``
    Gilbert-Elliott bursts); ``params`` are the model's constructor
    arguments (drop/duplicate/delay rates, link-down windows, core
    stalls). ``seed`` selects the dedicated PCG64 fault stream — the
    same ``(spec, seed)`` always reproduces the identical fault
    schedule, in every process.

    The recovery fields configure the timeout/retry protocol every
    machine runs when faults are enabled: ``retry_timeout`` cycles
    before the first resend, scaled by ``retry_backoff`` per attempt,
    giving up (``RetryExhaustedError``) after ``retry_cap`` resends.
    ``retries=False`` disables recovery entirely — dropped messages
    then strand threads, which is itself a scenario worth measuring.
    """

    name: str = "iid"
    params: dict = field(default_factory=dict)
    seed: int = 0
    retries: bool = True
    retry_timeout: float = 256.0
    retry_backoff: float = 2.0
    retry_cap: int = 10

    def __post_init__(self) -> None:
        _check_str("faults", "name", self.name)
        _check_params("faults", self.params)
        if not isinstance(self.seed, int):
            raise ConfigError(f"faults.seed must be an int, got {self.seed!r}")
        if not isinstance(self.retries, bool):
            raise ConfigError(f"faults.retries must be a bool, got {self.retries!r}")
        if not isinstance(self.retry_timeout, (int, float)) or self.retry_timeout <= 0:
            raise ConfigError(
                f"faults.retry_timeout must be a positive number, got {self.retry_timeout!r}"
            )
        if not isinstance(self.retry_backoff, (int, float)) or self.retry_backoff < 1.0:
            raise ConfigError(
                f"faults.retry_backoff must be >= 1.0, got {self.retry_backoff!r}"
            )
        if not isinstance(self.retry_cap, int) or self.retry_cap < 0:
            raise ConfigError(
                f"faults.retry_cap must be a non-negative int, got {self.retry_cap!r}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "params": dict(self.params),
            "seed": self.seed,
            "retries": self.retries,
            "retry_timeout": self.retry_timeout,
            "retry_backoff": self.retry_backoff,
            "retry_cap": self.retry_cap,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        return _from_dict(cls, data, owner="faults")


@dataclass(frozen=True)
class MachineSpec:
    """Which executor runs the experiment, on what system.

    ``name`` is a machine-registry key (``"analytical"`` for the fast
    §3 evaluator, ``"em2"``/``"em2ra"``/``"ra-only"``/``"cc-msi"``/
    ``"cc-mesi"`` for the detailed simulators). ``preset`` names a
    :data:`repro.registry.PRESETS` entry — the
    :class:`~repro.arch.config.SystemConfig` base (``"default"``,
    ``"small-test"``, or the scale presets ``"mesh-1024"``/
    ``"cluster-4096"``); ``config`` holds flat SystemConfig overrides
    and ``params`` extra machine keyword arguments.
    """

    name: str = "analytical"
    cores: int = 64
    preset: str = "default"
    config: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)
    #: Epoch-batched fast path for the detailed simulators (bit-identical
    #: results; auto-disabled when a fault plane is attached). Serializes
    #: only when disabled, so every pre-existing spec dict, cache key,
    #: and golden fixture is unchanged.
    fast_path: bool = True

    def __post_init__(self) -> None:
        _check_str("machine", "name", self.name)
        _check_str("machine", "preset", self.preset)
        if not isinstance(self.cores, int) or self.cores <= 0:
            raise ConfigError(f"machine.cores must be a positive int, got {self.cores!r}")
        from repro.registry import PRESETS

        if self.preset not in PRESETS:
            raise ConfigError(
                f"unknown machine.preset {self.preset!r}; registered presets: "
                f"{', '.join(PRESETS.names())}"
            )
        if not isinstance(self.fast_path, bool):
            raise ConfigError(
                f"machine.fast_path must be a bool, got {self.fast_path!r}"
            )
        _check_params("machine", self.config)
        _check_params("machine", self.params)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "cores": self.cores,
            "preset": self.preset,
            "config": dict(self.config),
            "params": dict(self.params),
        }
        if not self.fast_path:
            out["fast_path"] = False
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "MachineSpec":
        return _from_dict(cls, data, owner="machine")


@dataclass(frozen=True)
class ExperimentSpec:
    """The complete declarative description of one experiment."""

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    machine: MachineSpec = field(default_factory=MachineSpec)
    scheme: SchemeSpec = field(default_factory=SchemeSpec)
    placement: PlacementSpec = field(default_factory=PlacementSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    #: Optional fault plane. ``None`` (the default) means a lossless
    #: fabric — the spec serializes without a ``faults`` key, so every
    #: pre-fault spec dict, cache key, and golden fixture is unchanged.
    faults: FaultSpec | None = None

    _SUBSPECS = (
        ("workload", WorkloadSpec),
        ("machine", MachineSpec),
        ("scheme", SchemeSpec),
        ("placement", PlacementSpec),
        ("topology", TopologySpec),
    )

    def __post_init__(self) -> None:
        for name, cls in self._SUBSPECS:
            value = getattr(self, name)
            if not isinstance(value, cls):
                raise ConfigError(
                    f"ExperimentSpec.{name} must be a {cls.__name__}, "
                    f"got {type(value).__name__}"
                )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ConfigError(
                f"ExperimentSpec.faults must be a FaultSpec or None, "
                f"got {type(self.faults).__name__}"
            )

    def to_dict(self) -> dict:
        """Canonical JSON-able form, schema-versioned. Feeding this to
        :func:`repro.analysis.cache.stable_key` yields the cache key.

        ``faults`` is omitted when ``None`` so fault-free specs are
        byte-identical to pre-fault-plane serializations (stable cache
        keys, committed golden spec dicts round-trip unchanged).
        """
        out = {
            "schema": SPEC_SCHEMA_VERSION,
            **{name: getattr(self, name).to_dict() for name, _ in self._SUBSPECS},
        }
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentSpec":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"experiment spec must be a mapping, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != SPEC_SCHEMA_VERSION:
            raise ConfigError(
                f"experiment spec schema {schema!r} not supported; "
                f"this version reads schema {SPEC_SCHEMA_VERSION}"
            )
        known = {"schema", "faults"} | {name for name, _ in cls._SUBSPECS}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown field(s) {', '.join(map(repr, unknown))} in experiment "
                f"spec; known fields: {', '.join(sorted(known))}"
            )
        kwargs = {}
        for name, sub_cls in cls._SUBSPECS:
            if name in data:
                kwargs[name] = sub_cls.from_dict(data[name])
        if data.get("faults") is not None:
            kwargs["faults"] = FaultSpec.from_dict(data["faults"])
        return cls(**kwargs)

    # -- derivation --------------------------------------------------------
    def replace(self, **overrides) -> "ExperimentSpec":
        """A new spec with whole sub-specs swapped (frozen-safe update)."""
        import dataclasses

        return dataclasses.replace(self, **overrides)

    def cache_key(self) -> str:
        """Deterministic SHA-256 over the canonical dict — the result
        cache's content address (stable across processes and runs)."""
        from repro.analysis.cache import stable_key

        return stable_key(self.to_dict())
