"""Common machinery for workload generators.

Address-space layout
--------------------
Word-granular addresses partitioned into non-overlapping regions:

* per-thread private regions (stack, locals, private arrays) — these
  are first-touched by their owner, so first-touch placement homes
  them at the owner's core;
* named shared regions (grids, matrices, trees) — touched by several
  threads according to the workload's sharing pattern.

Addresses stay below 2**48 so intermediate arithmetic is exact in
int64; traces store uint64.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.trace.events import MultiTrace, make_trace
from repro.util.errors import ConfigError
from repro.util.rng import as_generator

PRIVATE_BASE = 1 << 40
PRIVATE_SPAN = 1 << 24  # words of private space per thread
SHARED_BASE = 1 << 20


@dataclass
class AddressSpace:
    """Allocates named shared regions and per-thread private regions."""

    num_threads: int
    _next_shared: int = SHARED_BASE
    _regions: dict | None = None

    def __post_init__(self) -> None:
        if self.num_threads <= 0:
            raise ConfigError("num_threads must be positive")
        self._regions = {}

    def shared_region(self, name: str, words: int) -> int:
        """Reserve ``words`` of shared space; returns the base address."""
        if words <= 0:
            raise ConfigError(f"region {name!r} needs positive size")
        if name in self._regions:
            raise ConfigError(f"region {name!r} already allocated")
        base = self._next_shared
        self._regions[name] = (base, words)
        self._next_shared += words
        if self._next_shared >= PRIVATE_BASE:
            raise ConfigError("shared address space exhausted")
        return base

    def region(self, name: str) -> tuple[int, int]:
        """(base, words) of a previously allocated region."""
        return self._regions[name]

    def private_base(self, thread: int) -> int:
        if not (0 <= thread < self.num_threads):
            raise ConfigError(f"thread {thread} out of range")
        return PRIVATE_BASE + thread * PRIVATE_SPAN


class TraceBuilder:
    """Accumulates one thread's accesses in append-amortized chunks.

    ``emit`` keeps write/icount parts *unmaterialized* (a scalar stays
    a scalar until :meth:`build` fills the final column), so emitting a
    whole-phase address column costs one array append rather than two
    broadcast copies per call.
    """

    def __init__(self) -> None:
        self._addr: list[np.ndarray] = []
        self._write: list[tuple] = []  # (scalar-or-array, length)
        self._icount: list[tuple] = []

    def emit(self, addrs, writes=0, icounts=0) -> None:
        """Append a block of accesses.

        ``writes``/``icounts`` may be scalars (broadcast) or arrays.
        """
        addrs = np.atleast_1d(np.asarray(addrs, dtype=np.int64))
        n = addrs.size
        self._addr.append(addrs)
        self._write.append((writes, n))
        self._icount.append((icounts, n))

    def emit_one(self, addr: int, write: bool = False, icount: int = 0) -> None:
        self.emit([addr], 1 if write else 0, icount)

    @staticmethod
    def _fill(parts: list[tuple], total: int, dtype) -> np.ndarray:
        out = np.empty(total, dtype=dtype)
        pos = 0
        for value, n in parts:
            out[pos : pos + n] = value
            pos += n
        return out

    def build(self) -> np.ndarray:
        if not self._addr:
            return make_trace([])
        total = sum(a.size for a in self._addr)
        return make_trace(
            np.concatenate(self._addr).astype(np.uint64),
            self._fill(self._write, total, np.uint8),
            self._fill(self._icount, total, np.uint16),
        )

    def __len__(self) -> int:
        return sum(a.size for a in self._addr)


class WorkloadGenerator(ABC):
    """Base class: common parameters + the generate() contract."""

    name = "base"

    def __init__(self, num_threads: int = 64, seed: int | None = 0) -> None:
        if num_threads <= 0:
            raise ConfigError("num_threads must be positive")
        self.num_threads = num_threads
        self.rng = as_generator(seed)
        self.space = AddressSpace(num_threads)

    @abstractmethod
    def _thread_trace(self, thread: int, builder: TraceBuilder) -> None:
        """Emit thread ``thread``'s accesses into ``builder``."""

    def params(self) -> dict:
        """Generator parameters recorded in the trace metadata."""
        return {"num_threads": self.num_threads}

    def generate(self) -> MultiTrace:
        threads = []
        for t in range(self.num_threads):
            b = TraceBuilder()
            self._thread_trace(t, b)
            threads.append(b.build())
        return MultiTrace(
            threads=threads,
            thread_native_core=list(range(self.num_threads)),
            name=self.name,
            params=self.params(),
        )
