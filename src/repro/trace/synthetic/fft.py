"""FFT-like workload (SPLASH-2 FFT stand-in).

The SPLASH-2 FFT is the classic six-step algorithm: local butterfly
work on a thread-owned partition of the data array, interleaved with
**transpose phases** where every thread reads a block from every other
thread's partition and writes it into its own — an all-to-all pattern.

Memory structure reproduced here:

* shared ``data`` array of ``2 * points`` words (complex pairs),
  block-partitioned by thread (homed by the init phase);
* local butterfly phases: strided read/write passes over the thread's
  own block (native-homed runs);
* transpose phases: for each peer, read a contiguous sub-block of the
  peer's partition (one medium-length remote run per peer), then write
  it into the thread's own partition (local). Remote run length is the
  sub-block size, ``points / threads**2`` words — so FFT shows
  medium-length runs at *many distinct* cores, unlike OCEAN's
  two-neighbour pattern.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("fft", "FFT-like transpose workload (SPLASH-2 stand-in)")
class FFTGenerator(WorkloadGenerator):
    name = "fft"

    def __init__(
        self,
        num_threads: int = 64,
        points_per_thread: int = 1024,
        butterfly_stages: int = 4,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if points_per_thread < num_threads:
            raise ConfigError(
                f"points_per_thread={points_per_thread} must be >= num_threads="
                f"{num_threads} so transpose sub-blocks are non-empty"
            )
        if butterfly_stages <= 0:
            raise ConfigError("butterfly_stages must be positive")
        self.ppt = points_per_thread
        self.stages = butterfly_stages
        self.data_base = self.space.shared_region("data", 2 * num_threads * self.ppt)
        self.twiddle_base = self.space.shared_region("twiddles", self.ppt)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "points_per_thread": self.ppt,
            "butterfly_stages": self.stages,
        }

    def block_base(self, thread: int) -> int:
        return self.data_base + 2 * thread * self.ppt

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(2 * self.ppt, dtype=np.int64)
        b.emit(self.block_base(thread) + words, writes=1, icounts=1)

    def _butterfly_stage(self, thread: int, stage: int, b: TraceBuilder) -> None:
        """Strided local pass: read pairs, write results, read twiddles."""
        stride = 1 << (stage % max(self.ppt.bit_length() - 2, 1))
        idx = np.arange(0, self.ppt - stride, 2 * stride, dtype=np.int64)
        if idx.size == 0:
            idx = np.zeros(1, dtype=np.int64)
        base = self.block_base(thread)
        a = base + 2 * idx
        bb = base + 2 * (idx + stride)
        tw = self.twiddle_base + (idx % self.ppt)
        # per-butterfly: read a, read b, read twiddle, write a, write b
        seq = np.column_stack([a, bb, tw, a, bb]).ravel()
        writes = np.tile(np.array([0, 0, 0, 1, 1], dtype=np.uint8), idx.size)
        b.emit(seq, writes=writes, icounts=4)

    def _transpose_phase(self, thread: int, b: TraceBuilder) -> None:
        """All-to-all: read my sub-block from each peer, store locally.

        One whole-phase column: per peer (in ring order), a remote read
        run over the peer's sub-block followed by local stores into our
        own partition.
        """
        sub = max(self.ppt // self.num_threads, 1)
        peers = (thread + np.arange(1, self.num_threads, dtype=np.int64)) % (
            self.num_threads
        )
        if peers.size == 0:
            return
        words = np.arange(2 * sub, dtype=np.int64)
        src = self.data_base + 2 * peers * self.ppt + 2 * thread * sub
        dst = self.block_base(thread) + 2 * peers * sub
        # shape (peers, 2, 2*sub): axis 1 = [remote read run, local stores]
        seq = np.stack(
            [src[:, None] + words[None, :], dst[:, None] + words[None, :]], axis=1
        ).ravel()
        writes = np.tile(
            np.repeat(np.array([0, 1], dtype=np.uint8), 2 * sub), peers.size
        )
        b.emit(seq, writes=writes, icounts=1)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        for stage in range(self.stages):
            self._butterfly_stage(thread, stage, b)
        self._transpose_phase(thread, b)
        for stage in range(self.stages):
            self._butterfly_stage(thread, stage, b)
