"""Message-level NoC simulator with optional link contention."""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from repro.arch.config import NocConfig
from repro.arch.noc.packet import Message, VirtualNetwork
from repro.arch.topology import Topology
from repro.sim.engine import Engine
from repro.sim.stats import StatSet


class Network:
    """Transports :class:`Message` objects across a :class:`Topology`.

    Latency model (per message of F flits over H hops):

    * zero-load: ``H * (router_latency + link_latency) + (F - 1)``
      — the head flit pays per-hop pipeline latency, the body flits
      stream behind it (wormhole pipelining).
    * with ``contention=True``, each (directed link, VC) is a resource
      occupied for F cycles per traversal; a message queues behind the
      previous occupant. This is a deliberately simple store-and-
      forward-of-trains approximation — adequate because the paper's
      claims concern serialization (context size) and hop distance, not
      router microarchitecture.

    Statistics: per-vnet message counts, flit-hops (the traffic/energy
    proxy used by the energy model), and delivered-latency accumulators.
    """

    def __init__(self, engine: Engine, topology: Topology, config: NocConfig) -> None:
        self.engine = engine
        self.topology = topology
        self.config = config
        self.stats = StatSet("noc")
        # (src, dst, vc) -> earliest free time, only touched in contention mode
        self._link_free: dict[tuple[int, int, int], float] = defaultdict(float)

    # ------------------------------------------------------------------
    def zero_load_latency(self, src: int, dst: int, payload_bits: int) -> float:
        """Latency ignoring contention; also used by the analytical cost model."""
        hops = self.topology.distance(src, dst)
        flits = self.config.message_flits(payload_bits)
        per_hop = self.config.router_latency + self.config.link_latency
        return hops * per_hop + (flits - 1)

    # ------------------------------------------------------------------
    def send(
        self,
        msg: Message,
        on_deliver: Callable[[Message], None],
    ) -> Message:
        """Inject ``msg`` now; schedule ``on_deliver(msg)`` at arrival."""
        msg.inject_time = self.engine.now
        flits = self.config.message_flits(msg.payload_bits)
        hops = self.topology.distance(msg.src, msg.dst)

        self.stats.counters.add(f"messages.{msg.vnet.name}")
        self.stats.counters.add(f"flits.{msg.vnet.name}", flits)
        self.stats.counters.add("flit_hops", flits * max(hops, 1))

        if msg.src == msg.dst:
            # Loopback: still pays serialization into/out of the NI.
            arrival = self.engine.now + (flits - 1) + 1
        elif not self.config.contention:
            arrival = self.engine.now + self.zero_load_latency(msg.src, msg.dst, msg.payload_bits)
        else:
            arrival = self._contended_arrival(msg, flits)

        def _deliver() -> None:
            msg.deliver_time = self.engine.now
            self.stats.latency(f"delivery.{msg.vnet.name}").add(msg.latency)
            on_deliver(msg)

        self.engine.schedule_at(arrival, _deliver)
        return msg

    def _contended_arrival(self, msg: Message, flits: int) -> float:
        """Walk the route reserving each (link, VC) for ``flits`` cycles."""
        per_hop = self.config.router_latency + self.config.link_latency
        route = self.topology.route(msg.src, msg.dst)
        vc = int(msg.vnet) % self.config.num_virtual_channels
        head = self.engine.now
        for u, v in zip(route, route[1:]):
            key = (u, v, vc)
            start = max(head, self._link_free[key])
            queued = start - head
            if queued > 0:
                self.stats.latency("queueing").add(queued)
            self._link_free[key] = start + flits
            head = start + per_hop
        return head + (flits - 1)

    # ------------------------------------------------------------------
    def flit_hops(self) -> int:
        """Total flit-hops transported so far (energy/traffic proxy)."""
        return self.stats.counters["flit_hops"]

    def message_count(self, vnet: VirtualNetwork | None = None) -> int:
        if vnet is None:
            return sum(
                v for k, v in self.stats.counters.as_dict().items() if k.startswith("messages.")
            )
        return self.stats.counters[f"messages.{vnet.name}"]
