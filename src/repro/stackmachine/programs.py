"""Parallel stack-machine kernels and trace builders.

Each ``*_program`` returns assembly for one thread of a parallel
kernel; :func:`stack_workload` assembles and *executes* them on
:class:`~repro.stackmachine.machine.StackMachine` instances and packs
the recorded stack-annotated traces into a
:class:`~repro.trace.events.MultiTrace` — real programs driving the
stack-EM² experiments, not synthetic annotations.

Address-space convention matches :mod:`repro.trace.synthetic.base`:
shared arrays in low memory, per-thread private regions high.

:func:`annotate_stack_activity` is the synthetic fallback: it adds
plausible ``spop``/``spush`` fields to a register-machine trace so the
SPLASH-like workloads can also drive the stack-depth DP.
"""

from __future__ import annotations

import numpy as np

from repro.stackmachine.assembler import assemble
from repro.stackmachine.machine import StackMachine
from repro.trace.events import MultiTrace, make_trace
from repro.trace.synthetic.base import PRIVATE_BASE, PRIVATE_SPAN, SHARED_BASE
from repro.util.errors import ConfigError
from repro.util.rng import as_generator


def dot_product_program(base_a: int, base_b: int, out_addr: int, n: int) -> str:
    """acc = sum_i a[i]*b[i]; result stored to ``out_addr``.

    Stack discipline: the loop keeps (acc, i) on the data stack and
    dips to depth ~4 inside the body — a shallow-stack kernel whose
    optimal migration depth is small.
    """
    if n <= 0:
        raise ConfigError("n must be positive")
    return f"""
        lit 0           ; acc
        lit 0           ; i
    loop:
        dup             ; acc i i
        lit {base_a}    ; acc i i a
        add             ; acc i &a[i]
        load            ; acc i a[i]
        over            ; acc i a[i] i
        lit {base_b}
        add             ; acc i a[i] &b[i]
        load            ; acc i a[i] b[i]
        mul             ; acc i prod
        rot             ; i prod acc
        add             ; i acc'
        swap            ; acc' i
        lit 1
        add             ; acc' i+1
        dup
        lit {n}
        lt              ; acc i+1 (i+1<n)
        jnz loop
        drop            ; acc
        lit {out_addr}
        store
        halt
    """


def reduction_program(base: int, out_addr: int, n: int, stride: int = 1) -> str:
    """acc = sum of ``n`` words at ``base`` with ``stride`` (remote-run kernel)."""
    if n <= 0 or stride <= 0:
        raise ConfigError("n and stride must be positive")
    return f"""
        lit 0           ; acc
        lit 0           ; i
    loop:
        dup
        lit {stride}
        mul
        lit {base}
        add             ; acc i addr
        load            ; acc i v
        rot             ; i v acc
        add             ; i acc'
        swap            ; acc' i
        lit 1
        add
        dup
        lit {n}
        lt
        jnz loop
        drop
        lit {out_addr}
        store
        halt
    """


def histogram_program(keys_base: int, hist_base: int, n: int, buckets: int) -> str:
    """For each key k: hist[k % buckets] += 1 (scattered RMW kernel)."""
    if n <= 0 or buckets <= 0:
        raise ConfigError("n and buckets must be positive")
    return f"""
        lit 0           ; i
    loop:
        dup             ; i i
        lit {keys_base}
        add             ; i &keys[i]
        load            ; i key
        dup             ; i key key
        lit {buckets}
        div             ; i key key/B
        lit {buckets}
        mul             ; i key (key/B)*B
        sub             ; i key%B
        lit {hist_base}
        add             ; i &hist[k]
        dup             ; i addr addr
        load            ; i addr v
        lit 1
        add             ; i addr v+1
        swap            ; i v+1 addr
        store           ; i
        lit 1
        add             ; i+1
        dup
        lit {n}
        lt
        jnz loop
        drop
        halt
    """


# ---------------------------------------------------------------------------
def stack_workload(
    kernel: str = "dot",
    num_threads: int = 8,
    n: int = 64,
    shared_fraction: float = 0.5,
    stack_capacity: int = 16,
    seed: int | None = 0,
) -> MultiTrace:
    """Assemble + execute one kernel per thread; return the MultiTrace.

    ``shared_fraction`` of threads read a *shared* input array (homed
    by thread 0 under first touch); the rest read their private
    arrays — giving the mix of local and remote stack-machine
    migrations the §4 experiments need.
    """
    if kernel not in ("dot", "reduce", "hist"):
        raise ConfigError("kernel must be one of dot|reduce|hist")
    if not (0.0 <= shared_fraction <= 1.0):
        raise ConfigError("shared_fraction must be in [0, 1]")
    rng = as_generator(seed)
    shared_a = SHARED_BASE
    shared_b = SHARED_BASE + n
    threads = []
    for t in range(num_threads):
        priv = PRIVATE_BASE + t * PRIVATE_SPAN
        use_shared = t > 0 and (t / max(num_threads - 1, 1)) <= shared_fraction
        base_a = shared_a if use_shared else priv
        base_b = shared_b if use_shared else priv + n
        out = priv + 2 * n
        if kernel == "dot":
            asm = dot_product_program(base_a, base_b, out, n)
        elif kernel == "reduce":
            asm = reduction_program(base_a, out, n)
        else:
            asm = histogram_program(base_a, priv + 4 * n, n, max(n // 8, 1))
        memory = {base_a + i: int(rng.integers(0, 100)) for i in range(n)}
        memory.update({base_b + i: int(rng.integers(0, 100)) for i in range(n)})
        vm = StackMachine(assemble(asm), memory=memory, stack_capacity=stack_capacity)
        trace = vm.run(fuel=4_000_000)
        threads.append(trace)
    # thread 0 first-touches the shared arrays: prepend an init write pass
    init_addrs = np.arange(2 * n, dtype=np.int64) + shared_a
    init = make_trace(
        init_addrs,
        writes=np.ones(2 * n, dtype=np.uint8),
        icounts=np.ones(2 * n, dtype=np.uint16),
        spops=np.full(2 * n, 2, dtype=np.uint8),
        spushes=np.zeros(2 * n, dtype=np.uint8),
    )
    threads[0] = np.concatenate([init, threads[0]])
    return MultiTrace(
        threads=threads,
        thread_native_core=list(range(num_threads)),
        name=f"stack-{kernel}",
        params={
            "kernel": kernel,
            "num_threads": num_threads,
            "n": n,
            "shared_fraction": shared_fraction,
        },
    )


def compiled_workload(
    source: str,
    num_threads: int = 8,
    constants_for=None,
    memory_for=None,
    stack_capacity: int = 16,
    name: str = "compiled",
    fuel: int = 4_000_000,
) -> MultiTrace:
    """Compile and execute a mini-language kernel per thread.

    ``constants_for(thread) -> dict`` supplies per-thread compile-time
    bindings (array bases, sizes); ``memory_for(thread) -> dict`` the
    initial memory. Locals frame sits at the top of each thread's
    private region (above any private data the constants point to).

    Example::

        src = '''
            acc = 0; i = 0;
            while (i < n) { acc = acc + load(base + i); i = i + 1; }
            store(out, acc);
        '''
        mt = compiled_workload(
            src,
            num_threads=4,
            constants_for=lambda t: {"base": SHARED_BASE, "n": 64,
                                     "out": PRIVATE_BASE + t * PRIVATE_SPAN},
        )
    """
    from repro.stackmachine.compiler import compile_source

    threads = []
    for t in range(num_threads):
        frame = PRIVATE_BASE + t * PRIVATE_SPAN + (PRIVATE_SPAN // 2)
        constants = constants_for(t) if constants_for else {}
        memory = dict(memory_for(t)) if memory_for else {}
        program = compile_source(source, frame, constants)
        vm = StackMachine(program, memory=memory, stack_capacity=stack_capacity)
        threads.append(vm.run(fuel=fuel))
    return MultiTrace(
        threads=threads,
        thread_native_core=list(range(num_threads)),
        name=name,
        params={"source_lines": len(source.strip().splitlines())},
    )


def annotate_stack_activity(
    trace: np.ndarray,
    max_depth: int = 6,
    seed: int | None = 0,
) -> np.ndarray:
    """Retrofit synthetic ``spop``/``spush`` onto a register-machine trace.

    Segment stack activity scales with ``icount`` (more instructions,
    more evaluation-stack churn), capped at ``max_depth``. Deterministic
    given ``seed``. Used to drive stack-depth experiments from
    SPLASH-like traces when no stack binary exists (DESIGN.md §1).
    """
    rng = as_generator(seed)
    n = trace.size
    icap = np.minimum(trace["icount"].astype(np.int64), max_depth)
    # an access itself consumes >= 1 entry (its address operand)
    spop = 1 + rng.integers(0, icap + 1)
    spop = np.minimum(spop, max_depth)
    spush = np.minimum(rng.integers(0, icap + 1) + (trace["write"] == 0), max_depth)
    return make_trace(
        trace["addr"],
        trace["write"],
        trace["icount"],
        spops=spop.astype(np.uint8),
        spushes=spush.astype(np.uint8),
    )
