"""Hypothesis fuzz suite for the farm frame decoder (ISSUE 10).

The decoder sits on the trust boundary: whatever bytes an attacker (or
the chaos proxy) puts on the wire, :func:`recv_frame` must either
return a well-formed ``(kind, payload)`` or raise a typed
:class:`FrameError`/:class:`ProtocolMismatch` — never hang, never
allocate the declared length before validating it, and never feed
attacker-controlled bytes to ``pickle`` for a control-plane kind.

Every case writes the fuzzed bytes into one end of a socketpair and
closes it, so a decoder waiting for more input sees EOF (a
``FrameError``) instead of blocking; a 5-second socket timeout is the
backstop that turns any residual hang into a loud failure.
"""

import json
import socket
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.farm as farm
from repro.analysis.farm import (
    HEADER,
    KIND_NAMES,
    MAGIC,
    MAX_FRAME,
    PROTOCOL_VERSION,
    TRACE_PUT,
    FrameError,
    ProtocolMismatch,
    encode_frame,
    recv_frame,
)

_CONTROL_KINDS = sorted(k for k in KIND_NAMES if k != TRACE_PUT)


def _decode(data: bytes):
    """Run the decoder over exactly ``data`` then EOF."""
    a, b = socket.socketpair()
    try:
        a.sendall(data)
        a.shutdown(socket.SHUT_WR)
        b.settimeout(5.0)
        return recv_frame(b)
    finally:
        a.close()
        b.close()


def _valid_frame(kind: int = None, payload=None) -> bytes:
    if kind is None:
        kind = _CONTROL_KINDS[0]
    if payload is None:
        payload = {"chunk_id": 7, "indices": [1, 2, 3], "msg": "fuzz seed"}
    return encode_frame(kind, payload)


# ------------------------------------------------------------ raw garbage
@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=0, max_size=256))
def test_random_bytes_never_hang_or_crash(data):
    """Arbitrary bytes either decode (vanishingly unlikely — they must
    begin with the magic) or raise the typed errors. Nothing else."""
    try:
        kind, payload = _decode(data)
    except (FrameError, ProtocolMismatch):
        return
    assert kind in KIND_NAMES  # the improbable valid frame


@settings(max_examples=100, deadline=None)
@given(data=st.binary(min_size=0, max_size=256))
def test_random_bytes_after_magic_still_typed(data):
    """Force past the magic check so the version/kind/length validators
    and the body parser all get fuzzed, not just the first four bytes."""
    try:
        kind, payload = _decode(MAGIC + data)
    except (FrameError, ProtocolMismatch):
        return
    assert kind in KIND_NAMES


# ------------------------------------------------------------- truncation
@settings(max_examples=100, deadline=None)
@given(cut=st.integers(min_value=0, max_value=1))
def test_every_truncation_of_a_valid_frame_raises(cut):
    frame = _valid_frame()
    # exercise every prefix in two interleaved passes to stay fast
    for n in range(cut, len(frame), 2):
        with pytest.raises((FrameError, ProtocolMismatch)):
            _decode(frame[:n])


# --------------------------------------------------------------- bit flips
@settings(max_examples=200, deadline=None)
@given(
    pos=st.integers(min_value=0, max_value=10_000),
    bit=st.integers(min_value=0, max_value=7),
)
def test_single_bit_flip_is_typed_or_decodes(pos, bit):
    frame = bytearray(_valid_frame())
    pos %= len(frame)
    frame[pos] ^= 1 << bit
    try:
        kind, payload = _decode(bytes(frame))
    except (FrameError, ProtocolMismatch):
        return
    # a flip inside the JSON body can still be valid JSON; the header
    # fields though are hard-validated
    assert kind in KIND_NAMES
    if pos < HEADER.size:
        # surviving a header flip means the flip landed in padding
        assert frame[:4] == MAGIC


@settings(max_examples=100, deadline=None)
@given(version=st.integers(min_value=0, max_value=255))
def test_every_foreign_version_is_protocol_mismatch(version):
    body = b"{}"
    data = HEADER.pack(MAGIC, version, _CONTROL_KINDS[0], len(body)) + body
    if version == PROTOCOL_VERSION:
        assert _decode(data)[0] == _CONTROL_KINDS[0]
    else:
        with pytest.raises(ProtocolMismatch):
            _decode(data)


# ----------------------------------------------------- length-field abuse
@settings(max_examples=100, deadline=None)
@given(
    length=st.integers(min_value=MAX_FRAME + 1, max_value=2**32 - 1),
    kind=st.sampled_from(_CONTROL_KINDS),
)
def test_oversized_length_rejected_before_allocation(length, kind):
    """A declared length over the ceiling raises without the decoder
    ever trying to read (or allocate) the body."""
    data = HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, length)
    with pytest.raises(FrameError, match="ceiling"):
        _decode(data)


@settings(max_examples=100, deadline=None)
@given(
    declared=st.integers(min_value=1, max_value=4096),
    sent=st.integers(min_value=0, max_value=64),
)
def test_declared_longer_than_sent_raises_on_eof(declared, sent):
    body = b"x" * min(sent, declared - 1) if declared > 0 else b""
    data = HEADER.pack(MAGIC, PROTOCOL_VERSION, _CONTROL_KINDS[0], declared) + body
    with pytest.raises(FrameError, match="mid-frame"):
        _decode(data)


# -------------------------------------------------- no unpickling of control
@settings(max_examples=100, deadline=None)
@given(
    kind=st.sampled_from(_CONTROL_KINDS),
    body=st.binary(min_size=0, max_size=512),
)
def test_control_kinds_never_reach_pickle(kind, body):
    """Attacker bytes in a control frame must go to the JSON parser,
    never to pickle — a pickle.loads on them is remote code execution."""
    calls = []
    real_loads = farm.pickle.loads

    def recording_loads(*a, **k):
        calls.append(1)
        return real_loads(*a, **k)

    farm.pickle.loads = recording_loads
    try:
        data = HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, len(body)) + body
        try:
            _decode(data)
        except (FrameError, ProtocolMismatch):
            pass
    finally:
        farm.pickle.loads = real_loads
    assert calls == []


def test_trace_put_is_the_only_pickle_kind():
    assert farm._PICKLE_KINDS == frozenset({TRACE_PUT})


# ------------------------------------------------------- mid-stream garbage
@settings(max_examples=50, deadline=None)
@given(garbage=st.binary(min_size=1, max_size=64))
def test_garbage_after_valid_frame_poisons_only_the_next_read(garbage):
    first = _valid_frame()
    a, b = socket.socketpair()
    try:
        a.sendall(first + garbage)
        a.shutdown(socket.SHUT_WR)
        b.settimeout(5.0)
        kind, payload = recv_frame(b)  # the valid frame decodes
        assert kind == _CONTROL_KINDS[0]
        with pytest.raises((FrameError, ProtocolMismatch)):
            recv_frame(b)  # the garbage does not
    finally:
        a.close()
        b.close()
