"""Content-addressed on-disk cache for sweep results.

Re-running a bench after an unrelated edit used to recompute every
(trace, placement, scheme) point from scratch. This cache keys each
point's result rows by a stable SHA-256 of *everything that determines
the numbers*:

* the sweep point itself (parameters passed to the callback),
* the workload/trace specification and seed,
* the cost-model / system configuration,
* a code-version salt (:data:`CACHE_SALT`), bumped whenever an
  evaluation kernel changes semantics.

Anything not in the key — formatting, plotting, docs — can change
freely and the warm cache still hits. Changing a seed, a config field,
or the salt changes the hash, so stale rows are structurally
unreachable rather than explicitly expired. ``clear()`` wipes the
directory for explicit invalidation.

Values are JSON (one file per key, written atomically via rename), so
cached rows contain plain Python scalars. Callers that need cached and
freshly-computed rows to compare equal should pass both through
:func:`canonical_rows`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.util.errors import ConfigError

# Bump the schema component when a kernel change invalidates old rows.
CACHE_SCHEMA = 1


def code_salt() -> str:
    """Default cache salt: package version + cache schema version.

    Imported lazily — :mod:`repro` imports :mod:`repro.analysis` at
    package init, so a module-level ``from repro import __version__``
    would be circular.
    """
    from repro import __version__

    return f"repro-{__version__}-schema{CACHE_SCHEMA}"


def _jsonable(obj):
    """Recursively convert numpy scalars/arrays, tuples, and dataclasses
    into canonical JSON-representable Python values."""
    import dataclasses

    import numpy as np

    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()},
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise ConfigError(
        f"cannot build a stable cache key from {type(obj).__name__}: {obj!r}"
    )


def stable_key(obj) -> str:
    """Deterministic SHA-256 hex digest of an arbitrary JSON-able object.

    Dict ordering does not matter (keys are sorted); numpy scalars,
    arrays, tuples, and (frozen) dataclasses are canonicalized first.
    """
    canonical = json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def canonical_rows(rows: list[dict]) -> list[dict]:
    """Rows as they would look after a JSON round trip (plain scalars)."""
    return json.loads(json.dumps([_jsonable(r) for r in rows]))


class ResultCache:
    """Content-addressed result store: one JSON file per key.

    ``enabled=False`` turns every lookup into a miss and every store
    into a no-op (the ``--no-cache`` path) while keeping counters, so
    callers never need two code paths.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        salt: str | None = None,
        enabled: bool = True,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.salt = salt if salt is not None else code_salt()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        if self.enabled:
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ConfigError(
                    f"cannot use cache dir {self.cache_dir}: {exc}"
                ) from exc

    # -- keys --------------------------------------------------------------
    def key(self, **parts) -> str:
        """Stable key over named parts; the salt is always mixed in."""
        return stable_key({"salt": self.salt, **parts})

    def key_for_spec(self, spec, extra: dict | None = None) -> str:
        """Key for an :class:`~repro.spec.ExperimentSpec` (or its
        canonical dict): the spec names everything that determines the
        result rows, so the spec dict plus the salt *is* the key.
        ``extra`` folds in context outside the spec (e.g. a trace
        file's content summary when the spec holds only its path)."""
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else spec
        if extra:
            return self.key(spec=spec_dict, extra=dict(extra))
        return self.key(spec=spec_dict)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    # -- lookup / store ----------------------------------------------------
    def get(self, key: str) -> list[dict] | None:
        """Rows for ``key``, or None on a miss. Counts hits/misses."""
        if not self.enabled:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload["rows"]

    def put(self, key: str, rows: list[dict]) -> None:
        """Store ``rows`` under ``key`` (atomic rename; JSON-canonical).

        A failing write (disk full, directory turned read-only after
        construction) is a warned no-op — the cache degrades to a miss
        on the next read instead of aborting the sweep that computed
        the rows.
        """
        if not self.enabled:
            return
        payload = json.dumps({"key": key, "rows": canonical_rows(rows)})
        try:
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        except OSError as exc:
            self._warn_write_failure(key, exc)
            return
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, self._path(key))
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            self._warn_write_failure(key, exc)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def _warn_write_failure(key: str, exc: OSError) -> None:
        import warnings

        warnings.warn(
            f"result cache write for key {key[:12]}… failed ({exc}); "
            "continuing uncached",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- maintenance -------------------------------------------------------
    def clear(self) -> int:
        """Explicit invalidation: delete every entry, return the count."""
        if not self.cache_dir.is_dir():
            return 0
        n = 0
        for path in self.cache_dir.glob("*.json"):
            path.unlink(missing_ok=True)
            n += 1
        return n

    def __len__(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self),
            "enabled": self.enabled,
        }
