"""Experiment ex-placement: data placement drives the migration rate.

§2: "a good data placement method (one which keeps a thread's private
data assigned to that thread's native core, and allocates shared data
among the sharers) is critical". Compare first-touch (the paper's
choice), striped (no affinity information), and the profile-driven
oracle on migration rate, network cost, and the Figure 2 shape.
"""

import pytest

from conftest import cached_workload, emit
from repro.analysis.reports import format_table
from repro.core.decision import AlwaysMigrate, NeverMigrate
from repro.core.evaluation import evaluate_scheme
from repro.placement import first_touch, profile_optimal, striped
from repro.trace.runlength import fraction_single_access_runs

WORKLOADS = {
    "ocean": dict(name="ocean", num_threads=16, grid_n=98, iterations=1),
    "water": dict(name="water", num_threads=16, molecules_per_thread=24,
                  timesteps=2),
    "raytrace": dict(name="raytrace", num_threads=16, rays_per_thread=48,
                     scene_words=2048),
}


def _placements(trace):
    return [
        ("striped", striped(16)),
        ("first-touch", first_touch(trace, 16)),
        ("profile-opt", profile_optimal(trace, 16)),
    ]


@pytest.mark.parametrize("wl", sorted(WORKLOADS))
def test_placement_comparison(benchmark, bench_cost, wl):
    params = dict(WORKLOADS[wl])
    name = params.pop("name")
    trace = cached_workload(name, **params)

    def compare():
        rows = []
        for label, pl in _placements(trace):
            r = evaluate_scheme(
                trace, pl, AlwaysMigrate(), bench_cost, collect_run_lengths=True
            )
            # placement quality proper: fraction of accesses homed away
            # from the thread's native core (NeverMigrate counts exactly
            # those as remote accesses)
            q = evaluate_scheme(trace, pl, NeverMigrate(), bench_cost)
            rows.append(
                {
                    "placement": label,
                    "nonlocal_frac": q.remote_accesses / q.total_accesses,
                    "migration_rate": r.migrations / r.total_accesses,
                    "network_cost": r.total_cost,
                    "frac_runlen_1": fraction_single_access_runs(r.run_length_hist),
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(f"ex-placement [{wl}]: placement policy comparison", format_table(rows))
    by = {r["placement"]: r for r in rows}
    # the §2 ordering on placement *quality* (fraction of accesses that
    # leave the native core): striped (no affinity) >> first-touch, and
    # the profile oracle is optimal among static placements
    assert by["striped"]["nonlocal_frac"] > by["first-touch"]["nonlocal_frac"]
    assert (
        by["profile-opt"]["nonlocal_frac"]
        <= by["first-touch"]["nonlocal_frac"] + 1e-9
    )


def test_placement_build_cost(benchmark):
    """Placement construction itself must scale: time first-touch on
    the full 64-thread Figure 2 trace (~1.8M accesses)."""
    trace = cached_workload("ocean", num_threads=64, grid_n=386, iterations=2)
    pl = benchmark(first_touch, trace, 64)
    assert pl.num_mapped_blocks() > 0
