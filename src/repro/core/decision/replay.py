"""Replay a precomputed decision sequence (e.g. the DP optimum).

The paper's evaluation flow is: compute the optimal offline decision
sequence with the DP, then compare hardware schemes against it. To run
the *behavioral* machine under the optimal sequence, decisions are
replayed **by access index** — robust to evictions, which re-execute
an access (the same index fetches the same decision again).

For analytical (trace-walk) evaluation of a decision sequence, use
:func:`repro.core.decision.optimal.decision_cost` instead; this class
is consumed by :class:`~repro.core.em2ra.EM2RAMachine`, which detects
it and supplies the access index.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostModel
from repro.core.decision.base import Decision, DecisionScheme
from repro.core.decision.optimal import optimal_decisions
from repro.placement.base import Placement
from repro.trace.events import MultiTrace
from repro.util.errors import ConfigError


class OptimalReplay(DecisionScheme):
    """Per-thread, per-access decision arrays, typically from the DP."""

    name = "optimal-replay"

    def __init__(self, decisions_per_thread: list[np.ndarray]) -> None:
        self.decisions_per_thread = [np.asarray(d) for d in decisions_per_thread]

    def decision_for(self, tid: int, idx: int) -> Decision:
        """Planned decision for thread ``tid``'s access ``idx``."""
        try:
            d = Decision(int(self.decisions_per_thread[tid][idx]))
        except IndexError:
            raise ConfigError(
                f"replay has no decision for thread {tid} access {idx}"
            ) from None
        if d == Decision.LOCAL:
            # consulted as non-local only after an eviction displaced
            # the thread from its planned position; migrating to the
            # home restores the plan
            return Decision.MIGRATE
        return d

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        raise ConfigError(
            "OptimalReplay is index-addressed; run it through EM2RAMachine "
            "(which supplies access indices) or score the sequence with "
            "decision_cost()"
        )

    def clone(self) -> "OptimalReplay":
        return self  # stateless; shared across threads by design


def optimal_replay_for(
    trace: MultiTrace, placement: Placement, cost_model: CostModel
) -> OptimalReplay:
    """Run the DP on every thread and wrap the results for replay."""
    decisions = []
    for t, tr in enumerate(trace.threads):
        if tr.size == 0:
            decisions.append(np.zeros(0, dtype=np.int8))
            continue
        homes = placement.home_of(tr["addr"])
        start = trace.thread_native_core[t] % cost_model.config.num_cores
        res = optimal_decisions(homes, tr["write"], start, cost_model)
        decisions.append(res.decisions)
    return OptimalReplay(decisions)
