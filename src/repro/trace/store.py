"""Content-addressed on-disk trace cache.

Workload generation used to happen once per process per sweep: every
pool worker re-ran the Python generators for every spec it evaluated.
The trace store makes workload data a build-once, share-everywhere
artifact — one NPZ per :meth:`repro.spec.WorkloadSpec.cache_key`, so a
spec's trace is generated exactly once per machine and every later
process (CLI run, sweep worker, bench) loads the columns from disk.

Layout: ``<root>/<salt-mixed key>.npz`` (the trace container written
by :func:`repro.trace.io.save_multitrace`) plus a tiny ``.json``
sidecar with display metadata so ``repro trace ls`` never has to
decompress traces. Writes are atomic (tempfile + rename); a corrupt or
truncated entry is treated as a miss and deleted, never propagated —
the generator is the source of truth, the store only a cache.

Eviction is LRU by file mtime under a byte-size cap (``gc``); reads
touch the mtime so hot traces survive. The store is off by default and
activates per process via :func:`set_trace_store` or the
``REPRO_TRACE_DIR`` environment variable (inherited by pool workers).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.trace.events import MultiTrace
from repro.trace.io import load_multitrace, save_multitrace
from repro.util.errors import ConfigError, TraceFormatError

#: Bump when a deliberate generator-semantics change invalidates stored
#: traces (the golden-trace fixture changes in the same commit).
TRACE_STORE_SCHEMA = 1

_ENV_DIR = "REPRO_TRACE_DIR"


class TraceStore:
    """Content-addressed MultiTrace cache rooted at one directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(f"cannot use trace store dir {self.root}: {exc}") from exc

    # -- keys / paths ------------------------------------------------------
    def _key(self, cache_key: str) -> str:
        from repro.analysis.cache import stable_key

        return stable_key({"trace": cache_key, "schema": TRACE_STORE_SCHEMA})

    def path_for(self, cache_key: str) -> Path:
        return self.root / f"{self._key(cache_key)}.npz"

    def _meta_path(self, npz_path: Path) -> Path:
        return npz_path.with_suffix(".json")

    def contains(self, cache_key: str) -> bool:
        """Presence check without loading — the farm's have/need answer."""
        return self.path_for(cache_key).is_file()

    # -- lookup / store ----------------------------------------------------
    def get(self, cache_key: str) -> MultiTrace | None:
        """The stored trace, or None. Corrupt entries are evicted and
        counted as misses — a worker never crashes on a bad cache file."""
        path = self.path_for(cache_key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            mt = load_multitrace(path)
        except TraceFormatError:
            self._drop(path)
            self.misses += 1
            return None
        self.hits += 1
        try:  # LRU touch; best-effort
            os.utime(path)
        except OSError:
            pass
        return mt

    def put(self, cache_key: str, mt: MultiTrace) -> Path | None:
        """Store ``mt`` atomically; returns the entry path.

        A failing *write* (disk full, directory turned read-only after
        construction) is a warned no-op returning ``None`` — the store
        is only a cache, and a run that already holds the trace in
        memory must not die on a storage fault.
        """
        path = self.path_for(cache_key)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        except OSError as exc:
            self._warn_write_failure(path, exc)
            return None
        os.close(fd)
        try:
            save_multitrace(mt, tmp)
            # save_multitrace appends .npz when the suffix isn't .npz
            written = Path(tmp + ".npz") if not tmp.endswith(".npz") else Path(tmp)
            os.replace(written, path)
        except OSError as exc:
            for leftover in (tmp, tmp + ".npz"):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
            self._warn_write_failure(path, exc)
            return None
        except BaseException:
            for leftover in (tmp, tmp + ".npz"):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
            raise
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        meta = {
            "name": mt.name,
            "threads": mt.num_threads,
            "accesses": mt.total_accesses,
            "params": mt.params,
            "stored_at": time.time(),
        }
        try:
            self._meta_path(path).write_text(
                json.dumps(meta, sort_keys=True, default=str)
            )
        except OSError as exc:
            # entry is usable without its display sidecar
            self._warn_write_failure(self._meta_path(path), exc)
        return path

    @staticmethod
    def _warn_write_failure(path: Path, exc: OSError) -> None:
        import warnings

        warnings.warn(
            f"trace store write to {path} failed ({exc}); continuing without "
            "caching this trace",
            RuntimeWarning,
            stacklevel=3,
        )

    def _drop(self, path: Path) -> None:
        for p in (path, self._meta_path(path)):
            try:
                p.unlink()
            except OSError:
                pass

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[dict]:
        """One dict per stored trace (key stem, bytes, mtime, metadata)."""
        out = []
        for path in sorted(self.root.glob("*.npz")):
            try:
                stat = path.stat()
            except OSError:
                continue
            entry = {
                "key": path.stem,
                "bytes": stat.st_size,
                "mtime": stat.st_mtime,
            }
            meta_path = self._meta_path(path)
            try:
                entry.update(json.loads(meta_path.read_text()))
            except (OSError, json.JSONDecodeError):
                pass
            out.append(entry)
        return out

    def total_bytes(self) -> int:
        return sum(e["bytes"] for e in self.entries())

    def gc(self, max_bytes: int) -> list[str]:
        """Evict least-recently-used entries until the store fits
        ``max_bytes``; returns the evicted key stems."""
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = sorted(self.entries(), key=lambda e: e["mtime"])
        total = sum(e["bytes"] for e in entries)
        evicted = []
        for entry in entries:
            if total <= max_bytes:
                break
            self._drop(self.root / f"{entry['key']}.npz")
            total -= entry["bytes"]
            evicted.append(entry["key"])
        return evicted

    def clear(self) -> int:
        n = 0
        for path in self.root.glob("*.npz"):
            self._drop(path)
            n += 1
        return n

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "entries": len(self.entries()),
            "bytes": self.total_bytes(),
        }


# ---------------------------------------------------------------- process-wide
_store: TraceStore | None = None
_store_resolved = False


def set_trace_store(store: TraceStore | str | os.PathLike | None) -> None:
    """Install (or disable, with None) the process-wide trace store
    consulted by :func:`repro.runner.build_workload`."""
    global _store, _store_resolved
    _store = TraceStore(store) if isinstance(store, (str, os.PathLike)) else store
    _store_resolved = True


def active_trace_store() -> TraceStore | None:
    """The process-wide store: whatever :func:`set_trace_store`
    installed, else a store rooted at ``$REPRO_TRACE_DIR`` when that is
    set, else None (caching off)."""
    global _store, _store_resolved
    if not _store_resolved:
        env = os.environ.get(_ENV_DIR)
        _store = TraceStore(env) if env else None
        _store_resolved = True
    return _store
