"""Stack-machine EM² substrate (§4).

A minimal two-stack (data + return) stack architecture in the
Forth/B5000 tradition the paper cites [16]:

* :mod:`repro.stackmachine.isa` — instruction set and encoding sizes;
* :mod:`repro.stackmachine.assembler` — text assembly with labels;
* :mod:`repro.stackmachine.machine` — interpreter that *executes*
  programs and emits stack-annotated memory traces (the ``spop`` /
  ``spush`` per-segment fields the stack-depth DP consumes);
* :mod:`repro.stackmachine.stack_cache` — the top-of-stack window with
  hardware spill/refill, whose overflow/underflow is what forces a
  stack-EM² thread back to its native core;
* :mod:`repro.stackmachine.programs` — a library of parallel kernels
  (dot product, reduction, histogram) compiled per-thread into
  :class:`~repro.trace.events.MultiTrace` with shared/private regions;
* :func:`annotate_stack_activity` — retrofit plausible stack activity
  onto register-machine traces so SPLASH-like workloads can drive the
  stack-depth experiments too.
"""

from repro.stackmachine.isa import Instruction, Opcode
from repro.stackmachine.assembler import AssemblyError, assemble
from repro.stackmachine.compiler import CompileError, compile_source
from repro.stackmachine.machine import MachineFault, StackMachine
from repro.stackmachine.stack_cache import StackCache
from repro.stackmachine.programs import (
    annotate_stack_activity,
    compiled_workload,
    dot_product_program,
    histogram_program,
    reduction_program,
    stack_workload,
)

__all__ = [
    "Opcode",
    "Instruction",
    "assemble",
    "AssemblyError",
    "compile_source",
    "CompileError",
    "StackMachine",
    "MachineFault",
    "StackCache",
    "dot_product_program",
    "reduction_program",
    "histogram_program",
    "stack_workload",
    "compiled_workload",
    "annotate_stack_activity",
]
