"""Experiment fig2: the run-length histogram of Figure 2.

Paper setup: "64-core/64-thread EM² simulation using Graphite, with
16 KB L1 + 64 KB L2 data caches and first-touch data placement", on a
SPLASH-2 OCEAN run. Claim: "About half of the accesses migrate after
one memory reference, while the other half keep accessing memory at
the core where they have migrated."

Here: the ocean-like generator at the same scale (64 threads on 64
cores, first-touch placement); the harness prints the same series the
figure plots (accesses contributed per run length) and asserts the
bimodal shape.
"""

import pytest

from conftest import cached_first_touch, cached_workload, emit
from repro.analysis.reports import runlength_table
from repro.trace.runlength import (
    fraction_single_access_runs,
    merge_histograms,
    run_length_histogram,
)


def _fig2_histogram(trace, placement):
    hists = []
    for t, tr in enumerate(trace.threads):
        homes = placement.home_of(tr["addr"])
        hists.append(run_length_histogram(homes, trace.thread_native_core[t]))
    return merge_histograms(hists)


@pytest.fixture(scope="module")
def ocean64():
    trace = cached_workload("ocean", num_threads=64, grid_n=386, iterations=2)
    placement = cached_first_touch(trace, 64)
    return trace, placement


def test_fig2_run_length_histogram(benchmark, ocean64):
    trace, placement = ocean64
    hist = benchmark(_fig2_histogram, trace, placement)

    frac1 = fraction_single_access_runs(hist)
    emit(
        "Figure 2: accesses to non-native cores, binned by run length "
        f"(64 cores / 64 threads, first-touch; fraction at run length 1 = {frac1:.3f})",
        runlength_table(hist, max_rows=30),
    )
    # the paper's claim: "about half" of non-native accesses are in
    # runs of length 1
    assert 0.35 <= frac1 <= 0.65
    # ...and the rest is dominated by long runs (the second mode)
    long_mass = sum(c for v, c in hist.bins().items() if v >= 10) / hist.count
    assert long_mass >= 0.25


def test_fig2_shape_stable_across_seeds(benchmark, ocean64):
    """The bimodal shape is structural, not a seed artifact."""
    def both_seeds():
        out = []
        for seed in (1, 2):
            tr = cached_workload(
                "ocean", num_threads=16, grid_n=98, iterations=2, seed=seed
            )
            pl = cached_first_touch(tr, 16)
            out.append(fraction_single_access_runs(_fig2_histogram(tr, pl)))
        return out

    fracs = benchmark(both_seeds)
    for f in fracs:
        assert 0.3 <= f <= 0.7
    assert abs(fracs[0] - fracs[1]) < 0.1
