"""Migrate-vs-remote-access decision schemes (§3, §5).

"Both architectures require a fast core-local decision for every
memory access" — this package contains:

* hardware-implementable online schemes (:mod:`static`,
  :mod:`history`): each sees only core-local state, exactly what a
  per-core decision unit could hold;
* the offline **optimal** dynamic program (:mod:`optimal`), the
  paper's upper bound for evaluating how close a scheme gets;
* the stack-depth variant (:mod:`stack_optimal`) for stack-EM² (§4).
"""

from repro.core.decision.base import Decision, DecisionScheme
from repro.core.decision.static import (
    AlwaysMigrate,
    DistanceThreshold,
    NativeFirst,
    NeverMigrate,
    RandomScheme,
)
from repro.core.decision.costaware import CostAwareHistory
from repro.core.decision.history import (
    AddressIndexedHistory,
    HistoryRunLength,
    PerHomePredictor,
)
from repro.core.decision.oracle import lookahead_decisions, lookahead_replay_for
from repro.core.decision.optimal import OptimalResult, optimal_cost, optimal_decisions
from repro.core.decision.replay import OptimalReplay, optimal_replay_for
from repro.core.decision.stack_optimal import (
    StackOptimalResult,
    fixed_depth_cost,
    optimal_stack_depths,
)

__all__ = [
    "Decision",
    "DecisionScheme",
    "AlwaysMigrate",
    "NeverMigrate",
    "DistanceThreshold",
    "NativeFirst",
    "RandomScheme",
    "HistoryRunLength",
    "AddressIndexedHistory",
    "CostAwareHistory",
    "PerHomePredictor",
    "lookahead_decisions",
    "lookahead_replay_for",
    "optimal_decisions",
    "optimal_cost",
    "OptimalResult",
    "OptimalReplay",
    "optimal_replay_for",
    "optimal_stack_depths",
    "fixed_depth_cost",
    "StackOptimalResult",
]
