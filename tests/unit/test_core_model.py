"""Unit tests for native/guest execution contexts (§2)."""

import pytest

from repro.arch.core_model import ContextFile, build_context_files
from repro.util.errors import ProtocolError


def _ctx(guests=2):
    return ContextFile(core=0, native_threads=(0, 1), guest_slots=guests)


class TestContextFile:
    def test_native_admission_always_succeeds(self):
        c = _ctx()
        c.admit_native(0, now=1.0)
        c.admit_native(1, now=2.0)
        assert c.resident(0) and c.resident(1)

    def test_native_slot_is_dedicated(self):
        c = _ctx()
        with pytest.raises(ProtocolError):
            c.admit_native(5, now=0.0)  # thread 5 is not native here

    def test_guest_admission_until_full(self):
        c = _ctx(guests=2)
        assert c.admit_guest(10, now=0.0) is None
        assert c.admit_guest(11, now=1.0) is None
        evicted = c.admit_guest(12, now=2.0)
        assert evicted == 10  # LRU guest evicted

    def test_lru_eviction_uses_admission_time(self):
        c = _ctx(guests=2)
        c.admit_guest(10, now=5.0)
        c.admit_guest(11, now=1.0)
        assert c.admit_guest(12, now=9.0) == 11

    def test_newest_eviction_policy(self):
        c = ContextFile(core=0, native_threads=(), guest_slots=2, eviction_policy="newest")
        c.admit_guest(10, now=1.0)
        c.admit_guest(11, now=2.0)
        assert c.admit_guest(12, now=3.0) == 11

    def test_native_thread_cannot_be_guest(self):
        c = _ctx()
        with pytest.raises(ProtocolError):
            c.admit_guest(0, now=0.0)

    def test_double_admission_rejected(self):
        c = _ctx()
        c.admit_guest(10, now=0.0)
        with pytest.raises(ProtocolError):
            c.admit_guest(10, now=1.0)
        c.admit_native(0, now=0.0)
        with pytest.raises(ProtocolError):
            c.admit_native(0, now=1.0)

    def test_release_guest_and_native(self):
        c = _ctx()
        c.admit_native(0, now=0.0)
        c.admit_guest(10, now=0.0)
        c.release(0)
        c.release(10)
        assert not c.resident(0) and not c.resident(10)

    def test_release_absent_thread_rejected(self):
        with pytest.raises(ProtocolError):
            _ctx().release(42)

    def test_occupancy_counts_both_kinds(self):
        c = _ctx()
        c.admit_native(0, now=0.0)
        c.admit_guest(10, now=0.0)
        assert c.occupancy() == 2

    def test_evicted_guest_slot_reused(self):
        c = _ctx(guests=1)
        c.admit_guest(10, now=0.0)
        assert c.admit_guest(11, now=1.0) == 10
        assert c.guest_threads() == [11]

    def test_zero_guest_slots_rejected(self):
        with pytest.raises(ProtocolError):
            ContextFile(core=0, native_threads=(), guest_slots=0)


class TestBuildContextFiles:
    def test_one_native_slot_per_thread(self):
        files = build_context_files(4, [0, 1, 2, 3], guest_slots=2)
        for t, f in enumerate(files):
            assert f.is_native(t)
            assert not f.is_native((t + 1) % 4)

    def test_multiple_threads_per_core(self):
        files = build_context_files(2, [0, 0, 1], guest_slots=1)
        assert files[0].native_threads == (0, 1)
        assert files[1].native_threads == (2,)

    def test_out_of_range_native_core_rejected(self):
        with pytest.raises(ProtocolError):
            build_context_files(2, [0, 5], guest_slots=1)
