"""Unit tests for zero-copy trace distribution over shared memory.

The two load-bearing properties:

* **Fidelity** — an attached trace is bit-identical to the published
  one (digest equality) and read-only (a stray worker write must fault
  instead of corrupting sibling processes).
* **No leaks** — every published segment is unlinked when the sweep
  ends, whether it returns, raises, or a worker is killed outright.
"""

import multiprocessing
import os
import signal

import pytest

from repro.analysis import shm
from repro.analysis.parallel import POOL_MIN_POINTS, parallel_sweep, shutdown_pool
from repro.analysis.sweep import sweep_specs
from repro.runner import clear_build_memo
from repro.spec import ExperimentSpec, MachineSpec, PlacementSpec, WorkloadSpec
from repro.trace.events import MultiTrace, STACK_TRACE_DTYPE, TRACE_DTYPE, make_trace

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this host"
)

SHM_DIR = "/dev/shm"


def _segments() -> set:
    if not os.path.isdir(SHM_DIR):
        return set()
    return {f for f in os.listdir(SHM_DIR) if f.startswith(shm.SEGMENT_PREFIX)}


@pytest.fixture(autouse=True)
def _clean_state():
    clear_build_memo()
    before = _segments()
    yield
    shm.detach_all()
    clear_build_memo()
    # every test must leave /dev/shm exactly as it found it
    assert _segments() == before


def _flat_mt():
    return MultiTrace(
        threads=[
            make_trace([1, 2, 3], writes=[0, 1, 0], icounts=[4, 4, 4]),
            make_trace([9, 8], writes=[1, 1]),
        ],
        thread_native_core=[2, 0],
        name="flat",
        params={"alpha": 3},
    )


def _stack_mt():
    return MultiTrace(
        threads=[make_trace([1, 2], spops=[1, 2], spushes=[0, 1])],
        name="stack",
        params={},
    )


class TestPublishAttach:
    @pytest.mark.parametrize(
        "mt_fn,dtype", [(_flat_mt, TRACE_DTYPE), (_stack_mt, STACK_TRACE_DTYPE)]
    )
    def test_round_trip_bit_identical(self, mt_fn, dtype):
        mt = mt_fn()
        pub = shm.publish(mt)
        try:
            attached = shm.attach(pub.descriptor)
            assert attached.threads[0].dtype == dtype
            assert attached.digest() == mt.digest()
            assert attached.thread_native_core == mt.thread_native_core
            assert attached.name == mt.name and attached.params == mt.params
        finally:
            shm.detach_all()
            pub.close()

    def test_attached_views_are_read_only(self):
        pub = shm.publish(_flat_mt())
        try:
            attached = shm.attach(pub.descriptor)
            with pytest.raises(ValueError):
                attached.threads[0]["addr"][0] = 99
        finally:
            shm.detach_all()
            pub.close()

    def test_attach_is_cached_per_segment(self):
        pub = shm.publish(_flat_mt())
        try:
            assert shm.attach(pub.descriptor) is shm.attach(pub.descriptor)
        finally:
            shm.detach_all()
            pub.close()

    def test_descriptor_is_plain_picklable_data(self):
        import pickle

        pub = shm.publish(_flat_mt())
        try:
            clone = pickle.loads(pickle.dumps(pub.descriptor))
            assert clone == pub.descriptor
        finally:
            pub.close()

    def test_close_is_idempotent(self):
        pub = shm.publish(_flat_mt())
        pub.close()
        pub.close()


class TestLifecycle:
    def test_published_traces_unlinks_on_success(self):
        with shm.published_traces({"a": _flat_mt(), "b": _stack_mt()}) as descs:
            assert set(descs) == {"a", "b"}
            names = {d["segment"] for d in descs.values()}
            assert names <= _segments()
        assert not (names & _segments())

    def test_published_traces_unlinks_on_error(self):
        with pytest.raises(RuntimeError, match="mid-sweep"):
            with shm.published_traces({"a": _flat_mt()}) as descs:
                name = descs["a"]["segment"]
                raise RuntimeError("mid-sweep")
        assert name not in _segments()


def _kill_self(**point):
    # SIGKILL any pool worker; the serial fallback (main process) just
    # evaluates the point, so the sweep completes after the pool breaks.
    if multiprocessing.parent_process() is None:
        return {"y": point["x"]}
    os.kill(os.getpid(), signal.SIGKILL)


class TestWorkerDeath:
    def test_killed_worker_leaks_no_segments(self, monkeypatch):
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        points = [{"x": i} for i in range(max(POOL_MIN_POINTS, 4))]
        with shm.published_traces({"a": _flat_mt()}):
            # workers die on arrival; after one pool retry the sweep
            # degrades to the in-process serial loop and still finishes
            rows = parallel_sweep(points, _kill_self, workers=2)
        assert [r["y"] for r in rows] == [p["x"] for p in points]
        shutdown_pool()
        # the autouse fixture asserts /dev/shm is clean afterwards


def _base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        workload=WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 16}),
        machine=MachineSpec(name="analytical", cores=4, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )


SCHEMES = ["history", "always-migrate", "never-migrate", "random"]


class TestSweepSpecsSharing:
    def test_shared_rows_equal_serial_rows(self, monkeypatch):
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        points = [{"scheme": s} for s in SCHEMES]
        serial = sweep_specs(_base_spec(), points, workers=1, share_traces=False)
        shared = sweep_specs(_base_spec(), points, workers=2, share_traces="auto")
        assert shared == serial
        assert not any("shm_trace" in row or "spec" in row for row in shared)
        shutdown_pool()

    def test_serial_fallback_when_shm_unavailable(self, monkeypatch):
        import repro.analysis.parallel as par
        import repro.analysis.sweep as sweep_mod

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        monkeypatch.setattr(shm, "shm_available", lambda: False)
        published = []
        monkeypatch.setattr(shm, "publish", lambda mt: published.append(mt))
        points = [{"scheme": s} for s in SCHEMES]
        rows = sweep_specs(_base_spec(), points, workers=2, share_traces="auto")
        assert published == []  # nothing published without shm
        assert rows == sweep_specs(_base_spec(), points, workers=1, share_traces=False)
        shutdown_pool()

    def test_share_traces_false_never_publishes(self, monkeypatch):
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        published = []
        monkeypatch.setattr(shm, "publish", lambda mt: published.append(mt))
        points = [{"scheme": s} for s in SCHEMES]
        sweep_specs(_base_spec(), points, workers=2, share_traces=False)
        assert published == []
        shutdown_pool()

    def test_bad_share_traces_value_rejected(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError, match="share_traces"):
            sweep_specs(_base_spec(), [{"scheme": "history"}], share_traces="yes")
