"""BARNES-like N-body tree workload (SPLASH-2 BARNES stand-in).

Barnes-Hut: threads own blocks of bodies; the force phase walks a
shared octree whose upper levels are read by *every* thread (extremely
hot, read-only after build) while lower levels have locality to the
owning thread's spatial region.

Memory structure:

* shared ``tree`` region: nodes at depth ``d`` are read with
  probability ~``branching**-d`` weighting — upper nodes form a small
  read-mostly hot set (the classic candidate for replication [12],
  which we deliberately do NOT implement in the generator: the paper
  cites replication as prior work and focuses elsewhere);
* shared ``bodies`` region, block-owned; each thread updates its own
  bodies (local RMW runs) and reads a sample of remote bodies during
  neighbour interaction (short remote runs);
* a tree-build phase where each thread inserts its bodies, doing
  scattered RMWs on the shared tree (remote runs of length 1-3).
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError

WORDS_PER_BODY = 8
WORDS_PER_NODE = 8


@WORKLOADS.register("barnes", "BARNES-like N-body octree workload (SPLASH-2 stand-in)")
class BarnesGenerator(WorkloadGenerator):
    name = "barnes"

    def __init__(
        self,
        num_threads: int = 64,
        bodies_per_thread: int = 64,
        tree_depth: int = 6,
        branching: int = 4,
        timesteps: int = 2,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if bodies_per_thread <= 0 or timesteps <= 0:
            raise ConfigError("bodies_per_thread and timesteps must be positive")
        if tree_depth < 2 or branching < 2:
            raise ConfigError("tree_depth and branching must be >= 2")
        self.bpt = bodies_per_thread
        self.depth = tree_depth
        self.branching = branching
        self.timesteps = timesteps
        # level l has branching**l nodes; levels concatenated
        self.level_sizes = [branching**l for l in range(tree_depth)]
        self.level_off = np.concatenate(([0], np.cumsum(self.level_sizes))).astype(np.int64)
        total_nodes = int(self.level_off[-1])
        self.tree_base = self.space.shared_region("tree", total_nodes * WORDS_PER_NODE)
        self.bodies_base = self.space.shared_region(
            "bodies", num_threads * bodies_per_thread * WORDS_PER_BODY
        )

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "bodies_per_thread": self.bpt,
            "tree_depth": self.depth,
            "branching": self.branching,
            "timesteps": self.timesteps,
        }

    def node_addr(self, level: int, index: int) -> int:
        return self.tree_base + int(self.level_off[level] + index) * WORDS_PER_NODE

    def body_addr(self, thread: int, body: int) -> int:
        return self.bodies_base + (thread * self.bpt + body) * WORDS_PER_BODY

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        words = np.arange(self.bpt * WORDS_PER_BODY, dtype=np.int64)
        b.emit(self.body_addr(thread, 0) + words, writes=1, icounts=1)
        # each thread first-touches a slice of every tree level (spatial locality)
        w = np.arange(WORDS_PER_NODE, dtype=np.int64)
        for level, size in enumerate(self.level_sizes):
            lo = (size * thread) // self.num_threads
            hi = (size * (thread + 1)) // self.num_threads
            if hi <= lo:
                continue
            bases = self.tree_base + (
                self.level_off[level] + np.arange(lo, hi, dtype=np.int64)
            ) * WORDS_PER_NODE
            b.emit((bases[:, None] + w[None, :]).ravel(), writes=1, icounts=1)

    def _node_draw_bounds(self, walk: bool, thread: int) -> tuple[np.ndarray, np.ndarray]:
        """(lows, highs) for one body's per-level node draws, in level order."""
        sizes = np.asarray(self.level_sizes, dtype=np.int64)
        lows = np.zeros(self.depth, dtype=np.int64)
        highs = sizes.copy()
        if walk:
            # spatial bias: prefer nodes in own slice at deep levels
            deep = np.arange(self.depth) >= self.depth // 2
            lo = (sizes * thread) // self.num_threads
            hi = np.maximum((sizes * (thread + 1)) // self.num_threads, lo + 1)
            lows[deep] = lo[deep]
            highs[deep] = hi[deep]
        return lows, highs

    def _tree_build(self, thread: int, b: TraceBuilder) -> None:
        """Insert own bodies: root-to-leaf RMW path per body.

        Node indices are drawn with per-level bounds tiled body-major —
        numpy's array-bound ``integers`` consumes the bit stream exactly
        like the scalar per-draw loop it replaced, so the traces are
        bit-identical to the pre-vectorization generator.
        """
        path_icount = 4
        lows, highs = self._node_draw_bounds(walk=False, thread=thread)
        idxs = self.rng.integers(np.tile(lows, self.bpt), np.tile(highs, self.bpt))
        flat = self.level_off[np.tile(np.arange(self.depth), self.bpt)] + idxs
        addrs = self.tree_base + flat * WORDS_PER_NODE
        seq = np.stack([addrs, addrs + 1], axis=-1).ravel()
        b.emit(
            seq,
            writes=np.tile(np.array([0, 1], dtype=np.uint8), idxs.size),
            icounts=path_icount,
        )

    def _force_walk(self, thread: int, b: TraceBuilder) -> None:
        """Per body: read the root path (hot upper levels) + local update."""
        lows, highs = self._node_draw_bounds(walk=True, thread=thread)
        idxs = self.rng.integers(np.tile(lows, self.bpt), np.tile(highs, self.bpt))
        flat = self.level_off[np.tile(np.arange(self.depth), self.bpt)] + idxs
        node_bases = (self.tree_base + flat * WORDS_PER_NODE).reshape(
            self.bpt, self.depth
        )
        w = np.arange(3, dtype=np.int64)  # centre-of-mass words
        reads = (node_bases[:, :, None] + w[None, None, :]).reshape(self.bpt, -1)
        body_bases = self.body_addr(thread, 0) + np.arange(
            self.bpt, dtype=np.int64
        ) * WORDS_PER_BODY
        # update own body (local RMW)
        updates = body_bases[:, None] + np.array([2, 3, 2, 3], dtype=np.int64)[None, :]
        seq = np.hstack([reads, updates]).ravel()
        writes = np.tile(
            np.concatenate(
                [
                    np.zeros(3 * self.depth, dtype=np.uint8),
                    np.array([0, 0, 1, 1], dtype=np.uint8),
                ]
            ),
            self.bpt,
        )
        icounts = np.tile(
            np.concatenate(
                [
                    np.full(3 * self.depth, 3, dtype=np.uint16),
                    np.full(4, 6, dtype=np.uint16),
                ]
            ),
            self.bpt,
        )
        b.emit(seq, writes=writes, icounts=icounts)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        for _ in range(self.timesteps):
            self._tree_build(thread, b)
            self._force_walk(thread, b)
