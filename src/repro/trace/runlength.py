"""Run-length analysis of home-core sequences (Figure 2).

Given a thread's per-access home-core sequence, a *run* is a maximal
stretch of consecutive accesses homed at the same core. Figure 2 bins
accesses to memory cached at **non-native** cores by the length of the
run they belong to, and plots, per run length, the number of memory
accesses contributed (run length × number of such runs).

The paper's observation: roughly half of those accesses sit in runs of
length 1 (migrate, touch one word, migrate away) — the motivation for
remote access (§3).
"""

from __future__ import annotations

import numpy as np

from repro.sim.stats import Histogram


def run_lengths(home_seq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode a home-core sequence.

    Returns ``(cores, lengths)`` where ``cores[i]`` is the home core of
    run ``i`` and ``lengths[i]`` its length. Empty input yields two
    empty arrays.
    """
    home_seq = np.asarray(home_seq)
    if home_seq.size == 0:
        return np.zeros(0, dtype=home_seq.dtype), np.zeros(0, dtype=np.int64)
    change = np.flatnonzero(home_seq[1:] != home_seq[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [home_seq.size]))
    return home_seq[starts], (ends - starts).astype(np.int64)


def run_length_histogram(
    home_seq: np.ndarray,
    native_core: int,
    max_bin: int = 4096,
    weight_by_accesses: bool = True,
) -> Histogram:
    """Figure 2 statistic for one thread.

    Only runs at non-native cores are counted (accesses at the native
    core never migrated). With ``weight_by_accesses=True`` (the
    figure's y-axis), each run of length L contributes L to bin L;
    otherwise it contributes 1 (run-count histogram).
    """
    cores, lengths = run_lengths(home_seq)
    mask = cores != native_core
    hist = Histogram(max_bin=max_bin)
    for ln in lengths[mask]:
        hist.add(int(ln), weight=int(ln) if weight_by_accesses else 1)
    return hist


def merge_histograms(hists: list[Histogram], max_bin: int = 4096) -> Histogram:
    """Combine per-thread histograms into the figure's aggregate."""
    out = Histogram(max_bin=max_bin)
    for h in hists:
        for v, c in h.bins().items():
            out.add(v, weight=c)
        if h.overflow:
            out.add(max_bin + 1, weight=h.overflow)
    return out


def fraction_single_access_runs(hist: Histogram) -> float:
    """Fraction of non-native accesses that sit in runs of length 1.

    This is the paper's headline number for Figure 2 ("about half").
    Assumes the histogram is access-weighted.
    """
    return hist.fraction_at(1)
