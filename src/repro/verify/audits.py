"""Post-run protocol audits (see package docstring)."""

from __future__ import annotations

from repro.arch.noc.packet import VirtualNetwork
from repro.coherence.msi import DirState, MSIState
from repro.util.errors import ProtocolError


def audit_home_only_caching(machine) -> dict:
    """Every resident line lives at its home core (EM² §2 premise).

    Applies to the EM² family machines (they share cache + placement
    structure). Returns {'lines_checked': n}.
    """
    if machine.caches is None:
        return {"lines_checked": 0}
    checked = 0
    wb = machine.config.word_bytes
    for core, hier in enumerate(machine.caches):
        for byte_addr in hier.l1.resident_addrs() + hier.l2.resident_addrs():
            home = machine.placement.home_of_one(byte_addr // wb)
            if home != core:
                raise ProtocolError(
                    f"line {byte_addr:#x} cached at core {core} but homed at {home}"
                )
            checked += 1
    return {"lines_checked": checked}


def audit_thread_completion(machine) -> dict:
    """All threads done; no context occupied; nothing in flight."""
    for th in machine.threads:
        if not th.done:
            raise ProtocolError(f"thread {th.tid} unfinished at idx {th.idx}")
        if th.in_transit:
            raise ProtocolError(f"thread {th.tid} still in transit")
    for ctx in machine.contexts:
        if ctx.occupancy() != 0:
            raise ProtocolError(
                f"core {ctx.core} still holds {ctx.occupancy()} contexts after drain"
            )
    for core, waiters in enumerate(machine._waiting):
        if waiters:
            raise ProtocolError(f"core {core} has {len(waiters)} stalled arrivals")
    return {"threads": len(machine.threads)}


def audit_message_conservation(machine) -> dict:
    """Requests and replies balance; migrations+evictions delivered.

    Under an active fault plane the equalities relax to inequalities:
    retransmissions and injected duplicates inflate per-vnet message
    counts above the protocol-level transfer counts, so the audit only
    checks that every transfer sent *at least* one message (a count
    below the floor still means messages vanished without recovery).
    """
    faulty = getattr(machine, "faults", None) is not None
    counts = {
        vnet: machine.network.message_count(vnet) for vnet in VirtualNetwork
    }
    req, rep = counts[VirtualNetwork.RA_REQUEST], counts[VirtualNetwork.RA_REPLY]
    remote = machine.stats.counters["remote_accesses"]  # 0 on pure EM²
    if (req != rep) if not faulty else (req < remote or rep < remote):
        raise ProtocolError(
            f"RA requests ({req}) / replies ({rep}) below the "
            f"{remote} completed remote accesses"
            if faulty
            else f"RA requests ({req}) != replies ({rep})"
        )
    migrations = machine.stats.counters["migrations"]
    evictions = machine.stats.counters["evictions"]
    m_msgs = counts[VirtualNetwork.MIGRATION]
    if (m_msgs != migrations) if not faulty else (m_msgs < migrations):
        raise ProtocolError(
            f"migration messages ({m_msgs}) != migration count ({migrations})"
        )
    e_msgs = counts[VirtualNetwork.EVICTION]
    if (e_msgs != evictions) if not faulty else (e_msgs < evictions):
        raise ProtocolError(
            f"eviction messages ({e_msgs}) != eviction count ({evictions})"
        )
    return {k.name: v for k, v in counts.items() if v}


def audit_liveness(machine) -> dict:
    """Every thread finished and every reliable transfer completed.

    The fault-plane acceptance audit: at any drop/dup/delay rate with
    retries enabled, a run that returns must have (a) all threads done
    with nothing in transit or stalled, and (b) no reliable transfer
    still open (sent but neither delivered nor given up). Checks (a)
    via :func:`audit_thread_completion` and adds the recovery ledger.
    """
    out = audit_thread_completion(machine)
    open_transfers = getattr(machine, "_open_transfers", 0)
    if open_transfers:
        raise ProtocolError(
            f"{open_transfers} reliable transfer(s) still open after drain"
        )
    if getattr(machine, "faults", None) is not None:
        counters = machine.stats.counters
        out.update(
            retries=counters["retries"],
            drops_survived=counters["drops_survived"],
            dup_ignored=counters["dup_ignored"],
            faults_injected=machine.faults.fault_count,
        )
    return out


def audit_directory(sim) -> dict:
    """Directory and caches agree (MSI single-writer / sharer exactness).

    ``sim`` is a :class:`~repro.coherence.simulator.DirectoryCCSimulator`.
    """
    lines = 0
    for line, entry in sim.directory.items():
        entry.check_invariants()
        byte_addr = line * sim.config.l2.line_bytes
        holders = {
            c
            for c in range(sim.config.num_cores)
            if sim.caches[c].probe(byte_addr) is not None
        }
        if entry.state == DirState.EXCLUSIVE:
            if holders != {entry.owner}:
                raise ProtocolError(
                    f"line {line:#x} EXCLUSIVE at {entry.owner} but held by {holders}"
                )
            oarr = sim.caches[entry.owner]
            st = MSIState(int(oarr.state[oarr.probe(byte_addr)]))
            if st not in (MSIState.MODIFIED, MSIState.EXCLUSIVE):
                raise ProtocolError(
                    f"line {line:#x} owner cache state {st.name} not M/E"
                )
        elif entry.state == DirState.SHARED:
            if holders != entry.sharers:
                raise ProtocolError(
                    f"line {line:#x} sharers {entry.sharers} but held by {holders}"
                )
        else:  # UNCACHED
            if holders:
                raise ProtocolError(f"line {line:#x} UNCACHED but held by {holders}")
        lines += 1
    return {"directory_lines": lines}


def full_machine_audit(machine) -> dict:
    """All EM²-family audits in one call."""
    out = {}
    out.update(audit_thread_completion(machine))
    out.update(audit_home_only_caching(machine))
    out.update(audit_message_conservation(machine))
    out.update(audit_liveness(machine))
    return out
