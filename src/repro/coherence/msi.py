"""MSI protocol state machines (cache side and directory side).

States are the textbook three (Modified / Shared / Invalid); the
directory mirrors them as Uncached / Shared(sharers) / Exclusive(owner)
with a full bit-vector sharer list — the paper's scaling complaint
("directory sizes must equal a significant portion of the combined
size of the per-core caches" [6]) is about exactly this structure, and
:meth:`DirectoryEntry.bits` quantifies it for the overhead reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.errors import ProtocolError


class MSIState(enum.IntEnum):
    """Cache-line states. MSI uses the first three; the MESI variant
    adds EXCLUSIVE (clean, sole copy — writes upgrade silently)."""

    INVALID = 0
    SHARED = 1
    MODIFIED = 2
    EXCLUSIVE = 3  # MESI only: clean + sole owner


class DirState(enum.IntEnum):
    UNCACHED = 0
    SHARED = 1
    EXCLUSIVE = 2


@dataclass(slots=True)
class DirectoryEntry:
    """Directory record for one cache line.

    ``slots=True``: a 1024-core run creates one entry per touched line
    and reads/writes its fields several times per miss — slot access
    keeps that off the per-instance dict.
    """

    state: DirState = DirState.UNCACHED
    owner: int | None = None
    sharers: set[int] = field(default_factory=set)

    def check_invariants(self) -> None:
        """Raise :class:`ProtocolError` on inconsistent directory state."""
        if self.state == DirState.UNCACHED:
            if self.owner is not None or self.sharers:
                raise ProtocolError(f"UNCACHED entry with owner/sharers: {self}")
        elif self.state == DirState.SHARED:
            if self.owner is not None:
                raise ProtocolError(f"SHARED entry with an owner: {self}")
            if not self.sharers:
                raise ProtocolError("SHARED entry with empty sharer set")
        elif self.state == DirState.EXCLUSIVE:
            if self.owner is None:
                raise ProtocolError("EXCLUSIVE entry without owner")
            if self.sharers and self.sharers != {self.owner}:
                raise ProtocolError(f"EXCLUSIVE entry with sharers: {self}")

    @staticmethod
    def bits(num_cores: int) -> int:
        """Directory SRAM bits per entry (state + full sharer vector)."""
        return 2 + num_cores
