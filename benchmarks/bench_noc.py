"""Experiment ex-noc: the interconnect model underlying every cost.

Micro-benchmarks of the substrate itself — zero-load latency scaling
with distance and payload (the two axes the EM² cost model is built
on), contention behaviour, and raw event-engine throughput (this is
the Graphite-substitute's performance envelope).
"""

import pytest

from conftest import emit
from repro.analysis.reports import format_table
from repro.arch.config import NocConfig
from repro.arch.noc import Message, Network, VirtualNetwork
from repro.arch.topology import Mesh2D
from repro.sim.engine import Engine


def test_zero_load_latency_surface(benchmark):
    """Latency vs (hops, payload): the cost-model input table."""
    topo = Mesh2D(8, 8)
    net = Network(Engine(), topo, NocConfig())

    def surface():
        rows = []
        for payload in (32, 512, 1536):
            for dst in (1, 8, 63):
                rows.append(
                    {
                        "payload_bits": payload,
                        "hops": topo.distance(0, dst),
                        "latency": net.zero_load_latency(0, dst, payload),
                    }
                )
        return rows

    rows = benchmark(surface)
    emit("ex-noc: zero-load latency surface", format_table(rows))
    # serialization dominates at small distances for the 1.5 Kbit context
    ctx = [r for r in rows if r["payload_bits"] == 1536 and r["hops"] == 1][0]
    word = [r for r in rows if r["payload_bits"] == 32 and r["hops"] == 1][0]
    assert ctx["latency"] > 4 * word["latency"]


def test_contention_queueing(benchmark):
    """Messages hammering one link must queue; delivery rate is bounded
    by link serialization."""

    def run():
        eng = Engine()
        net = Network(eng, Mesh2D(4, 4), NocConfig(contention=True))
        done = []
        for i in range(64):
            net.send(
                Message(src=0, dst=1, payload_bits=512, vnet=VirtualNetwork.MIGRATION),
                lambda m: done.append(m.latency),
            )
        eng.run()
        return done

    latencies = benchmark(run)
    assert len(latencies) == 64
    assert max(latencies) > min(latencies)  # queueing visible
    emit(
        "ex-noc: 64 messages on one link (contention mode)",
        format_table(
            [
                {"stat": "min_latency", "value": min(latencies)},
                {"stat": "max_latency", "value": max(latencies)},
                {"stat": "mean_latency", "value": sum(latencies) / len(latencies)},
            ]
        ),
    )


def test_engine_event_throughput(benchmark):
    """Raw DES throughput: events/second envelope of the simulator."""

    def run():
        eng = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                eng.schedule(1.0, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count[0]

    n = benchmark(run)
    assert n == 50_000


def test_flit_level_validates_message_model(benchmark):
    """The flit-level router's zero-load latency must track the
    analytical formula the whole cost model is built on."""
    from repro.arch.noc.flitlevel import FlitNetwork

    def run():
        rows = []
        topo = Mesh2D(4, 4)
        for src, dst, flits in ((0, 1, 2), (0, 15, 2), (0, 15, 13)):
            net = FlitNetwork(topo, num_vcs=2, buffer_flits=8)
            net.send(src, dst, num_flits=flits)
            net.run_until_drained()
            analytical = topo.distance(src, dst) + (flits - 1)
            rows.append(
                {
                    "hops": topo.distance(src, dst),
                    "flits": flits,
                    "flit_level": net.latencies[0],
                    "analytical": analytical,
                    "overhead": net.latencies[0] - analytical,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ex-noc: flit-level vs analytical zero-load latency", format_table(rows))
    for r in rows:
        assert 0 <= r["overhead"] <= r["hops"] + 4  # small constant pipeline cost


def test_flit_level_ring_deadlock_and_dateline(benchmark):
    """The [10]/§3 claim, executed: single-VC ring traffic deadlocks;
    the dateline escape VC drains it."""
    from repro.arch.noc.flitlevel import FlitNetwork
    from repro.arch.topology import UnidirectionalRing
    from repro.util.errors import DeadlockError

    def run():
        outcomes = {}
        for vcs, dateline in ((1, False), (2, True)):
            net = FlitNetwork(
                UnidirectionalRing(8), num_vcs=vcs, buffer_flits=2,
                dateline=dateline, deadlock_cycles=2000,
            )
            for src in range(8):
                net.send(src, (src + 4) % 8, num_flits=8)
            try:
                cycles = net.run_until_drained()
                outcomes[(vcs, dateline)] = f"drained in {cycles} cycles"
            except DeadlockError:
                outcomes[(vcs, dateline)] = "DEADLOCK"
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ex-noc: virtual channels vs real deadlock (unidirectional ring)",
        format_table(
            [
                {"config": "1 VC, no dateline", "outcome": outcomes[(1, False)]},
                {"config": "2 VCs + dateline", "outcome": outcomes[(2, True)]},
            ]
        ),
    )
    assert outcomes[(1, False)] == "DEADLOCK"
    assert outcomes[(2, True)].startswith("drained")


def test_network_message_throughput(benchmark):
    """End-to-end message simulation rate (analytical mode)."""

    def run():
        eng = Engine()
        net = Network(eng, Mesh2D(8, 8), NocConfig())
        for i in range(10_000):
            net.send(
                Message(
                    src=i % 64,
                    dst=(i * 7) % 64,
                    payload_bits=128,
                    vnet=VirtualNetwork.RA_REQUEST,
                ),
                lambda m: None,
            )
        eng.run()
        return net.message_count()

    n = benchmark(run)
    assert n == 10_000
