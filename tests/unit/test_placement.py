"""Unit tests for placement policies."""

import numpy as np
import pytest

from repro.placement import FirstTouchPlacement, ProfileOptPlacement, StripedPlacement
from repro.placement import first_touch, profile_optimal, striped
from repro.trace.events import MultiTrace, make_trace
from repro.util.errors import ConfigError


def _mt(threads, natives=None):
    return MultiTrace(
        threads=[make_trace(a, writes=w) for a, w in threads],
        thread_native_core=natives or list(range(len(threads))),
    )


class TestStriped:
    def test_modulo_blocks(self):
        pl = striped(4, block_words=16)
        assert pl.home_of_one(0) == 0
        assert pl.home_of_one(16) == 1
        assert pl.home_of_one(64) == 0
        assert pl.home_of_one(65) == 0  # same block as 64

    def test_vectorized_matches_scalar(self):
        pl = striped(8, block_words=4)
        addrs = np.arange(0, 100, 7)
        vec = pl.home_of(addrs)
        assert vec.tolist() == [pl.home_of_one(int(a)) for a in addrs]

    def test_perfect_balance(self):
        pl = striped(4, block_words=1)
        homes = pl.home_of(np.arange(400))
        counts = np.bincount(homes)
        assert (counts == 100).all()


class TestFirstTouch:
    def test_first_toucher_owns(self):
        # thread 0 touches word 5 at position 0; thread 1 touches it at position 1
        mt = _mt([([5], [1]), ([5], [0])])
        pl = first_touch(mt, 2, block_words=1)
        assert pl.home_of_one(5) == 0

    def test_interleave_order_breaks_ties(self):
        # both touch word 9 as their k-th access: lower thread id wins
        mt = _mt([([1, 9], [1, 1]), ([2, 9], [1, 1])])
        pl = first_touch(mt, 2, block_words=1)
        assert pl.home_of_one(9) == 0

    def test_later_position_loses(self):
        # thread 1 touches word 9 at position 0, thread 0 at position 1
        mt = _mt([([1, 9], [1, 1]), ([9, 2], [1, 1])])
        pl = first_touch(mt, 2, block_words=1)
        assert pl.home_of_one(9) == 1

    def test_block_granularity_groups_words(self):
        mt = _mt([([0], [1]), ([1], [1])])  # same 16-word block
        pl = first_touch(mt, 2, block_words=16)
        assert pl.home_of_one(0) == pl.home_of_one(1) == 0

    def test_unseen_block_falls_back_to_stripe(self):
        mt = _mt([([0], [1])])
        pl = first_touch(mt, 2, block_words=1)
        assert pl.home_of_one(999) == 999 % 2

    def test_private_regions_home_at_owner(self, ocean_small):
        pl = first_touch(ocean_small, 8)
        from repro.trace.synthetic.base import PRIVATE_BASE, PRIVATE_SPAN

        for t in (0, 3, 7):
            addr = PRIVATE_BASE + t * PRIVATE_SPAN + 3
            assert pl.home_of_one(addr) == t

    def test_empty_trace_ok(self):
        mt = MultiTrace(threads=[make_trace([])])
        pl = first_touch(mt, 4)
        assert pl.num_mapped_blocks() == 0


class TestProfileOpt:
    def test_majority_accessor_owns(self):
        mt = _mt([([7], [0]), ([7, 7, 7], [0, 0, 0])])
        pl = profile_optimal(mt, 2, block_words=1)
        assert pl.home_of_one(7) == 1

    def test_write_weight_tips_balance(self):
        # thread 0: two reads; thread 1: one write
        mt = _mt([([7, 7], [0, 0]), ([7], [1])])
        assert profile_optimal(mt, 2, block_words=1).home_of_one(7) == 0
        assert profile_optimal(mt, 2, block_words=1, write_weight=3.0).home_of_one(7) == 1

    def test_never_worse_than_first_touch_on_local_fraction(self):
        from repro.trace.synthetic import make_workload

        mt = make_workload("lu", num_threads=4, blocks=4, block_words=16)
        ft = first_touch(mt, 4)
        po = profile_optimal(mt, 4)
        def local_fraction(pl):
            tot = loc = 0
            for t, tr in enumerate(mt.threads):
                homes = pl.home_of(tr["addr"])
                loc += int((homes == t).sum())
                tot += tr.size
            return loc / tot
        assert local_fraction(po) >= local_fraction(ft) - 1e-12

    def test_capacity_rebalance_respects_cap(self):
        # 10 blocks all favoured by thread 0; cap forces spreading
        addrs = list(range(0, 10))
        mt = _mt([(addrs * 3, [0] * 30), ([0], [0])])
        pl = profile_optimal(mt, 2, block_words=1, capacity_blocks=6)
        assert pl.core_load().max() <= 6

    def test_bad_write_weight_rejected(self):
        mt = _mt([([1], [0])])
        with pytest.raises(ConfigError):
            profile_optimal(mt, 2, write_weight=0.0)


class TestPlacementBase:
    def test_core_load_matches_map(self):
        mt = _mt([([0, 16, 32], [1, 1, 1])])
        pl = first_touch(mt, 4, block_words=16)
        assert pl.core_load().sum() == pl.num_mapped_blocks() == 3

    def test_invalid_num_cores_rejected(self):
        with pytest.raises(ConfigError):
            StripedPlacement(0)

    def test_invalid_block_words_rejected(self):
        with pytest.raises(ConfigError):
            StripedPlacement(4, block_words=0)
