"""A small imperative language compiled to the stack ISA.

Writing raw two-stack assembly is error-prone; real stack machines are
targeted by compilers (the paper cites the JVM as the modern example).
This module provides a C-like mini-language:

.. code-block:: text

    acc = 0;
    i = 0;
    while (i < n) {
        acc = acc + load(base + i);
        i = i + 1;
    }
    store(out, acc);

Compilation model
-----------------
* **Expressions** evaluate on the data stack (post-order walk of the
  AST — the textbook stack-code generation scheme).
* **Local variables** live in a per-thread memory *frame* (thread-
  private addresses): reads/writes of locals are real LOAD/STORE
  instructions. This is the honest choice for EM² experiments —
  locals are private data homed at the native core, exactly like a
  real frame, and the data stack stays shallow (bounded by expression
  depth), which is what makes stack-EM² migrations small.
* **Constants** bind names to integers at compile time (e.g. array
  base addresses), so kernels parameterize without codegen in user
  code.

Grammar (statements end with ';'; '{}' blocks; '#' comments)::

    program  := stmt*
    stmt     := ident '=' expr ';'
              | 'store' '(' expr ',' expr ')' ';'
              | 'while' '(' expr ')' block
              | 'if' '(' expr ')' block ('else' block)?
    block    := '{' stmt* '}'
    expr     := cmp (( '==' | '<' | '>' ) cmp)*
    cmp      := term (('+' | '-') term)*
    term     := unary (('*' | '/' | '%') unary)*
    unary    := 'load' '(' expr ')' | '(' expr ')' | int | ident

Division is floor division; '%' compiles to ``a - (a/b)*b``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.stackmachine.isa import Instruction, Opcode
from repro.util.errors import ReproError


class CompileError(ReproError):
    """Syntax or semantic error in mini-language source."""


# ---------------------------------------------------------------- lexer
_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<id>[A-Za-z_]\w*)|(?P<op>==|[+\-*/%<>=(),;{}]))"
)
_KEYWORDS = {"while", "if", "else", "load", "store"}


@dataclass
class _Token:
    kind: str  # 'num' | 'id' | 'op' | kw name
    value: str
    pos: int


def _tokenize(src: str) -> list[_Token]:
    src = re.sub(r"#[^\n]*", "", src)
    tokens = []
    pos = 0
    while pos < len(src):
        if src[pos:].strip() == "":
            break
        m = _TOKEN_RE.match(src, pos)
        if not m:
            raise CompileError(f"unexpected character {src[pos]!r} at offset {pos}")
        pos = m.end()
        if m.group("num"):
            tokens.append(_Token("num", m.group("num"), m.start()))
        elif m.group("id"):
            word = m.group("id")
            tokens.append(_Token(word if word in _KEYWORDS else "id", word, m.start()))
        else:
            tokens.append(_Token("op", m.group("op"), m.start()))
    return tokens


# ---------------------------------------------------------------- AST
@dataclass
class Num:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class BinOp:
    op: str
    left: object
    right: object


@dataclass
class Load:
    addr: object


@dataclass
class Assign:
    name: str
    expr: object


@dataclass
class Store:
    addr: object
    value: object


@dataclass
class While:
    cond: object
    body: list


@dataclass
class If:
    cond: object
    then: list
    otherwise: list = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.i = 0

    def _peek(self) -> _Token | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise CompileError("unexpected end of input")
        self.i += 1
        return tok

    def _expect(self, value: str) -> None:
        tok = self._next()
        if tok.value != value:
            raise CompileError(f"expected {value!r}, got {tok.value!r} at {tok.pos}")

    # -- statements ------------------------------------------------------
    def parse_program(self) -> list:
        stmts = []
        while self._peek() is not None:
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self):
        tok = self._peek()
        assert tok is not None
        if tok.kind == "while":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            return While(cond, self.parse_block())
        if tok.kind == "if":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            then = self.parse_block()
            otherwise = []
            nxt = self._peek()
            if nxt is not None and nxt.kind == "else":
                self._next()
                otherwise = self.parse_block()
            return If(cond, then, otherwise)
        if tok.kind == "store":
            self._next()
            self._expect("(")
            addr = self.parse_expr()
            self._expect(",")
            value = self.parse_expr()
            self._expect(")")
            self._expect(";")
            return Store(addr, value)
        if tok.kind == "id":
            name = self._next().value
            self._expect("=")
            expr = self.parse_expr()
            self._expect(";")
            return Assign(name, expr)
        raise CompileError(f"unexpected token {tok.value!r} at {tok.pos}")

    def parse_block(self) -> list:
        self._expect("{")
        stmts = []
        while True:
            tok = self._peek()
            if tok is None:
                raise CompileError("unterminated block")
            if tok.value == "}":
                self._next()
                return stmts
            stmts.append(self.parse_stmt())

    # -- expressions -------------------------------------------------------
    def parse_expr(self):
        node = self._additive()
        while (tok := self._peek()) is not None and tok.value in ("==", "<", ">"):
            op = self._next().value
            node = BinOp(op, node, self._additive())
        return node

    def _additive(self):
        node = self._term()
        while (tok := self._peek()) is not None and tok.value in ("+", "-"):
            op = self._next().value
            node = BinOp(op, node, self._term())
        return node

    def _term(self):
        node = self._unary()
        while (tok := self._peek()) is not None and tok.value in ("*", "/", "%"):
            op = self._next().value
            node = BinOp(op, node, self._unary())
        return node

    def _unary(self):
        tok = self._next()
        if tok.kind == "num":
            return Num(int(tok.value))
        if tok.kind == "load":
            self._expect("(")
            addr = self.parse_expr()
            self._expect(")")
            return Load(addr)
        if tok.value == "(":
            node = self.parse_expr()
            self._expect(")")
            return node
        if tok.kind == "id":
            return Var(tok.value)
        raise CompileError(f"unexpected token {tok.value!r} at {tok.pos}")


# ---------------------------------------------------------------- codegen
_BINOPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "==": Opcode.EQ,
    "<": Opcode.LT,
    ">": Opcode.GT,
}


class _Codegen:
    def __init__(self, frame_base: int, constants: dict[str, int]) -> None:
        self.frame_base = frame_base
        self.constants = dict(constants)
        self.slots: dict[str, int] = {}
        self.code: list[Instruction] = []

    def _emit(self, op: Opcode, operand: int | None = None) -> int:
        self.code.append(Instruction(op, operand))
        return len(self.code) - 1

    def _slot_addr(self, name: str) -> int:
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return self.frame_base + self.slots[name]

    # -- expressions -------------------------------------------------------
    def expr(self, node) -> None:
        if isinstance(node, Num):
            self._emit(Opcode.LIT, node.value)
        elif isinstance(node, Var):
            if node.name in self.constants:
                self._emit(Opcode.LIT, self.constants[node.name])
            else:
                if node.name not in self.slots:
                    raise CompileError(f"use of unassigned variable {node.name!r}")
                self._emit(Opcode.LIT, self._slot_addr(node.name))
                self._emit(Opcode.LOAD)
        elif isinstance(node, BinOp):
            if node.op == "%":
                # a % b  ==  a - (a / b) * b, with a and b each evaluated
                # once: ( a b -- a b a b ) via over/over
                self.expr(node.left)
                self.expr(node.right)
                self._emit(Opcode.OVER)
                self._emit(Opcode.OVER)
                self._emit(Opcode.DIV)
                self._emit(Opcode.MUL)
                self._emit(Opcode.SUB)
                return
            self.expr(node.left)
            self.expr(node.right)
            self._emit(_BINOPS[node.op])
        elif isinstance(node, Load):
            self.expr(node.addr)
            self._emit(Opcode.LOAD)
        else:  # pragma: no cover - parser produces only the above
            raise CompileError(f"cannot generate code for {node!r}")

    # -- statements ----------------------------------------------------------
    def stmt(self, node) -> None:
        if isinstance(node, Assign):
            if node.name in self.constants:
                raise CompileError(f"cannot assign to constant {node.name!r}")
            self.expr(node.expr)
            self._emit(Opcode.LIT, self._slot_addr(node.name))
            self._emit(Opcode.STORE)
        elif isinstance(node, Store):
            self.expr(node.value)
            self.expr(node.addr)
            self._emit(Opcode.STORE)
        elif isinstance(node, While):
            top = len(self.code)
            self.expr(node.cond)
            jz_at = self._emit(Opcode.JZ, 0)  # patched below
            for s in node.body:
                self.stmt(s)
            self._emit(Opcode.JMP, top)
            self.code[jz_at] = Instruction(Opcode.JZ, len(self.code))
        elif isinstance(node, If):
            self.expr(node.cond)
            jz_at = self._emit(Opcode.JZ, 0)
            for s in node.then:
                self.stmt(s)
            if node.otherwise:
                jmp_at = self._emit(Opcode.JMP, 0)
                self.code[jz_at] = Instruction(Opcode.JZ, len(self.code))
                for s in node.otherwise:
                    self.stmt(s)
                self.code[jmp_at] = Instruction(Opcode.JMP, len(self.code))
            else:
                self.code[jz_at] = Instruction(Opcode.JZ, len(self.code))
        else:  # pragma: no cover
            raise CompileError(f"cannot generate code for {node!r}")


def compile_source(
    source: str,
    frame_base: int,
    constants: dict[str, int] | None = None,
) -> list[Instruction]:
    """Compile mini-language ``source`` to a stack program.

    ``frame_base`` — first word address of the local-variable frame
    (use the thread's private region); ``constants`` — compile-time
    name bindings (array bases, sizes).
    """
    ast = _Parser(_tokenize(source)).parse_program()
    gen = _Codegen(frame_base, constants or {})
    for node in ast:
        gen.stmt(node)
    gen._emit(Opcode.HALT)
    return gen.code
