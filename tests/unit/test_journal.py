"""Unit tests for the durable sweep journal (ISSUE 10).

The journal's one job is surviving a crash at any byte offset: every
test here either round-trips records through close/reopen or corrupts
the file tail in a specific way and asserts recovery trusts exactly
the good prefix. The bit-identity contract (rows pass through JSON on
append, so replay equals re-evaluation) is pinned at the value level.
"""

import json
import struct
import zlib

import pytest

from repro.analysis.journal import (
    JOURNAL_SCHEMA,
    MAGIC,
    MAX_RECORD,
    JournalError,
    SweepJournal,
    spec_journal_key,
)
from repro.util.errors import ConfigError

_PREAMBLE = struct.Struct("!4sI")
_RECORD = struct.Struct("!II")


def _path(tmp_path):
    return tmp_path / "sweep.rpjl"


# ------------------------------------------------------------- round trips
def test_fresh_journal_roundtrip(tmp_path):
    p = _path(tmp_path)
    with SweepJournal(p) as j:
        assert len(j) == 0
        j.append("k1", {"cost": 1, "time": 2.5})
        j.append("k2", {"cost": 7})
        assert "k1" in j and "k3" not in j
    j2 = SweepJournal(p)
    assert len(j2) == 2
    assert j2.get("k1") == {"cost": 1, "time": 2.5}
    assert j2.get("k2") == {"cost": 7}
    assert j2.recovered_records == 2
    assert j2.truncated_bytes == 0
    j2.close()


def test_append_after_reopen_extends(tmp_path):
    p = _path(tmp_path)
    with SweepJournal(p) as j:
        j.append("a", {"v": 1})
    with SweepJournal(p) as j:
        j.append("b", {"v": 2})
    with SweepJournal(p) as j:
        assert len(j) == 2


def test_rows_are_json_canonical_on_append(tmp_path):
    """A tuple-valued metric comes back as a list — the same JSON
    round-trip the cache applies, so replayed rows are bit-identical
    to rows that passed through the canonical path."""
    with SweepJournal(_path(tmp_path)) as j:
        j.append("k", {"pair": (1, 2)})
        assert j.get("k") == {"pair": [1, 2]}
    with SweepJournal(_path(tmp_path)) as j2:
        assert j2.get("k") == {"pair": [1, 2]}


def test_duplicate_key_last_wins(tmp_path):
    with SweepJournal(_path(tmp_path)) as j:
        j.append("k", {"v": 1})
        j.append("k", {"v": 2})
    with SweepJournal(_path(tmp_path)) as j2:
        assert len(j2) == 1
        assert j2.get("k") == {"v": 2}


# ---------------------------------------------------------------- recovery
def _journal_with_two_rows(tmp_path):
    p = _path(tmp_path)
    with SweepJournal(p) as j:
        j.append("k1", {"v": 1})
        j.append("k2", {"v": 2})
    return p


def test_truncated_record_header_is_dropped(tmp_path):
    p = _journal_with_two_rows(tmp_path)
    with open(p, "ab") as fh:
        fh.write(b"\x00\x00")  # 2 of 8 header bytes: crash mid-write
    j = SweepJournal(p)
    assert len(j) == 2
    assert j.truncated_bytes == 2
    j.close()
    # the truncation is durable: a third open sees a clean file
    j2 = SweepJournal(p)
    assert j2.truncated_bytes == 0
    j2.close()


def test_truncated_record_body_is_dropped(tmp_path):
    p = _journal_with_two_rows(tmp_path)
    body = json.dumps({"key": "k3", "row": {"v": 3}}).encode()
    with open(p, "ab") as fh:
        fh.write(_RECORD.pack(len(body), zlib.crc32(body)) + body[: len(body) // 2])
    j = SweepJournal(p)
    assert len(j) == 2 and "k3" not in j
    assert j.truncated_bytes > 0
    j.close()


def test_crc_mismatch_drops_tail(tmp_path):
    p = _journal_with_two_rows(tmp_path)
    body = json.dumps({"key": "k3", "row": {"v": 3}}).encode()
    with open(p, "ab") as fh:
        fh.write(_RECORD.pack(len(body), zlib.crc32(body) ^ 0xFF) + body)
    j = SweepJournal(p)
    assert len(j) == 2 and "k3" not in j
    j.close()


def test_insane_length_drops_tail(tmp_path):
    p = _journal_with_two_rows(tmp_path)
    with open(p, "ab") as fh:
        fh.write(_RECORD.pack(MAX_RECORD + 1, 0) + b"x" * 32)
    j = SweepJournal(p)
    assert len(j) == 2
    j.close()


def test_good_json_bad_schema_body_drops_tail(tmp_path):
    """CRC-valid bytes that decode but are not a record (no key/row)
    still stop the scan — corruption is whatever breaks the schema."""
    p = _journal_with_two_rows(tmp_path)
    body = json.dumps(["not", "a", "record"]).encode()
    with open(p, "ab") as fh:
        fh.write(_RECORD.pack(len(body), zlib.crc32(body)) + body)
    j = SweepJournal(p)
    assert len(j) == 2
    j.close()


def test_append_resumes_after_recovery(tmp_path):
    p = _journal_with_two_rows(tmp_path)
    with open(p, "ab") as fh:
        fh.write(b"\xde\xad\xbe\xef")
    with SweepJournal(p) as j:
        j.append("k3", {"v": 3})
    with SweepJournal(p) as j2:
        assert len(j2) == 3 and j2.get("k3") == {"v": 3}


# ------------------------------------------------------------ foreign files
def test_foreign_magic_refused(tmp_path):
    p = _path(tmp_path)
    p.write_bytes(b"PK\x03\x04 definitely not a journal")
    with pytest.raises(JournalError, match="not a sweep journal"):
        SweepJournal(p)


def test_future_schema_refused(tmp_path):
    p = _path(tmp_path)
    p.write_bytes(_PREAMBLE.pack(MAGIC, JOURNAL_SCHEMA + 1))
    with pytest.raises(JournalError, match="schema"):
        SweepJournal(p)


def test_crash_mid_preamble_recovers(tmp_path):
    """A file holding only a prefix of our magic is our own crash at
    birth — rewritten fresh, not refused."""
    p = _path(tmp_path)
    p.write_bytes(MAGIC[:2])
    j = SweepJournal(p)
    assert len(j) == 0 and j.truncated_bytes == 2
    j.close()


def test_short_foreign_prefix_refused(tmp_path):
    p = _path(tmp_path)
    p.write_bytes(b"ELF")
    with pytest.raises(JournalError):
        SweepJournal(p)


# ------------------------------------------------------------- validation
def test_fsync_every_validated(tmp_path):
    with pytest.raises(ConfigError, match="fsync_every"):
        SweepJournal(_path(tmp_path), fsync_every=0)


def test_oversized_record_refused(tmp_path):
    with SweepJournal(_path(tmp_path)) as j:
        with pytest.raises(ConfigError, match="record"):
            j.append("k", {"blob": "x" * (MAX_RECORD + 1)})


# ---------------------------------------------------------------- identity
def test_spec_journal_key_is_stable_and_distinct():
    a = {"workload": {"name": "pingpong"}, "scheme": {"name": "history"}}
    b = {"scheme": {"name": "history"}, "workload": {"name": "pingpong"}}
    c = {"workload": {"name": "pingpong"}, "scheme": {"name": "random"}}
    assert spec_journal_key(a) == spec_journal_key(b)  # key-order independent
    assert spec_journal_key(a) != spec_journal_key(c)
    assert len(spec_journal_key(a)) == 64  # SHA-256 hex
