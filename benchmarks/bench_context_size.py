"""Experiment ex-context: migration cost vs execution-context size.

§2: "each migration must transfer the entire execution context (1-2
Kbits in a 32-bit Atom-like processor) over the on-chip network,
causing significant power consumption"; §5: reducing context size
"improves both latency (especially on low-bandwidth interconnects)
and power dissipation".

Sweep context size and link width; report EM² total network cost and
energy on a migration-heavy workload. The paper's two remedies bracket
the sweep: EM²-RA (small RA packets for short runs) and stack-EM²
(small contexts always).
"""

import pytest

from conftest import cached_first_touch, cached_workload, emit
from repro.analysis.energy import EnergyModel
from repro.analysis.reports import format_table
from repro.analysis.sweep import grid, sweep
from repro.arch.config import ContextConfig, NocConfig, SystemConfig
from repro.core.costs import CostModel
from repro.core.decision import AlwaysMigrate, HistoryRunLength, NeverMigrate
from repro.core.evaluation import evaluate_scheme


def _config_with(context_bits: int, flit_bits: int = 128) -> SystemConfig:
    # register_bits carries the sweep; pc/extra fixed small
    return SystemConfig(
        num_cores=16,
        context=ContextConfig(
            register_bits=max(context_bits - 96, 0), pc_bits=32, extra_state_bits=64
        ),
        noc=NocConfig(flit_bits=flit_bits),
    )


@pytest.fixture(scope="module")
def workload():
    trace = cached_workload("ocean", num_threads=16, grid_n=98, iterations=1)
    return trace, cached_first_touch(trace, 16)


def test_context_size_sweep(benchmark, workload, bench_workers):
    trace, placement = workload
    energy = EnergyModel()

    def eval_point(context_bits):
        cm = CostModel(_config_with(context_bits))
        r = evaluate_scheme(trace, placement, AlwaysMigrate(), cm)
        return {
            "em2_cost": r.total_cost,
            "traffic_Mbit": r.traffic_bits / 1e6,
            "network_energy_uJ": energy.network_energy(r.traffic_bits * 4) / 1e6,
        }

    def run_sweep():
        return sweep(
            grid(context_bits=[256, 512, 1024, 1536, 2048, 4096]),
            eval_point,
            workers=bench_workers,
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("ex-context: EM2 cost/traffic vs context size (ocean, 16 cores)",
         format_table(rows))
    costs = [r["em2_cost"] for r in rows]
    assert costs == sorted(costs)  # monotone in context size
    # the paper's 1-2 Kbit context pays >1.5x the network cost of a
    # hypothetical 256-bit context on this workload
    assert costs[3] > 1.2 * costs[0]


def test_link_width_sweep(benchmark, workload, bench_workers):
    """'especially on low-bandwidth interconnects' (§5): narrower flits
    hurt pure EM² much more than the RA-heavy hybrid."""
    trace, placement = workload

    def eval_point(flit_bits):
        cm = CostModel(_config_with(1536, flit_bits=flit_bits))
        em2 = evaluate_scheme(trace, placement, AlwaysMigrate(), cm)
        ra = evaluate_scheme(trace, placement, NeverMigrate(), cm)
        return {
            "em2_cost": em2.total_cost,
            "ra_cost": ra.total_cost,
            "em2_over_ra": em2.total_cost / ra.total_cost,
        }

    def run_sweep():
        return sweep(
            grid(flit_bits=[32, 64, 128, 256]), eval_point, workers=bench_workers
        )

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("ex-context: link-width sensitivity (EM2 vs RA-only)", format_table(rows))
    # EM2's relative penalty must grow as links narrow
    ratios = [r["em2_over_ra"] for r in rows]
    assert ratios[0] > ratios[-1]


def test_remedies_reduce_traffic(benchmark, workload):
    """Both §3 and §4 remedies cut traffic vs pure EM² at 1.5 Kbit."""
    trace, placement = workload

    def measure():
        cm = CostModel(_config_with(1536))
        be = cm.break_even_run_length(0, 15)
        em2 = evaluate_scheme(trace, placement, AlwaysMigrate(), cm)
        hybrid = evaluate_scheme(
            trace, placement, HistoryRunLength(threshold=be), cm
        )
        return em2, hybrid

    em2, hybrid = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "ex-context: EM2 vs EM2-RA traffic at 1.5 Kbit contexts",
        format_table(
            [
                {"arch": "EM2", "traffic_Mbit": em2.traffic_bits / 1e6,
                 "cost": em2.total_cost},
                {"arch": "EM2-RA (history)", "traffic_Mbit": hybrid.traffic_bits / 1e6,
                 "cost": hybrid.total_cost},
            ]
        ),
    )
    assert hybrid.traffic_bits < em2.traffic_bits
