"""Analysis utilities: energy model, report tables, parallel sweeps,
and the content-addressed result cache."""

from repro.analysis.cache import ResultCache, canonical_rows, stable_key
from repro.analysis.energy import EnergyModel, EnergyReport
from repro.analysis.parallel import SweepPointError, parallel_sweep
from repro.analysis.reports import format_table, runlength_table, to_csv
from repro.analysis.sweep import geomean, grid, normalize, sweep

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "ResultCache",
    "SweepPointError",
    "canonical_rows",
    "format_table",
    "runlength_table",
    "to_csv",
    "grid",
    "parallel_sweep",
    "stable_key",
    "sweep",
    "geomean",
    "normalize",
]
