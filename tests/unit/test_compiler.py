"""Unit tests for the mini-language -> stack ISA compiler."""

import pytest

from repro.stackmachine.compiler import CompileError, compile_source
from repro.stackmachine.machine import StackMachine

FRAME = 10_000  # local-variable frame in "private" memory


def run(src, memory=None, constants=None, fuel=2_000_000):
    vm = StackMachine(
        compile_source(src, FRAME, constants), memory=dict(memory or {})
    )
    trace = vm.run(fuel=fuel)
    return vm, trace


class TestExpressions:
    def test_arithmetic_precedence(self):
        vm, _ = run("store(500, 2 + 3 * 4);")
        assert vm.memory[500] == 14

    def test_parentheses(self):
        vm, _ = run("store(500, (2 + 3) * 4);")
        assert vm.memory[500] == 20

    def test_subtraction_left_assoc(self):
        vm, _ = run("store(500, 10 - 3 - 2);")
        assert vm.memory[500] == 5

    def test_division_floor(self):
        vm, _ = run("store(500, 7 / 2);")
        assert vm.memory[500] == 3

    def test_modulo(self):
        vm, _ = run("store(500, 17 % 5);")
        assert vm.memory[500] == 2

    def test_comparisons(self):
        vm, _ = run("store(500, 3 < 5); store(501, 5 < 3); store(502, 4 == 4);")
        assert (vm.memory[500], vm.memory[501], vm.memory[502]) == (1, 0, 1)

    def test_load(self):
        vm, _ = run("store(500, load(100) + 1);", memory={100: 41})
        assert vm.memory[500] == 42

    def test_constants_bound(self):
        vm, _ = run("store(out, base + 2);", constants={"out": 500, "base": 40})
        assert vm.memory[500] == 42


class TestVariables:
    def test_assign_and_use(self):
        vm, _ = run("x = 5; y = x * x; store(500, y);")
        assert vm.memory[500] == 25

    def test_locals_live_in_frame(self):
        vm, _ = run("x = 7;")
        assert vm.memory[FRAME] == 7  # slot 0

    def test_unassigned_variable_rejected(self):
        with pytest.raises(CompileError, match="unassigned"):
            compile_source("store(500, ghost);", FRAME)

    def test_assign_to_constant_rejected(self):
        with pytest.raises(CompileError, match="constant"):
            compile_source("n = 3;", FRAME, {"n": 10})


class TestControlFlow:
    def test_while_loop_sum(self):
        vm, _ = run(
            """
            acc = 0; i = 0;
            while (i < 5) { acc = acc + i; i = i + 1; }
            store(500, acc);
            """
        )
        assert vm.memory[500] == 10

    def test_while_false_never_runs(self):
        vm, _ = run("x = 1; while (0) { x = 99; } store(500, x);")
        assert vm.memory[500] == 1

    def test_if_else(self):
        vm, _ = run(
            "a = 3; if (a < 2) { r = 10; } else { r = 20; } store(500, r);"
        )
        assert vm.memory[500] == 20

    def test_if_without_else(self):
        vm, _ = run("r = 1; if (2 < 3) { r = 7; } store(500, r);")
        assert vm.memory[500] == 7

    def test_nested_loops(self):
        vm, _ = run(
            """
            total = 0; i = 0;
            while (i < 3) {
                j = 0;
                while (j < 4) { total = total + 1; j = j + 1; }
                i = i + 1;
            }
            store(500, total);
            """
        )
        assert vm.memory[500] == 12


class TestKernels:
    def test_dot_product_matches_reference(self):
        n = 6
        memory = {100 + i: i + 1 for i in range(n)}
        memory.update({200 + i: 2 * i for i in range(n)})
        src = """
            acc = 0; i = 0;
            while (i < n) {
                acc = acc + load(a + i) * load(b + i);
                i = i + 1;
            }
            store(out, acc);
        """
        vm, trace = run(
            src, memory=memory, constants={"a": 100, "b": 200, "out": 500, "n": n}
        )
        assert vm.memory[500] == sum((i + 1) * 2 * i for i in range(n))
        # and the recorded trace is a valid stack trace
        from repro.trace.events import validate_trace

        validate_trace(trace)
        assert trace["addr"].min() >= 100  # loads/stores + frame traffic

    def test_histogram_kernel(self):
        n, buckets = 8, 3
        memory = {100 + i: i for i in range(n)}
        src = """
            i = 0;
            while (i < n) {
                k = load(keys + i) % buckets;
                store(hist + k, load(hist + k) + 1);
                i = i + 1;
            }
        """
        vm, _ = run(
            src,
            memory=memory,
            constants={"keys": 100, "hist": 400, "n": n, "buckets": buckets},
        )
        assert [vm.memory.get(400 + b, 0) for b in range(buckets)] == [3, 3, 2]

    def test_expression_stack_stays_shallow(self):
        """The compilation model's promise for stack-EM²: data-stack
        depth is bounded by expression depth, not program size."""
        src = """
            i = 0;
            while (i < 50) { i = i + 1; }
            store(500, i);
        """
        vm, trace = run(src)
        assert trace["spop"].max() <= 4
        assert trace["spush"].max() <= 4


class TestErrors:
    def test_syntax_error_position(self):
        with pytest.raises(CompileError, match="expected"):
            compile_source("x = ;", FRAME)

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            compile_source("x = 1 & 2;", FRAME)

    def test_unterminated_block(self):
        with pytest.raises(CompileError, match="unterminated"):
            compile_source("while (1) { x = 1;", FRAME)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            compile_source("x = 1 y = 2;", FRAME)
