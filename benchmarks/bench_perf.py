"""Sweep-throughput harness: serial vs parallel, cold vs warm cache.

This is the measurement companion to ISSUE 1's performance layer. It
runs one multi-point (workload x scheme) sweep four ways —

1. serial        (``workers=1``, no cache)
2. parallel      (``workers=N`` process pool, no cache)
3. cold cache    (parallel + empty content-addressed cache)
4. warm cache    (parallel + the cache populated by run 3)

— verifies all four produce identical result rows, and writes
timings, speedups, and cache hit/miss counters to ``BENCH_perf.json``.
Two further sections cover the trace plane: generation throughput of
the vectorized synthetic generators (gated by the golden-trace
bit-identity fixture) and the on-disk trace store (cold generate+persist
vs warm load-from-disk sweep).

Every point is a partial :class:`~repro.spec.ExperimentSpec` overlay
swept through :func:`repro.analysis.sweep.sweep_specs`: pool workers
receive serialized spec dicts and rebuild through the registries
(:func:`repro.runner.run_spec_dict`), so nothing here needs to pickle
beyond plain dicts, and cache keys derive from the canonical spec
dict rather than ad-hoc context.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf.py [--smoke] [--workers N]

or via pytest (smoke configuration only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py

Note: parallel speedup is bounded by the machine. The report records
``cpu_count`` so a 1-core CI box showing ~1x is interpretable; the
>=2x acceptance target applies on >=4-core hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.cache import ResultCache, canonical_rows
from repro.analysis.parallel import effective_workers
from repro.analysis.sweep import sweep_specs
from repro.registry import WORKLOADS
from repro.runner import build, clear_build_memo
from repro.spec import ExperimentSpec, MachineSpec, PlacementSpec, WorkloadSpec
from repro.trace.store import TraceStore, set_trace_store

CORES = 16

# Workload sub-spec overlays per sweep axis value. Workers rebuild each
# point's trace from its spec (memoized per process), so the generation
# + sequential scheme walk is the unit of work being parallelized.
WORKLOAD_PARAMS = {
    "full": {
        "ocean": dict(name="ocean", num_threads=16, grid_n=130, iterations=2),
        "fft": dict(name="fft", num_threads=16, points_per_thread=1024),
        "pingpong": dict(name="pingpong", num_threads=16, rounds=2048, run=4),
        "uniform": dict(name="uniform", num_threads=16, accesses_per_thread=16384),
    },
    "smoke": {
        "pingpong": dict(name="pingpong", num_threads=8, rounds=24, run=4),
        "uniform": dict(name="uniform", num_threads=8, accesses_per_thread=128),
    },
}

SCHEMES = {
    "full": ["history", "addr-history", "costaware"],
    "smoke": ["history", "costaware"],
}

# ---------------------------------------------------------------- throughput
# Detailed-simulator throughput: accesses/second through the behavioral
# EM2 machine (event-driven) and the directory-CC simulator (round-robin).
# These exercise the per-access hot paths (columnar trace decode, cached
# NoC tables, counter cells) that the sweep harness above never touches.
THROUGHPUT_PARAMS = {
    "full": {
        "machine": dict(name="pingpong", num_threads=16, rounds=1500, run=8),
        "cc": dict(name="uniform", num_threads=16, accesses_per_thread=8192,
                   region_words=4096),
        "machine_fast": dict(name="pingpong", num_threads=16, rounds=120, run=256),
        "cc_fast": dict(name="private", num_threads=16, accesses_per_thread=16384,
                        working_set=192),
    },
    "smoke": {
        "machine": dict(name="pingpong", num_threads=8, rounds=250, run=8),
        "cc": dict(name="uniform", num_threads=8, accesses_per_thread=1024,
                   region_words=1024),
        "machine_fast": dict(name="pingpong", num_threads=8, rounds=60, run=256),
        "cc_fast": dict(name="private", num_threads=8, accesses_per_thread=8192,
                        working_set=192),
    },
}

# The ``machine``/``cc`` entries are boundary-dense (a migration or a
# miss every handful of accesses) and measure the *event-driven* hot
# path, so those runs pin ``fast_path=False`` for metric continuity.
# The ``*_fast`` entries are the epoch-batched fast path's target
# regime — long runs of local work punctuated by rare boundary events
# (the regime the paper's evaluation cares about) — and run with the
# fast path on (the default).

# Pre-optimization accesses/second, measured on the commit before the
# hot-path overhaul (best of 3 on the same parameters above, CORES=16).
# The speedup the report prints is relative to these; they are fixed
# reference points, not re-measured.
PRE_PR_BASELINE = {
    "full": {"machine": 108913.0, "cc": 34082.0},
    "smoke": {"machine": 111222.0, "cc": 44167.0},
}

#: the previous committed baseline (benchmarks/baseline_throughput.json)
#: — unlike the frozen PRE_PR_BASELINE above, this moves with every PR
#: that re-records it, so speedups against it show the *trajectory*
#: since the last landed optimization rather than since the first one.
COMMITTED_BASELINE_PATH = Path(__file__).resolve().parent / "baseline_throughput.json"

# ---------------------------------------------------------------- tracegen
# Synthetic-generator throughput: accesses/second of MultiTrace
# generation itself (the cost the trace store and shared-memory layer
# amortize away, and the thing the vectorization PR made ~18x faster).
TRACEGEN_PARAMS = {
    "full": {
        "ocean": dict(num_threads=32, grid_n=258, iterations=2),
        "lu": dict(num_threads=16, blocks=12, block_words=256),
        "fft": dict(num_threads=16, points_per_thread=4096, butterfly_stages=5),
        "radix": dict(num_threads=16, keys_per_thread=4096, passes=3),
        "water": dict(num_threads=16, molecules_per_thread=128, timesteps=3),
        "barnes": dict(num_threads=16, bodies_per_thread=128, tree_depth=5, timesteps=2),
        "raytrace": dict(num_threads=16, rays_per_thread=256, nodes_per_ray=8),
    },
    "smoke": {
        "ocean": dict(num_threads=8, grid_n=66, iterations=2),
        "lu": dict(num_threads=8, blocks=8, block_words=64),
        "fft": dict(num_threads=8, points_per_thread=512, butterfly_stages=4),
        "radix": dict(num_threads=8, keys_per_thread=512, passes=2),
        "water": dict(num_threads=8, molecules_per_thread=32, timesteps=2),
        "barnes": dict(num_threads=8, bodies_per_thread=32, tree_depth=4, timesteps=2),
        "raytrace": dict(num_threads=8, rays_per_thread=64, nodes_per_ray=8),
    },
}

# Generation throughput on the commit before the vectorization PR
# (best of 2 per generator on the parameters above; the aggregate is
# accesses-weighted: total accesses / sum of per-generator times).
# Fixed reference points, not re-measured.
TRACEGEN_PRE_PR = {
    "full": {
        "ocean": 20499485.6, "lu": 13745925.8, "fft": 41650367.5,
        "radix": 47375466.0, "water": 743219.5, "barnes": 182520.4,
        "raytrace": 115924.6, "_aggregate": 1712509.2,
    },
    "smoke": {
        "ocean": 7379811.9, "lu": 3563818.2, "fft": 11840623.4,
        "radix": 17271433.5, "water": 547563.3, "barnes": 197400.2,
        "raytrace": 196367.4, "_aggregate": 937537.2,
    },
}


def _base_spec() -> ExperimentSpec:
    """Shared base for every sweep point; points overlay workload/scheme."""
    return ExperimentSpec(
        machine=MachineSpec(name="analytical", cores=CORES, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )


def _points(mode: str) -> list[dict]:
    """(workload x scheme) grid as partial-spec overlays."""
    pts = []
    for workload in sorted(WORKLOAD_PARAMS[mode]):
        params = dict(WORKLOAD_PARAMS[mode][workload])
        name = params.pop("name")
        for scheme in SCHEMES[mode]:
            pts.append(
                {"workload": {"name": name, "params": params}, "scheme": scheme}
            )
    return pts


def _throughput_built(mode: str, which: str, machine: str):
    """Build (never run) the throughput spec's live pieces via the
    registry path; the bench times the machine's run() alone."""
    params = dict(THROUGHPUT_PARAMS[mode][which])
    name = params.pop("name")
    spec = ExperimentSpec(
        workload=WorkloadSpec(name=name, params=params),
        machine=MachineSpec(name=machine, cores=CORES, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )
    return build(spec)


def _bench_machine(mode: str, repeats: int, which: str = "machine",
                   fast_path: bool = False) -> dict:
    from repro.core.em2 import EM2Machine

    built = _throughput_built(mode, which, "em2")
    trace = built.trace
    best = 0.0
    for _ in range(repeats):
        m = EM2Machine(trace, built.placement, built.config, fast_path=fast_path)
        t0 = time.perf_counter()
        m.run()
        best = max(best, trace.total_accesses / (time.perf_counter() - t0))
    return {"accesses": trace.total_accesses, "accesses_per_sec": best}


def _bench_cc(mode: str, repeats: int, which: str = "cc",
              fast_path: bool = False) -> dict:
    from repro.coherence.simulator import DirectoryCCSimulator

    built = _throughput_built(mode, which, "cc-msi")
    trace = built.trace
    best = 0.0
    for _ in range(repeats):
        sim = DirectoryCCSimulator(trace, built.placement, built.config,
                                   fast_path=fast_path)
        t0 = time.perf_counter()
        sim.run()
        best = max(best, trace.total_accesses / (time.perf_counter() - t0))
    return {"accesses": trace.total_accesses, "accesses_per_sec": best}


def golden_parity() -> bool:
    """Recompute every golden scenario and compare against the committed
    fixture — the gate that makes a throughput number trustworthy: fast
    but wrong is a fail, not a win."""
    bench_dir = Path(__file__).resolve().parent
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    import make_golden_fixtures as golden

    committed = json.loads(golden.FIXTURE_PATH.read_text())
    return golden.scenario_results() == committed


def fastpath_golden_parity(family: str) -> bool:
    """Bit-parity of the epoch-batched fast path for one machine family.

    Re-runs every golden scenario of the family twice — fast path forced
    on and forced off — and requires both to equal the committed fixture.
    The fixtures were recorded on the pure event-driven path, so this is
    the tentpole's non-negotiable contract: the fast path may only be
    fast, never different. ``family`` is ``"machine"`` (the migration
    machines) or ``"cc"`` (the directory-coherence simulators).
    """
    bench_dir = Path(__file__).resolve().parent
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    import make_golden_fixtures as golden

    from repro.runner import run
    from repro.spec import ExperimentSpec

    committed = json.loads(golden.FIXTURE_PATH.read_text())
    for key, spec_dict in golden.scenario_specs().items():
        name = spec_dict["machine"]["name"]
        if (name.startswith("cc")) != (family == "cc"):
            continue
        for fast in (True, False):
            sd = json.loads(json.dumps(spec_dict))
            sd["machine"]["fast_path"] = fast
            res = run(ExperimentSpec.from_dict(sd))
            res.pop("fast_path", None)  # diagnostics, not simulated outcome
            if res != committed[key]:
                return False
    return True


#: results() keys that exist only when a fault plane is attached — the
#: recovery ledger, stripped before comparing against the (fault-free)
#: golden fixture.
FAULT_RESULT_KEYS = (
    "retries",
    "drops_survived",
    "dup_ignored",
    "recovery_stall_cycles",
)


def fault_zero_golden_parity() -> bool:
    """Run every golden scenario with a quiet fault plane attached (an
    injector at all-zero rates) and compare against the committed
    fixture after stripping the fault-only ledger keys — the proof that
    an *idle* fault plane is observationally free on every machine, not
    just absent."""
    bench_dir = Path(__file__).resolve().parent
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    import make_golden_fixtures as golden

    from repro.runner import run
    from repro.spec import ExperimentSpec

    committed = json.loads(golden.FIXTURE_PATH.read_text())
    for key, spec_dict in golden.scenario_specs().items():
        spec_dict = dict(spec_dict)
        spec_dict["faults"] = {"name": "iid", "params": {}, "seed": 0}
        res = run(ExperimentSpec.from_dict(spec_dict))
        stripped = {
            k: v
            for k, v in res.items()
            if k not in FAULT_RESULT_KEYS
            and k != "fast_path"  # diagnostics, not simulated outcome
            and not k.startswith("faults.")
        }
        if stripped != committed[key]:
            return False
    return True


def tracegen_golden_parity() -> bool:
    """Regenerate every golden-trace scenario and compare SHA-256
    digests against the committed fixture — the bit-identity contract
    of the generator vectorization (same gate as
    ``tests/unit/test_golden_traces.py``, run here so a fast-but-drifted
    generator can never post a throughput win)."""
    bench_dir = Path(__file__).resolve().parent
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    import make_golden_traces as golden

    committed = json.loads(golden.FIXTURE_PATH.read_text())
    return golden.scenario_digests() == committed


def run_tracegen(mode: str = "full", repeats: int = 2) -> dict:
    """Trace-generation throughput per generator plus the parity gate.

    Per generator: best-of-``repeats`` accesses/second. The aggregate is
    accesses-weighted (total accesses / total best-run time), matching
    how the pre-PR baseline was measured — loop-bound generators like
    barnes/water dominate it, exactly the ones vectorization targets.
    """
    per_gen = {}
    total_acc = 0.0
    total_time = 0.0
    for name, params in TRACEGEN_PARAMS[mode].items():
        best = 0.0
        acc = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            mt = WORKLOADS.get(name)(seed=0, **params).generate()
            dt = time.perf_counter() - t0
            acc = mt.total_accesses
            best = max(best, acc / dt)
        per_gen[name] = best
        total_acc += acc
        total_time += acc / best
    aggregate = total_acc / total_time
    base = TRACEGEN_PRE_PR[mode]
    return {
        "tracegen_accesses_per_sec": aggregate,
        "tracegen_speedup_vs_pre_pr": aggregate / base["_aggregate"],
        "tracegen_per_generator": per_gen,
        "tracegen_per_generator_speedup": {
            name: per_gen[name] / base[name] for name in per_gen
        },
        "tracegen_pre_pr_baseline": base,
        "tracegen_golden_parity": tracegen_golden_parity(),
    }


def run_trace_store(mode: str, base: ExperimentSpec, points: list[dict]) -> dict:
    """Warm-trace-cache sweep: the same sweep serially, first against an
    empty on-disk trace store (cold: generate + persist), then again in
    a fresh "process" (memo cleared) so every trace loads from disk."""
    store_dir = tempfile.mkdtemp(prefix="bench_perf_traces_")
    out: dict = {}
    try:
        store = TraceStore(store_dir)
        set_trace_store(store)

        clear_build_memo()
        t0 = time.perf_counter()
        rows_cold = sweep_specs(base, points, workers=1, share_traces=False)
        out["trace_store_cold_seconds"] = time.perf_counter() - t0
        out["trace_store_cold_stats"] = store.stats()

        store.hits = store.misses = 0
        clear_build_memo()  # simulate a fresh process: disk is the only cache
        t0 = time.perf_counter()
        rows_warm = sweep_specs(base, points, workers=1, share_traces=False)
        out["trace_store_warm_seconds"] = time.perf_counter() - t0
        out["trace_store_warm_stats"] = store.stats()
        out["trace_store_warm_speedup"] = (
            out["trace_store_cold_seconds"] / out["trace_store_warm_seconds"]
        )
        out["trace_store_rows_identical"] = rows_warm == rows_cold
    finally:
        set_trace_store(None)
        clear_build_memo()
        shutil.rmtree(store_dir, ignore_errors=True)
    return out


def _committed_baseline() -> tuple[dict, str | None]:
    """Per-metric ``key -> (value, mode)`` from the committed baseline.

    The baseline records each metric as ``{"value", "mode",
    "cpu_count"}`` so a smoke-mode CI run is never hard-compared against
    a full-mode number (the regression noise ISSUE 7 fixes); bare
    scalars from older baselines inherit the file-level ``mode``.
    """
    try:
        data = json.loads(COMMITTED_BASELINE_PATH.read_text())
    except (OSError, ValueError):
        return {}, None
    file_mode = data.get("mode")

    def entry(e):
        if isinstance(e, dict):
            return float(e.get("value", 0.0)), e.get("mode", file_mode)
        return float(e), file_mode

    metrics = {}
    for key, raw in dict(data.get("metrics", {})).items():
        if isinstance(raw, list):
            # multi-mode floors (one entry per mode, e.g. the scaling_*
            # smoke + full pair): keep them all; consumers pick the
            # entry recorded in their own mode
            metrics[key] = [entry(e) for e in raw]
        else:
            metrics[key] = entry(raw)
    return metrics, file_mode


FARM_SEEDS = {"smoke": 4, "full": 8}


def _farm_grid(mode: str) -> tuple[ExperimentSpec, list[dict]]:
    """Generation-heavy grid for the farm benchmark.

    ``hotspot`` generation costs ~20x its analytical evaluation, so the
    grid isolates what the farm actually ships: each distinct seed is a
    distinct trace the coordinator builds once and pushes by reference,
    while the serial reference pays generation per seed from a cold
    memo. Two schemes per seed exercise trace reuse across points (the
    digest must move to a worker at most once).
    """
    base = ExperimentSpec(
        machine=MachineSpec(name="analytical", cores=8, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )
    points = [
        {
            "workload": {
                "name": "hotspot",
                "params": {
                    "num_threads": 8,
                    "accesses_per_thread": 2048,
                    "seed": seed,
                },
            },
            "scheme": scheme,
        }
        for seed in range(FARM_SEEDS[mode])
        for scheme in ("never-migrate", "history")
    ]
    return base, points


def run_farm(mode: str, num_workers: int = 2) -> dict:
    """Distributed-farm sweep over loopback ``repro worker`` processes.

    Spawns ``num_workers`` workers on ephemeral ports and runs a
    generation-heavy grid (see :func:`_farm_grid`) twice: serially from
    a cold build memo, then through the socket coordinator (traces
    pushed by reference, pull-based work stealing). The timing is gated
    on bit-identity with the serial rows. On a 1-core host the farm's
    win is the same one the parallel/warm numbers report: the
    coordinator ships each trace once instead of every evaluation
    paying generation.
    """
    import subprocess

    base, points = _farm_grid(mode)
    out: dict = {"farm_workers": 0, "farm_points": len(points)}
    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    procs: list = []
    addrs: list[str] = []
    try:
        for _ in range(num_workers):
            p = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                text=True,
            )
            procs.append(p)
            line = (p.stdout.readline() or "").strip()
            if line.startswith("repro worker listening on "):
                addrs.append(line.rsplit(" ", 1)[-1])
        out["farm_workers"] = len(addrs)
        if not addrs:
            out["farm_rows_identical"] = False
            return out
        clear_build_memo()  # the serial reference pays full generation
        t0 = time.perf_counter()
        rows_serial = sweep_specs(base, points, workers=1)
        out["farm_serial_seconds"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        rows_farm = sweep_specs(base, points, farm=addrs)
        out["farm_seconds"] = time.perf_counter() - t0
        out["farm_points_per_sec"] = len(points) / out["farm_seconds"]
        out["farm_speedup_vs_serial"] = (
            out["farm_serial_seconds"] / out["farm_seconds"]
        )
        out["farm_rows_identical"] = rows_farm == canonical_rows(rows_serial)
    finally:
        for p in procs:
            p.terminate()
        for p in procs:
            try:
                p.wait(timeout=5)
            except subprocess.TimeoutExpired:
                p.kill()
    return out


# sweeps through the chaos proxy per mode; one sweep is enough for the
# smoke gate, two additionally pin digest stability across schedules
CHAOS_SWEEPS = {"full": 2, "smoke": 1}


def run_chaos(mode: str, num_workers: int = 2) -> dict:
    """Farm sweep under the seeded host-chaos proxy (ISSUE 10).

    Embedded workers behind :class:`~repro.analysis.chaos.ChaosProxy`
    with nonzero reset/partial/stall/partition rates; the throughput
    number only counts if every sweep's rows are bit-identical to the
    clean serial reference and the schedule digest re-derives, so a
    regression here means the recovery path (reconnect, requeue,
    hedging) got slower or broke — not that chaos "won".
    """
    from repro.analysis.chaos import ChaosSpec, chaos_soak
    from repro.registry import SCHEMES as SCHEME_REGISTRY
    from repro.runner import merge_spec

    base = ExperimentSpec(
        workload=WorkloadSpec(
            name="pingpong", params={"num_threads": 4, "rounds": 16}
        ),
        machine=MachineSpec(name="analytical", cores=4, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )
    spec_dicts = [
        merge_spec(base, {"scheme": s}).to_dict()
        for s in sorted(SCHEME_REGISTRY.names())
    ]
    chaos = ChaosSpec(
        seed=11,
        reset_rate=0.10,
        partial_rate=0.10,
        stall_rate=0.15,
        partition_rate=0.05,
        trigger_span=1500,
        max_events_per_conn=6,
    )
    summary = chaos_soak(
        spec_dicts,
        chaos,
        workers=num_workers,
        sweeps=CHAOS_SWEEPS[mode],
        heartbeat=0.25,
        liveness=2.0,
    )
    sweeps = summary["sweeps"]
    applied: dict[str, int] = {}
    for s in sweeps:
        for name, n in s["applied"].items():
            applied[name] = applied.get(name, 0) + n
    return {
        "farm_chaos_points": summary["points"],
        "farm_chaos_sweeps": len(sweeps),
        "farm_chaos_rows_identical": summary["rows_identical"],
        "farm_chaos_digest_stable": summary["digest_stable"],
        "farm_chaos_schedule_digest": summary["schedule_digest"],
        "farm_chaos_points_per_sec": min(s["points_per_sec"] for s in sweeps),
        "farm_chaos_applied": applied,
        "farm_chaos_reconnects": sum(s["reconnects"] for s in sweeps),
        "farm_chaos_requeues": sum(s["requeues"] for s in sweeps),
        "farm_chaos_hedges": sum(s["hedges"] for s in sweeps),
    }


def run_throughput(mode: str = "full", repeats: int = 3) -> dict:
    """Throughput section of the report.

    Event-driven metrics (``machine``/``cc``) run with the fast path
    pinned off; fastpath metrics run the ``*_fast`` regime with the
    epoch stepper on. Speedups are reported against both the frozen
    PRE_PR_BASELINE and the previous committed baseline, and the
    fastpath numbers are only trusted alongside their bit-parity gates.
    """
    machine = _bench_machine(mode, repeats)
    cc = _bench_cc(mode, repeats)
    machine_fast = _bench_machine(mode, repeats, which="machine_fast",
                                  fast_path=True)
    cc_fast = _bench_cc(mode, repeats, which="cc_fast", fast_path=True)
    base = PRE_PR_BASELINE[mode]
    committed, committed_mode = _committed_baseline()
    report = {
        "machine_accesses": machine["accesses"],
        "machine_accesses_per_sec": machine["accesses_per_sec"],
        "machine_speedup_vs_pre_pr": machine["accesses_per_sec"] / base["machine"],
        "cc_accesses": cc["accesses"],
        "cc_accesses_per_sec": cc["accesses_per_sec"],
        "cc_speedup_vs_pre_pr": cc["accesses_per_sec"] / base["cc"],
        "machine_fastpath_accesses": machine_fast["accesses"],
        "machine_fastpath_accesses_per_sec": machine_fast["accesses_per_sec"],
        "cc_fastpath_accesses": cc_fast["accesses"],
        "cc_fastpath_accesses_per_sec": cc_fast["accesses_per_sec"],
        "pre_pr_baseline": base,
        "committed_baseline_mode": committed_mode,
        "golden_parity": golden_parity(),
        "fault_zero_golden_parity": fault_zero_golden_parity(),
        "machine_fastpath_golden_parity": fastpath_golden_parity("machine"),
        "cc_fastpath_golden_parity": fastpath_golden_parity("cc"),
    }
    # trajectory since the last committed baseline, strictly
    # like-for-like: each metric against its *own* baseline entry (the
    # old loop divided fastpath rates by event-driven baselines), and
    # only when that entry was recorded in the same mode
    for rep_key in (
        "machine_speedup_vs_baseline",
        "cc_speedup_vs_baseline",
        "machine_fastpath_speedup_vs_baseline",
        "cc_fastpath_speedup_vs_baseline",
    ):
        metric = rep_key.replace("_speedup_vs_baseline", "_accesses_per_sec")
        found = committed.get(metric, (0.0, None))
        if isinstance(found, list):
            found = next((e for e in found if e[1] == mode), found[0])
        bval, bmode = found
        if bval > 0 and bmode in (None, mode):
            report[rep_key] = report[metric] / bval
    return report


def run_harness(mode: str = "full", workers: int = 4, cache_dir: str | None = None) -> dict:
    base = _base_spec()
    points = _points(mode)
    effective = effective_workers(workers)
    report: dict = {
        "mode": mode,
        "workers": effective,
        "workers_requested": workers,
        "workers_effective": effective,
        "points": len(points),
        "cpu_count": os.cpu_count(),
    }

    clear_build_memo()  # the serial run pays full generation cost
    t0 = time.perf_counter()
    rows_serial = sweep_specs(base, points, workers=1)
    report["serial_seconds"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    rows_parallel = sweep_specs(base, points, workers=workers)
    report["parallel_seconds"] = time.perf_counter() - t0
    report["parallel_speedup"] = report["serial_seconds"] / report["parallel_seconds"]
    report["parallel_rows_identical"] = rows_parallel == rows_serial

    own_tmp = cache_dir is None
    if own_tmp:
        cache_dir = tempfile.mkdtemp(prefix="bench_perf_cache_")
    try:
        cold = ResultCache(cache_dir)
        cold.clear()
        t0 = time.perf_counter()
        rows_cold = sweep_specs(base, points, workers=workers, cache=cold)
        report["cold_cache_seconds"] = time.perf_counter() - t0
        report["cold_cache_stats"] = cold.stats()

        warm = ResultCache(cache_dir)
        t0 = time.perf_counter()
        rows_warm = sweep_specs(base, points, workers=workers, cache=warm)
        report["warm_cache_seconds"] = time.perf_counter() - t0
        report["warm_cache_stats"] = warm.stats()
        total = warm.hits + warm.misses
        report["warm_skip_fraction"] = warm.hits / total if total else 0.0
        report["warm_speedup_vs_serial"] = (
            report["serial_seconds"] / report["warm_cache_seconds"]
        )
        canon = canonical_rows(rows_serial)
        report["cold_rows_identical"] = rows_cold == canon
        report["warm_rows_identical"] = rows_warm == canon
    finally:
        if own_tmp:
            shutil.rmtree(cache_dir, ignore_errors=True)

    report.update(run_trace_store(mode, base, points))
    report.update(run_farm(mode))
    report.update(run_chaos(mode))
    return report


# ---------------------------------------------------------------- pytest
def test_perf_smoke():
    """Smoke configuration: correctness of the four paths, not speed."""
    report = run_harness(mode="smoke", workers=2)
    assert report["parallel_rows_identical"]
    assert report["cold_rows_identical"]
    assert report["warm_rows_identical"]
    assert report["warm_skip_fraction"] >= 0.9
    assert report["cold_cache_stats"]["hits"] == 0
    assert report["workers_effective"] <= (os.cpu_count() or 1)
    assert report["trace_store_rows_identical"]
    assert report["trace_store_cold_stats"]["hits"] == 0
    assert report["trace_store_warm_stats"]["misses"] == 0


def test_throughput_smoke():
    """Throughput section runs and the parity gate holds (no speed
    assertion here — CI hardware varies; speed is judged by the
    regression-diff step against the committed baseline)."""
    report = run_throughput(mode="smoke", repeats=1)
    assert report["golden_parity"]
    assert report["fault_zero_golden_parity"]
    assert report["machine_fastpath_golden_parity"]
    assert report["cc_fastpath_golden_parity"]
    assert report["machine_accesses_per_sec"] > 0
    assert report["cc_accesses_per_sec"] > 0
    assert report["machine_fastpath_accesses_per_sec"] > 0
    assert report["cc_fastpath_accesses_per_sec"] > 0


def test_chaos_smoke():
    """Chaos section runs and both hard gates hold (bit-identity under
    injected faults, spec-pure schedule digest)."""
    report = run_chaos(mode="smoke")
    assert report["farm_chaos_rows_identical"]
    assert report["farm_chaos_digest_stable"]
    assert report["farm_chaos_points_per_sec"] > 0
    assert len(report["farm_chaos_schedule_digest"]) == 64


def test_tracegen_smoke():
    """Generation throughput runs and the bit-identity gate holds."""
    report = run_tracegen(mode="smoke", repeats=1)
    assert report["tracegen_golden_parity"]
    assert report["tracegen_accesses_per_sec"] > 0
    assert set(report["tracegen_per_generator"]) == set(TRACEGEN_PARAMS["smoke"])


# ---------------------------------------------------------------- script
def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small fast configuration")
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--cache-dir", default=None,
                    help="cache dir to use (default: fresh tempdir; cleared "
                         "at start so the cold run is genuinely cold)")
    ap.add_argument("--out", default=None,
                    help="report path (default: <repo>/BENCH_perf.json)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="throughput repetitions per simulator (best-of)")
    ap.add_argument("--profile", nargs="?", type=int, const=25, default=None,
                    metavar="N",
                    help="profile the throughput section under cProfile and "
                         "print the top N functions (default 25)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run_harness(mode=mode, workers=args.workers, cache_dir=args.cache_dir)

    if args.profile is not None:
        from repro.cli import run_profiled

        throughput = run_profiled(
            lambda: run_throughput(mode=mode, repeats=args.repeats), args.profile
        )
    else:
        throughput = run_throughput(mode=mode, repeats=args.repeats)
    report.update(throughput)
    report.update(run_tracegen(mode=mode, repeats=max(args.repeats // 2, 1)))

    out = Path(args.out) if args.out else Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    ok = (
        report["parallel_rows_identical"]
        and report["cold_rows_identical"]
        and report["warm_rows_identical"]
        and report["trace_store_rows_identical"]
        and report["farm_rows_identical"]
        and report["farm_chaos_rows_identical"]
        and report["farm_chaos_digest_stable"]
        and report["warm_skip_fraction"] >= 0.9
        and report["golden_parity"]
        and report["fault_zero_golden_parity"]
        and report["machine_fastpath_golden_parity"]
        and report["cc_fastpath_golden_parity"]
        and report["tracegen_golden_parity"]
    )
    print(
        f"\nserial {report['serial_seconds']:.2f}s | "
        f"parallel({report['workers_effective']} of {args.workers} requested) "
        f"{report['parallel_seconds']:.2f}s "
        f"({report['parallel_speedup']:.2f}x) | "
        f"warm cache {report['warm_cache_seconds']:.2f}s "
        f"(skips {report['warm_skip_fraction']:.0%} of evaluations) | "
        f"rows identical: {ok}"
    )
    print(
        f"machine {report['machine_accesses_per_sec']:.0f} acc/s "
        f"({report['machine_speedup_vs_pre_pr']:.2f}x pre-PR) | "
        f"cc {report['cc_accesses_per_sec']:.0f} acc/s "
        f"({report['cc_speedup_vs_pre_pr']:.2f}x pre-PR) | "
        f"golden parity: {report['golden_parity']} | "
        f"fault-zero parity: {report['fault_zero_golden_parity']}"
    )
    print(
        f"fastpath machine {report['machine_fastpath_accesses_per_sec']:.0f} acc/s "
        f"({report.get('machine_fastpath_speedup_vs_baseline', float('nan')):.2f}x "
        f"committed baseline) | "
        f"fastpath cc {report['cc_fastpath_accesses_per_sec']:.0f} acc/s "
        f"({report.get('cc_fastpath_speedup_vs_baseline', float('nan')):.2f}x "
        f"committed baseline) | "
        f"fastpath parity: machine {report['machine_fastpath_golden_parity']} "
        f"cc {report['cc_fastpath_golden_parity']}"
    )
    print(
        f"farm({report['farm_workers']} workers) "
        f"{report.get('farm_seconds', float('nan')):.2f}s "
        f"({report.get('farm_speedup_vs_serial', float('nan')):.2f}x vs serial, "
        f"{report.get('farm_points_per_sec', float('nan')):.1f} points/s) | "
        f"farm rows identical: {report['farm_rows_identical']}"
    )
    print(
        f"chaos({report['farm_chaos_sweeps']} sweep(s)) "
        f"{report['farm_chaos_points_per_sec']:.1f} points/s | "
        f"applied {report['farm_chaos_applied']} | "
        f"reconnects {report['farm_chaos_reconnects']} | "
        f"rows identical: {report['farm_chaos_rows_identical']} | "
        f"digest stable: {report['farm_chaos_digest_stable']}"
    )
    print(
        f"tracegen {report['tracegen_accesses_per_sec']:.0f} acc/s "
        f"({report['tracegen_speedup_vs_pre_pr']:.2f}x pre-PR) | "
        f"trace store warm {report['trace_store_warm_seconds']:.2f}s "
        f"({report['trace_store_warm_speedup']:.2f}x vs cold) | "
        f"trace parity: {report['tracegen_golden_parity']}"
    )
    if not ok:
        print(
            "FAIL: row mismatch, warm cache skipped < 90%, or a golden "
            "parity gate (results or traces) broken",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
