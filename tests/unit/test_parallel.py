"""Unit tests for the process-parallel sweep executor.

The load-bearing property is ISSUE 1's equivalence guarantee: a sweep
run with ``workers=4`` must produce the *identical* row list — values,
types, and ordering — as ``workers=1``, and a worker failure must
surface in the parent naming the sweep point that caused it.

Callbacks used in the pool tests live at module level: closures do not
pickle, and an unpicklable callback (deliberately) degrades to the
serial path, which would make the parallel tests vacuous.
"""

import os
import pickle
import time

import pytest

from repro.analysis.parallel import (
    POOL_MIN_POINTS,
    SweepPointError,
    default_workers,
    effective_workers,
    merge_row,
    parallel_sweep,
    shutdown_pool,
)
from repro.analysis.sweep import grid
from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import AlwaysMigrate, HistoryRunLength
from repro.core.evaluation import evaluate_scheme
from repro.placement import first_touch
from repro.trace.synthetic import make_workload
from repro.util.errors import ConfigError

_WORKLOADS = {
    "pingpong": dict(name="pingpong", num_threads=4, rounds=16, run=4),
    "uniform": dict(name="uniform", num_threads=4, accesses_per_thread=64),
}


def _make_scheme(name):
    if name == "always":
        return AlwaysMigrate()
    return HistoryRunLength(threshold=3.0)


def _eval_real_point(workload, scheme):
    """A real evaluation: trace generation + scheme walk, per point."""
    params = dict(_WORKLOADS[workload])
    trace = make_workload(params.pop("name"), **params)
    placement = first_touch(trace, 4)
    cm = CostModel(small_test_config(num_cores=4))
    metrics = evaluate_scheme(trace, placement, _make_scheme(scheme), cm).as_dict()
    metrics.pop("scheme")  # would collide with the point's 'scheme' key
    return metrics


def _ident(x):
    return {"y": x}


def _boom(x):
    if x == 3:
        raise ValueError("x exploded")
    return {"y": x}


def _collide(x):
    return {"x": x}


class _Unpicklable(Exception):
    def __init__(self, handle):
        super().__init__("holds a live handle")
        self.handle = handle


def _boom_unpicklable(x):
    raise _Unpicklable(handle=lambda: None)


class TestParallelMatchesSerial:
    def test_rows_identical_schemes_x_workloads(self):
        """2 schemes x 2 workloads: workers=4 rows == workers=1 rows,
        including value types (pickle round trips preserve numpy)."""
        points = grid(workload=sorted(_WORKLOADS), scheme=["always", "history"])
        serial = parallel_sweep(points, _eval_real_point, workers=1)
        par = parallel_sweep(points, _eval_real_point, workers=4)
        assert par == serial
        for a, b in zip(serial, par):
            assert list(a) == list(b)  # key order too
            assert {k: type(v) for k, v in a.items()} == {
                k: type(v) for k, v in b.items()
            }
        assert repr(par) == repr(serial)

    def test_ordering_with_explicit_chunks(self):
        points = grid(x=list(range(13)))
        rows = parallel_sweep(points, _ident, workers=3, chunk=2)
        assert [r["x"] for r in rows] == list(range(13))

    def test_single_point_and_empty(self):
        assert parallel_sweep([{"x": 9}], _ident, workers=4) == [{"x": 9, "y": 9}]
        assert parallel_sweep([], _ident, workers=4) == []


class TestFailureAttribution:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_exception_carries_failing_point(self, workers):
        with pytest.raises(SweepPointError) as ei:
            parallel_sweep(grid(x=[1, 2, 3, 4]), _boom, workers=workers)
        assert ei.value.point == {"x": 3}
        assert "x exploded" in str(ei.value)

    def test_unpicklable_exception_still_attributed(self):
        with pytest.raises(SweepPointError) as ei:
            parallel_sweep(grid(x=[1]), _boom_unpicklable, workers=1)
        assert ei.value.point == {"x": 1}

    def test_sweep_point_error_survives_pickling(self):
        err = SweepPointError("boom", point={"x": 3})
        clone = pickle.loads(pickle.dumps(err))
        assert clone.point == {"x": 3}

    @pytest.mark.parametrize("workers", [1, 2])
    def test_metric_key_collision_is_config_error(self, workers):
        with pytest.raises(ConfigError, match="'x'"):
            parallel_sweep(grid(x=[1, 2]), _collide, workers=workers)


class TestDegradation:
    def test_unpicklable_callback_falls_back_to_serial(self):
        calls = []

        def fn(x):  # closure: unpicklable, must run in-process
            calls.append(x)
            return {"y": x * 2}

        rows = parallel_sweep(grid(x=[1, 2, 3]), fn, workers=4)
        assert rows == [{"x": 1, "y": 2}, {"x": 2, "y": 4}, {"x": 3, "y": 6}]
        assert calls == [1, 2, 3]

    def test_workers_none_uses_cpu_count(self):
        assert default_workers() >= 1
        rows = parallel_sweep(grid(x=[1, 2]), _ident, workers=None)
        assert [r["x"] for r in rows] == [1, 2]

    def test_bad_workers_and_chunk_rejected(self):
        with pytest.raises(ConfigError):
            parallel_sweep(grid(x=[1]), _ident, workers=0)
        with pytest.raises(ConfigError):
            parallel_sweep(grid(x=[1, 2]), _ident, workers=2, chunk=0)


class TestScheduling:
    def test_effective_workers_clamps_to_cpu_count(self, monkeypatch):
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        assert effective_workers(8) == 2
        assert effective_workers(1) == 1
        assert effective_workers(None) == 2

    def test_effective_workers_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            effective_workers(0)

    def test_small_sweeps_skip_the_pool(self, monkeypatch):
        """Below POOL_MIN_POINTS the pool must not even be created —
        startup costs more than the points."""
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 4)
        created = []
        real_get = par._get_pool
        monkeypatch.setattr(
            par, "_get_pool", lambda n: created.append(n) or real_get(n)
        )
        points = grid(x=list(range(POOL_MIN_POINTS - 1)))
        rows = parallel_sweep(points, _ident, workers=4)
        assert [r["x"] for r in rows] == list(range(POOL_MIN_POINTS - 1))
        assert created == []

    def test_pool_is_reused_across_sweeps(self, monkeypatch):
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        shutdown_pool()
        points = grid(x=list(range(8)))
        parallel_sweep(points, _ident, workers=2)
        first = par._pool
        assert first is not None
        parallel_sweep(points, _ident, workers=2)
        assert par._pool is first
        shutdown_pool()
        assert par._pool is None


def _sleepy(x):
    if x == 2:
        time.sleep(60)
    return {"y": x}


def _worker_suicide(x):
    """Dies instantly in any pool worker; evaluates fine in-process."""
    import multiprocessing

    if multiprocessing.current_process().name != "MainProcess":
        os._exit(1)
    return {"y": x}


class TestHardening:
    @pytest.fixture(autouse=True)
    def _two_workers(self, monkeypatch):
        """Force the pool path: 1-CPU hosts clamp workers to 1 and these
        tests would silently exercise the serial loop instead."""
        import repro.analysis.parallel as par

        monkeypatch.setattr(par, "default_workers", lambda: 2)
        shutdown_pool()
        yield
        shutdown_pool()

    def test_point_timeout_kills_hung_worker(self):
        """A point that never returns must surface as SweepPointError
        naming that point within ~point_timeout, not hang the sweep."""
        points = grid(x=list(range(6)))
        t0 = time.perf_counter()
        with pytest.raises(SweepPointError, match="point_timeout") as ei:
            parallel_sweep(points, _sleepy, workers=2, point_timeout=1.0)
        assert ei.value.point == {"x": 2}
        assert time.perf_counter() - t0 < 30  # far below the 60s sleep
        # the broken pool was disposed; the next sweep gets a fresh one
        rows = parallel_sweep(grid(x=list(range(6))), _ident, workers=2)
        assert [r["y"] for r in rows] == list(range(6))

    def test_point_timeout_defaults_chunk_to_one(self):
        """With a timeout, every chunk is a single point so the error
        attributes exactly (no innocent chunk-mates blamed)."""
        points = grid(x=list(range(12)))
        rows = parallel_sweep(points, _ident, workers=2, point_timeout=30.0)
        assert [r["y"] for r in rows] == list(range(12))

    def test_point_timeout_validation(self):
        with pytest.raises(ConfigError, match="point_timeout"):
            parallel_sweep(grid(x=[0, 1, 2, 3]), _ident, workers=2, point_timeout=0)

    def test_persistently_broken_pool_finishes_serially(self):
        """Workers that die on arrival break the pool; after one fresh
        retry the sweep must complete in-process, never raise or hang."""
        points = grid(x=list(range(8)))
        rows = parallel_sweep(points, _worker_suicide, workers=2)
        assert [r["y"] for r in rows] == list(range(8))


class TestMergeRow:
    def test_merges_and_preserves_point_order(self):
        row = merge_row({"a": 1, "b": 2}, {"c": 3})
        assert row == {"a": 1, "b": 2, "c": 3}
        assert list(row) == ["a", "b", "c"]

    def test_collision_names_key(self):
        with pytest.raises(ConfigError, match="'b'"):
            merge_row({"a": 1, "b": 2}, {"b": 9})
