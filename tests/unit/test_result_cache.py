"""Unit tests for the content-addressed sweep result cache.

(`test_cache.py` covers the architectural data cache; this file covers
`repro.analysis.cache`, the on-disk memoization layer for sweeps.)
"""

import numpy as np
import pytest

from repro.analysis.cache import (
    ResultCache,
    canonical_rows,
    code_salt,
    stable_key,
)
from repro.analysis.sweep import grid, sweep
from repro.arch.config import small_test_config
from repro.util.errors import ConfigError

CALLS = {"n": 0}


def _counted(x):
    CALLS["n"] += 1
    return {"y": x * 2, "f": np.float64(x) / 4}


class TestStableKey:
    def test_dict_order_insensitive(self):
        assert stable_key({"a": 1, "b": 2}) == stable_key({"b": 2, "a": 1})

    def test_numpy_scalars_canonicalize(self):
        assert stable_key({"x": np.int64(3)}) == stable_key({"x": 3})
        assert stable_key([1.5]) == stable_key((np.float64(1.5),))

    def test_dataclass_configs_hash_by_content(self):
        a = stable_key(small_test_config(num_cores=4))
        b = stable_key(small_test_config(num_cores=4))
        c = stable_key(small_test_config(num_cores=8))
        assert a == b
        assert a != c

    def test_unrepresentable_object_rejected(self):
        with pytest.raises(ConfigError):
            stable_key({"fn": object()})

    def test_canonical_rows_are_plain_scalars(self):
        rows = canonical_rows([{"a": np.float64(1.5), "b": np.int32(2)}])
        assert rows == [{"a": 1.5, "b": 2}]
        assert type(rows[0]["a"]) is float
        assert type(rows[0]["b"]) is int


class TestRoundTrip:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        CALLS["n"] = 0
        points = grid(x=[1, 2, 3])
        cold = ResultCache(tmp_path)
        rows_cold = sweep(points, _counted, cache=cold)
        assert cold.hits == 0 and cold.misses == 3
        assert CALLS["n"] == 3

        warm = ResultCache(tmp_path)
        rows_warm = sweep(points, _counted, cache=warm)
        assert warm.hits == 3 and warm.misses == 0
        assert CALLS["n"] == 3  # every evaluation skipped
        assert rows_warm == rows_cold
        assert warm.stats()["hit_rate"] == 1.0

    def test_cached_rows_equal_uncached_after_canonicalization(self, tmp_path):
        points = grid(x=[4, 5])
        plain = sweep(points, _counted)
        cached = sweep(points, _counted, cache=ResultCache(tmp_path))
        assert cached == canonical_rows(plain)

    def test_partial_warm_recomputes_only_missing(self, tmp_path):
        CALLS["n"] = 0
        sweep(grid(x=[1, 2]), _counted, cache=ResultCache(tmp_path))
        c = ResultCache(tmp_path)
        rows = sweep(grid(x=[1, 2, 3]), _counted, cache=c)
        assert c.hits == 2 and c.misses == 1
        assert CALLS["n"] == 3  # 2 cold + only the new point
        assert [r["x"] for r in rows] == [1, 2, 3]


class TestInvalidation:
    def test_cost_config_changes_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key(point={"x": 1}, extra={"config": small_test_config(num_cores=4)})
        other = cache.key(point={"x": 1}, extra={"config": small_test_config(num_cores=8)})
        assert base != other

    def test_trace_seed_change_misses(self, tmp_path):
        CALLS["n"] = 0
        points = grid(x=[5])
        sweep(points, _counted, cache=ResultCache(tmp_path),
              cache_extra={"trace_seed": 1})
        c2 = ResultCache(tmp_path)
        sweep(points, _counted, cache=c2, cache_extra={"trace_seed": 2})
        assert c2.misses == 1 and c2.hits == 0
        assert CALLS["n"] == 2

    def test_salt_change_misses(self, tmp_path):
        a = ResultCache(tmp_path, salt="kernel-v1")
        a.put(a.key(point={"x": 1}), [{"y": 1}])
        assert a.get(a.key(point={"x": 1})) == [{"y": 1}]
        b = ResultCache(tmp_path, salt="kernel-v2")
        assert b.get(b.key(point={"x": 1})) is None

    def test_default_salt_includes_version_and_schema(self):
        salt = code_salt()
        assert "schema" in salt
        assert ResultCache("/tmp/unused-dir-not-created", enabled=False).salt == salt

    def test_clear_wipes_entries(self, tmp_path):
        c = ResultCache(tmp_path)
        c.put(c.key(point={"x": 1}), [{"y": 1}])
        c.put(c.key(point={"x": 2}), [{"y": 2}])
        assert len(c) == 2
        assert c.clear() == 2
        assert len(c) == 0
        assert c.get(c.key(point={"x": 1})) is None


class TestDisabled:
    def test_disabled_bypasses_reads_and_writes(self, tmp_path):
        warm = ResultCache(tmp_path)
        key = warm.key(point={"x": 1})
        warm.put(key, [{"y": 10}])

        off = ResultCache(tmp_path, enabled=False)
        assert off.get(key) is None  # entry exists on disk, still a miss
        assert off.misses == 1
        off.put(off.key(point={"x": 2}), [{"y": 20}])
        assert len(warm) == 1  # nothing new written

    def test_no_cache_sweep_reevaluates_every_run(self, tmp_path):
        CALLS["n"] = 0
        points = grid(x=[7])
        off = ResultCache(tmp_path / "off", enabled=False)
        sweep(points, _counted, cache=off)
        sweep(points, _counted, cache=off)
        assert CALLS["n"] == 2
        assert len(off) == 0
        assert off.stats()["enabled"] is False

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        c = ResultCache(tmp_path)
        key = c.key(point={"x": 1})
        (tmp_path / f"{key}.json").write_text("{not json")
        assert c.get(key) is None
        assert c.misses == 1
