"""Epoch-batched fast path for the detailed simulators.

Between the events where threads actually interact — migrations,
evictions, remote-access round trips, DRAM fills, admission stalls —
a thread's accesses are a pure function of its columnar trace slice
and its core's private cache state. The two drivers here exploit that:

* :class:`EpochStepper` — dispatched from
  :meth:`~repro.core.machine.MigrationMachineBase._step` when the
  fast path is on. When a step fires for a local access, the stepper
  *absorbs* every pending step event into a local merged walk and
  advances all resident threads in exact ``(time, seq)`` order without
  touching the engine heap, falling back to the event loop at the
  first boundary. Solo streaks inside the walk are advanced with the
  vectorized L1 kernel (:mod:`repro.arch.cache.batch`).

* :func:`run_cc_fast` — the coherence simulator's round-robin driver
  with (a) an epoch-validated lockstep window that batches whole
  rounds of pure hits through numpy when every live thread is inside
  a known hit run, and (b) an inlined miss path (precomputed per-pair
  message latency/flit tables, integer protocol states, no duplicate
  probes, no per-miss invariant re-checks).

Exactness contract (the reason this is a *fast path* and not a new
model): results are bit-identical to the event-driven/scalar drivers.
For the DES machines that holds by construction — the merged walk
only runs while every other pending event (the *hazard horizon*,
``Engine`` queue entries that are not plain step events) lies strictly
in the future, processes virtual events in the same ``(time, seq)``
order the heap would have, and re-materializes pending wake-ups in
ascending virtual-sequence order at a boundary, which preserves every
same-time tie the unbatched engine would break by sequence number.
Boundaries (non-local accesses, DRAM fills, finishes with stalled
waiters) re-enter the real event loop at the exact simulated time they
would have fired. The fault plane always disables the fast path, so
recovery protocols run purely event-driven.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.arch.cache.batch import (
    apply_hit_prefix,
    apply_hit_windows,
    frozen_hit_prefix,
    frozen_service_prefix,
)
from repro.coherence.msi import DirectoryEntry, DirState
from repro.sim.engine import Event

_INF = math.inf


class EpochStepper:
    """Merged-walk batch stepper for one :class:`MigrationMachineBase`."""

    #: minimum slack (cycles) below the cap before the numpy bulk path
    #: is attempted; short gaps are cheaper to walk scalar
    BULK_SLACK = 8.0
    #: lookahead bound per bulk classification
    CHUNK = 96
    #: lookahead bound per merged-jump classification (longer: the jump
    #: is capped by the horizon, not a co-resident thread's next wake)
    JCHUNK = 512
    #: adaptive bail-out: if a probe period of 64 windows averages fewer
    #: batched accesses per window than this, the trace is boundary-dense
    #: and the stepper permanently yields to the event-driven path
    MIN_YIELD = 16

    def __init__(self, machine) -> None:
        self.m = machine
        self.eng = machine.engine
        trace = machine.trace
        self.wb = machine.config.word_bytes
        l1 = machine.config.l1
        self._l1_shift = l1.line_bytes.bit_length() - 1
        self.hit_lat = float(l1.hit_latency)
        self.l2_lat = float(l1.hit_latency + machine.config.l2.hit_latency)
        # the widened (L2-service) streak classifier mirrors L1 victim
        # choice tag-by-tag, which is only exact under true LRU; PLRU
        # and random arrays (non-None _policies) keep the plain
        # hit-prefix batching
        self._widen = all(h.l1._policies is None for h in machine.caches)
        # cross-core window kernel: all per-core hit segments of one
        # merged jump scatter through the machine-wide L1 store in a
        # single call; needs store-backed true-LRU arrays (PLRU/random
        # machines keep per-core apply_hit_prefix)
        l1_0 = machine.caches[0].l1
        self._xstore = (
            l1_0._store if (self._widen and l1_0._store is not None) else None
        )
        # per-thread numpy columns for the vectorized runs (the plain
        # list columns stay on ThreadState for the scalar walk)
        self.lines_np = [
            (tr["addr"].astype(np.int64) * self.wb) >> self._l1_shift
            for tr in trace.threads
        ]
        self.homes_np = [np.asarray(h, dtype=np.int64) for h in machine._homes]
        self.ic_np = [tr["icount"].astype(np.float64) for tr in trace.threads]
        self.writes_np = [tr["write"] != 0 for tr in trace.threads]
        # plain-int line columns for the scalar walk (same-line memo test)
        self.lines_list = [a.tolist() for a in self.lines_np]
        # exact per-thread completion timelines: icounts and latencies
        # are integers, so prefix sums are exact and a window's slice
        # equals freshly accumulated step times bit-for-bit
        self.csum = [
            np.concatenate(([0.0], np.cumsum(ic + self.hit_lat)))
            for ic in self.ic_np
        ]
        # home_end[t][i]: end of the constant-home run containing i —
        # the merged jump never crosses a home change (a boundary)
        self.home_end = []
        for h in self.homes_np:
            n = len(h)
            if n == 0:
                self.home_end.append(np.zeros(0, dtype=np.int64))
                continue
            bounds = np.concatenate(
                (np.flatnonzero(h[1:] != h[:-1]) + 1, [n])
            )
            lens = np.diff(np.concatenate(([0], bounds)))
            self.home_end.append(np.repeat(bounds, lens))
        # memoized hit-prefix classification per thread: (core, snapshot
        # of l1.misses, prefix end index). Pure hits never change L1
        # presence, so a classification stays exact until the core's L1
        # takes a fill — which always bumps the miss counter.
        self._cls = [(-1, -1, 0)] * len(self.ic_np)
        # diagnostics (tests assert boundary detection through these)
        self.windows = 0
        self.batched_accesses = 0
        self.l2_fills_batched = 0
        self.window_max = 0
        self.xwindows = 0
        self.xwindow_cores_max = 0
        self.boundaries = {"nonlocal": 0, "dram": 0, "finish_wait": 0}
        # adaptive bail-out: on boundary-dense traces (a hazard every
        # few accesses) window management costs more than it saves, so
        # the stepper watches its own yield and turns itself off when
        # windows stay small — results are bit-identical either way
        self.disabled = False
        self._probe_mark = 0

    # ------------------------------------------------------------------
    def try_window(self, th) -> bool:
        """Open a merged walk at ``th``'s step if provably safe.

        Returns True when the step (and possibly many more) was fully
        handled; False to fall back to the event-driven slow path.
        """
        if self.disabled:
            return False
        i = th.idx
        if i >= th.size:
            return False
        core = th.core
        if th.homes[i] != core:
            return False  # non-local: the decision logic is a boundary
        m = self.m
        hier = m.caches[core]
        byte = th.addrs[i] * self.wb
        if hier.l1.probe(byte) is None and hier.l2.probe(byte) is None:
            return False  # opening access would fill from DRAM
        eng = self.eng
        now = eng.now
        # one scan of the engine queue: live step events are absorbable,
        # everything else (departures, deliveries, RA chains, timers) is
        # a hazard bounding the window horizon
        step_cb = m._step_cb
        horizon = _INF
        steps = None
        for when, _s, ev in eng._queue:
            if ev.cancelled:
                continue
            if ev.callback is step_cb:
                if steps is None:
                    steps = [(when, _s, ev)]
                else:
                    steps.append((when, _s, ev))
            elif when < horizon:
                horizon = when
        if horizon <= now:
            return False  # a hazard fires this instant: stay event-driven
        self.windows += 1
        if not self.windows & 63:
            recent = self.batched_accesses - self._probe_mark
            self._probe_mark = self.batched_accesses
            if recent < 64 * self.MIN_YIELD:
                self.disabled = True
        th.pending = None
        heap = [(now, -1, th)]
        if steps:
            for when, s, ev in steps:
                # absorb only wake-ups the window can actually reach;
                # steps at or past the horizon stay in the engine heap
                if when < horizon:
                    ev.cancel()
                    t2 = ev.args[0]
                    t2.pending = None
                    heap.append((when, s, t2))
            if len(heap) > 1:
                heapq.heapify(heap)
        return self._walk(heap, horizon)

    # ------------------------------------------------------------------
    def _note(self, batched: int) -> None:
        """Window-close bookkeeping: total and longest window."""
        self.batched_accesses += batched
        if batched > self.window_max:
            self.window_max = batched

    # ------------------------------------------------------------------
    def _walk(self, heap, horizon) -> bool:
        m = self.m
        pop, push = heapq.heappop, heapq.heappush
        vctr = self.eng._seq  # virtual seq: above every absorbed real seq
        hist = m._hist_run
        c_local = m._c_local
        caches = m.caches
        lines_list = self.lines_list
        hit_lat = self.hit_lat
        bulk_slack = self.BULK_SLACK
        parked = []  # wake-ups at/past the horizon: reified, never walked
        # merged pure-hit jump first: advances every thread through its
        # provably-hit prefix in a few vectorized steps, so the scalar
        # turn loop below only handles the boundary-adjacent residue
        heap, vctr, batched = self._joint(heap, parked, horizon, vctr,
                                          hist, c_local)
        heapq.heapify(heap)
        while heap:
            entry = pop(heap)
            u, _sq, t2 = entry
            top = heap[0][0] if heap else _INF
            cap = top if top < horizon else horizon
            i = t2.idx
            size = t2.size
            core = t2.core
            homes = t2.homes
            writes = t2.writes
            ics = t2.icounts
            lines = lines_list[t2.tid]
            hier = caches[core]
            l1 = hier.l1
            while True:
                if i >= size:
                    t2.idx = i
                    if m._waiting[core]:
                        # a stalled arrival is waiting on this context:
                        # admission ordering must run event-driven
                        self.boundaries["finish_wait"] += 1
                        self._note(batched)
                        self._close(heap, parked, t2, u)
                        return True
                    t2.done = True
                    t2.finish_time = u
                    m._flush_run(t2)
                    m.contexts[core].release(t2.tid)
                    break
                if homes[i] != core:
                    t2.idx = i
                    self.boundaries["nonlocal"] += 1
                    self._note(batched)
                    self._close(heap, parked, t2, u)
                    return True
                # inlined hierarchy same-line memo (the dominant case in
                # run-structured traces); everything else goes through
                # access_no_mem, whose None return is the DRAM boundary
                if lines[i] == hier._last_la:
                    l1.hits += 1
                    if writes[i]:
                        l1.dirty[hier._last_slot] = True
                    lat = hit_lat
                else:
                    res = hier.access_no_mem(t2.addrs[i] * self.wb, writes[i])
                    if res is None:
                        t2.idx = i
                        self.boundaries["dram"] += 1
                        self._note(batched)
                        self._close(heap, parked, t2, u)
                        return True
                    lat = res.latency
                # bookkeeping identical to the slow step's local branch
                if i != t2.last_recorded_idx:
                    t2.last_recorded_idx = i
                    if core == t2.run_home:
                        t2.run_len += 1
                    else:
                        if t2.run_home >= 0 and t2.run_home != t2.native:
                            hist.add(t2.run_len, weight=t2.run_len)
                        t2.run_home = core
                        t2.run_len = 1
                    c_local.n += 1
                w = u + ics[i] + lat
                i += 1
                batched += 1
                if i < size and cap - w > bulk_slack and homes[i] == core:
                    k, w = self._bulk(t2, i, core, hier, w, cap, hist, c_local)
                    i += k
                    batched += k
                if w >= cap:
                    t2.idx = i
                    if w >= horizon:
                        parked.append((w, vctr, t2))
                    else:
                        push(heap, (w, vctr, t2))
                    vctr += 1
                    break
                u = w
        # horizon (or quiescence) close: re-materialize pending wake-ups
        self._note(batched)
        self._reify(parked)
        return True

    # ------------------------------------------------------------------
    def _bulk(self, t2, i, core, hier, w, cap, hist, c_local):
        """Vectorized pure-L1-hit streak from index ``i``, first access
        executing at ``w``. Returns (count consumed, last completion)."""
        t = t2.tid
        homes_np = self.homes_np[t]
        stop = min(i + self.CHUNK, t2.size)
        seg_home = homes_np[i:stop]
        nonlocal_mask = seg_home != core
        if nonlocal_mask.any():
            nh = int(np.argmax(nonlocal_mask))
        else:
            nh = stop - i
        if nh == 0:
            return 0, w
        lines = self.lines_np[t][i : i + nh]
        run = frozen_hit_prefix(hier.l1, lines)
        fills: list[int] = []
        if self._widen and run < nh:
            # the hit streak ends inside the chunk: try to extend it
            # across deterministic L2 hits (clean-victim fills only)
            srun, sfills = frozen_service_prefix(
                hier, lines, self.writes_np[t][i : i + nh]
            )
            if srun > run:
                run, fills = srun, sfills
        if run == 0:
            return 0, w
        if fills:
            lat = np.full(run, self.hit_lat)
            lat[fills] = self.l2_lat
            comp = w + np.cumsum(self.ic_np[t][i : i + run] + lat)
        else:
            comp = w + np.cumsum(self.ic_np[t][i : i + run] + self.hit_lat)
        if run > 1:
            k = 1 + int(np.searchsorted(comp[:-1], cap, side="left"))
            if k > run:
                k = run
        else:
            k = 1
        writes = self.writes_np[t][i : i + k]
        if fills:
            # replay: bulk-apply each hit segment, route each L2 fill
            # through access_no_mem so counters, victim choice, dirty
            # transfer, and the same-line memo are bit-exact
            seg = 0
            last = None
            for f in fills:
                if f >= k:
                    break
                if f > seg:
                    apply_hit_prefix(hier.l1, lines[seg:f], writes[seg:f])
                res = hier.access_no_mem(t2.addrs[i + f] * self.wb, bool(writes[f]))
                assert res is not None  # classified fills are L2-resident
                self.l2_fills_batched += 1
                seg = f + 1
            if seg < k:
                last = apply_hit_prefix(hier.l1, lines[seg:k], writes[seg:k])
            if last is not None:
                hier._last_la = int(lines[k - 1])
                hier._last_slot = last
            # else the prefix ends on the fill itself, whose
            # access_no_mem already reset the memo exactly as the
            # scalar walk would have left it
        else:
            last = apply_hit_prefix(hier.l1, lines[:k], writes)
            hier._last_la = int(lines[k - 1])
            hier._last_slot = last
        c_local.n += k
        if core == t2.run_home:
            t2.run_len += k
        else:
            if t2.run_home >= 0 and t2.run_home != t2.native:
                hist.add(t2.run_len, weight=t2.run_len)
            t2.run_home = core
            t2.run_len = k
        t2.last_recorded_idx = i + k - 1
        return k, float(comp[k - 1])

    # ------------------------------------------------------------------
    def _joint(self, entries, parked, horizon, vctr, hist, c_local):
        """Merged pure-hit jump over every absorbed thread, per core.

        Within a window, L1 hits by threads on the same core commute:
        presence is unchanged, counters and dirty bits accumulate, and
        the only order-sensitive state — LRU recency and the same-line
        memo — depends solely on the *time order* of the accesses, which
        is known in advance for a pure-hit stretch (each access starts
        at the previous one's completion). So instead of ping-ponging
        through the heap one access per turn, this classifies each
        thread's frozen hit prefix, computes its completion timeline,
        merges all consumed accesses of a core in start-time order, and
        applies them in one vectorized step. Threads on different cores
        never interact below the hazard horizon, so cores batch
        independently.

        The jump is capped at ``S``: the earliest instant any thread on
        the core executes a non-hit (miss, non-local home, exhausted
        trace, or the classification chunk end) — that access may change
        presence for everyone, so later hits are left to the next pass
        or the scalar walk. Exact same-time ties across threads are the
        one thing a merge sort cannot break the way the engine's
        sequence numbers would, so any batch is truncated just before
        the first cross-thread tie (of access starts, or of hand-off
        wake-ups) and the scalar walk replays the tie with real
        sequence mechanics. Returns (remaining entries, vctr, consumed).
        """
        m = self.m
        caches = m.caches
        lines_np = self.lines_np
        writes_np = self.writes_np
        csum = self.csum
        home_end = self.home_end
        cls_memo = self._cls
        chunk = self.JCHUNK
        by_core = {}
        for e in entries:
            by_core.setdefault(e[2].core, []).append(e)
        out = []
        consumed_total = 0
        # cross-core deferral: every core's merged hit segments collect
        # into one jobs list and scatter through the shared L1 store in
        # a single kernel call after the per-core loops finish. Safe
        # because classification reads only presence (_index) and the
        # miss counter, never recency — so a pending recency apply
        # cannot change any later classification, and per-core segment
        # order (iteration order, start-time order within an iteration)
        # is exactly the order the immediate applies would have used.
        jobs = []
        job_hiers = []
        for core, group in by_core.items():
            hier = caches[core]
            l1 = hier.l1
            core_lines = []
            core_writes = []
            while True:
                # per thread: timeline arr of len run+1 over the frozen
                # hit prefix — arr[j] is the start of access i+j (arr[0]
                # is the wake), arr[run] the prefix's last completion,
                # which is also when the first non-hit would execute
                S = horizon
                infos = []
                for wake, _sq, t2 in group:
                    i = t2.idx
                    if i >= t2.size or t2.homes[i] != core:
                        # finish pops and non-local decisions are
                        # non-hits executing at the wake itself
                        S = wake if wake < S else S
                        infos.append(None)
                        continue
                    t = t2.tid
                    c0, snap, end = cls_memo[t]
                    if c0 != core or snap != l1.misses or i >= end:
                        stop = int(home_end[t][i])
                        if stop > i + chunk:
                            stop = i + chunk
                        run = frozen_hit_prefix(l1, lines_np[t][i:stop])
                        end = i + run
                        cls_memo[t] = (core, l1.misses, end)
                        if run == 0:
                            S = wake if wake < S else S
                            infos.append(None)
                            continue
                    cs = csum[t]
                    arr = (wake - cs[i]) + cs[i : end + 1]
                    last = float(arr[-1])
                    S = last if last < S else S
                    infos.append(arr)
                # per-thread consumption: accesses starting before S
                # (S <= arr[-1] for every classified thread, so the
                # searchsorted result never exceeds the prefix length)
                ks = []
                any_k = False
                for j in range(len(group)):
                    arr = infos[j]
                    if arr is None:
                        ks.append(0)
                        continue
                    k = int(np.searchsorted(arr, S, side="left"))
                    ks.append(k)
                    if k:
                        any_k = True
                if not any_k:
                    break
                # truncate at the first cross-thread start-time tie
                if len(group) > 1:
                    segs = [infos[j][: ks[j]] for j in range(len(group)) if ks[j]]
                    if len(segs) > 1:
                        allst = np.sort(np.concatenate(segs))
                        dup = allst[1:][allst[1:] == allst[:-1]]
                        if dup.size:
                            tstar = float(dup[0])
                            for j in range(len(group)):
                                if ks[j]:
                                    ks[j] = int(np.searchsorted(
                                        infos[j][: ks[j]], tstar, side="left"
                                    ))
                            if not any(ks):
                                break
                # resolve hand-off wake ties: shrink one tied batch by an
                # access so its wake moves earlier and the scalar walk
                # replays the tie with real sequence numbers
                while True:
                    wakes = [
                        float(infos[j][ks[j]]) if ks[j] else group[j][0]
                        for j in range(len(group))
                    ]
                    order = sorted(range(len(group)), key=wakes.__getitem__)
                    clash = -1
                    for a, b in zip(order, order[1:]):
                        if wakes[a] == wakes[b]:
                            clash = b if ks[b] else (a if ks[a] else -1)
                            if clash >= 0:
                                break
                    if clash < 0:
                        break
                    ks[clash] -= 1
                    if not any(ks):
                        break
                if not any(ks):
                    break
                # merged recency/memo application in start-time order
                cat_starts = []
                cat_lines = []
                cat_writes = []
                for j, (wake, _sq, t2) in enumerate(group):
                    k = ks[j]
                    if not k:
                        continue
                    i = t2.idx
                    t = t2.tid
                    cat_starts.append(infos[j][:k])
                    cat_lines.append(lines_np[t][i : i + k])
                    cat_writes.append(writes_np[t][i : i + k])
                if len(cat_starts) == 1:
                    cat_lines = cat_lines[0]
                    cat_writes = cat_writes[0]
                else:
                    o = np.argsort(np.concatenate(cat_starts))
                    cat_lines = np.concatenate(cat_lines)[o]
                    cat_writes = np.concatenate(cat_writes)[o]
                core_lines.append(cat_lines)
                core_writes.append(cat_writes)
                consumed_total += len(cat_lines)
                # per-thread bookkeeping, identical to the scalar walk's
                new_group = []
                for j, (wake, _sq, t2) in enumerate(group):
                    k = ks[j]
                    if not k:
                        new_group.append((wake, _sq, t2))
                        continue
                    i = t2.idx
                    rec = k - 1 if i == t2.last_recorded_idx else k
                    if rec:
                        c_local.n += rec
                        if core == t2.run_home:
                            t2.run_len += rec
                        else:
                            if t2.run_home >= 0 and t2.run_home != t2.native:
                                hist.add(t2.run_len, weight=t2.run_len)
                            t2.run_home = core
                            t2.run_len = rec
                    t2.last_recorded_idx = i + k - 1
                    t2.idx = i + k
                    new_group.append((float(infos[j][k]), vctr, t2))
                    vctr += 1
                group = new_group
            if core_lines:
                if len(core_lines) == 1:
                    jl, jw = core_lines[0], core_writes[0]
                else:
                    jl = np.concatenate(core_lines)
                    jw = np.concatenate(core_writes)
                jobs.append((l1, jl, jw))
                job_hiers.append(hier)
            for e in group:
                if e[0] >= horizon:
                    parked.append(e)
                else:
                    out.append(e)
        if jobs:
            if self._xstore is not None:
                lasts = apply_hit_windows(self._xstore, jobs)
            else:
                lasts = [apply_hit_prefix(a, lines, w) for a, lines, w in jobs]
            for hier, (_a, lines, _w), last_slot in zip(job_hiers, jobs, lasts):
                hier._last_la = int(lines[-1])
                hier._last_slot = last_slot
            self.xwindows += 1
            if len(jobs) > self.xwindow_cores_max:
                self.xwindow_cores_max = len(jobs)
        return out, vctr, consumed_total

    # ------------------------------------------------------------------
    def _reify(self, heap) -> None:
        """Turn parked virtual wake-ups back into real events, in
        ascending (virtual) sequence order so every same-time tie is
        broken exactly as the unbatched engine would have. Events are
        pushed at their absolute times directly (``schedule_at`` would
        round-trip through a delay, which is only bit-exact for
        integer-valued times)."""
        if not heap:
            return
        m, eng = self.m, self.eng
        heap.sort(key=lambda e: e[1])
        queue = eng._queue
        cb = m._step_cb
        seq = eng._seq
        for w, _s, t3 in heap:
            ev = Event(w, seq, cb, (t3,), eng)
            heapq.heappush(queue, (w, seq, ev))
            seq += 1
            t3.pending = ev
            t3._ev = ev
        eng._live += len(heap)
        eng._seq = seq

    def _close(self, heap, parked, t2, u) -> None:
        """Boundary: advance the clock to the boundary's exact time,
        re-materialize everyone else, and re-enter the event-driven
        step for the boundary access."""
        self.eng.now = u
        self._reify(heap + parked)
        self.m._step_slow(t2)


# ======================================================================
# Directory-coherence fast driver
# ======================================================================

_MOD = 2  # int(MSIState.MODIFIED)
_SH = 1
_EX = 3
_DU = DirState.UNCACHED
_DS = DirState.SHARED
_DE = DirState.EXCLUSIVE

#: message kinds with a fixed payload class; index into the local
#: count vector the driver flushes into `msg.*` counter cells at the end
_KINDS = (
    "gets",          # 0  ctrl
    "getx",          # 1  ctrl
    "fetch",         # 2  ctrl
    "wb-data",       # 3  data
    "downgrade-ack", # 4  ctrl
    "data",          # 5  data
    "fetch-inv",     # 6  ctrl
    "inv",           # 7  ctrl
    "inv-ack",       # 8  ctrl
    "upgrade-ack",   # 9  ctrl
    "writeback",     # 10 data
    "exclusive-drop",# 11 ctrl
    "sharer-drop",   # 12 ctrl
)


def run_cc_fast(sim):
    """Fast round-robin driver for :class:`DirectoryCCSimulator`.

    Bit-identical to ``DirectoryCCSimulator.run()``: same protocol
    transitions over the same cache arrays and directory entries, same
    counters, same float accumulation (all latencies are integer-valued,
    so regrouping sums is exact). Per-miss invariant checks are skipped
    (they are pure assertions); the explicit protocol-error checks stay.
    """
    from repro.coherence.simulator import CTRL_BITS, CCResult
    from repro.util.errors import ProtocolError

    cfg = sim.config
    noc = cfg.noc
    per_hop = sim._per_hop
    topo = sim.topology
    sym = topo.symmetric
    scalar_hop = topo.scalar_hop_fn()
    line_bits = sim._line_bits
    cf = noc.message_flits(CTRL_BITS)
    df = noc.message_flits(CTRL_BITS + line_bits)
    flit_bits = sim._flit_bits
    tb_ctrl = cf * flit_bits
    tb_data = df * flit_bits
    cfm1, dfm1 = cf - 1, df - 1
    dram_lat = cfg.cost.dram_latency
    mesi = sim.protocol == "mesi"
    hit_lat = float(cfg.l1.hit_latency)
    l1_hit_int = cfg.l1.hit_latency

    caches = sim.caches
    cache_store = sim.cache_store
    directory = sim.directory
    placement = sim.placement
    victim_home_memo = sim._victim_home_memo
    wb_ = sim._word_bytes
    shift = sim._line_shift
    nsets = caches[0].num_sets
    ways = caches[0].ways
    # the inlined fill below victimizes by the stamp column (true LRU);
    # the simulator always builds its arrays policy="lru", so this only
    # guards against future drift
    if caches[0]._policies is not None:  # pragma: no cover
        raise ProtocolError("run_cc_fast requires true-LRU cache arrays")

    trace = sim.trace
    T = trace.num_threads
    native = sim._native
    addr_cols, write_cols = sim._addr_cols, sim._write_cols
    icount_cols, home_cols = sim._icount_cols, sim._home_cols
    sizes = [len(a) for a in addr_cols]
    lines_np = [(tr["addr"].astype(np.int64) * wb_) >> shift for tr in trace.threads]
    writes_np = [tr["write"] != 0 for tr in trace.threads]
    ic_np = [tr["icount"].astype(np.float64) for tr in trace.threads]

    # Requester-leg latency/flit-hop columns, one value per access,
    # vectorized per thread: a thread's core is pinned (native[t]), so
    # every request leg is core->home over the precomputed home column,
    # and (for symmetric topologies) every reply leg reuses the same hop
    # count. This removes the per-miss lazy-row machinery that dominated
    # 1024-core profiles: the hot path reads a list cell instead of
    # probing two dicts and deriving a row entry.
    req_lat = [None] * T   # core -> home, ctrl (GETS/GETX request)
    req_fh = [None] * T
    drep_lat = [None] * T  # home -> core, data (fill reply)
    drep_fh = [None] * T
    crep_lat = [None] * T  # home -> core, ctrl (upgrade-ack)
    crep_fh = [None] * T
    for t in range(T):
        n = sizes[t]
        if n == 0:
            continue
        core_t = native[t]
        homes_arr = np.asarray(home_cols[t], dtype=np.int64)
        h_fwd = topo.distance_row(core_t)[homes_arr]
        if sym:
            h_rev = h_fwd
        else:
            h_rev = np.fromiter(
                (scalar_hop(hm, core_t) for hm in home_cols[t]),
                dtype=np.int64,
                count=n,
            )
        req_lat[t] = (h_fwd * per_hop + cfm1).tolist()
        req_fh[t] = np.where(h_fwd > 0, cf * h_fwd, cf).tolist()
        drep_lat[t] = (h_rev * per_hop + dfm1).tolist()
        drep_fh[t] = np.where(h_rev > 0, df * h_rev, df).tolist()
        crep_lat[t] = (h_rev * per_hop + cfm1).tolist()
        crep_fh[t] = np.where(h_rev > 0, cf * h_rev, cf).tolist()

    # Vectorized victim-home table: every line a fill can ever evict
    # was itself filled from the trace, so the line-id space is bounded
    # by the trace's maximum line address. For the (dense) workloads a
    # flat list turns the per-victim placement lookup into one
    # subscript; a sparse address space falls back to the memo dict.
    max_line = 0
    for _l in lines_np:
        if len(_l):
            _m = int(_l.max())
            if _m > max_line:
                max_line = _m
    if max_line <= 1 << 21:
        vhomes = placement.home_of(
            (np.arange(max_line + 1, dtype=np.int64) << shift) // wb_
        ).tolist()
    else:
        vhomes = None

    # local accumulators, flushed into counter cells once at the end
    n_hits = n_misses = n_silent = n_inv = n_wb = n_dram = 0
    flit_hops = 0
    traffic = 0
    kind_n = [0] * len(_KINDS)

    def fill_fast(core, byte, st_int):
        """_fill + _evict_line with ``CacheArray.fill`` inlined.

        The requester's probe just missed, so the refill-of-a-resident-
        line branch of the scalar ``fill`` is unreachable here; what
        remains is the free-way scan, the stamp-minimum LRU victim scan,
        and the victim's directory transaction. Returns the victim-
        coherence latency.
        """
        nonlocal traffic, flit_hops, n_wb
        arr = caches[core]
        la = byte >> shift
        si = la % nsets
        base = si * ways
        tags = arr.tags
        # one bulk tolist per set-row: ways plain-int compares beat the
        # same number of boxed numpy scalar reads
        trow = tags[base : base + ways].tolist()
        vtag = -1
        try:
            free = base + trow.index(-1)
        except ValueError:
            # set full: victimize the stamp minimum (true LRU; stamps
            # come from one monotone clock, so ties cannot occur)
            srow = arr.stamps[base : base + ways].tolist()
            w = 0
            best = srow[0]
            for j in range(1, ways):
                if srow[j] < best:
                    best = srow[j]
                    w = j
            free = base + w
            vtag = trow[w]
            vst = int(arr.state[free])
            del arr._index[vtag * nsets + si]
            arr.evictions += 1
            if arr.dirty[free]:
                arr.writebacks += 1
        tags[free] = la // nsets
        arr.dirty[free] = st_int == _MOD
        arr.state[free] = st_int
        arr._index[la] = free
        clock = arr._clock + 1
        arr._clock = clock
        arr.stamps[free] = clock
        if vtag < 0:
            return 0
        vline = vtag * nsets + si
        ventry = directory.get(vline)
        if ventry is None:
            ventry = directory[vline] = DirectoryEntry()
        if vhomes is not None:
            vhome = vhomes[vline]
        else:
            vhome = victim_home_memo.get(vline)
            if vhome is None:
                vhome = placement.home_of_one((vline << shift) // wb_)
                victim_home_memo[vline] = vhome
        h = scalar_hop(core, vhome)
        if vst == _MOD:
            lat = h * per_hop + dfm1
            kind_n[10] += 1
            traffic += tb_data
            flit_hops += df * h if h else df
            n_wb += 1
            if ventry.state is not _DE or ventry.owner != core:
                raise ProtocolError(
                    f"M eviction by {core} but directory says "
                    f"{DirState(ventry.state).name}/{ventry.owner}"
                )
            ventry.state = _DU
            ventry.owner = None
            ventry.sharers.clear()
        elif vst == _EX:
            lat = h * per_hop + cfm1
            kind_n[11] += 1
            traffic += tb_ctrl
            flit_hops += cf * h if h else cf
            if ventry.state is not _DE or ventry.owner != core:
                raise ProtocolError(
                    f"E eviction by {core} but directory says "
                    f"{DirState(ventry.state).name}/{ventry.owner}"
                )
            ventry.state = _DU
            ventry.owner = None
            ventry.sharers.clear()
        else:
            lat = h * per_hop + cfm1
            kind_n[12] += 1
            traffic += tb_ctrl
            flit_hops += cf * h if h else cf
            ventry.sharers.discard(core)
            if not ventry.sharers and ventry.state is _DS:
                ventry.state = _DU
        return lat

    def access_fast(t, k, core, byte, write, st, slot):
        """The miss/upgrade path of ``DirectoryCCSimulator.access``."""
        nonlocal traffic, flit_hops, n_hits, n_misses, n_silent, n_inv, n_dram
        if st == _EX and write:
            # MESI silent upgrade: no directory traffic
            arr = caches[core]
            arr.hits += 1
            clock = arr._clock + 1
            arr._clock = clock
            arr.stamps[slot] = clock
            arr.state[slot] = _MOD
            arr.dirty[slot] = True
            n_hits += 1
            n_silent += 1
            return hit_lat
        la = byte >> shift
        entry = directory.get(la)
        if entry is None:
            entry = directory[la] = DirectoryEntry()
        n_misses += 1
        if write:
            kind_n[1] += 1
        else:
            kind_n[0] += 1
        traffic += tb_ctrl
        flit_hops += req_fh[t][k]
        lat = req_lat[t][k]
        home = home_cols[t][k]
        est = entry.state
        if not write:
            # ---- GETS --------------------------------------------------
            grant = _SH
            if est is _DE and entry.owner != core:
                owner = entry.owner
                oarr = caches[owner]
                oslot = oarr._index.get(la)
                if oslot is None:
                    raise ProtocolError(f"directory owner {owner} lost line {la:#x}")
                h = scalar_hop(home, owner)
                lat += h * per_hop + cfm1
                kind_n[2] += 1
                traffic += tb_ctrl
                flit_hops += cf * h if h else cf
                h2 = h if sym else scalar_hop(owner, home)
                if oarr.state[oslot] == _MOD:
                    lat += h2 * per_hop + dfm1
                    kind_n[3] += 1
                    traffic += tb_data
                    flit_hops += df * h2 if h2 else df
                else:
                    lat += h2 * per_hop + cfm1
                    kind_n[4] += 1
                    traffic += tb_ctrl
                    flit_hops += cf * h2 if h2 else cf
                oarr.state[oslot] = _SH
                oarr.dirty[oslot] = False
                entry.sharers = {owner}
                entry.owner = None
                entry.state = _DS
            elif est is _DU:
                lat += dram_lat
                n_dram += 1
                if mesi:
                    grant = _EX
            if grant == _EX:
                entry.state = _DE
                entry.owner = core
                entry.sharers = set()
            else:
                entry.state = _DS
                entry.owner = None
                entry.sharers.add(core)
            lat += drep_lat[t][k]
            kind_n[5] += 1
            traffic += tb_data
            flit_hops += drep_fh[t][k]
            lat += fill_fast(core, byte, grant)
        else:
            # ---- GETX --------------------------------------------------
            if est is _DE and entry.owner != core:
                owner = entry.owner
                oarr = caches[owner]
                oslot = oarr._index.get(la)
                if oslot is None:
                    raise ProtocolError(f"directory owner {owner} lost line {la:#x}")
                h = scalar_hop(home, owner)
                lat += h * per_hop + cfm1
                kind_n[6] += 1
                traffic += tb_ctrl
                flit_hops += cf * h if h else cf
                h2 = h if sym else scalar_hop(owner, home)
                if oarr.state[oslot] == _MOD:
                    lat += h2 * per_hop + dfm1
                    kind_n[3] += 1
                    traffic += tb_data
                    flit_hops += df * h2 if h2 else df
                else:
                    lat += h2 * per_hop + cfm1
                    kind_n[8] += 1
                    traffic += tb_ctrl
                    flit_hops += cf * h2 if h2 else cf
                # invalidate the owner's copy (CacheArray.invalidate
                # minus the unused EvictedLine snapshot)
                del oarr._index[la]
                oarr.tags[oslot] = -1
                n_inv += 1
            elif est is _DS:
                # read-shared line: every sharer's copy drops in parallel
                # (inv round trips overlap, the slowest one gates), so a
                # batch of Shared-state readers never serializes the
                # writer behind more than one round trip
                inv_lat = 0
                for sharer in sorted(entry.sharers - {core}):
                    kind_n[7] += 1
                    kind_n[8] += 1
                    traffic += tb_ctrl + tb_ctrl
                    h = scalar_hop(home, sharer)
                    h2 = h if sym else scalar_hop(sharer, home)
                    flit_hops += (cf * h if h else cf) + (cf * h2 if h2 else cf)
                    rt = (h * per_hop + cfm1) + (h2 * per_hop + cfm1)
                    if rt > inv_lat:
                        inv_lat = rt
                    sarr = caches[sharer]
                    sslot = sarr._index.pop(la, None)
                    if sslot is not None:
                        sarr.tags[sslot] = -1
                    n_inv += 1
                lat += inv_lat
            elif est is _DU:
                lat += dram_lat
                n_dram += 1
            if st == _SH:
                # upgrade: data already present, grant only
                lat += crep_lat[t][k]
                kind_n[9] += 1
                traffic += tb_ctrl
                flit_hops += crep_fh[t][k]
                arr = caches[core]
                arr.state[slot] = _MOD
                arr.dirty[slot] = True
            else:
                lat += drep_lat[t][k]
                kind_n[5] += 1
                traffic += tb_data
                flit_hops += drep_fh[t][k]
                lat += fill_fast(core, byte, _MOD)
            entry.state = _DE
            entry.owner = core
            entry.sharers = set()
        return float(lat + l1_hit_int)

    # -- round-robin driver with the epoch-validated lockstep window ----
    times = [0.0] * T
    idx = [0] * T
    active = [t for t in range(T) if sizes[t] > 0]
    # per-thread prebound views of the (fixed) native core's array: the
    # scalar round loop reads a list cell instead of chasing
    # caches[native[t]].<attr> attribute chains per access
    arrs_t = [caches[native[t]] for t in range(T)]
    index_t = [a._index for a in arrs_t]
    state_t = [a.state for a in arrs_t]
    stamps_t = [a.stamps for a in arrs_t]
    lines_cols = [a.tolist() for a in lines_np]
    # classification is only attempted after `streak` consecutive all-hit
    # scalar rounds; a failed attempt (someone's hit run is about to end)
    # backs off exponentially so warmup-phase upgrades don't pay the
    # numpy classification cost over and over
    streak = 0
    penalty = 4
    epoch_windows = 0
    win_batched = 0
    win_len_sum = 0
    win_max = 0
    win_cores_max = 0
    while active:
        finished = False
        if streak >= 4:
            # every thread hit recently: classify hit runs and, when
            # everyone is deep inside one, jump whole rounds at once
            W = _INF
            for t in active:
                k = idx[t]
                stop = min(k + 1024, sizes[t])
                run = frozen_hit_prefix(
                    arrs_t[t],
                    lines_np[t][k:stop],
                    writes_np[t][k:stop],
                    states_ok_write=(_MOD,),
                    states_ok_read=(_SH, _MOD, _EX),
                )
                if run < W:
                    W = run
                    if W < 4:
                        break
            if W >= 4:
                epoch_windows += 1
                nw = W * len(active)
                win_batched += nw
                win_len_sum += W
                if W > win_max:
                    win_max = W
                # recency: per core, touches happen round-major in the
                # driver's thread order; group residents accordingly and
                # scatter the whole window through the store in one
                # cross-core kernel call
                by_core: dict[int, list[int]] = {}
                for t in active:
                    by_core.setdefault(native[t], []).append(t)
                if len(by_core) > win_cores_max:
                    win_cores_max = len(by_core)
                jobs = []
                for core, ts in by_core.items():
                    if len(ts) == 1:
                        t = ts[0]
                        seg = lines_np[t][idx[t] : idx[t] + W]
                    else:
                        seg = np.column_stack(
                            [lines_np[t][idx[t] : idx[t] + W] for t in ts]
                        ).ravel()
                    jobs.append((caches[core], seg, None))
                apply_hit_windows(cache_store, jobs)
                n_hits += nw
                penalty = 4
                for t in active:
                    k = idx[t]
                    times[t] += float(np.sum(ic_np[t][k : k + W])) + W * hit_lat
                    idx[t] = k + W
                    if idx[t] == sizes[t]:
                        finished = True
                if finished:
                    active = [t for t in active if idx[t] < sizes[t]]
                    streak = 0
                continue
            streak = -penalty
            penalty = min(penalty * 2, 4096)
        all_hit = True
        for t in active:
            k = idx[t]
            la = lines_cols[t][k]
            write = write_cols[t][k]
            slot = index_t[t].get(la)
            st = state_t[t][slot] if slot is not None else 0
            if st == _MOD or (not write and (st == _SH or st == _EX)):
                arr = arrs_t[t]
                arr.hits += 1
                clock = arr._clock + 1
                arr._clock = clock
                stamps_t[t][slot] = clock
                n_hits += 1
                lat = hit_lat
            else:
                lat = access_fast(t, k, native[t], la << shift, write, st, slot)
                all_hit = False
            times[t] += icount_cols[t][k] + lat
            idx[t] = k + 1
            if k + 1 == sizes[t]:
                finished = True
        streak = streak + 1 if all_hit else min(streak, 0)
        if finished:
            active = [t for t in active if idx[t] < sizes[t]]

    # flush accumulators into the shared counter cells (zero counts stay
    # absent, matching the scalar driver's lazily created cells)
    counters = sim.stats.counters
    for key, n in (
        ("hits", n_hits),
        ("misses", n_misses),
        ("silent_upgrades", n_silent),
        ("invalidations", n_inv),
        ("writebacks", n_wb),
        ("dram_fills", n_dram),
    ):
        if n:
            counters.cell(key).n += n
    if flit_hops:
        sim._c_flit_hops.n += flit_hops
    for kind, n in zip(_KINDS, kind_n):
        if n:
            counters.cell("msg." + kind).n += n
    sim.traffic_bits += traffic
    sim._epoch_windows = epoch_windows
    sim._fastpath_stats = {
        "engaged": True,
        "disabled_reason": None,
        "epochs_batched": epoch_windows,
        "batched_accesses": win_batched,
        "mean_window": win_len_sum / epoch_windows if epoch_windows else 0.0,
        "max_window": win_max,
        "max_window_cores": win_cores_max,
    }
    stats = sim.stats.as_dict()
    return CCResult(
        completion_time=max(times, default=0.0),
        per_thread_time=times,
        stats=stats,
        traffic_bits=sim.traffic_bits,
    )
