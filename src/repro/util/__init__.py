"""Shared utilities: error types, validation helpers, RNG handling.

Everything in :mod:`repro` raises subclasses of :class:`ReproError` for
configuration and protocol errors so callers can catch library errors
distinctly from Python built-ins.
"""

from repro.util.errors import (
    ConfigError,
    DeadlockError,
    ProtocolError,
    ReproError,
    TraceFormatError,
)
from repro.util.validate import (
    check_in_range,
    check_positive,
    check_power_of_two,
    is_power_of_two,
)
from repro.util.rng import as_generator

__all__ = [
    "ReproError",
    "ConfigError",
    "ProtocolError",
    "DeadlockError",
    "TraceFormatError",
    "check_positive",
    "check_in_range",
    "check_power_of_two",
    "is_power_of_two",
    "as_generator",
]
