"""Unit tests for the behavioral EM²/EM²-RA/RA-only machines."""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision import AlwaysMigrate, DistanceThreshold, NeverMigrate
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.remote_access import RemoteAccessMachine
from repro.placement import first_touch, striped
from repro.trace.events import MultiTrace, make_trace
from repro.util.errors import ProtocolError


def _mt(*threads, natives=None):
    return MultiTrace(
        threads=[make_trace(a, writes=w, icounts=1) for a, w in threads],
        thread_native_core=natives or list(range(len(threads))),
    )


@pytest.fixture
def cfg():
    return small_test_config(num_cores=4, guest_contexts=2)


class TestEM2:
    def test_local_only_no_migrations(self, cfg):
        mt = _mt(([0, 1, 2], [1, 1, 1]))  # words 0..2 home at core 0 (striped blk 16)
        m = EM2Machine(mt, striped(4, block_words=16), cfg)
        m.run()
        r = m.results()
        assert r["migrations"] == 0
        assert r["local_accesses"] == 3

    def test_remote_access_migrates_and_returns(self, cfg):
        # word 16 homes at core 1; thread 0 touches it then its own word
        mt = _mt(([0, 16, 0], [0, 0, 0]))
        m = EM2Machine(mt, striped(4, block_words=16), cfg)
        m.run()
        r = m.results()
        assert r["migrations"] == 2  # out and back
        assert r["messages.MIGRATION"] == 2

    def test_thread_ends_wherever_last_access_homes(self, cfg):
        mt = _mt(([16], [0]))
        m = EM2Machine(mt, striped(4, block_words=16), cfg)
        m.run()
        assert m.threads[0].core == 1

    def test_eviction_when_guests_exhausted(self):
        cfg = small_test_config(num_cores=4, guest_contexts=1)
        # threads 1,2,3 all access core 0's word simultaneously
        mt = _mt(
            ([0], [0]),
            ([1], [0]),
            ([1], [0]),
            ([1], [0]),
        )
        m = EM2Machine(mt, striped(4, block_words=16), cfg)
        m.run()
        assert m.results()["evictions"] >= 1
        assert m.results()["messages.EVICTION"] >= 1

    def test_evicted_thread_still_completes(self):
        cfg = small_test_config(num_cores=4, guest_contexts=1)
        mt = _mt(
            ([0, 0, 0], [0, 0, 0]),
            ([1, 17, 1], [0, 0, 0]),
            ([1, 17, 1], [0, 0, 0]),
            ([1, 17, 1], [0, 0, 0]),
        )
        m = EM2Machine(mt, striped(4, block_words=16), cfg)
        m.run()  # raises ProtocolError if any thread is stranded
        assert all(th.done for th in m.threads)

    def test_run_twice_rejected(self, cfg):
        mt = _mt(([0], [0]))
        m = EM2Machine(mt, striped(4), cfg)
        m.run()
        with pytest.raises(ProtocolError):
            m.run()

    def test_completion_time_positive(self, cfg, pingpong_small):
        pl = first_touch(pingpong_small, 4)
        m = EM2Machine(pingpong_small, pl, cfg)
        m.run()
        assert m.completion_time > 0

    def test_run_length_histogram_collected(self, cfg, pingpong_small):
        pl = first_touch(pingpong_small, 4)
        m = EM2Machine(pingpong_small, pl, cfg)
        m.run()
        assert m.stats.histogram("run_length").count > 0

    def test_cache_detail_off_uses_fixed_latency(self, cfg):
        mt = _mt(([0, 0, 0], [0, 0, 0]))
        m = EM2Machine(mt, striped(4, block_words=16), cfg, cache_detail=False)
        m.run()
        assert m.results()["dram_fills"] == 0


class TestEM2RA:
    def test_never_migrate_scheme_does_only_ra(self, cfg):
        mt = _mt(([16, 16, 16], [0, 0, 0]))
        m = EM2RAMachine(mt, striped(4, block_words=16), cfg, scheme=NeverMigrate())
        m.run()
        r = m.results()
        assert r["migrations"] == 0
        assert r["remote_accesses"] == 3
        assert r["messages.RA_REQUEST"] == 3
        assert r["messages.RA_REPLY"] == 3

    def test_always_migrate_scheme_equals_em2(self, cfg, pingpong_small):
        pl = first_touch(pingpong_small, 4)
        em2 = EM2Machine(pingpong_small, pl, cfg)
        em2.run()
        ra = EM2RAMachine(pingpong_small, pl, cfg, scheme=AlwaysMigrate())
        ra.run()
        assert em2.results() == ra.results()

    def test_ra_write_gets_ack(self, cfg):
        mt = _mt(([16], [1]))
        m = EM2RAMachine(mt, striped(4, block_words=16), cfg, scheme=NeverMigrate())
        m.run()
        assert m.results()["messages.RA_REPLY"] == 1

    def test_threads_keep_context_during_ra(self, cfg):
        """An RA must not release the requester's context."""
        mt = _mt(([16, 0], [0, 0]))
        m = EM2RAMachine(mt, striped(4, block_words=16), cfg, scheme=NeverMigrate())
        m.run()
        assert m.results()["evictions"] == 0
        assert m.threads[0].core == 0  # never moved

    def test_ra_updates_home_cache(self, cfg):
        """The home core's cache services (and caches) the RA."""
        mt = _mt(([16, 16], [0, 0]))
        m = EM2RAMachine(mt, striped(4, block_words=16), cfg, scheme=NeverMigrate())
        m.run()
        # second access hits in the home's cache: exactly one DRAM fill
        assert m.results()["dram_fills"] == 1


class TestRemoteAccessMachine:
    def test_never_migrates(self, cfg, pingpong_small):
        pl = first_touch(pingpong_small, 4)
        m = RemoteAccessMachine(pingpong_small, pl, cfg)
        m.run()
        r = m.results()
        assert r["migrations"] == 0
        assert r["evictions"] == 0
        assert all(th.core == th.native for th in m.threads)

    def test_more_network_crossings_than_em2_on_long_runs(self, cfg):
        """RA-only pays per word; EM² amortizes long runs (§3)."""
        mt = _mt(([16] * 20, [0] * 20))
        pl = striped(4, block_words=16)
        em2 = EM2Machine(mt, pl, cfg)
        em2.run()
        ra = RemoteAccessMachine(mt, pl, cfg)
        ra.run()
        assert ra.results()["messages.RA_REQUEST"] == 20
        assert em2.results()["messages.MIGRATION"] == 1
