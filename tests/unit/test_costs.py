"""Unit tests for the analytical cost model (§3)."""

import numpy as np
import pytest

from repro.arch.config import ContextConfig, SystemConfig, small_test_config
from repro.arch.topology import Mesh2D
from repro.core.costs import CostModel
from repro.util.errors import ConfigError


@pytest.fixture
def cm():
    return CostModel(small_test_config(num_cores=16))


class TestMatrices:
    def test_diagonals_zero(self, cm):
        assert (np.diag(cm.migration) == 0).all()
        assert (np.diag(cm.remote_read) == 0).all()
        assert (np.diag(cm.remote_write) == 0).all()

    def test_costs_positive_off_diagonal(self, cm):
        off = ~np.eye(16, dtype=bool)
        assert (cm.migration[off] > 0).all()
        assert (cm.remote_read[off] > 0).all()

    def test_migration_symmetric(self, cm):
        assert (cm.migration == cm.migration.T).all()

    def test_costs_monotone_in_distance(self, cm):
        d = cm.topology.distance_matrix
        # farther pairs cost at least as much
        order = np.argsort(d[0])
        assert (np.diff(cm.migration[0][order]) >= 0).all()
        assert (np.diff(cm.remote_read[0][order]) >= 0).all()

    def test_break_even_above_one_everywhere(self, cm):
        """Figure 2's motivation: a run of length 1 should prefer RA,
        i.e. a migration round trip (2x one-way) costs more than one
        RA round trip for every core pair."""
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    assert cm.break_even_run_length(src, dst) > 1.0

    def test_migration_traffic_dominates_ra_traffic(self, cm):
        """The power argument (§2/§5): a migration moves far more bits
        than a remote access round trip."""
        assert cm.migration_bits() > 3 * cm.remote_access_bits(write=False)
        assert cm.migration_bits() > 3 * cm.remote_access_bits(write=True)

    def test_migration_cheaper_than_many_ras(self, cm):
        """...but a migration amortizes over long runs (§3)."""
        be = cm.break_even_run_length(0, 15)
        assert np.isfinite(be) and be > 1.0
        assert cm.migration[0, 15] < be * 1.5 * cm.remote_read[0, 15]

    def test_remote_write_request_carries_data(self, cm):
        cfg = cm.config
        # write request payload > read request payload; with a 128-bit
        # flit both still fit in the same flit count here, so compare bits
        assert cm.remote_access_bits(True) >= cm.remote_access_bits(False)


class TestContextSizeScaling:
    def test_larger_context_larger_cost(self, cm):
        small = cm.migration_with_context(256)
        large = cm.migration_with_context(4096)
        off = ~np.eye(16, dtype=bool)
        assert (large[off] > small[off]).all()

    def test_stack_migration_between_ra_and_full(self, cm):
        """§4's point: a shallow stack context migrates much cheaper
        than a register-file context."""
        off = ~np.eye(16, dtype=bool)
        stack2 = cm.stack_migration(2)
        assert (stack2[off] < cm.migration[off]).all()

    def test_migration_bits_flit_quantized(self, cm):
        bits = cm.migration_bits()
        assert bits % cm.config.noc.flit_bits == 0
        assert bits >= cm.config.context.full_context_bits


class TestBreakEven:
    def test_zero_write_fraction_uses_reads(self, cm):
        be = cm.break_even_run_length(0, 3, write_fraction=0.0)
        expect = 2 * cm.migration[0, 3] / cm.remote_read[0, 3]
        assert be == pytest.approx(expect)

    def test_write_fraction_interpolates(self, cm):
        be_r = cm.break_even_run_length(0, 3, 0.0)
        be_w = cm.break_even_run_length(0, 3, 1.0)
        be_half = cm.break_even_run_length(0, 3, 0.5)
        assert min(be_r, be_w) <= be_half <= max(be_r, be_w)


def test_topology_core_count_mismatch_rejected():
    with pytest.raises(ConfigError):
        CostModel(small_test_config(num_cores=16), topology=Mesh2D(2, 2))
