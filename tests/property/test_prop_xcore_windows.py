"""Property tests for the cross-core window kernel and CC fast driver.

The cross-core widening (ISSUE 9) adds two exactness obligations on
top of the per-core batch kernels:

* :func:`repro.arch.cache.batch.apply_hit_windows` — one fancy-indexed
  scatter over the pooled :class:`TileCacheStore` stamp matrix must
  leave *every* participating array in exactly the state sequential
  :func:`apply_hit_prefix` calls would: hit counters, dirty bits,
  per-array clocks, full stamp columns, and the returned memo slots.
* the epoch-batched CC driver (``run_cc_fast``) — bit-identical
  results to the scalar driver on randomized traces that mix
  Shared-state read sharing, dirty-eviction hazards, and hit runs
  straddling the lockstep window splits.

Hypothesis drives the randomization; every counterexample shrinks to a
minimal access column, which is the debugging story the per-core batch
tests (seeded numpy) can't give.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.cache.batch import apply_hit_prefix, apply_hit_windows
from repro.arch.cache.sram import CacheArray, TileCacheStore
from repro.arch.config import CacheConfig, small_test_config

LINE_BYTES = 32
CFG = CacheConfig(size_bytes=4 * 2 * LINE_BYTES, line_bytes=LINE_BYTES,
                  associativity=2)  # 4 sets x 2 ways: evictions are easy


# ------------------------------------------------------------------ kernel
@st.composite
def window_jobs(draw):
    """Per-core (prefill, hit-index-sequence, writes) for 1..4 cores.

    The hit sequence is drawn as *indices* into whatever lines survive
    the prefill (conflicting prefills evict each other), so the pure-
    hit precondition both kernels require — upheld by the classifier in
    production — holds by construction.
    """
    num_cores = draw(st.integers(1, 4))
    cores = []
    for _ in range(num_cores):
        prefill = draw(st.lists(st.integers(0, 30), min_size=1, max_size=6,
                                unique=True))
        seq = draw(st.lists(st.integers(0, 29), min_size=0, max_size=20))
        writes = draw(st.lists(st.booleans(), min_size=len(seq),
                               max_size=len(seq)))
        cores.append((prefill, seq, writes))
    return cores


def _prefilled(num_cores, cores):
    """Build the pooled store, prefill each core, and resolve every
    core's hit-index sequence against its surviving resident lines."""
    store = TileCacheStore(num_cores, CFG)
    arrs = [CacheArray(CFG, store=store, core=c) for c in range(num_cores)]
    seqs = []
    for arr, (prefill, seq, _w) in zip(arrs, cores):
        for la in prefill:
            arr.fill(la << arr._line_shift)
        resident = sorted(la >> arr._line_shift
                          for la in arr.resident_addrs())
        seqs.append([resident[i % len(resident)] for i in seq])
    return store, arrs, seqs


@settings(max_examples=60, deadline=None)
@given(window_jobs())
def test_apply_hit_windows_equals_sequential_prefix(cores):
    num_cores = len(cores)
    store_f, arrs_f, seqs = _prefilled(num_cores, cores)
    store_r, arrs_r, _ = _prefilled(num_cores, cores)

    jobs, ref_jobs = [], []
    for c, (_prefill, _seq, writes) in enumerate(cores):
        if not seqs[c]:
            continue  # jobs carry only cores with a non-empty hit run
        lines = np.asarray(seqs[c], dtype=np.int64)
        wcol = np.asarray(writes, dtype=bool)
        jobs.append((arrs_f[c], lines, wcol))
        ref_jobs.append((arrs_r[c], lines, wcol))
    if not jobs:
        return

    lasts = apply_hit_windows(store_f, jobs)
    ref_lasts = [apply_hit_prefix(a, lines, w) for a, lines, w in ref_jobs]

    assert lasts == ref_lasts
    assert np.array_equal(store_f.stamps, store_r.stamps)
    assert np.array_equal(store_f.dirty, store_r.dirty)
    assert np.array_equal(store_f.tags, store_r.tags)
    for af, ar in zip(arrs_f, arrs_r):
        assert af.hits == ar.hits and af._clock == ar._clock


@settings(max_examples=30, deadline=None)
@given(window_jobs())
def test_apply_hit_windows_split_invariance(cores):
    """Splitting one window into two (a window-split boundary) leaves
    every array in an LRU-equivalent state to applying it whole: same
    hit counters, dirty bits, residency, and per-set last-touch
    *ranking*. Raw stamp values legitimately differ — dedup happens per
    window, so a line touched twice costs one clock tick in a whole
    window and two across a split — but the ranking is all replacement
    ever reads (the accepted cross-call contract of apply_hit_prefix)."""
    num_cores = len(cores)
    store_w, arrs_w, seqs = _prefilled(num_cores, cores)
    store_s, arrs_s, _ = _prefilled(num_cores, cores)

    whole, first, second = [], [], []
    for c, (_prefill, _seq, writes) in enumerate(cores):
        seq = seqs[c]
        if not seq:
            continue
        lines = np.asarray(seq, dtype=np.int64)
        wcol = np.asarray(writes, dtype=bool)
        whole.append((arrs_w[c], lines, wcol))
        cut = len(seq) // 2
        if cut:
            first.append((arrs_s[c], lines[:cut], wcol[:cut]))
        if cut < len(seq):
            second.append((arrs_s[c], lines[cut:], wcol[cut:]))
    if not whole:
        return

    apply_hit_windows(store_w, whole)
    for jobs in (first, second):
        if jobs:
            apply_hit_windows(store_s, jobs)

    assert np.array_equal(store_w.dirty, store_s.dirty)
    assert np.array_equal(store_w.tags, store_s.tags)
    for aw, as_ in zip(arrs_w, arrs_s):
        assert aw.hits == as_.hits
        for si in range(aw.num_sets):
            base = si * aw.ways
            valid = [s for s in range(base, base + aw.ways)
                     if int(aw.tags[s]) != -1]
            w_order = sorted(valid, key=lambda s: int(aw.stamps[s]))
            s_order = sorted(valid, key=lambda s: int(as_.stamps[s]))
            assert w_order == s_order


# ------------------------------------------------------------------ cc driver
@st.composite
def cc_trace(draw):
    """Word-address/write columns for 2..4 threads over a line pool
    sized past the private cache: read-shared lines (several threads
    touching the same low lines) plus enough distinct lines to force
    conflict misses and dirty evictions."""
    num_threads = draw(st.integers(2, 4))
    threads = []
    for _ in range(num_threads):
        n = draw(st.integers(4, 48))
        lines = draw(st.lists(st.integers(0, 40), min_size=n, max_size=n))
        writes = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        threads.append((lines, writes))
    return threads


def _cc_sim(threads, fast_path):
    from repro.coherence.simulator import DirectoryCCSimulator, cc_results
    from repro.registry import PLACEMENTS
    from repro.trace.events import MultiTrace, make_trace

    config = small_test_config(num_cores=4)
    words_per_line = config.l2.line_bytes // config.word_bytes
    cols = []
    for lines, writes in threads:
        addrs = np.asarray(lines, dtype=np.uint64) * words_per_line
        wcol = np.asarray(writes, dtype=np.uint8)
        cols.append(make_trace(addrs, writes=wcol,
                               icounts=np.ones(len(addrs))))
    trace = MultiTrace(threads=cols, name="prop-cc")
    placement = PLACEMENTS.get("striped")(trace, config.num_cores)
    sim = DirectoryCCSimulator(trace, placement, config,
                               fast_path=fast_path)
    res = cc_results(sim)
    res.pop("fast_path", None)  # engagement diagnostics differ by design
    return res


@settings(max_examples=40, deadline=None)
@given(cc_trace())
def test_cc_fast_driver_bit_identical_on_random_traces(threads):
    assert _cc_sim(threads, fast_path=True) == _cc_sim(threads,
                                                       fast_path=False)
