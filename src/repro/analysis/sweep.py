"""Parameter-sweep utilities for the benchmark harness and examples.

A sweep is a cartesian product over named parameter lists, evaluated
by a callback returning a result dict per point. Results accumulate
into table rows ready for :func:`repro.analysis.reports.format_table`.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Mapping

from repro.util.errors import ConfigError


def grid(**params: Iterable) -> list[dict]:
    """Cartesian product of parameter lists as a list of dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not params:
        return [{}]
    keys = list(params)
    values = [list(params[k]) for k in keys]
    for k, v in zip(keys, values):
        if not v:
            raise ConfigError(f"sweep parameter {k!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*values)]


def sweep(
    points: Iterable[Mapping],
    fn: Callable[..., Mapping],
) -> list[dict]:
    """Evaluate ``fn(**point)`` for every point; each row merges the
    point's parameters with the returned metrics (metrics win on key
    collisions — callers should avoid them)."""
    rows = []
    for point in points:
        metrics = fn(**point)
        row = dict(point)
        row.update(metrics)
        rows.append(row)
    return rows


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the standard cross-workload summary statistic).

    Raises :class:`ConfigError` on non-positive inputs — a silent 0 or
    negative value in a ratio geomean is always a bug upstream.
    """
    values = list(values)
    if not values:
        return float("nan")
    for v in values:
        if v <= 0:
            raise ConfigError(f"geomean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(rows: list[dict], key: str, baseline_row: int = 0) -> list[dict]:
    """Add ``key + '_norm'`` columns dividing by the baseline row's value."""
    if not rows:
        return rows
    if not (0 <= baseline_row < len(rows)):
        raise ConfigError(f"baseline_row {baseline_row} out of range")
    base = rows[baseline_row][key]
    if base == 0:
        raise ConfigError(f"baseline value for {key!r} is zero")
    for row in rows:
        row[f"{key}_norm"] = row[key] / base
    return rows
