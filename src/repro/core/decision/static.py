"""Stateless decision schemes.

These bracket the design space: ``AlwaysMigrate`` is pure EM² (§2),
``NeverMigrate`` is the remote-access-only architecture of [15], and
``DistanceThreshold`` is the simplest plausible hardware scheme — the
migration's serialization cost is fixed, so short hops amortize it
fastest.
"""

from __future__ import annotations

import numpy as np

from repro.core.decision.base import Decision, DecisionScheme
from repro.registry import SCHEMES
from repro.util.errors import ConfigError
from repro.util.rng import as_generator


class AlwaysMigrate(DecisionScheme):
    """Pure EM²: every non-local access migrates to the home core."""

    name = "always-migrate"
    stateless = True

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        return Decision.MIGRATE


class NeverMigrate(DecisionScheme):
    """Remote-access-only (Fensch & Cintra-style [15]): never migrate.

    The thread stays at its native core forever; every non-local word
    costs a round trip.
    """

    name = "never-migrate"
    stateless = True

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        return Decision.REMOTE


class NativeFirst(DecisionScheme):
    """Always migrate *home*; delegate the away decision to ``away``.

    Rationale (the scheme family of the follow-up EM² hardware work):
    a thread's private data dominates its accesses, so an access homed
    at the native core almost always starts a long local run — migrate
    back unconditionally. Accesses homed at *other* cores go to the
    ``away`` policy (default: remote access).

    Note the degenerate case, asserted in the tests: with
    ``away=NeverMigrate()`` the thread never leaves its native core,
    so the home rule never fires and the scheme *is* NeverMigrate.
    The composition earns its keep with any away policy that migrates
    (distance thresholds, history) — it guarantees the thread's private
    working set is always reached by migration, never by RA storms.

    The native core is latched at the first consultation: a thread can
    only move via a decision, so at first consult it is still at its
    native core.
    """

    name = "native-first"

    def __init__(
        self,
        away: DecisionScheme | None = None,
        native_core: int | None = None,
    ) -> None:
        self.away = away if away is not None else NeverMigrate()
        self.native_core = native_core

    @property
    def stateless(self) -> bool:
        # the native-core latch is fixed after the first consult, so the
        # composition is batchable exactly when the away policy is
        return self.away.stateless

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        if self.native_core is None:
            self.native_core = current
        if home == self.native_core:
            return Decision.MIGRATE
        return self.away.decide(current, home, addr, write)

    def observe(self, current: int, home: int, addr: int, write: bool, decision: Decision) -> None:
        self.away.observe(current, home, addr, write, decision)

    def reset(self) -> None:
        self.native_core = None
        self.away.reset()

    def clone(self) -> "NativeFirst":
        return NativeFirst(away=self.away.clone())  # fresh latch per thread


class DistanceThreshold(DecisionScheme):
    """Migrate when the home is within ``threshold`` hops, else RA.

    Requires the topology's distance matrix (a small core-local ROM in
    hardware). ``threshold=inf`` degenerates to AlwaysMigrate,
    ``threshold=-1`` to NeverMigrate.
    """

    name = "distance-threshold"
    stateless = True

    def __init__(self, distance_matrix: np.ndarray, threshold: float) -> None:
        self.distance_matrix = np.asarray(distance_matrix)
        if self.distance_matrix.ndim != 2 or (
            self.distance_matrix.shape[0] != self.distance_matrix.shape[1]
        ):
            raise ConfigError("distance_matrix must be square")
        self.threshold = threshold

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        if self.distance_matrix[current, home] <= self.threshold:
            return Decision.MIGRATE
        return Decision.REMOTE

    def clone(self) -> "DistanceThreshold":
        return DistanceThreshold(self.distance_matrix, self.threshold)


class RandomScheme(DecisionScheme):
    """Migrate with probability ``p`` — the sanity baseline every real
    scheme must beat."""

    name = "random"

    def __init__(self, p: float = 0.5, seed: int | None = 0) -> None:
        if not (0.0 <= p <= 1.0):
            raise ConfigError("p must be in [0, 1]")
        self.p = p
        self.seed = seed
        self._rng = as_generator(seed)

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        return Decision.MIGRATE if self._rng.random() < self.p else Decision.REMOTE

    def reset(self) -> None:
        self._rng = as_generator(self.seed)

    def clone(self) -> "RandomScheme":
        return RandomScheme(self.p, self.seed)


# ------------------------------------------------------------- registry
# Factories take the experiment's CostModel (topology/config context a
# core-local hardware unit would be provisioned with) plus SchemeSpec
# params, and return a fresh scheme instance.
@SCHEMES.register("always-migrate", "pure EM2: migrate on every non-local access")
def _make_always_migrate(cost, **params):
    return AlwaysMigrate(**params)


@SCHEMES.register("never-migrate", "remote-access-only: never migrate")
def _make_never_migrate(cost, **params):
    return NeverMigrate(**params)


@SCHEMES.register("distance-1", "migrate when the home is within 1 hop")
def _make_distance_1(cost, threshold: float = 1, **params):
    return DistanceThreshold(cost.topology.distance_matrix, threshold, **params)


@SCHEMES.register("distance-2", "migrate when the home is within 2 hops")
def _make_distance_2(cost, threshold: float = 2, **params):
    return DistanceThreshold(cost.topology.distance_matrix, threshold, **params)


@SCHEMES.register("random", "migrate with probability p (sanity baseline)")
def _make_random(cost, p: float = 0.5, seed: int | None = 0, **params):
    return RandomScheme(p=p, seed=seed, **params)


@SCHEMES.register("native-first", "always migrate home; RA when homed away")
def _make_native_first(cost, **params):
    return NativeFirst(**params)
