"""Epoch-based dynamic data placement.

The announcement fixes first-touch placement and cites OS-level and
EM²-specific placement optimization ([11], [12]) as the complementary
lever. A natural extension evaluated here: re-home blocks between
*epochs* based on the previous epoch's access profile, paying a data-
movement cost for each re-homed block.

Model
-----
The trace is cut into ``num_epochs`` equal slices per thread. For
epoch ``e`` the placement is:

* ``oracle=False`` (reactive): the profile-optimal placement of epoch
  ``e-1`` (epoch 0 uses first-touch) — what an OS/hardware profiler
  could actually do;
* ``oracle=True``: the profile-optimal placement of epoch ``e``
  itself — the upper bound for epoch-granular re-placement.

Re-homing a block from core ``a`` to ``b`` moves one cache line over
the network: ``line-size`` payload, hop distance ``dist(a, b)``; the
total reconfiguration traffic is charged between epochs.

:func:`evaluate_dynamic_placement` returns per-epoch costs plus the
static-placement baseline, so benches can report when re-placement
pays off (phase-changing workloads) and when it does not (stable ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostModel
from repro.core.decision.base import DecisionScheme
from repro.core.evaluation import evaluate_scheme
from repro.placement.base import Placement
from repro.placement.first_touch import FirstTouchPlacement
from repro.placement.profile_opt import ProfileOptPlacement
from repro.trace.events import MultiTrace
from repro.util.errors import ConfigError


def slice_epochs(trace: MultiTrace, num_epochs: int) -> list[MultiTrace]:
    """Cut every thread's trace into ``num_epochs`` equal index slices."""
    if num_epochs < 1:
        raise ConfigError("num_epochs must be >= 1")
    epochs = []
    for e in range(num_epochs):
        threads = []
        for tr in trace.threads:
            lo = (tr.size * e) // num_epochs
            hi = (tr.size * (e + 1)) // num_epochs
            threads.append(tr[lo:hi])
        epochs.append(
            MultiTrace(
                threads=threads,
                thread_native_core=list(trace.thread_native_core),
                name=f"{trace.name}@epoch{e}",
                params=dict(trace.params),
            )
        )
    return epochs


def rehoming_traffic_bits(
    old: Placement, new: Placement, blocks: np.ndarray, cost_model: CostModel
) -> tuple[int, float]:
    """(bits moved, total transport cost) to re-home ``blocks``.

    Only blocks whose home changes move; each moves one line of
    ``block_words`` words plus a control header.
    """
    blocks = np.unique(np.asarray(blocks, dtype=np.int64))
    if blocks.size == 0:
        return 0, 0.0
    word_addrs = blocks * old.block_words
    src = old.home_of(word_addrs)
    dst = new.home_of(word_addrs)
    moved = src != dst
    if not moved.any():
        return 0, 0.0
    cfg = cost_model.config
    line_bits = old.block_words * cfg.word_bits + 64
    noc = cfg.noc
    flits = noc.message_flits(line_bits)
    hops = cost_model.topology.distance_matrix[src[moved], dst[moved]]
    bits = int(moved.sum()) * flits * noc.flit_bits
    per_hop = noc.router_latency + noc.link_latency
    cost = float((hops * per_hop + (flits - 1)).sum())
    return bits, cost


@dataclass
class DynamicPlacementResult:
    epoch_costs: list[float]
    rehoming_bits: int
    rehoming_cost: float
    static_cost: float
    migrations: int = 0
    remote_accesses: int = 0

    @property
    def total_cost(self) -> float:
        return sum(self.epoch_costs) + self.rehoming_cost

    @property
    def improvement_over_static(self) -> float:
        """>1 means dynamic re-placement won (cost ratio static/dynamic)."""
        return self.static_cost / self.total_cost if self.total_cost else float("inf")


def evaluate_dynamic_placement(
    trace: MultiTrace,
    num_cores: int,
    scheme: DecisionScheme,
    cost_model: CostModel,
    num_epochs: int = 4,
    oracle: bool = False,
    block_words: int = 16,
) -> DynamicPlacementResult:
    """Epoch-wise re-placement vs a single static first-touch placement."""
    epochs = slice_epochs(trace, num_epochs)
    static = FirstTouchPlacement(trace, num_cores, block_words)
    static_cost = evaluate_scheme(trace, static, scheme, cost_model).total_cost

    # hardware first-touch homes a block at its first access regardless
    # of epoch; blocks never re-homed keep that assignment, so the full
    # first-touch map is the base of the fallback chain
    current: Placement = static
    epoch_costs: list[float] = []
    total_bits = 0
    total_rehoming = 0.0
    migrations = remote = 0
    for e, epoch in enumerate(epochs):
        if e > 0:
            profile_src = epoch if oracle else epochs[e - 1]
            # unprofiled blocks keep their current homes (fallback chain)
            proposed = ProfileOptPlacement(
                profile_src, num_cores, block_words, fallback=current
            )
            touched = np.unique(
                np.concatenate(
                    [current.block_of(tr["addr"]) for tr in epoch.threads if tr.size]
                    or [np.zeros(0, dtype=np.int64)]
                )
            )
            bits, cost = rehoming_traffic_bits(current, proposed, touched, cost_model)
            total_bits += bits
            total_rehoming += cost
            current = proposed
        r = evaluate_scheme(epoch, current, scheme, cost_model)
        epoch_costs.append(r.total_cost)
        migrations += r.migrations
        remote += r.remote_accesses
    return DynamicPlacementResult(
        epoch_costs=epoch_costs,
        rehoming_bits=total_bits,
        rehoming_cost=total_rehoming,
        static_cost=static_cost,
        migrations=migrations,
        remote_accesses=remote,
    )
