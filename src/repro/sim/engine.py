"""Time-ordered event queue with deterministic execution.

Design notes
------------
* The heap holds ``(time, seq, Event)`` tuples, not bare events.
  ``seq`` is a monotonically increasing counter, which makes same-time
  events run in scheduling (FIFO) order — determinism matters because
  the protocol models break ties by arrival order. Because ``seq`` is
  unique, tuple comparison never reaches the third element, so heap
  sifts run entirely in C instead of calling ``Event.__lt__`` —
  millions of Python comparison calls removed from large runs.
* :class:`Event` is a ``__slots__`` class, not a dataclass: large NoC
  runs allocate millions of events, and per-instance ``__dict__``
  plus generated dataclass ``__init__`` overhead dominated profiles.
* Cancellation is lazy in the heap (cancelled events are skipped when
  popped) but eager in the bookkeeping: the engine keeps a live-event
  counter so :meth:`Engine.pending` is O(1) instead of scanning the
  whole heap per call.
* Callbacks schedule further events; the engine never inspects model
  state. This keeps the engine reusable for every architecture model.
* ``run()`` executes to quiescence (empty queue) or until ``until``;
  a ``max_events`` guard turns runaway protocol bugs into
  :class:`~repro.util.errors.DeadlockError`-adjacent diagnostics rather
  than silent infinite loops.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.util.errors import LivenessError, ReproError


class Event:
    """A scheduled callback. Ordered by (time, seq)."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        engine: "Engine | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{flag})"

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Idempotent; the owning engine's live-event counter is
        decremented exactly once.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._live -= 1


class Engine:
    """A minimal deterministic discrete-event simulator."""

    #: Liveness ceiling for ``run()`` when the caller sets no explicit
    #: ``max_events``: far above any legitimate run in this repo (the
    #: biggest benches execute low tens of millions of events), so a
    #: protocol livelock raises :class:`LivenessError` instead of
    #: spinning the test suite forever. Override on an instance (or
    #: pass ``max_events``) for genuinely larger simulations.
    DEFAULT_MAX_EVENTS: int = 200_000_000

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0  # scheduled and not yet executed or cancelled
        self.now: float = 0.0
        self.events_executed: int = 0

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Returns the :class:`Event`, which the caller may :meth:`Event.cancel`.
        """
        if delay < 0:
            raise ReproError(f"cannot schedule into the past (delay={delay})")
        when = self.now + delay
        seq = self._seq
        ev = Event(when, seq, callback, args, engine=self)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (when, seq, ev))
        return ev

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None if the queue is empty."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while self._queue:
            when, _, ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._live -= 1
            ev._engine = None  # late cancel() must not re-decrement
            self.now = when
            self.events_executed += 1
            ev.callback(*ev.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until quiescence, simulated time ``until``, or ``max_events``.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        The loop pops the heap directly (no peek-then-step double scan) —
        this is the innermost loop of every behavioral run.
        """
        queue = self._queue
        pop = heapq.heappop
        if until is None and max_events is None:
            # run-to-quiescence fast loop: one int compare per event is
            # the whole cost of the default liveness ceiling;
            # executed-count folded into the attribute once at the end
            ceiling = self.DEFAULT_MAX_EVENTS
            executed = 0
            try:
                while queue:
                    when, _, ev = pop(queue)  # no peek: nothing bounds the pop
                    if ev.cancelled:
                        continue
                    self._live -= 1
                    ev._engine = None
                    self.now = when
                    executed += 1
                    if executed > ceiling:
                        raise LivenessError(self._liveness_message(ceiling, ev))
                    ev.callback(*ev.args)
            finally:
                self.events_executed += executed
            return
        if max_events is None:
            # until-bounded loop: the horizon check is the only compare
            # per event (peek first — a too-late event stays queued)
            while queue:
                when, _, ev = queue[0]
                if ev.cancelled:
                    pop(queue)
                    continue
                if when > until:
                    self.now = until
                    return
                pop(queue)
                self._live -= 1
                ev._engine = None
                self.now = when
                self.events_executed += 1
                ev.callback(*ev.args)
            return
        if until is None:
            # max-events-bounded loop: nothing bounds time, so pop
            # directly; one counter compare per event
            executed = 0
            while queue:
                when, _, ev = pop(queue)
                if ev.cancelled:
                    continue
                self._live -= 1
                ev._engine = None
                self.now = when
                self.events_executed += 1
                ev.callback(*ev.args)
                executed += 1
                if executed >= max_events:
                    raise LivenessError(self._liveness_message(max_events, ev))
            return
        # both bounds set: the rare fully generic loop
        executed = 0
        while queue:
            when, _, ev = queue[0]
            if ev.cancelled:
                pop(queue)
                continue
            if when > until:
                self.now = until
                return
            pop(queue)
            self._live -= 1
            ev._engine = None
            self.now = when
            self.events_executed += 1
            ev.callback(*ev.args)
            executed += 1
            if executed >= max_events:
                raise LivenessError(self._liveness_message(max_events, ev))

    def _liveness_message(self, ceiling: int, ev: Event) -> str:
        cb = ev.callback
        name = getattr(cb, "__qualname__", None) or repr(cb)
        return (
            f"engine exceeded max_events={ceiling} at t={self.now}; "
            f"likely a protocol livelock (last scheduled callback: {name})"
        )

    def pending(self) -> int:
        """Number of (non-cancelled) events still queued. O(1): reads
        the live counter rather than scanning the heap."""
        return self._live
