"""Set-associative cache array (tag store + per-line metadata).

The array tracks presence, dirtiness, and an opaque ``state`` byte the
directory-CC baseline uses for MSI state. Data values are not stored —
all the paper's metrics are about *where* data lives and *what traffic
moves it*, not its contents.

Metadata is **columnar**: one flat numpy column per field (tag, dirty,
state, last-touch stamp) indexed by ``slot = set * ways + way``, plus a
``line_addr -> slot`` dict for O(1) presence. A machine with P cores
allocates the columns once through :class:`TileCacheStore` — shared
``(core, set * ways)`` matrices of which each core's array holds row
views — so per-tile cache state costs tens of bytes per line instead
of a ``CacheLine`` object, per-set dicts, and a policy list per set.

Replacement: true LRU keeps no policy objects at all — the victim is
the valid way with the smallest stamp, which is exactly the way an LRU
order list fronts (stamps come from one monotone per-array clock, so
ties cannot occur, and the victim is only consulted when the set is
full, i.e. after every way was touched at least once at its fill).
Non-LRU policies keep the per-set policy objects of the scalar design.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.arch.config import CacheConfig
from repro.arch.cache.replacement import ReplacementPolicy, make_policy


class EvictedLine(NamedTuple):
    """Snapshot of a line leaving the array (victim or invalidation).

    Plain Python values (never numpy scalars) so tags flowing into
    directory keys, latencies, and serialized results stay native.
    """

    tag: int
    dirty: bool = False
    state: int = 0  # protocol-specific (MSI state for the CC baseline)


class TileCacheStore:
    """Pooled columnar cache metadata for ``num_cores`` same-shaped arrays.

    One ``(num_cores, num_sets * ways)`` matrix per metadata column;
    :class:`CacheArray` instances built against a store hold row views,
    so a 4096-core machine's tag state is four matrices instead of
    4096 * num_sets Python dicts, line objects, and policy lists.
    """

    def __init__(self, num_cores: int, config: CacheConfig) -> None:
        slots = config.num_sets * config.associativity
        self.num_cores = num_cores
        self.config = config
        self.tags = np.full((num_cores, slots), -1, dtype=np.int64)
        self.dirty = np.zeros((num_cores, slots), dtype=bool)
        self.state = np.zeros((num_cores, slots), dtype=np.uint8)
        self.stamps = np.zeros((num_cores, slots), dtype=np.int64)

    @property
    def nbytes(self) -> int:
        return (
            self.tags.nbytes + self.dirty.nbytes
            + self.state.nbytes + self.stamps.nbytes
        )


class CacheArray:
    """A single set-associative cache level."""

    def __init__(
        self,
        config: CacheConfig,
        policy: str = "lru",
        store: TileCacheStore | None = None,
        core: int = 0,
    ) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self._line_shift = config.line_bytes.bit_length() - 1
        if store is not None:
            self.tags = store.tags[core]
            self.dirty = store.dirty[core]
            self.state = store.state[core]
            self.stamps = store.stamps[core]
            # cross-core windows scatter recency stamps into the pooled
            # matrix directly: this array's slots start at _flat_base in
            # the store's flattened (C-contiguous) stamp column
            self._store = store
            self._flat_base = core * (config.num_sets * config.associativity)
        else:
            slots = self.num_sets * self.ways
            self.tags = np.full(slots, -1, dtype=np.int64)
            self.dirty = np.zeros(slots, dtype=bool)
            self.state = np.zeros(slots, dtype=np.uint8)
            self.stamps = np.zeros(slots, dtype=np.int64)
            self._store = None
            self._flat_base = 0
        self._clock = 0
        # line_addr -> slot (= set * ways + way) for O(1) presence
        self._index: dict[int, int] = {}
        # True-LRU replacement is driven entirely by the stamp column;
        # other policies keep per-set policy objects (see module doc).
        self._policies: list[ReplacementPolicy] | None = (
            None
            if policy == "lru"
            else [make_policy(policy, self.ways) for _ in range(self.num_sets)]
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- address helpers ------------------------------------------------
    def line_addr(self, addr: int) -> int:
        """Address truncated to its cache-line base."""
        return addr >> self._line_shift

    def set_index(self, addr: int) -> int:
        return self.line_addr(addr) % self.num_sets

    def tag_of(self, addr: int) -> int:
        return self.line_addr(addr) // self.num_sets

    # -- operations ------------------------------------------------------
    def _touch(self, slot: int) -> None:
        self._clock += 1
        self.stamps[slot] = self._clock
        if self._policies is not None:
            self._policies[slot // self.ways].touch(slot % self.ways)

    def lookup(self, addr: int, touch: bool = True) -> int | None:
        """Return the resident line's slot (updating recency), or None.

        Updates hit/miss counters; use :meth:`probe` for a side-effect-
        free check. Callers read/mutate metadata through the columns
        (``arr.dirty[slot]``, ``arr.state[slot]``).
        """
        slot = self._index.get(addr >> self._line_shift)
        if slot is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            self._touch(slot)
        return slot

    def probe(self, addr: int) -> int | None:
        """Slot of the resident line, without counters or recency."""
        return self._index.get(addr >> self._line_shift)

    def fill(self, addr: int, dirty: bool = False, state: int = 0) -> EvictedLine | None:
        """Insert the line for ``addr``; return the victim line if one
        was evicted (caller decides whether a writeback is needed)."""
        line_addr = addr >> self._line_shift
        slot = self._index.get(line_addr)
        if slot is not None:  # refill of a resident line: update in place
            if dirty:
                self.dirty[slot] = True
            self.state[slot] = state
            self._touch(slot)
            return None

        si = line_addr % self.num_sets
        base = si * self.ways
        tags = self.tags
        victim: EvictedLine | None = None
        free = -1
        for s in range(base, base + self.ways):
            if tags[s] == -1:
                free = s
                break
        if free < 0:
            if self._policies is None:
                stamps = self.stamps
                free = base
                for s in range(base + 1, base + self.ways):
                    if stamps[s] < stamps[free]:
                        free = s
            else:
                free = base + self._policies[si].victim()
            vtag = int(tags[free])
            victim = EvictedLine(vtag, bool(self.dirty[free]), int(self.state[free]))
            del self._index[vtag * self.num_sets + si]
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1

        tags[free] = line_addr // self.num_sets
        self.dirty[free] = dirty
        self.state[free] = state
        self._index[line_addr] = free
        self._touch(free)
        return victim

    def invalidate(self, addr: int) -> EvictedLine | None:
        """Remove the line for ``addr`` (directory-CC invalidations).

        Returns a snapshot of the removed line, or None if absent.
        """
        slot = self._index.pop(addr >> self._line_shift, None)
        if slot is None:
            return None
        out = EvictedLine(
            int(self.tags[slot]), bool(self.dirty[slot]), int(self.state[slot])
        )
        self.tags[slot] = -1
        return out

    def occupancy(self) -> int:
        """Number of resident lines."""
        return len(self._index)

    def resident_addrs(self) -> list[int]:
        """Line base addresses currently resident (diagnostics/tests)."""
        return [la << self._line_shift for la in self._index]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")
