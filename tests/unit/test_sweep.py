"""Unit tests for sweep utilities."""

import math

import pytest

from repro.analysis.cache import ResultCache
from repro.analysis.sweep import geomean, grid, normalize, sweep, sweep_specs
from repro.spec import ExperimentSpec, MachineSpec, PlacementSpec, WorkloadSpec
from repro.util.errors import ConfigError


class TestGrid:
    def test_cartesian_product(self):
        pts = grid(a=[1, 2], b=["x", "y"])
        assert len(pts) == 4
        assert {(p["a"], p["b"]) for p in pts} == {(1, "x"), (1, "y"), (2, "x"), (2, "y")}

    def test_empty_grid_is_single_point(self):
        assert grid() == [{}]

    def test_empty_value_list_rejected(self):
        with pytest.raises(ConfigError):
            grid(a=[])

    def test_order_is_row_major(self):
        pts = grid(a=[1, 2], b=[10, 20])
        assert pts[0] == {"a": 1, "b": 10}
        assert pts[1] == {"a": 1, "b": 20}


class TestSweep:
    def test_merges_params_and_metrics(self):
        rows = sweep(grid(x=[1, 2]), lambda x: {"y": x * 10})
        assert rows == [{"x": 1, "y": 10}, {"x": 2, "y": 20}]

    def test_empty_points(self):
        assert sweep([], lambda: {}) == []

    def test_metric_key_collision_names_the_key(self):
        with pytest.raises(ConfigError, match="'x'"):
            sweep(grid(x=[1, 2]), lambda x: {"x": x, "y": 1})

    def test_workers_kwarg_preserves_rows(self):
        # closure callback -> degrades to serial; rows must be unchanged
        rows = sweep(grid(x=[1, 2, 3]), lambda x: {"y": x * 10}, workers=4)
        assert rows == [{"x": 1, "y": 10}, {"x": 2, "y": 20}, {"x": 3, "y": 30}]


def _base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        workload=WorkloadSpec(name="pingpong",
                              params={"num_threads": 4, "rounds": 8}),
        machine=MachineSpec(name="analytical", cores=4, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )


class TestSweepSpecs:
    POINTS = [{"scheme": "never-migrate"}, {"scheme": "always-migrate"},
              {"scheme": "history"}]

    def test_one_row_per_point_with_axis_labels(self):
        rows = sweep_specs(_base_spec(), self.POINTS)
        assert [r["scheme"] for r in rows] == [p["scheme"] for p in self.POINTS]
        for row in rows:
            assert "total_cost" in row and "migrations" in row

    def test_point_value_wins_metric_collision(self):
        # The analytical evaluator reports its own "scheme" metric (the
        # class's internal name); the sweep axis label must win.
        rows = sweep_specs(_base_spec(), [{"scheme": "never-migrate"}])
        assert rows[0]["scheme"] == "never-migrate"

    def test_parallel_rows_match_serial(self):
        serial = sweep_specs(_base_spec(), self.POINTS, workers=1)
        parallel = sweep_specs(_base_spec(), self.POINTS, workers=2)
        assert parallel == serial

    def test_cache_hits_on_second_run(self, tmp_path):
        cold = ResultCache(tmp_path)
        rows_cold = sweep_specs(_base_spec(), self.POINTS, cache=cold)
        assert cold.hits == 0 and cold.misses == len(self.POINTS)
        warm = ResultCache(tmp_path)
        rows_warm = sweep_specs(_base_spec(), self.POINTS, cache=warm)
        assert warm.hits == len(self.POINTS) and warm.misses == 0
        assert rows_warm == rows_cold

    def test_cache_extra_partitions_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep_specs(_base_spec(), self.POINTS[:1], cache=cache,
                    cache_extra={"trace": "v1"})
        again = ResultCache(tmp_path)
        sweep_specs(_base_spec(), self.POINTS[:1], cache=again,
                    cache_extra={"trace": "v2"})
        assert again.hits == 0  # different extra context, different key

    def test_unknown_point_key_rejected(self):
        with pytest.raises(ConfigError, match="sweep-spec key"):
            sweep_specs(_base_spec(), [{"sceme": "history"}])


class TestGeomean:
    def test_known_value(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_empty_nan(self):
        assert math.isnan(geomean([]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])
        with pytest.raises(ConfigError):
            geomean([-1.0])


class TestNormalize:
    def test_divides_by_baseline(self):
        rows = [{"c": 10}, {"c": 20}]
        normalize(rows, "c")
        assert rows[0]["c_norm"] == 1.0
        assert rows[1]["c_norm"] == 2.0

    def test_custom_baseline_row(self):
        rows = [{"c": 10}, {"c": 20}]
        normalize(rows, "c", baseline_row=1)
        assert rows[0]["c_norm"] == 0.5

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigError):
            normalize([{"c": 0}], "c")

    def test_bad_row_rejected(self):
        with pytest.raises(ConfigError):
            normalize([{"c": 1}], "c", baseline_row=5)
