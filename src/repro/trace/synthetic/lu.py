"""Blocked-LU workload (SPLASH-2 LU stand-in).

SPLASH-2 LU factors an ``n x n`` matrix of ``B x B`` blocks with a 2-D
scatter (cyclic) block-to-thread assignment. At step ``k``:

* the owner of diagonal block (k,k) factors it (local);
* owners of column blocks (i,k) and row blocks (k,j) update them,
  reading the diagonal block remotely (medium remote runs at one core);
* owners of trailing blocks (i,j) update them, reading blocks (i,k)
  and (k,j) remotely — two remote runs per trailing block update, at
  two different cores, separated by local writes.

This produces the classic LU pattern: remote runs of length ≈ B
(a block row) with high reuse of the pivot owner's core, plus a large
local-update volume.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("lu", "blocked-LU factorization workload (SPLASH-2 stand-in)")
class LUGenerator(WorkloadGenerator):
    name = "lu"

    def __init__(
        self,
        num_threads: int = 64,
        blocks: int = 8,  # matrix is blocks x blocks of B x B
        block_words: int = 64,  # words per block (B*B)
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if blocks <= 1:
            raise ConfigError("need at least a 2x2 block matrix")
        if block_words <= 0:
            raise ConfigError("block_words must be positive")
        self.blocks = blocks
        self.block_words = block_words
        self.matrix_base = self.space.shared_region(
            "matrix", blocks * blocks * block_words
        )
        # owner map + per-block access templates, hoisted out of the
        # per-thread emission loops
        idx = np.arange(blocks * blocks, dtype=np.int64)
        self._owner_flat = self._owner_of(idx // blocks, idx % blocks)
        words = np.arange(block_words, dtype=np.int64)
        self._read_tpl = words
        self._update_tpl = np.repeat(words, 2)
        self._update_writes = np.tile(np.array([0, 1], dtype=np.uint8), block_words)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "blocks": self.blocks,
            "block_words": self.block_words,
        }

    def _owner_of(self, bi, bj):
        """2-D cyclic block-to-thread map (as in SPLASH-2 contiguous LU);
        accepts scalars or arrays."""
        q = max(int(self.num_threads**0.5), 1)
        cols = self.num_threads // q
        if q * cols == self.num_threads:
            return (bi % q) * cols + (bj % cols)
        return (bi * self.blocks + bj) % self.num_threads

    def owner(self, bi: int, bj: int) -> int:
        return int(self._owner_flat[bi * self.blocks + bj])

    def block_base(self, bi: int, bj: int) -> int:
        return self.matrix_base + (bi * self.blocks + bj) * self.block_words

    def _read_block(self, bi: int, bj: int, b: TraceBuilder, stride: int = 1) -> None:
        words = self._read_tpl if stride == 1 else np.arange(
            0, self.block_words, stride, dtype=np.int64
        )
        b.emit(self.block_base(bi, bj) + words, writes=0, icounts=2)

    def _update_block(self, bi: int, bj: int, b: TraceBuilder) -> None:
        b.emit(
            self.block_base(bi, bj) + self._update_tpl,
            writes=self._update_writes,
            icounts=3,
        )

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        mine = np.nonzero(self._owner_flat == thread)[0].astype(np.int64)
        if mine.size == 0:
            return
        bases = self.matrix_base + mine * self.block_words
        b.emit((bases[:, None] + self._read_tpl[None, :]).ravel(), writes=1, icounts=1)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        owner = self._owner_flat
        B = self.blocks
        for k in range(B):
            # diagonal factorization by its owner
            if owner[k * B + k] == thread:
                self._update_block(k, k, b)
            # perimeter updates: read diag remotely, update own block
            for i in range(k + 1, B):
                if owner[i * B + k] == thread:
                    self._read_block(k, k, b)
                    self._update_block(i, k, b)
                if owner[k * B + i] == thread:
                    self._read_block(k, k, b)
                    self._update_block(k, i, b)
            # trailing submatrix updates
            for i in range(k + 1, B):
                row = owner[i * B + k + 1 : (i + 1) * B]
                for j in np.nonzero(row == thread)[0]:
                    jj = int(j) + k + 1
                    self._read_block(i, k, b)
                    self._read_block(k, jj, b)
                    self._update_block(i, jj, b)
