"""Vectorized block application of accesses to one set-associative level.

Two pieces back the epoch-batched fast path (:mod:`repro.core.epoch`):

* :class:`L1BlockKernel` — a numpy-state mirror of one
  :class:`~repro.arch.cache.sram.CacheArray` level that applies a whole
  block of (address, write) accesses and returns per-access hit bits
  plus the resulting replacement state. Presence, fill order, free-way
  selection, and LRU victim choice are exactly equivalent to driving
  ``CacheArray.lookup``/``fill`` one access at a time (the property
  tests assert this across associativities).
* :func:`frozen_hit_prefix` — classify how many upcoming accesses are
  *pure* hits against a live ``CacheArray``'s current (frozen) state.
  Pure hits mutate only recency and counters, never presence or
  protocol state, so a frozen-state classification of a hit prefix is
  exact: the first access that would miss (or needs a state change)
  ends the prefix and is handled by the event-driven slow path.
* :func:`apply_hit_prefix` — bulk-apply such a prefix to the live
  array: counters and final recency order (last-touch order of the
  distinct lines) identical to touching line by line.

The kernel (and the columnar :class:`CacheArray` itself) keeps stamps
instead of an explicit LRU list: the victim is the valid way with the
smallest last-touch stamp, which is the same line an LRU order list
fronts (stamps are drawn from one monotone counter, so ties cannot
occur).
"""

from __future__ import annotations

import numpy as np

from repro.arch.cache.sram import CacheArray, TileCacheStore
from repro.arch.config import CacheConfig


class L1BlockKernel:
    """Numpy-state set-associative cache level with block application."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self.line_shift = config.line_bytes.bit_length() - 1
        self.tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self.valid = np.zeros((self.num_sets, self.ways), dtype=bool)
        self.dirty = np.zeros((self.num_sets, self.ways), dtype=bool)
        self.stamps = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- block application ------------------------------------------------
    def apply(self, addrs: np.ndarray, writes: np.ndarray) -> np.ndarray:
        """Apply a block of byte-address accesses; return per-access hit bits.

        The decode (line/set/tag split) is vectorized; the presence walk
        is sequential because each fill depends on the previous one's
        replacement decision — exactly the dependency a real cache has.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        lines = addrs >> self.line_shift
        sis = (lines % self.num_sets).astype(np.int64)
        tgs = lines // self.num_sets
        hits = np.zeros(len(addrs), dtype=bool)
        tags, valid, dirty, stamps = self.tags, self.valid, self.dirty, self.stamps
        clock = self._clock
        for i in range(len(addrs)):
            si = sis[i]
            tag = tgs[i]
            row_valid = valid[si]
            match = np.flatnonzero(row_valid & (tags[si] == tag))
            if match.size:
                way = match[0]
                hits[i] = True
                self.hits += 1
            else:
                self.misses += 1
                free = np.flatnonzero(~row_valid)
                if free.size:
                    way = free[0]
                else:
                    way = int(np.argmin(stamps[si]))
                    self.evictions += 1
                tags[si, way] = tag
                valid[si, way] = True
                dirty[si, way] = False
            if writes[i]:
                dirty[si, way] = True
            clock += 1
            stamps[si, way] = clock
        self._clock = clock
        return hits

    # -- introspection ----------------------------------------------------
    def resident_lines(self) -> set[int]:
        """Line base addresses currently resident (for parity checks)."""
        out = set()
        for si in range(self.num_sets):
            for w in range(self.ways):
                if self.valid[si, w]:
                    out.add(int(self.tags[si, w] * self.num_sets + si) << self.line_shift)
        return out


def frozen_hit_prefix(
    arr: CacheArray,
    lines: np.ndarray,
    writes: np.ndarray | None = None,
    states_ok_write: tuple[int, ...] | None = None,
    states_ok_read: tuple[int, ...] | None = None,
) -> int:
    """Length of the pure-hit prefix of ``lines`` against ``arr`` now.

    ``lines`` are line addresses (byte address >> line shift). With no
    state filters, a hit is simple presence (the migration machines'
    L1). With filters, the resident line's protocol ``state`` must be
    in the allowed tuple for the access type (the CC driver's hit
    predicate). The block is compressed to same-line runs and each run
    is probed once against the frozen slot index, in order.
    """
    n = len(lines)
    if n == 0:
        return 0
    # trace blocks are run-structured (consecutive words of one line),
    # so compress to same-line runs and probe each run once, in order —
    # cheaper than a sort-based unique and short-circuits at the miss
    starts = np.concatenate(
        ([0], np.flatnonzero(lines[1:] != lines[:-1]) + 1)
    )
    run_lines = lines[starts].tolist()
    index = arr._index
    if states_ok_write is None:
        for pos, la in zip(starts.tolist(), run_lines):
            if index.get(la) is None:
                return pos
        return n
    states = arr.state
    writes = np.asarray(writes, dtype=bool)
    bounds = starts.tolist() + [n]
    for j, la in enumerate(run_lines):
        slot = index.get(la)
        if slot is None:
            return bounds[j]
        st = states[slot]
        ok_w = st in states_ok_write
        ok_r = st in states_ok_read
        if ok_w and ok_r:
            continue
        if not (ok_w or ok_r):
            return bounds[j]
        # state allows only one access type: the prefix ends at the
        # run's first access of the disallowed type, if any
        seg = writes[bounds[j] : bounds[j + 1]]
        bad = np.flatnonzero(seg if ok_r else ~seg)
        if bad.size:
            return bounds[j] + int(bad[0])
    return n


def frozen_service_prefix(hier, lines: np.ndarray, writes: np.ndarray):
    """Length of the pure-service prefix of ``lines`` against ``hier``
    (a :class:`~repro.arch.cache.hierarchy.CacheHierarchy`), plus the
    positions that fill from L2.

    Extends :func:`frozen_hit_prefix` across deterministic L2 hits: an
    L1 miss is still *pure* when the line is L2-resident and the L1
    slot it fills is free or holds a clean victim under true LRU — then
    ``access_no_mem`` drops the victim instead of spilling it, so L2
    presence stays frozen for the rest of the prefix and the whole
    classification remains exact against today's state. The first
    access that would fill from DRAM or evict a dirty L1 line ends the
    prefix. Requires true-LRU L1 replacement (the caller gates on it).

    Presence, dirtiness, and recency are evolved in a lazy tag-level
    model per touched set, seeded from the live columns; L2 is only
    ever probed, never modeled, because the prefix cannot change it.
    Returns ``(n, fills)`` with ``fills`` the access indices (run
    starts) that fill from L2 — every other access in the prefix is an
    L1 hit.
    """
    n = len(lines)
    if n == 0:
        return 0, []
    l1 = hier.l1
    l2 = hier.l2
    num_sets = l1.num_sets
    ways = l1.ways
    l1_tags, l1_dirty, l1_stamps = l1.tags, l1.dirty, l1.stamps
    l2_index, l2_dirty = l2._index, l2.dirty
    starts = np.concatenate(
        ([0], np.flatnonzero(lines[1:] != lines[:-1]) + 1)
    )
    run_lines = lines[starts].tolist()
    # a line written anywhere in its run ends the run dirty, exactly as
    # the scalar walk's fill + memoized hit-writes would leave it
    wflags = np.maximum.reduceat(np.asarray(writes, dtype=bool), starts).tolist()
    bounds = starts.tolist() + [n]
    fills: list[int] = []
    # si -> [tag -> dirty, LRU order (front = victim), free ways]
    models: dict[int, list] = {}
    for j, la in enumerate(run_lines):
        si = la % num_sets
        tag = la // num_sets
        model = models.get(si)
        if model is None:
            # seed from the valid slots of the set, in ascending-stamp
            # order — exactly the LRU order list filtered to valid ways
            # (invalidated ways linger only as -1 tags, and a refill
            # touches, so a valid way's stamp is its order position)
            base = si * ways
            pres = {}
            valid = []
            for s in range(base, base + ways):
                t = int(l1_tags[s])
                if t != -1:
                    pres[t] = bool(l1_dirty[s])
                    valid.append(s)
            valid.sort(key=l1_stamps.__getitem__)
            order = [int(l1_tags[s]) for s in valid]
            model = models[si] = [pres, order, ways - len(pres)]
        pres, order, free = model
        if tag in pres:
            if order[-1] != tag:  # LRUPolicy.touch, tag-level
                order.remove(tag)
                order.append(tag)
            if wflags[j]:
                pres[tag] = True
            continue
        w2 = l2_index.get(la)
        if w2 is None:
            return bounds[j], fills  # DRAM fill: hard boundary
        if free:
            model[2] = free - 1
        else:
            victim = order[0]
            if pres[victim]:
                return bounds[j], fills  # dirty victim would spill to L2
            del order[0]
            del pres[victim]
        # the live fill's dirty bit is (L2 copy dirty) or (first write),
        # then hit-writes in the rest of the run accumulate — the net is
        # the run's write flag. The L2 dirty bit read here is the
        # pre-prefix value, which is exact: a line filled twice within
        # one prefix had a clean first copy (else its eviction would
        # have ended the prefix), so the bit was already False.
        pres[tag] = bool(l2_dirty[w2]) or wflags[j]
        order.append(tag)
        fills.append(bounds[j])
    return n, fills


def apply_hit_prefix(arr: CacheArray, lines: np.ndarray, writes: np.ndarray | None = None):
    """Bulk-apply ``len(lines)`` pure hits to ``arr``.

    Equivalent to ``arr.lookup(line << shift)`` per access: the hit
    counter advances by the block size and the final recency order is
    the last-touch order of the distinct lines (touching a line twice
    leaves only the later touch visible to LRU). With ``writes``, a
    line written anywhere in the block is marked dirty (hit-write
    semantics of the migration machines' L1). Returns the slot of the
    final access, for the caller's same-line memo.
    """
    n = len(lines)
    if n == 0:
        return None
    arr.hits += n
    # compress to same-line runs; the distinct last-touch order is then
    # the last-occurrence order over the short run sequence, which an
    # insertion-ordered dict with re-insertion produces directly
    starts = np.concatenate(
        ([0], np.flatnonzero(lines[1:] != lines[:-1]) + 1)
    )
    run_lines = lines[starts].tolist()
    ordered = {}
    if writes is None:
        for la in run_lines:
            ordered[la] = ordered.pop(la, False)
    else:
        flags = np.maximum.reduceat(np.asarray(writes, dtype=bool), starts)
        for la, f in zip(run_lines, flags.tolist()):
            ordered[la] = ordered.pop(la, False) or f
    index = arr._index
    stamps = arr.stamps
    dirty = arr.dirty
    policies = arr._policies
    ways = arr.ways
    clock = arr._clock
    last = None
    for la, f in ordered.items():
        slot = index[la]
        clock += 1
        stamps[slot] = clock
        if policies is not None:
            policies[slot // ways].touch(slot % ways)
        last = slot
        if f:
            dirty[slot] = True
    arr._clock = clock
    return last


def apply_hit_windows(store: TileCacheStore, jobs: list) -> list:
    """Bulk-apply one cross-core window of pure hits in one kernel call.

    ``jobs`` is a non-empty list of ``(arr, lines, writes)`` triples —
    one per participating core, each the concatenated pure-hit run of
    that core's threads inside the window, in the core's exact access
    order (``lines`` non-empty; ``writes`` is a bool column or None
    for read-semantics hits). Per-array effects are identical to
    calling :func:`apply_hit_prefix` job by job — hit counters, dirty
    bits, final recency order, and per-array clocks all match bit for
    bit — but the recency-stamp stores of *every* core are gathered
    into one fancy-indexed scatter over the pooled
    :class:`~repro.arch.cache.sram.TileCacheStore` stamp matrix: one
    kernel invocation per window instead of one numpy scalar store per
    distinct line per core. Requires store-backed true-LRU arrays (no
    per-set policy objects); callers gate on that. Returns the slot of
    each job's final access, for per-core same-line memos.
    """
    # the store matrices are C-contiguous, so the flattened stamps are
    # a writable view and arr._flat_base + slot addresses core rows
    flat_stamps = store.stamps.reshape(-1)
    idx_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    lasts: list[int] = []
    for arr, lines, writes in jobs:
        n = len(lines)
        arr.hits += n
        starts = np.concatenate(
            ([0], np.flatnonzero(lines[1:] != lines[:-1]) + 1)
        )
        run_lines = lines[starts].tolist()
        ordered = {}
        if writes is None:
            for la in run_lines:
                ordered[la] = ordered.pop(la, False)
        else:
            flags = np.maximum.reduceat(np.asarray(writes, dtype=bool), starts)
            for la, f in zip(run_lines, flags.tolist()):
                ordered[la] = ordered.pop(la, False) or f
        index = arr._index
        dirty = arr.dirty
        slots: list[int] = []
        append = slots.append
        last = None
        for la, f in ordered.items():
            slot = index[la]
            append(slot)
            if f:
                dirty[slot] = True
            last = slot
        k = len(slots)
        clock = arr._clock
        idx_parts.append(arr._flat_base + np.asarray(slots, dtype=np.int64))
        val_parts.append(np.arange(clock + 1, clock + k + 1, dtype=np.int64))
        arr._clock = clock + k
        lasts.append(last)
    if len(idx_parts) == 1:
        flat_stamps[idx_parts[0]] = val_parts[0]
    else:
        flat_stamps[np.concatenate(idx_parts)] = np.concatenate(val_parts)
    return lasts
