"""Data placement: the address -> home-core map.

Under EM² every address is cacheable at exactly one core (its *home*);
"since migrations depend on the assignment of addresses to per-core
caches, a good data placement method ... is critical" (§2). The paper
uses first-touch (Figure 2 caption); we also provide striped placement
(the pessimal baseline) and an oracle most-frequent-accessor optimizer
(an idealization of the OS/profile-driven schemes of [11, 12]).

A placement maps *blocks* (cache lines by default) to cores and
supports vectorized lookup over whole traces.
"""

from repro.placement.base import Placement
from repro.placement.first_touch import FirstTouchPlacement, first_touch
from repro.placement.striped import StripedPlacement, striped
from repro.placement.profile_opt import ProfileOptPlacement, profile_optimal

__all__ = [
    "Placement",
    "FirstTouchPlacement",
    "StripedPlacement",
    "ProfileOptPlacement",
    "first_touch",
    "striped",
    "profile_optimal",
]
