"""Optimal per-migration stack depths for stack-EM² (§4).

The paper: "to evaluate such schemes, we can use the same analytical
model described for the EM²-RA case and a similar optimization
formulation to compute the optimal stack depths (instead of the binary
migrate-vs-RA decision, the algorithm considers the various stack
depths)".

Model
-----
Every access executes at its home core (pure EM², no RA). A thread's
stack memory is homed at its **native** core; a migration carries the
top ``delta`` stack entries (``0 <= delta <= K``, the guest stack-cache
window). Traces carry per-access segment stack activity: ``spop``
entries consumed and ``spush`` produced by the instructions *preceding*
each access.

State space: NATIVE (at the native core, full stack local) or
GUEST(c, d) — at core ``c != native`` holding ``d`` valid entries.

Per access, two phases:

1. **segment**: at NATIVE, free. At GUEST(c, d):
   * ``spop > d`` → **underflow**: the thread migrates back to its
     native core carrying its ``d`` entries (the paper's "the offending
     thread will automatically migrate back to its native core"),
     then runs the segment there for free → NATIVE;
   * else ``d' = d - spop + spush``; ``d' > K`` → **overflow**:
     migrate home carrying the full window ``K`` → NATIVE;
   * else → GUEST(c, d').
2. **access at home h**: states not at ``h`` must migrate there:
   * NATIVE → GUEST(h, delta), any ``delta`` (stack memory is local,
     nothing to flush): cost ``mig_base(n0,h) + ser(delta)``;
   * GUEST(c, d) → GUEST(h, delta ≤ d): carry ``delta``, **flush** the
     remaining ``d - delta`` entries to the native stack memory as a
     separate message (the paper's "flush the rest to the stack memory
     prior to migration"): cost ``mig_base(c,h) + ser(delta) +
     flush(c, d - delta)``;
   * GUEST(c, d) → NATIVE (h == native): carry everything home:
     ``mig_base(c,n0) + ser(d)``;
   * already at ``h``: free.

``ser(delta)`` is the wormhole serialization of a context of
``pc+status + delta*word`` bits; ``mig_base`` is fixed overhead + hop
latency; ``flush`` is a one-way message of ``f`` words to the native
core. All from :class:`~repro.core.costs.CostModel`'s config.

Complexity: O(N * P * K^2) with small constants (vectorized over the
(P, K+1) state table per access); reconstruction stores O(K) ints per
access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostModel
from repro.util.errors import ConfigError

_INF = np.inf
_NATIVE = -1  # state id for the native state


@dataclass
class StackOptimalResult:
    total_cost: float
    depths: np.ndarray  # (N,) carried depth per access; -1 = no migration
    migrations: int
    forced_returns: int  # underflow/overflow round trips home
    migrated_bits: int  # total context bits carried by migrations

    @property
    def mean_migrated_depth(self) -> float:
        m = self.depths[self.depths >= 0]
        return float(m.mean()) if m.size else float("nan")


class _StackCosts:
    """Precomputed cost pieces shared by the DP and the fixed scheme."""

    def __init__(self, cost_model: CostModel, native: int, max_depth: int) -> None:
        cfg = cost_model.config
        topo = cost_model.topology
        P = cfg.num_cores
        if not (0 <= native < P):
            raise ConfigError(f"native core {native} out of range")
        if max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        self.P, self.K, self.native = P, max_depth, native
        per_hop = cfg.noc.router_latency + cfg.noc.link_latency
        hops = topo.distance_matrix.astype(np.float64)
        self.mig_base = cfg.cost.migration_fixed + hops * per_hop  # (P, P)
        # serialization of a stack context carrying depth d
        self.ser = np.array(
            [
                cfg.noc.message_flits(cfg.context.stack_context_bits(d)) - 1
                for d in range(max_depth + 1)
            ],
            dtype=np.float64,
        )
        # flush of f words from core c to native: one-way data message
        word = cfg.word_bits
        self.flush = np.zeros((P, max_depth + 1), dtype=np.float64)
        for f in range(1, max_depth + 1):
            self.flush[:, f] = (
                cfg.cost.remote_access_fixed
                + hops[:, native] * per_hop
                + (cfg.noc.message_flits(64 + f * word) - 1)
            )
        self.ctx_bits = np.array(
            [cfg.context.stack_context_bits(d) for d in range(max_depth + 1)],
            dtype=np.int64,
        )


def _validate_stack_trace(homes, spops, spushes, K):
    homes = np.asarray(homes, dtype=np.int64)
    spops = np.asarray(spops, dtype=np.int64)
    spushes = np.asarray(spushes, dtype=np.int64)
    if not (homes.shape == spops.shape == spushes.shape) or homes.ndim != 1:
        raise ConfigError("homes/spops/spushes must be 1-D arrays of equal length")
    if spops.size and (spops.max() > K or spushes.max() > K):
        raise ConfigError(
            f"segment stack activity exceeds window K={K}; "
            "increase max_depth or regenerate the trace"
        )
    return homes, spops, spushes


def optimal_stack_depths(
    homes: np.ndarray,
    spops: np.ndarray,
    spushes: np.ndarray,
    native: int,
    cost_model: CostModel,
    max_depth: int = 8,
) -> StackOptimalResult:
    """DP over (location, held depth) minimizing total network cost."""
    C = _StackCosts(cost_model, native, max_depth)
    homes, spops, spushes = _validate_stack_trace(homes, spops, spushes, C.K)
    P, K, n0 = C.P, C.K, C.native
    N = homes.size

    guest = np.full((P, K + 1), _INF)  # guest[c, d]; row n0 unused (inf)
    nat = 0.0  # thread starts at its native core
    depth_axis = np.arange(K + 1, dtype=np.int64)

    # reconstruction logs
    ph1_nat_pred = np.full(N, _NATIVE, dtype=np.int32)  # best guest feeding native in ph1
    ph2_pred = np.full((N, K + 1), _NATIVE, dtype=np.int32)  # pred state of (h, delta)
    ph2_nat_pred = np.full(N, _NATIVE, dtype=np.int32)  # pred when h == native

    def sid(c, d):  # state id
        return c * (K + 1) + d

    for k in range(N):
        h = int(homes[k])
        spop = int(spops[k])
        spush = int(spushes[k])
        delta_shift = spush - spop

        # ---- phase 1: segment execution --------------------------------
        new_guest = np.full((P, K + 1), _INF)
        # surviving guests: d >= spop and d + shift <= K
        lo = spop
        hi = K - max(delta_shift, 0) if delta_shift > 0 else K
        # valid source depths: lo..hi (inclusive), target depth = d + shift
        forced_cost = _INF
        forced_pred = _NATIVE
        if lo <= hi:
            src = guest[:, lo : hi + 1]
            new_guest[:, lo + delta_shift : hi + delta_shift + 1] = src
        # underflow: d < spop  → home carrying d
        if spop > 0:
            under = guest[:, :spop] + C.mig_base[:, n0][:, None] + C.ser[:spop][None, :]
            idx = int(np.argmin(under))
            if under.flat[idx] < forced_cost:
                forced_cost = under.flat[idx]
                forced_pred = sid(idx // spop, idx % spop)
        # overflow: d > hi (only when shift > 0) → home carrying K
        if delta_shift > 0 and hi < K:
            over = guest[:, hi + 1 :] + C.mig_base[:, n0][:, None] + C.ser[K]
            idx = int(np.argmin(over))
            if over.flat[idx] < forced_cost:
                forced_cost = over.flat[idx]
                ncols = K - hi
                forced_pred = sid(idx // ncols, hi + 1 + idx % ncols)
        new_nat = nat
        if forced_cost < new_nat:
            new_nat = forced_cost
            ph1_nat_pred[k] = forced_pred

        # ---- phase 2: execute access at home h ---------------------------
        if h == n0:
            # everyone must come home; guests carry all their entries
            cand = new_guest + C.mig_base[:, n0][:, None] + C.ser[None, :]
            idx = int(np.argmin(cand))
            best_guest_cost = cand.flat[idx]
            if best_guest_cost < new_nat:
                nat = float(best_guest_cost)
                ph2_nat_pred[k] = sid(idx // (K + 1), idx % (K + 1))
            else:
                nat = float(new_nat)
                ph2_nat_pred[k] = _NATIVE
            guest = np.full((P, K + 1), _INF)
        else:
            final = np.full(K + 1, _INF)
            pred = np.full(K + 1, _NATIVE, dtype=np.int32)
            # stay: already at (h, d)
            stay = new_guest[h]
            better = stay < final
            final = np.where(better, stay, final)
            pred[better] = sid(h, depth_axis[better])
            # from native: any delta
            from_nat = new_nat + C.mig_base[n0, h] + C.ser
            better = from_nat < final
            final = np.where(better, from_nat, final)
            pred[better] = _NATIVE
            # from other guests (c != h, c != n0): carry delta <= d, flush rest
            # tensor [c, d, delta] = cost + mig_base[c,h] + ser[delta] + flush[c, d-delta]
            gcost = new_guest.copy()
            gcost[h] = _INF  # staying handled above
            d_grid = depth_axis[:, None]
            delta_grid = depth_axis[None, :]
            valid = delta_grid <= d_grid  # (d, delta)
            fidx = np.where(valid, d_grid - delta_grid, 0)  # flush amount
            # cand[c, d, delta]
            cand = (
                gcost[:, :, None]
                + C.mig_base[:, h][:, None, None]
                + C.ser[None, None, :]
                + C.flush[:, fidx]  # (P, d, delta) via fancy indexing on axis 1
            )
            cand = np.where(valid[None, :, :], cand, _INF)
            flat = cand.reshape(-1, K + 1)  # (P*(K+1), delta)
            best_idx = np.argmin(flat, axis=0)
            best_cost = flat[best_idx, depth_axis]
            better = best_cost < final
            final = np.where(better, best_cost, final)
            pred[better] = best_idx[better].astype(np.int32)  # state id = c*(K+1)+d
            guest = np.full((P, K + 1), _INF)
            guest[h] = final
            nat = _INF
            ph2_pred[k] = pred

    # ---- select end state & reconstruct ---------------------------------
    end_guest_idx = int(np.argmin(guest))
    end_guest_cost = guest.flat[end_guest_idx]
    if nat <= end_guest_cost:
        total = float(nat)
        cur = _NATIVE
    else:
        total = float(end_guest_cost)
        cur = end_guest_idx

    depths = np.full(N, -1, dtype=np.int64)
    migrations = 0
    forced = 0
    bits = 0
    for k in range(N - 1, -1, -1):
        h = int(homes[k])
        spop = int(spops[k])
        spush = int(spushes[k])
        shift = spush - spop
        # invert phase 2
        if h == n0:
            assert cur == _NATIVE
            prev2 = int(ph2_nat_pred[k])
            if prev2 != _NATIVE:
                migrations += 1
                depths[k] = prev2 % (K + 1)
                bits += int(C.ctx_bits[prev2 % (K + 1)])
        else:
            assert cur != _NATIVE and cur // (K + 1) == h
            delta = cur % (K + 1)
            prev2 = int(ph2_pred[k, delta])
            if prev2 == _NATIVE or prev2 // (K + 1) != h:
                migrations += 1
                depths[k] = delta
                bits += int(C.ctx_bits[delta])
        # invert phase 1: prev2 is the post-phase1 state
        if prev2 == _NATIVE:
            p1 = int(ph1_nat_pred[k])
            if p1 != _NATIVE:
                forced += 1
                carried = min(p1 % (K + 1), K)
                bits += int(C.ctx_bits[carried])
                cur = p1
            else:
                cur = _NATIVE
        else:
            c, d_post = prev2 // (K + 1), prev2 % (K + 1)
            cur = sid(c, d_post - shift)  # undo the segment shift

    return StackOptimalResult(
        total_cost=total,
        depths=depths,
        migrations=migrations,
        forced_returns=forced,
        migrated_bits=bits,
    )


def fixed_depth_cost(
    homes: np.ndarray,
    spops: np.ndarray,
    spushes: np.ndarray,
    native: int,
    cost_model: CostModel,
    depth: int,
    max_depth: int = 8,
) -> StackOptimalResult:
    """Sequential evaluation of the 'always carry ``depth``' scheme.

    The hardware-trivial baseline: every migration carries
    ``min(depth, available)`` entries. Underflow/overflow semantics
    identical to the DP, so its cost is directly comparable (and, by
    optimality, always >= the DP's).
    """
    C = _StackCosts(cost_model, native, max_depth)
    homes, spops, spushes = _validate_stack_trace(homes, spops, spushes, C.K)
    if not (0 <= depth <= C.K):
        raise ConfigError(f"depth must be in [0, {C.K}]")
    n0, K = C.native, C.K

    at_native = True
    c, d = n0, 0
    total = 0.0
    migrations = 0
    forced = 0
    bits = 0
    depths = np.full(homes.size, -1, dtype=np.int64)

    for k in range(homes.size):
        h = int(homes[k])
        spop = int(spops[k])
        spush = int(spushes[k])
        # phase 1: segment
        if not at_native:
            if spop > d:  # underflow
                total += C.mig_base[c, n0] + C.ser[d]
                bits += int(C.ctx_bits[d])
                forced += 1
                at_native = True
            else:
                d2 = d - spop + spush
                if d2 > K:  # overflow
                    total += C.mig_base[c, n0] + C.ser[K]
                    bits += int(C.ctx_bits[K])
                    forced += 1
                    at_native = True
                else:
                    d = d2
        # phase 2: access at h
        if h == n0:
            if not at_native:
                total += C.mig_base[c, n0] + C.ser[d]
                bits += int(C.ctx_bits[d])
                migrations += 1
                depths[k] = d
                at_native = True
        else:
            if at_native:
                carry = depth
                total += C.mig_base[n0, h] + C.ser[carry]
                bits += int(C.ctx_bits[carry])
                migrations += 1
                depths[k] = carry
                at_native, c, d = False, h, carry
            elif c != h:
                carry = min(depth, d)
                fl = d - carry
                total += C.mig_base[c, h] + C.ser[carry]
                if fl > 0:
                    total += C.flush[c, fl]
                bits += int(C.ctx_bits[carry])
                migrations += 1
                depths[k] = carry
                c, d = h, carry
    return StackOptimalResult(
        total_cost=total,
        depths=depths,
        migrations=migrations,
        forced_returns=forced,
        migrated_bits=bits,
    )
