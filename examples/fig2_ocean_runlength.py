#!/usr/bin/env python
"""Reproduce Figure 2: run lengths of accesses to non-native cores.

Paper setup (caption of Fig. 2): SPLASH-2 OCEAN, 64 cores / 64
threads, 16 KB L1 + 64 KB L2 data caches, first-touch placement.
Claim: about half of the accesses to remotely-homed memory sit in runs
of length 1 (the thread migrates away after a single reference), and
the other half in long runs.

This script prints the figure's series (accesses contributed per run
length) as a table plus an ASCII bar chart.

Run:  python examples/fig2_ocean_runlength.py
"""

from repro import SystemConfig, first_touch, make_workload, run_length_histogram
from repro.analysis.reports import runlength_table
from repro.trace.runlength import fraction_single_access_runs, merge_histograms


def main() -> None:
    config = SystemConfig(num_cores=64)
    print("generating ocean workload at paper scale (64 threads)...")
    trace = make_workload("ocean", num_threads=64, grid_n=386, iterations=2)
    placement = first_touch(trace, config.num_cores)

    hists = []
    for t, tr in enumerate(trace.threads):
        homes = placement.home_of(tr["addr"])
        hists.append(run_length_histogram(homes, trace.thread_native_core[t]))
    hist = merge_histograms(hists)

    print(runlength_table(hist, max_rows=25))
    frac1 = fraction_single_access_runs(hist)
    print(f"\nfraction of non-native accesses in runs of length 1: {frac1:.1%}")
    print('paper: "about half of the accesses migrate after one memory reference"')

    # ASCII rendition of the figure (log-ish bucketing)
    print("\naccesses contributed per run-length bucket:")
    buckets = [(1, 1), (2, 4), (5, 16), (17, 64), (65, 256), (257, 1 << 30)]
    for lo, hi in buckets:
        mass = sum(c for v, c in hist.bins().items() if lo <= v <= hi)
        bar = "#" * int(60 * mass / hist.count)
        label = f"{lo}" if lo == hi else f"{lo}-{hi if hi < 1 << 29 else ''}"
        print(f"  {label:>9} | {bar} {mass / hist.count:.1%}")


if __name__ == "__main__":
    main()
