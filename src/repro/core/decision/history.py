"""History-based decision schemes.

Figure 2 shows the decisive statistic is the *run length* at the
remote core: length-1 runs should use RA, long runs should migrate.
A hardware unit can't see the future, but run lengths are strongly
repetitive (stencil codes revisit the same boundary in the same way
every iteration), so last-value prediction on the observed run length
is the natural learned scheme — this is the flavour of scheme the
paper's conclusion says the model is built to evaluate.

:class:`HistoryRunLength` keeps a small direct-mapped table indexed by
home core: it records the length of the last completed remote run at
that home and migrates when the prediction meets the break-even
threshold (2 x migration / remote-access, from the cost model).
"""

from __future__ import annotations

from repro.core.decision.base import Decision, DecisionScheme
from repro.registry import SCHEMES
from repro.util.errors import ConfigError


class PerHomePredictor:
    """Direct-mapped last-run-length table, indexed by home core.

    ``table_size`` models a finite hardware table (homes alias when
    P > table_size); a real implementation would index by PC or
    address region — home-core indexing is the cheapest useful choice.
    """

    def __init__(self, table_size: int = 64, initial: float = 1.0) -> None:
        if table_size <= 0:
            raise ConfigError("table_size must be positive")
        self.table_size = table_size
        self.initial = initial
        self._table = [initial] * table_size

    def predict(self, home: int) -> float:
        return self._table[home % self.table_size]

    def update(self, home: int, run_length: int) -> None:
        self._table[home % self.table_size] = float(run_length)

    def reset(self) -> None:
        self._table = [self.initial] * self.table_size


class HistoryRunLength(DecisionScheme):
    """Migrate when the predicted run length >= ``threshold``.

    ``threshold`` should be the migration/RA break-even run length
    (:meth:`repro.core.costs.CostModel.break_even_run_length`); a
    scalar threshold keeps the hardware a single comparator.

    Run-length tracking: the scheme watches the stream of (current,
    home) pairs via :meth:`observe`. A run at core h starts when the
    thread begins accessing home h and ends at the first access homed
    elsewhere; its length updates the predictor.
    """

    name = "history-runlength"

    def __init__(
        self,
        threshold: float,
        table_size: int = 64,
        initial_prediction: float = 1.0,
    ) -> None:
        if threshold < 0:
            raise ConfigError("threshold must be >= 0")
        self.threshold = threshold
        self.table_size = table_size
        self.initial_prediction = initial_prediction
        self.predictor = PerHomePredictor(table_size, initial_prediction)
        self._run_home: int | None = None
        self._run_len = 0

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        if self.predictor.predict(home) >= self.threshold:
            return Decision.MIGRATE
        return Decision.REMOTE

    def observe(self, current: int, home: int, addr: int, write: bool, decision: Decision) -> None:
        if home == self._run_home:
            self._run_len += 1
            return
        if self._run_home is not None:
            self.predictor.update(self._run_home, self._run_len)
        self._run_home = home
        self._run_len = 1

    def reset(self) -> None:
        self.predictor.reset()
        self._run_home = None
        self._run_len = 0

    def clone(self) -> "HistoryRunLength":
        return HistoryRunLength(self.threshold, self.table_size, self.initial_prediction)


class AddressIndexedHistory(DecisionScheme):
    """Run-length prediction indexed by address *block*, not home core.

    The EM² hardware predictors index their tables by instruction or
    data address rather than destination core: two different data
    structures homed at the same core can have very different run
    behaviours (e.g. a lock word vs a boundary row), which a per-home
    table conflates. The table is direct-mapped over address blocks
    (aliasing models finite hardware), and runs are tracked per
    (block-of-first-access) so a run's length updates the entry that
    predicted it.
    """

    name = "addr-history"

    def __init__(
        self,
        threshold: float,
        table_size: int = 256,
        block_words: int = 16,
        initial_prediction: float = 1.0,
    ) -> None:
        if threshold < 0:
            raise ConfigError("threshold must be >= 0")
        if block_words <= 0:
            raise ConfigError("block_words must be positive")
        self.threshold = threshold
        self.table_size = table_size
        self.block_words = block_words
        self.initial_prediction = initial_prediction
        self.predictor = PerHomePredictor(table_size, initial_prediction)
        self._run_home: int | None = None
        self._run_len = 0
        self._run_slot: int | None = None  # predictor slot the run updates

    def _slot(self, addr: int) -> int:
        return (addr // self.block_words) % self.table_size

    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        if self.predictor.predict(self._slot(addr)) >= self.threshold:
            return Decision.MIGRATE
        return Decision.REMOTE

    def observe(self, current: int, home: int, addr: int, write: bool, decision: Decision) -> None:
        if home == self._run_home:
            self._run_len += 1
            return
        if self._run_home is not None and self._run_slot is not None:
            self.predictor.update(self._run_slot, self._run_len)
        self._run_home = home
        self._run_len = 1
        self._run_slot = self._slot(addr)

    def reset(self) -> None:
        self.predictor.reset()
        self._run_home = None
        self._run_len = 0
        self._run_slot = None

    def clone(self) -> "AddressIndexedHistory":
        return AddressIndexedHistory(
            self.threshold, self.table_size, self.block_words, self.initial_prediction
        )


# ------------------------------------------------------------- registry
def _default_threshold(cost) -> float:
    """The scalar threshold the paper's comparator would be fused with:
    the migrate/RA break-even run length for the longest mesh hop."""
    return cost.break_even_run_length(0, cost.config.num_cores - 1)


@SCHEMES.register("history", "per-home last-run-length prediction vs break-even")
def _make_history(cost, threshold: float | None = None, **params):
    if threshold is None:
        threshold = _default_threshold(cost)
    return HistoryRunLength(threshold=threshold, **params)


@SCHEMES.register("addr-history", "run-length prediction indexed by address block")
def _make_addr_history(cost, threshold: float | None = None, **params):
    if threshold is None:
        threshold = _default_threshold(cost)
    return AddressIndexedHistory(threshold=threshold, **params)
