"""Decision-scheme interface.

A scheme is consulted once per *non-local* access (the home differs
from the thread's current core) and answers MIGRATE or REMOTE. It sees
only information a per-core hardware unit could have: the current
core, the home core, the address, whether the access writes, and its
own internal state (updated via :meth:`DecisionScheme.observe`).

Schemes are deliberately sequential objects — the evaluator drives
them access by access, mirroring the O(N) "cost of a specific
decision" procedure in §3.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod


class Decision(enum.IntEnum):
    LOCAL = 0  # home == current core; no decision needed
    MIGRATE = 1
    REMOTE = 2


class DecisionScheme(ABC):
    """Stateful per-thread decision unit."""

    name = "abstract"

    #: True for schemes whose ``decide`` is a pure function of
    #: (current, home, write) — no address sensitivity, no history, no
    #: randomness — and whose ``observe`` is a no-op. The evaluator
    #: batches such schemes segment-by-segment instead of walking the
    #: trace one access at a time (see
    #: :func:`repro.core.evaluation.evaluate_thread_batched`).
    stateless = False

    @abstractmethod
    def decide(self, current: int, home: int, addr: int, write: bool) -> Decision:
        """Return MIGRATE or REMOTE for a non-local access."""

    def observe(self, current: int, home: int, addr: int, write: bool, decision: Decision) -> None:
        """Called after every access (including local ones) so history
        schemes can update their predictors. Default: no state."""

    def reset(self) -> None:
        """Clear per-thread state (called between threads)."""

    def clone(self) -> "DecisionScheme":
        """A fresh instance with the same parameters (per-thread state).

        Default: construct a new object of the same class with the
        attributes stored by ``__init__``; schemes with constructor
        arguments override this.
        """
        return type(self)()
