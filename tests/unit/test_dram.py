"""Unit tests for the DRAM/memory-controller model."""

import pytest

from repro.arch.memory.dram import DramController, MemorySystem
from repro.arch.topology import Mesh2D
from repro.util.errors import ConfigError


class TestDramController:
    def test_isolated_request_pays_access_latency(self):
        c = DramController(tile=0, access_latency=100, service_interval=4)
        assert c.service(now=10.0) == 110.0

    def test_back_to_back_requests_queue(self):
        c = DramController(tile=0, access_latency=100, service_interval=4)
        t1 = c.service(now=0.0)
        t2 = c.service(now=0.0)
        assert t2 == t1 + 4

    def test_idle_gap_resets_queue(self):
        c = DramController(tile=0, access_latency=100, service_interval=4)
        c.service(now=0.0)
        assert c.service(now=1000.0) == 1100.0

    def test_request_count(self):
        c = DramController(tile=0)
        for _ in range(5):
            c.service(0.0)
        assert c.requests == 5

    def test_bad_latency_rejected(self):
        with pytest.raises(ConfigError):
            DramController(tile=0, access_latency=0)


class TestMemorySystem:
    def test_controllers_spread_over_mesh(self):
        ms = MemorySystem(Mesh2D(4, 4), num_controllers=4)
        tiles = [c.tile for c in ms.controllers]
        assert len(set(tiles)) == 4

    def test_miss_latency_includes_hops(self):
        ms = MemorySystem(Mesh2D(4, 4), num_controllers=1, access_latency=100, hop_latency=2)
        ctrl_tile = ms.controllers[0].tile
        near = ms.miss_latency(ctrl_tile, now=0.0)
        topo = Mesh2D(4, 4)
        far_tile = max(range(16), key=lambda t: topo.distance(t, ctrl_tile))
        far = ms.miss_latency(far_tile, now=0.0)
        assert far > near

    def test_nearest_controller_chosen(self):
        ms = MemorySystem(Mesh2D(4, 4), num_controllers=2)
        # a tile adjacent to controller A should not route to controller B
        a = ms.controllers[0].tile
        ms.miss_latency(a, now=0.0)
        assert ms.controllers[0].requests == 1
        assert ms.controllers[1].requests == 0

    def test_total_requests(self):
        ms = MemorySystem(Mesh2D(2, 2), num_controllers=2)
        for t in range(4):
            ms.miss_latency(t, now=0.0)
        assert ms.total_requests() == 4

    def test_more_controllers_than_cores_clamped(self):
        ms = MemorySystem(Mesh2D(2, 2), num_controllers=99)
        assert len(ms.controllers) <= 4

    def test_zero_controllers_rejected(self):
        with pytest.raises(ConfigError):
            MemorySystem(Mesh2D(2, 2), num_controllers=0)

    def test_contention_visible_under_load(self):
        ms = MemorySystem(Mesh2D(2, 2), num_controllers=1, service_interval=8)
        first = ms.miss_latency(0, now=0.0)
        second = ms.miss_latency(0, now=0.0)
        assert second > first
