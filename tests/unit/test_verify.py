"""Unit tests for the protocol audit module."""

import pytest

from repro.arch.config import small_test_config
from repro.coherence import DirectoryCCSimulator
from repro.coherence.msi import DirState
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.decision import NeverMigrate
from repro.placement import first_touch, striped
from repro.trace.events import MultiTrace, make_trace
from repro.trace.synthetic import make_workload
from repro.util.errors import ProtocolError
from repro.verify import (
    audit_directory,
    audit_home_only_caching,
    audit_message_conservation,
    audit_thread_completion,
    full_machine_audit,
)


@pytest.fixture
def finished_em2():
    cfg = small_test_config(num_cores=4, guest_contexts=2)
    trace = make_workload("pingpong", num_threads=4, rounds=12, run=2)
    pl = first_touch(trace, 4)
    m = EM2Machine(trace, pl, cfg)
    m.run()
    return m


class TestMachineAudits:
    def test_clean_run_passes_all(self, finished_em2):
        out = full_machine_audit(finished_em2)
        assert out["threads"] == 4
        assert out["lines_checked"] > 0

    def test_home_only_violation_detected(self, finished_em2):
        # plant a foreign line in core 0's L1: word 16 = block 1, which
        # no thread touched, so it stripes to core 1 != 0
        finished_em2.caches[0].l1.fill(16 * finished_em2.config.word_bytes)
        with pytest.raises(ProtocolError, match="cached at core 0"):
            audit_home_only_caching(finished_em2)

    def test_unfinished_thread_detected(self, finished_em2):
        finished_em2.threads[2].done = False
        with pytest.raises(ProtocolError, match="unfinished"):
            audit_thread_completion(finished_em2)

    def test_in_transit_detected(self, finished_em2):
        finished_em2.threads[1].in_transit = True
        with pytest.raises(ProtocolError, match="in transit"):
            audit_thread_completion(finished_em2)

    def test_occupied_context_detected(self, finished_em2):
        finished_em2.contexts[1].admit_native(1, 0.0)
        with pytest.raises(ProtocolError, match="holds"):
            audit_thread_completion(finished_em2)

    def test_message_conservation_on_ra_machine(self):
        cfg = small_test_config(num_cores=4, guest_contexts=2)
        mt = MultiTrace(threads=[make_trace([16, 32, 16], icounts=1)])
        m = EM2RAMachine(mt, striped(4, block_words=16), cfg, scheme=NeverMigrate())
        m.run()
        out = audit_message_conservation(m)
        assert out["RA_REQUEST"] == out["RA_REPLY"] == 3

    def test_message_imbalance_detected(self, finished_em2):
        finished_em2.stats.counters.add("migrations", 5)  # fake extra
        with pytest.raises(ProtocolError, match="migration messages"):
            audit_message_conservation(finished_em2)


class TestDirectoryAudit:
    def _run_cc(self):
        cfg = small_test_config(num_cores=4)
        trace = make_workload("hotspot", num_threads=4, accesses_per_thread=64,
                              hot_fraction=0.5)
        sim = DirectoryCCSimulator(trace, first_touch(trace, 4), cfg)
        sim.run()
        return sim

    def test_clean_run_passes(self):
        sim = self._run_cc()
        out = audit_directory(sim)
        assert out["directory_lines"] > 0

    def test_phantom_sharer_detected(self):
        sim = self._run_cc()
        # corrupt: add a sharer whose cache doesn't hold the line
        for line, entry in sim.directory.items():
            if entry.state == DirState.SHARED:
                entry.sharers.add(
                    next(
                        c
                        for c in range(4)
                        if sim.caches[c].probe(line * sim.config.l2.line_bytes) is None
                    )
                )
                break
        else:
            pytest.skip("no shared line in this run")
        with pytest.raises(ProtocolError):
            audit_directory(sim)

    def test_lost_owner_detected(self):
        sim = self._run_cc()
        for line, entry in sim.directory.items():
            if entry.state == DirState.EXCLUSIVE:
                sim.caches[entry.owner].invalidate(line * sim.config.l2.line_bytes)
                break
        else:
            pytest.skip("no exclusive line in this run")
        with pytest.raises(ProtocolError):
            audit_directory(sim)
