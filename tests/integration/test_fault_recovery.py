"""End-to-end fault recovery: lossy fabric, complete executions.

The acceptance scenario for the fault plane: at a 10% message drop
rate (plus duplicates, delays, and core stalls) with retries enabled,
every detailed machine must run to completion, pass the full protocol
audits including the liveness audit, and produce bit-identical results
on a second run — recovery must be deterministic, not merely eventual.
"""

import pytest

from repro.arch.config import small_test_config
from repro.coherence.simulator import DirectoryCCSimulator
from repro.core.decision import HistoryRunLength
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.remote_access import RemoteAccessMachine
from repro.faults import FaultInjector
from repro.placement import first_touch
from repro.runner import run
from repro.spec import (
    ExperimentSpec,
    FaultSpec,
    MachineSpec,
    PlacementSpec,
    SchemeSpec,
    WorkloadSpec,
)
from repro.trace.synthetic import make_workload
from repro.verify import full_machine_audit
from repro.verify.audits import audit_directory, audit_liveness

LOSSY = FaultSpec(
    params={
        "drop_rate": 0.1,
        "dup_rate": 0.05,
        "delay_rate": 0.05,
        "stall_rate": 0.01,
    }
)


@pytest.fixture(scope="module")
def workload():
    return make_workload("pingpong", num_threads=8, rounds=16, run=4)


def _machine(cls, workload, **kw):
    cfg = small_test_config(num_cores=8, guest_contexts=2)
    pl = first_touch(workload, 8)
    return cls(workload, pl, cfg, faults=FaultInjector(LOSSY), **kw)


class TestLossyFabricDrains:
    def test_em2_completes_and_audits_clean(self, workload):
        m = _machine(EM2Machine, workload)
        m.run()
        audit = full_machine_audit(m)
        assert audit["drops_survived"] > 0
        assert audit["faults_injected"] > 0

    def test_em2ra_completes_and_audits_clean(self, workload):
        m = _machine(EM2RAMachine, workload, scheme=HistoryRunLength(threshold=3.0))
        m.run()
        audit = full_machine_audit(m)
        assert audit["drops_survived"] > 0

    def test_ra_only_completes_and_audits_clean(self, workload):
        m = _machine(RemoteAccessMachine, workload)
        m.run()
        ledger = audit_liveness(m)
        assert ledger["retries"] > 0
        assert m.results()["recovery_stall_cycles"] > 0

    def test_directory_cc_completes_and_audits_clean(self, workload):
        sim = _machine(DirectoryCCSimulator, workload)
        sim.run()
        audit_directory(sim)
        assert sim.recovery_stall_cycles > 0


class TestRecoveryIsDeterministic:
    @pytest.mark.parametrize("machine", ["em2", "em2ra", "ra-only", "cc-msi"])
    def test_identical_results_across_runs(self, machine):
        spec = ExperimentSpec(
            workload=WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 12}),
            machine=MachineSpec(name=machine, cores=4, preset="small-test"),
            scheme=SchemeSpec(name="history"),
            placement=PlacementSpec(name="first-touch"),
            faults=LOSSY,
        )
        assert run(spec) == run(spec)


class TestFaultModels:
    def test_bursty_channel_end_to_end(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 12}),
            machine=MachineSpec(name="em2", cores=4, preset="small-test"),
            scheme=SchemeSpec(name="history"),
            placement=PlacementSpec(name="first-touch"),
            faults=FaultSpec(
                name="bursty",
                params={"p_bad": 0.05, "p_recover": 0.3, "drop_rate_bad": 0.8},
            ),
        )
        first = run(spec)
        assert first == run(spec)
        assert first["faults.total"] >= 0  # bursts may or may not hit this run

    def test_link_down_windows_recovered(self, workload):
        inj = FaultInjector(
            FaultSpec(
                params={
                    "link_down_count": 3,
                    "link_down_cycles": 256.0,
                    "link_down_horizon": 4096.0,
                }
            )
        )
        cfg = small_test_config(num_cores=8, guest_contexts=2)
        m = EM2Machine(workload, first_touch(workload, 8), cfg, faults=inj)
        m.run()
        full_machine_audit(m)
        assert inj.counts["link_down_drops"] >= 0  # schedule drawn, run drains


class TestFlitLevelInjection:
    def test_drops_dups_delays_at_flit_granularity(self):
        from repro.arch.noc.flitlevel import FlitNetwork
        from repro.arch.topology import Mesh2D

        inj = FaultInjector(
            FaultSpec(params={"drop_rate": 0.2, "dup_rate": 0.1, "delay_rate": 0.2})
        )
        net = FlitNetwork(Mesh2D(4, 4), num_vcs=2, injector=inj)
        sent = 64
        for i in range(sent):
            net.send(i % 16, (i * 7 + 3) % 16, num_flits=3)
        net.run_until_drained()
        assert net.pending_flits() == 0
        # conservation: every packet was delivered, dropped, or duplicated
        assert net.delivered == sent - net.dropped + inj.counts["dups"]
        assert net.dropped == inj.counts["drops"] + inj.counts["link_down_drops"]
        assert net.dropped > 0 and inj.counts["delays"] > 0

    def test_flit_injection_deterministic(self):
        from repro.arch.noc.flitlevel import FlitNetwork
        from repro.arch.topology import Mesh2D

        spec = FaultSpec(params={"drop_rate": 0.2, "dup_rate": 0.1})

        def one_run():
            net = FlitNetwork(Mesh2D(4, 4), num_vcs=2, injector=FaultInjector(spec))
            for i in range(64):
                net.send(i % 16, (i * 5 + 1) % 16, num_flits=2)
            net.run_until_drained()
            return (net.delivered, net.dropped, sorted(net.latencies))

        assert one_run() == one_run()
