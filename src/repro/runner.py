"""Build and run experiments from :class:`~repro.spec.ExperimentSpec`.

This module is the single construction path between declarative specs
and live objects: every consumer — the CLI, the sweep/bench harness,
the golden-fixture generator, the integration tests — resolves
component names through :mod:`repro.registry` *here* and nowhere else.

* :func:`build` turns a spec into the live pieces (trace, placement,
  system config, topology, cost model, scheme) without running
  anything.
* :func:`run` builds and executes the spec's machine, returning its
  metrics dict — ``results()`` for the detailed DES machines, the
  :class:`~repro.core.evaluation.EvalResult` dict for the analytical
  evaluator, bit-identical to direct construction.
* :func:`merge_spec` overlays a partial sweep point onto a base spec,
  which is how parameter sweeps become lists of full specs.
* :func:`run_spec_dict` is the picklable worker entry point: pool
  workers receive serialized spec dicts, never closures, so any spec
  the parent can describe, a worker can reproduce.

Workload generation and placement construction are memoized per
process (specs are deterministic, so rebuilding is pure waste when a
sweep evaluates ten schemes on one trace). The memo is keyed by the
canonical spec dict and bounded; traces and placements are treated as
immutable by every machine, which the golden-fixture parity tests
enforce.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from repro.arch.config import SystemConfig
from repro.core.costs import CostModel
from repro.registry import MACHINES, PLACEMENTS, PRESETS, SCHEMES, TOPOLOGIES, WORKLOADS
from repro.spec import (
    ExperimentSpec,
    FaultSpec,
    MachineSpec,
    PlacementSpec,
    SchemeSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.util.errors import ConfigError

# Per-process memo for deterministic, immutable build products. Small
# and LRU-bounded: a sweep touches a handful of distinct workloads, but
# alternates between them — evicting the *least recently used* entry
# (not the oldest-inserted, which FIFO did) keeps a round-robin over N
# workloads resident as long as N <= cap.
_MEMO_CAP = 8
_workload_memo: "OrderedDict[str, object]" = OrderedDict()
_placement_memo: "OrderedDict[str, object]" = OrderedDict()


def _memo_get(memo: OrderedDict, key: str):
    value = memo.get(key)
    if value is not None:
        memo.move_to_end(key)
    return value


def _memo_put(memo: OrderedDict, key: str, value) -> None:
    if key in memo:
        memo.move_to_end(key)
    elif len(memo) >= _MEMO_CAP:
        memo.popitem(last=False)
    memo[key] = value


def clear_build_memo() -> None:
    """Drop memoized traces/placements (tests; long-lived processes)."""
    _workload_memo.clear()
    _placement_memo.clear()


# ---------------------------------------------------------------- builders
def build_system_config(machine: MachineSpec) -> SystemConfig:
    """The :class:`SystemConfig` a machine spec describes, via the
    preset registry (``default``/``small-test``/``mesh-1024``/...)."""
    overrides = dict(machine.config)
    return PRESETS.get(machine.preset)(num_cores=machine.cores, **overrides)


def build_workload(workload: WorkloadSpec):
    """The spec's :class:`~repro.trace.events.MultiTrace`.

    Resolution order: per-process memo, then the on-disk trace store
    (when one is active — see :mod:`repro.trace.store`), then the
    generator. Freshly generated traces are written back to the store
    so every later process on this machine skips generation entirely.
    Traces named by ``trace_path`` are already on disk and bypass the
    store (caching a file as a file would just duplicate it).
    """
    key = workload.cache_key()
    trace = _memo_get(_workload_memo, key)
    if trace is not None:
        return trace
    if workload.trace_path is not None:
        from repro.trace.io import load_multitrace

        trace = load_multitrace(workload.trace_path)
    else:
        from repro.trace.store import active_trace_store

        store = active_trace_store()
        trace = store.get(key) if store is not None else None
        if trace is None:
            generator_cls = WORKLOADS.get(workload.name)
            trace = generator_cls(**workload.params).generate()
            if store is not None:
                store.put(key, trace)
    _memo_put(_workload_memo, key, trace)
    return trace


def seed_workload_memo(workload: WorkloadSpec | Mapping, trace) -> None:
    """Pre-load the build memo with an externally supplied trace.

    This is how shared-memory sweep workers avoid regenerating
    workloads: the parent publishes the trace, the worker attaches a
    zero-copy view and seeds it here under the same key
    :func:`build_workload` would compute, so the normal build path
    finds it without knowing where it came from.
    """
    if not isinstance(workload, WorkloadSpec):
        workload = WorkloadSpec.from_dict(workload)
    _memo_put(_workload_memo, workload.cache_key(), trace)


def memoized_workload(workload_key: str):
    """The memoized trace for a workload cache key, or ``None``.

    Farm workers use this to decide whether a chunk's workload still
    needs seeding from their local trace store before evaluation.
    """
    return _memo_get(_workload_memo, workload_key)


def build_placement(placement: PlacementSpec, trace, num_cores: int, *, memo_key: str | None = None):
    """The spec's :class:`~repro.placement.base.Placement` over ``trace``."""
    factory = PLACEMENTS.get(placement.name)
    if memo_key is None:
        return factory(trace, num_cores, **placement.params)
    from repro.analysis.cache import stable_key

    key = stable_key({"w": memo_key, "p": placement.to_dict(), "cores": num_cores})
    built = _memo_get(_placement_memo, key)
    if built is None:
        built = factory(trace, num_cores, **placement.params)
        _memo_put(_placement_memo, key, built)
    return built


def build_topology(topology: TopologySpec, config: SystemConfig):
    """The spec's topology, or ``None`` for ``"auto"`` so machines and
    cost models apply their own default (identical behaviour, and the
    path the golden fixtures were captured through)."""
    if topology.name == "auto":
        if topology.params:
            raise ConfigError(
                "topology 'auto' takes no params; name a topology "
                f"({', '.join(n for n in TOPOLOGIES.names() if n != 'auto')}) "
                "to parameterize it"
            )
        return None
    return TOPOLOGIES.get(topology.name)(config, **topology.params)


def build_scheme(scheme: SchemeSpec, cost: CostModel):
    """A fresh decision-scheme instance for this experiment's cost model."""
    return SCHEMES.get(scheme.name)(cost, **scheme.params)


@dataclass
class BuiltExperiment:
    """Live objects for one spec — everything short of running it."""

    spec: ExperimentSpec
    trace: object
    placement: object
    config: SystemConfig
    topology: object | None
    cost: CostModel
    scheme: object


def build(spec: ExperimentSpec) -> BuiltExperiment:
    """Construct every component the spec names, via the registries."""
    from repro.analysis.cache import stable_key

    config = build_system_config(spec.machine)
    trace = build_workload(spec.workload)
    placement = build_placement(
        spec.placement,
        trace,
        config.num_cores,
        memo_key=stable_key(spec.workload.to_dict()),
    )
    topology = build_topology(spec.topology, config)
    cost = CostModel(config, topology)
    scheme = build_scheme(spec.scheme, cost)
    return BuiltExperiment(
        spec=spec,
        trace=trace,
        placement=placement,
        config=config,
        topology=topology,
        cost=cost,
        scheme=scheme,
    )


def run(spec: ExperimentSpec) -> dict:
    """Build the spec and execute its machine; return the metrics dict.

    When the spec carries a fault plane, a fresh
    :class:`~repro.faults.injector.FaultInjector` is constructed here —
    one injector per run, seeded purely from the spec, so the same spec
    reproduces the same fault schedule in any process.
    """
    built = build(spec)
    machine_fn = MACHINES.get(spec.machine.name)
    kwargs = dict(spec.machine.params)
    if not spec.machine.fast_path:
        kwargs["fast_path"] = False
    if spec.faults is not None:
        from repro.faults.injector import FaultInjector

        kwargs["faults"] = FaultInjector(spec.faults)
    return machine_fn(
        built.trace,
        built.placement,
        built.config,
        scheme=built.scheme,
        topology=built.topology,
        **kwargs,
    )


def run_spec_dict(spec: Mapping, shm_trace: Mapping | None = None) -> dict:
    """Worker entry point: deserialize and run. Module-level so it
    pickles into :func:`repro.analysis.parallel.parallel_sweep` pools.

    ``shm_trace`` is an optional shared-memory descriptor
    (:func:`repro.analysis.shm.publish`) for this spec's workload: the
    worker attaches a zero-copy read-only view and seeds the build memo
    with it, so :func:`build_workload` never regenerates the trace. If
    attaching fails (segment already unlinked, shm unavailable in this
    worker) the descriptor is ignored and the normal generate/load path
    runs — slower, never wrong.
    """
    parsed = ExperimentSpec.from_dict(spec)
    if shm_trace is not None:
        try:
            from repro.analysis.shm import attach

            seed_workload_memo(parsed.workload, attach(shm_trace))
        except Exception:
            pass
    return run(parsed)


# ---------------------------------------------------------------- merging
_SUB_SPEC_TYPES = {
    "workload": WorkloadSpec,
    "machine": MachineSpec,
    "scheme": SchemeSpec,
    "placement": PlacementSpec,
    "topology": TopologySpec,
}


def merge_spec(base: ExperimentSpec, point: Mapping) -> ExperimentSpec:
    """Overlay a partial sweep point onto ``base``.

    Point keys name sub-specs (``workload``/``machine``/``scheme``/
    ``placement``/``topology``/``faults``). A string value swaps the
    component by registered name with fresh default params; a dict
    value is merged (shallow) over the base sub-spec's fields. Anything
    else is a :class:`ConfigError` — silent typos would sweep the wrong
    axis. ``faults`` additionally accepts ``None`` to clear the fault
    plane, and merges over defaults when the base has none — which is
    what makes fault-rate sweep axes one-liners.
    """
    overrides = {}
    for key, value in point.items():
        if key == "faults":
            overrides["faults"] = _merge_faults(base.faults, value)
            continue
        sub_cls = _SUB_SPEC_TYPES.get(key)
        if sub_cls is None:
            raise ConfigError(
                f"unknown sweep-spec key {key!r}; valid keys: "
                f"{', '.join(sorted(_SUB_SPEC_TYPES))}, faults"
            )
        if isinstance(value, str):
            overrides[key] = sub_cls(name=value)
        elif isinstance(value, Mapping):
            merged = {**getattr(base, key).to_dict(), **dict(value)}
            overrides[key] = sub_cls.from_dict(merged)
        elif isinstance(value, sub_cls):
            overrides[key] = value
        else:
            raise ConfigError(
                f"sweep-spec value for {key!r} must be a name, dict, or "
                f"{sub_cls.__name__}, got {type(value).__name__}"
            )
    return base.replace(**overrides)


def _merge_faults(base_faults: FaultSpec | None, value):
    """Resolve a ``faults`` sweep-point value against the base spec."""
    if value is None:
        return None
    if isinstance(value, FaultSpec):
        return value
    if isinstance(value, str):
        return FaultSpec(name=value)
    if isinstance(value, Mapping):
        merged = {**(base_faults.to_dict() if base_faults else {}), **dict(value)}
        return FaultSpec.from_dict(merged)
    raise ConfigError(
        f"sweep-spec value for 'faults' must be None, a name, dict, or "
        f"FaultSpec, got {type(value).__name__}"
    )
