"""End-to-end flows: workload -> placement -> architecture -> report.

These exercise the whole public API the way the examples and benches
do, on scaled-down configurations.
"""

import numpy as np
import pytest

from repro import (
    AlwaysMigrate,
    CostModel,
    DirectoryCCSimulator,
    EM2Machine,
    EnergyModel,
    HistoryRunLength,
    NeverMigrate,
    evaluate_scheme,
    first_touch,
    make_workload,
    optimal_decisions,
    small_test_config,
    stack_workload,
    optimal_stack_depths,
    fixed_depth_cost,
)
from repro.analysis.reports import runlength_table
from repro.trace.runlength import fraction_single_access_runs


class TestFigure2Pipeline:
    """The Figure 2 experiment end-to-end at reduced scale."""

    def test_ocean_run_length_distribution(self):
        cfg = small_test_config(num_cores=16)
        trace = make_workload("ocean", num_threads=16, grid_n=98, iterations=2)
        pl = first_touch(trace, 16)
        res = evaluate_scheme(
            trace, pl, AlwaysMigrate(), CostModel(cfg), collect_run_lengths=True
        )
        frac1 = fraction_single_access_runs(res.run_length_hist)
        # the paper: "about half of the accesses migrate after one
        # memory reference, while the other half keep accessing memory
        # at the core where they have migrated"
        assert 0.3 <= frac1 <= 0.7
        table = runlength_table(res.run_length_hist)
        assert "run_length" in table

    def test_behavioral_machine_agrees_on_fig2(self):
        cfg = small_test_config(num_cores=8, guest_contexts=8)
        trace = make_workload("ocean", num_threads=8, grid_n=50, iterations=1)
        pl = first_touch(trace, 8)
        m = EM2Machine(trace, pl, cfg)
        m.run()
        hist = m.stats.histogram("run_length")
        assert 0.2 <= hist.fraction_at(1) <= 0.8


class TestDecisionPipeline:
    def test_dp_vs_schemes_on_real_workload(self):
        cfg = small_test_config(num_cores=8)
        cm = CostModel(cfg)
        trace = make_workload("pingpong", num_threads=8, rounds=30, run=4)
        pl = first_touch(trace, 8)
        # optimal per thread
        opt_total = 0.0
        for t, tr in enumerate(trace.threads):
            homes = pl.home_of(tr["addr"])
            res = optimal_decisions(homes, tr["write"], t, cm)
            opt_total += res.total_cost
        em2 = evaluate_scheme(trace, pl, AlwaysMigrate(), cm).total_cost
        ra = evaluate_scheme(trace, pl, NeverMigrate(), cm).total_cost
        hist = evaluate_scheme(trace, pl, HistoryRunLength(threshold=4.0), cm).total_cost
        assert opt_total <= min(em2, ra, hist) + 1e-6
        # and the history scheme should land between optimal and the
        # worse of the static extremes on this learnable workload
        assert hist <= max(em2, ra)


class TestStackPipeline:
    def test_stack_workload_through_depth_dp(self):
        cfg = small_test_config(num_cores=4)
        cm = CostModel(cfg)
        mt = stack_workload("reduce", num_threads=4, n=24, shared_fraction=1.0)
        pl = first_touch(mt, 4)
        total_opt = total_fixed = 0.0
        for t, tr in enumerate(mt.threads):
            homes = pl.home_of(tr["addr"])
            opt = optimal_stack_depths(
                homes, tr["spop"], tr["spush"], t, cm, max_depth=8
            )
            fix = fixed_depth_cost(
                homes, tr["spop"], tr["spush"], t, cm, depth=8, max_depth=8
            )
            total_opt += opt.total_cost
            total_fixed += fix.total_cost
            # §4: migrated bits must undercut full-context EM²
            if opt.migrations:
                assert (
                    opt.migrated_bits
                    < opt.migrations * cfg.context.full_context_bits
                )
        assert total_opt <= total_fixed + 1e-9


class TestCrossArchitecture:
    def test_cc_vs_em2_on_shared_heavy_workload(self):
        """Writes to actively shared lines cost CC invalidations; EM²
        serializes at the home instead. Both must at least complete and
        report sane traffic."""
        cfg = small_test_config(num_cores=4, guest_contexts=4)
        trace = make_workload("hotspot", num_threads=4, accesses_per_thread=128,
                              hot_fraction=0.5, seed=1)
        pl = first_touch(trace, 4)
        cc = DirectoryCCSimulator(trace, pl, cfg).run()
        m = EM2Machine(trace, pl, cfg)
        m.run()
        assert cc.invalidations > 0  # CC pays coherence on the hot block
        assert m.results()["migrations"] > 0  # EM² pays migrations instead
        assert cc.traffic_bits > 0 and m.results()["flit_hops"] > 0

    def test_energy_report_pipeline(self):
        cfg = small_test_config(num_cores=4, guest_contexts=4)
        trace = make_workload("pingpong", num_threads=4, rounds=16, run=2)
        pl = first_touch(trace, 4)
        m = EM2Machine(trace, pl, cfg)
        m.run()
        em = EnergyModel()
        r = m.results()
        report = em.report(
            bit_hops=r["flit_hops"] * cfg.noc.flit_bits,
            dram_accesses=r["dram_fills"],
            migrations=r["migrations"],
        )
        assert report.total_pj > 0
        assert report.network_pj > 0


class TestPersistenceRoundTrip:
    def test_save_load_evaluate(self, tmp_path):
        from repro import load_multitrace, save_multitrace

        cfg = small_test_config(num_cores=4)
        trace = make_workload("uniform", num_threads=4, accesses_per_thread=64)
        save_multitrace(trace, tmp_path / "t.npz")
        loaded = load_multitrace(tmp_path / "t.npz")
        pl = first_touch(loaded, 4)
        r1 = evaluate_scheme(loaded, pl, AlwaysMigrate(), CostModel(cfg))
        r2 = evaluate_scheme(trace, first_touch(trace, 4), AlwaysMigrate(), CostModel(cfg))
        assert r1.total_cost == r2.total_cost
