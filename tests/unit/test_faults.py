"""Unit tests for the seeded fault-injection plane (repro.faults).

The two load-bearing contracts:

* **Determinism** — the fault schedule is a pure function of
  ``(FaultSpec, topology)``: same spec, same digest, same stats, in any
  process (the sweep executor and the cache both depend on this).
* **Zero-cost when quiet** — a fault plane at all-zero rates must be
  observationally invisible: bit-identical results to ``faults=None``
  (checked here against the committed golden fixture).
"""

import json
from pathlib import Path

import pytest

from repro.faults import FaultInjector
from repro.registry import FAULTS
from repro.runner import merge_spec, run
from repro.spec import (
    ExperimentSpec,
    FaultSpec,
    MachineSpec,
    PlacementSpec,
    SchemeSpec,
    WorkloadSpec,
)
from repro.util.errors import ConfigError, FaultError, ReproError, RetryExhaustedError

FIXTURE = Path(__file__).resolve().parents[1] / "fixtures" / "golden_results.json"

#: results() keys present only when an injector is attached.
FAULT_KEYS = ("retries", "drops_survived", "dup_ignored", "recovery_stall_cycles")


def _spec(machine="em2", faults=None, rounds=8):
    return ExperimentSpec(
        workload=WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": rounds}),
        machine=MachineSpec(name=machine, cores=4, preset="small-test"),
        scheme=SchemeSpec(name="history"),
        placement=PlacementSpec(name="first-touch"),
        faults=faults,
    )


def _strip(res):
    # fast_path is engagement diagnostics (a fault plane reports
    # engaged=False), never simulated outcome — excluded like the
    # fault-only ledger keys when comparing against fault-free runs
    return {
        k: v
        for k, v in res.items()
        if k not in FAULT_KEYS and k != "fast_path"
        and not k.startswith("faults.")
    }


class TestFaultSpec:
    def test_round_trip_and_omission_when_none(self):
        spec = _spec(faults=FaultSpec(params={"drop_rate": 0.1}, seed=7))
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        clean = _spec()
        assert "faults" not in clean.to_dict()
        assert ExperimentSpec.from_dict(clean.to_dict()) == clean

    def test_bad_rates_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(FaultSpec(params={"drop_rate": 1.5}))
        with pytest.raises(ConfigError):
            FaultInjector(FaultSpec(params={"drop_rate": 0.6, "dup_rate": 0.6}))
        with pytest.raises(ConfigError):
            FaultInjector(FaultSpec(params={"no_such_knob": 1}))

    def test_unknown_model_lists_options(self):
        with pytest.raises(ConfigError, match="iid"):
            FaultInjector(FaultSpec(name="nope"))

    def test_registry_has_both_models(self):
        assert {"iid", "bursty"} <= set(FAULTS.names())


class TestDeterminism:
    def test_same_spec_same_schedule_digest(self):
        spec = FaultSpec(params={"drop_rate": 0.2, "dup_rate": 0.1, "delay_rate": 0.1})
        a, b = FaultInjector(spec), FaultInjector(spec)
        actions = [a.on_message(0, 1) for _ in range(500)]
        assert actions == [b.on_message(0, 1) for _ in range(500)]
        assert a.schedule_digest() == b.schedule_digest()

    def test_different_seed_different_schedule(self):
        a = FaultInjector(FaultSpec(params={"drop_rate": 0.2}, seed=0))
        b = FaultInjector(FaultSpec(params={"drop_rate": 0.2}, seed=1))
        for _ in range(500):
            a.on_message(0, 1)
            b.on_message(0, 1)
        assert a.schedule_digest() != b.schedule_digest()

    @pytest.mark.parametrize("machine", ["em2", "em2ra", "cc-msi"])
    def test_end_to_end_run_reproducible(self, machine):
        spec = _spec(
            machine,
            FaultSpec(params={"drop_rate": 0.1, "dup_rate": 0.05, "delay_rate": 0.05}),
        )
        first, second = run(spec), run(spec)
        assert first == second
        assert first["faults.schedule_digest"] == second["faults.schedule_digest"]
        assert first["faults.total"] > 0

    def test_cross_process_digest_matches_serial(self, monkeypatch):
        """The pool path (serialized spec dicts, fresh workers) must
        reproduce the in-process fault schedule exactly."""
        import repro.analysis.parallel as par
        from repro.analysis.parallel import shutdown_pool
        from repro.analysis.sweep import sweep_specs

        # force the pool even on 1-CPU hosts, else workers=2 silently
        # degrades to the serial loop and proves nothing
        monkeypatch.setattr(par, "default_workers", lambda: 2)
        shutdown_pool()

        base = _spec()
        points = [
            {"machine": {"name": m}, "faults": {"params": {"drop_rate": r}}}
            for m in ("em2", "em2ra")
            for r in (0.05, 0.1)
        ]
        serial = sweep_specs(base, points, workers=1)
        parallel = sweep_specs(base, points, workers=2)
        assert parallel == serial


class TestZeroFaultParity:
    def test_quiet_plane_matches_golden_fixture(self):
        """Every golden scenario, rerun with an attached all-zero-rate
        injector, must reproduce the committed fixture bit for bit
        after stripping the fault-only ledger keys."""
        import sys

        committed = json.loads(FIXTURE.read_text())
        # the fixture stores results only; rebuild the scenario specs
        # the same way the fixture generator does
        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        if str(bench_dir) not in sys.path:
            sys.path.insert(0, str(bench_dir))
        import make_golden_fixtures as golden

        for key, spec_dict in golden.scenario_specs().items():
            spec_dict = dict(spec_dict)
            spec_dict["faults"] = {"name": "iid", "params": {}, "seed": 0}
            res = run(ExperimentSpec.from_dict(spec_dict))
            assert res["retries"] == 0 and res["faults.total"] == 0, key
            assert _strip(res) == committed[key], key

    def test_fault_keys_absent_without_injector(self):
        res = run(_spec())
        assert not any(k in res for k in FAULT_KEYS)
        assert not any(k.startswith("faults.") for k in res)


class TestRecovery:
    @pytest.mark.parametrize("machine", ["em2", "cc-msi"])
    def test_retry_cap_exhaustion_is_typed(self, machine):
        spec = _spec(machine, FaultSpec(params={"drop_rate": 1.0}, retry_cap=2))
        with pytest.raises(RetryExhaustedError, match="retry cap 2"):
            run(spec)
        assert issubclass(RetryExhaustedError, FaultError)
        assert issubclass(FaultError, ReproError)

    def test_retries_disabled_em2_hangs_visibly(self):
        spec = _spec("em2", FaultSpec(params={"drop_rate": 1.0}, retries=False))
        with pytest.raises(ReproError, match="unfinished"):
            run(spec)

    def test_retries_disabled_cc_fails_fast(self):
        spec = _spec("cc-msi", FaultSpec(params={"drop_rate": 1.0}, retries=False))
        with pytest.raises(RetryExhaustedError, match="retries disabled"):
            run(spec)

    @pytest.mark.parametrize("machine", ["em2", "em2ra", "ra-only", "cc-msi"])
    def test_drops_recovered_and_counted(self, machine):
        res = run(_spec(machine, FaultSpec(params={"drop_rate": 0.1})))
        assert res["retries"] > 0
        assert res["drops_survived"] > 0
        assert res["recovery_stall_cycles"] > 0
        assert res["faults.drops"] == res["faults.total"]


class TestMergeSpecFaultsAxis:
    def test_dict_merges_over_base(self):
        base = _spec(faults=FaultSpec(seed=3, retry_cap=5))
        merged = merge_spec(base, {"faults": {"params": {"drop_rate": 0.2}}})
        assert merged.faults.seed == 3
        assert merged.faults.retry_cap == 5
        assert merged.faults.params == {"drop_rate": 0.2}

    def test_string_swaps_model_and_none_clears(self):
        base = _spec(faults=FaultSpec(params={"drop_rate": 0.2}))
        assert merge_spec(base, {"faults": "bursty"}).faults.name == "bursty"
        assert merge_spec(base, {"faults": None}).faults is None

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            merge_spec(_spec(), {"faults": 42})


class TestAnalyticalRejectsFaults:
    def test_config_error_names_detailed_machines(self):
        spec = ExperimentSpec(
            workload=WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 8}),
            machine=MachineSpec(name="analytical", cores=4),
            scheme=SchemeSpec(name="history"),
            placement=PlacementSpec(name="first-touch"),
            faults=FaultSpec(),
        )
        with pytest.raises(ConfigError, match="analytical"):
            run(spec)


class TestInjectorBinding:
    def test_rebinding_to_a_different_topology_rejected(self):
        from repro.arch.topology import Mesh2D

        inj = FaultInjector(FaultSpec())
        mesh = Mesh2D(2, 2)
        inj.bind_topology(mesh)
        inj.bind_topology(mesh)  # same object: idempotent
        with pytest.raises(ConfigError):
            inj.bind_topology(Mesh2D(3, 3))
