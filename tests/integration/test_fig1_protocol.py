"""Figure 1 conformance: the life of a memory access under EM².

Each test walks one branch of the paper's flowchart against the
behavioral machine and checks the observable protocol actions match:

    memory access in core A
      -> cacheable in A?  yes -> access memory, continue      (branch 1)
      -> no -> migrate to home core                            (branch 2)
           -> # threads exceeded? no -> access memory, continue
           -> yes -> migrate another thread back to its native
              core, then access memory, continue               (branch 3)

Plus the global invariants the protocol guarantees: single cache
location per address (sequential consistency argument, §2) and
deadlock-free completion.
"""

import numpy as np
import pytest

from repro.arch.config import small_test_config
from repro.arch.noc.packet import VirtualNetwork
from repro.core.em2 import EM2Machine
from repro.placement import striped
from repro.trace.events import MultiTrace, make_trace


def _machine(threads, num_cores=4, guests=2, natives=None):
    cfg = small_test_config(num_cores=num_cores, guest_contexts=guests)
    mt = MultiTrace(
        threads=[make_trace(a, writes=w, icounts=1) for a, w in threads],
        thread_native_core=natives or list(range(len(threads))),
    )
    return EM2Machine(mt, striped(num_cores, block_words=16), cfg)


class TestBranch1_LocalAccess:
    def test_cacheable_address_accesses_locally(self):
        m = _machine([([0, 1, 2], [0, 0, 0])])  # block 0 homes at core 0
        m.run()
        r = m.results()
        assert r["local_accesses"] == 3
        assert r["migrations"] == 0
        assert m.network.message_count() == 0  # nothing crossed the NoC


class TestBranch2_Migration:
    def test_noncacheable_address_migrates_to_home(self):
        m = _machine([([16], [0])])  # block 1 homes at core 1
        m.run()
        assert m.results()["migrations"] == 1
        assert m.threads[0].core == 1  # execution continued at the home
        # the migration used the migration virtual network
        assert m.network.message_count(VirtualNetwork.MIGRATION) == 1
        assert m.network.message_count(VirtualNetwork.EVICTION) == 0

    def test_access_executes_at_home_after_migration(self):
        """The home core's cache (not the source's) services the access."""
        m = _machine([([16], [0])])
        m.run()
        assert m.caches[1].l1.misses + m.caches[1].l1.hits == 1
        assert m.caches[0].l1.misses + m.caches[0].l1.hits == 0

    def test_context_size_on_wire_matches_config(self):
        m = _machine([([16], [0])])
        m.run()
        flits_expected = m.config.noc.message_flits(
            m.config.context.full_context_bits
        )
        assert m.network.stats.counters["flits.MIGRATION"] == flits_expected


class TestBranch3_Eviction:
    def test_exceeding_guest_contexts_evicts_to_native(self):
        # 3 guests converge on core 0 which has 1 guest slot
        m = _machine(
            [([0], [0]), ([1], [0]), ([1], [0]), ([1], [0])],
            guests=1,
        )
        m.run()
        r = m.results()
        assert r["evictions"] >= 1
        # evictions travel on their own virtual network (deadlock freedom)
        assert m.network.message_count(VirtualNetwork.EVICTION) == r["evictions"]

    def test_evicted_thread_lands_at_native_context(self):
        m = _machine(
            [([0, 0], [0, 0]), ([1, 17], [0, 0]), ([1, 1], [0, 0]), ([1, 1], [0, 0])],
            guests=1,
        )
        m.run()
        for th in m.threads:
            assert th.done

    def test_native_context_never_evicted(self):
        """Thread 0 sits at its native core; visitors never displace it."""
        m = _machine(
            [([0] * 10, [0] * 10), ([1], [0]), ([1], [0]), ([1], [0])],
            guests=1,
        )
        m.run()
        assert m.threads[0].done
        # thread 0 never migrated nor was evicted
        assert m.network.message_count(VirtualNetwork.EVICTION) >= 0
        assert m.threads[0].core == 0


class TestGlobalInvariants:
    def test_address_only_cached_at_home(self):
        """Sequential consistency's premise: after any run, every cached
        line lives only in its home core's hierarchy (§2)."""
        m = _machine(
            [
                ([0, 16, 32, 48, 0], [1, 1, 1, 1, 0]),
                ([16, 32, 0, 16, 48], [0, 1, 1, 0, 0]),
            ]
        )
        m.run()
        for core, hier in enumerate(m.caches):
            for byte_addr in hier.l1.resident_addrs() + hier.l2.resident_addrs():
                word = byte_addr // m.config.word_bytes
                assert m.placement.home_of_one(word) == core

    def test_all_threads_complete_under_context_pressure(self):
        """Deadlock-freedom: heavy convergence on one core still drains."""
        rng = np.random.default_rng(0)
        threads = []
        for t in range(8):
            addrs = rng.integers(0, 16, 40)  # all home at core 0 (block 0)
            threads.append((addrs.tolist(), [0] * 40))
        m = _machine(threads, num_cores=8, guests=1)
        m.run()
        assert all(th.done for th in m.threads)

    def test_write_then_read_same_address_sees_home_cache(self):
        """Two threads RMW the same word: both migrate to one home, the
        second access hits the line the first brought in."""
        m = _machine([([16], [1]), ([16], [0])])
        m.run()
        assert m.results()["dram_fills"] == 1  # one fill, then a hit
