"""Machines and cost models over non-default topologies."""

import pytest

from repro.arch.config import small_test_config
from repro.arch.topology import Mesh2D, TorusTopology, UnidirectionalRing
from repro.core.costs import CostModel
from repro.core.decision import AlwaysMigrate
from repro.core.em2 import EM2Machine
from repro.core.evaluation import evaluate_scheme
from repro.placement import first_touch
from repro.trace.synthetic import make_workload
from repro.verify import full_machine_audit


@pytest.fixture(scope="module")
def workload():
    return make_workload("fft", num_threads=16, points_per_thread=64,
                         butterfly_stages=2)


class TestTopologiesPlugIn:
    def test_em2_machine_on_torus(self, workload):
        cfg = small_test_config(num_cores=16, guest_contexts=4)
        pl = first_touch(workload, 16)
        m = EM2Machine(workload, pl, cfg, topology=TorusTopology(4, 4))
        m.run()
        full_machine_audit(m)

    def test_torus_never_slower_traffic_than_mesh(self, workload):
        cfg = small_test_config(num_cores=16, guest_contexts=4)
        pl = first_touch(workload, 16)
        hops = {}
        for name, topo in (("mesh", Mesh2D(4, 4)), ("torus", TorusTopology(4, 4))):
            m = EM2Machine(workload, pl, cfg, topology=topo)
            m.run()
            hops[name] = m.results()["flit_hops"]
        assert hops["torus"] <= hops["mesh"]

    def test_cost_model_on_unidirectional_ring(self, workload):
        """Even the directed ring works as a cost substrate (its
        asymmetric distances flow into the matrices)."""
        cfg = small_test_config(num_cores=16)
        cm = CostModel(cfg, topology=UnidirectionalRing(16))
        assert cm.migration[0, 1] < cm.migration[1, 0]  # asymmetry
        pl = first_touch(workload, 16)
        r = evaluate_scheme(workload, pl, AlwaysMigrate(), cm)
        assert r.total_cost > 0

    def test_protocol_counts_topology_invariant(self, workload):
        """Topology changes distances, never protocol decisions: the
        migration count under AlwaysMigrate is identical."""
        cfg = small_test_config(num_cores=16, guest_contexts=8)
        pl = first_touch(workload, 16)
        migs = set()
        for topo in (Mesh2D(4, 4), TorusTopology(4, 4)):
            m = EM2Machine(workload, pl, cfg, topology=topo)
            m.run()
            migs.add(m.results()["migrations"])
        assert len(migs) == 1
