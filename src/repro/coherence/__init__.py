"""Directory-based cache coherence (CC) baseline.

The architecture EM² is positioned against (§1-2): private per-core
caches kept coherent by an MSI directory at each line's home core.
Unlike EM², any core may cache any line — shared data is *replicated*
(costing effective capacity) and writes *invalidate* remote copies
(costing traffic and latency); these are precisely the effects the
EM² comparison measures.

The simulator executes all threads' traces in a deterministic
round-robin interleave (one access per thread per turn), tracking
exact protocol state and message traffic; latencies are message-level
(hop counts + cache/DRAM), without NoC queueing — matching the
fidelity of the analytical EM² evaluators it is compared against.
"""

from repro.coherence.msi import DirectoryEntry, DirState, MSIState
from repro.coherence.simulator import CCResult, DirectoryCCSimulator

__all__ = [
    "MSIState",
    "DirState",
    "DirectoryEntry",
    "DirectoryCCSimulator",
    "CCResult",
]
