#!/usr/bin/env python
"""Stack-machine EM² end to end (§4).

1. Assemble and *execute* a real stack program (dot product) on the
   two-stack machine, recording a stack-annotated memory trace.
2. Run the optimal stack-depth DP on the shared-data threads and
   compare against fixed-depth hardware schemes.
3. Show the §4 headline: migrated bits vs a register-file EM².

Run:  python examples/stack_em2_demo.py
"""

from repro import CostModel, first_touch, small_test_config
from repro.analysis.reports import format_table
from repro.core.decision import fixed_depth_cost, optimal_stack_depths
from repro.stackmachine import StackMachine, assemble, stack_workload
from repro.stackmachine.programs import dot_product_program

K = 8  # guest stack-cache window (entries)


def demo_single_program() -> None:
    print("=== one stack program, inspected ===")
    src = dot_product_program(base_a=100, base_b=200, out_addr=300, n=4)
    memory = {100 + i: i + 1 for i in range(4)}
    memory.update({200 + i: 2 for i in range(4)})
    vm = StackMachine(assemble(src), memory=memory)
    trace = vm.run()
    print(f"result: mem[300] = {vm.memory[300]} (expect {sum((i+1)*2 for i in range(4))})")
    print(f"instructions: {vm.instructions_executed}, memory accesses: {trace.size}")
    print("per-access stack activity (addr, write, spop, spush):")
    for rec in trace:
        print(
            f"  addr={int(rec['addr']):>4}  write={int(rec['write'])}  "
            f"spop={int(rec['spop'])}  spush={int(rec['spush'])}"
        )


def demo_depth_optimization() -> None:
    print("\n=== optimal vs fixed migration depths (8 threads, shared input) ===")
    config = small_test_config(num_cores=8)
    cost = CostModel(config)
    mt = stack_workload("dot", num_threads=8, n=48, shared_fraction=0.75)
    placement = first_touch(mt, 8)

    rows = []
    totals = {"optimal": [0.0, 0, 0]}
    for depth in (0, 1, 2, 4, 8):
        totals[str(depth)] = [0.0, 0, 0]
    for t, tr in enumerate(mt.threads):
        homes = placement.home_of(tr["addr"])
        res = optimal_stack_depths(homes, tr["spop"], tr["spush"], t, cost, K)
        totals["optimal"][0] += res.total_cost
        totals["optimal"][1] += res.migrated_bits
        totals["optimal"][2] += res.forced_returns
        for depth in (0, 1, 2, 4, 8):
            f = fixed_depth_cost(homes, tr["spop"], tr["spush"], t, cost, depth, K)
            totals[str(depth)][0] += f.total_cost
            totals[str(depth)][1] += f.migrated_bits
            totals[str(depth)][2] += f.forced_returns

    full_ctx = config.context.full_context_bits
    for label, (c, bits, forced) in totals.items():
        rows.append(
            {
                "depth": label,
                "network_cost": round(c),
                "migrated_kbit": round(bits / 1000, 1),
                "forced_returns": forced,
            }
        )
    print(format_table(rows))
    print(
        f"\n(register-file EM² would move {full_ctx} bits per migration — "
        "the stack context is a fraction of that; too-shallow depths pay "
        "underflow returns, the full window pays overflow returns)"
    )


if __name__ == "__main__":
    demo_single_program()
    demo_depth_optimization()
