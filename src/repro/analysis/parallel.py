"""Process-parallel sweep execution.

Every headline table in this repo is a cartesian sweep evaluated point
by point, and the points are independent — embarrassingly parallel.
:func:`parallel_sweep` fans the points out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
three properties the benches rely on:

* **Deterministic ordering** — rows come back in the exact order of
  ``points``, regardless of which worker finished first (chunks are
  submitted and collected in index order).
* **Attributed failures** — an exception inside ``fn`` surfaces in the
  parent as :class:`SweepPointError` carrying the failing point on its
  ``.point`` attribute, chained to the original exception.
* **Graceful degradation** — ``workers=1``, a single point, an
  unpicklable callback, or a pool that cannot start all fall back to
  the in-process serial loop with identical semantics.

The callback contract matches :func:`repro.analysis.sweep.sweep`:
``fn(**point)`` returns a metrics mapping, and the returned row merges
the point's parameters with the metrics. A metric key that collides
with a parameter key raises :class:`~repro.util.errors.ConfigError`
(silent overwrites corrupted tables; see ISSUE 1).

The spec-driven layer (:func:`repro.analysis.sweep.sweep_specs`) leans
on the picklability contract: its callback is always the module-level
:func:`repro.runner.run_spec_dict` and its points are serialized
:class:`~repro.spec.ExperimentSpec` dicts — plain data — so the
parallel path holds for every spec the parent can describe, where a
closure-capturing callback would silently degrade to the serial loop.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Mapping

from repro.util.errors import ConfigError, ReproError

#: Below this many points, pool startup costs more than it saves and
#: :func:`parallel_sweep` runs serially regardless of ``workers``.
POOL_MIN_POINTS = 4


class SweepPointError(ReproError):
    """A sweep callback raised; ``point`` is the failing sweep point."""

    def __init__(self, message: str, point: Mapping | None = None) -> None:
        super().__init__(message)
        self.point = dict(point) if point is not None else None


def merge_row(point: Mapping, metrics: Mapping) -> dict:
    """Merge a sweep point with its metrics, rejecting key collisions."""
    row = dict(point)
    for key in metrics:
        if key in row:
            raise ConfigError(
                f"sweep metric key {key!r} collides with a parameter key "
                f"(point {row!r}); rename one of them"
            )
    row.update(metrics)
    return row


def default_workers() -> int:
    """Worker count when the caller passes ``workers=None``."""
    return max(os.cpu_count() or 1, 1)


def effective_workers(requested: int | None) -> int:
    """The worker count actually used for ``requested``.

    Requests are clamped to the CPU count: oversubscribing cores with
    CPU-bound simulator processes only adds context-switch overhead
    (the seed's bench ran 4 workers on 1 core and measured a parallel
    "speedup" of 0.5). Benches record both the requested and this
    effective value so results stay interpretable across machines.
    """
    if requested is None:
        return default_workers()
    if requested < 1:
        raise ConfigError(f"workers must be >= 1, got {requested}")
    return min(requested, default_workers())


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _eval_point(fn: Callable[..., Mapping], point: Mapping) -> dict:
    try:
        metrics = fn(**point)
    except Exception as exc:
        raise SweepPointError(
            f"sweep point {dict(point)!r} failed: {type(exc).__name__}: {exc}",
            point=point,
        ) from exc
    return merge_row(point, metrics)


def _run_chunk(fn: Callable[..., Mapping], chunk: list[dict]) -> list:
    """Worker entry point: evaluate a chunk, packaging any failure.

    The failure is shipped back as a marker tuple rather than raised,
    so the parent can re-raise with the point attached even when the
    original exception is unpicklable.
    """
    rows: list = []
    for point in chunk:
        try:
            rows.append(("ok", _eval_point(fn, point)))
        except Exception as exc:
            packaged = exc if _is_picklable(exc) else ReproError(
                f"{type(exc).__name__}: {exc}"
            )
            rows.append(("err", dict(point), packaged))
            break  # remaining points in this chunk are not evaluated
    return rows


def _serial_sweep(points: list[dict], fn: Callable[..., Mapping]) -> list[dict]:
    return [_eval_point(fn, point) for point in points]


def _chunked(points: list[dict], chunk: int) -> list[list[dict]]:
    return [points[i : i + chunk] for i in range(0, len(points), chunk)]


# One pool per process, reused across parallel_sweep calls with the
# same worker count. Pool startup (fork/spawn + module imports in every
# worker) costs hundreds of ms; a bench that runs ten sweeps back to
# back was paying it ten times.
_pool: ProcessPoolExecutor | None = None
_pool_workers: int = 0


def _get_pool(max_workers: int) -> ProcessPoolExecutor | None:
    global _pool, _pool_workers
    if _pool is not None and _pool_workers == max_workers:
        return _pool
    shutdown_pool()
    try:
        _pool = ProcessPoolExecutor(max_workers=max_workers)
        _pool_workers = max_workers
    except OSError:  # no usable multiprocessing primitives on this host
        _pool = None
        _pool_workers = 0
    return _pool


def _kill_pool_workers() -> None:
    """Forcibly terminate the cached pool's worker processes.

    ``shutdown(cancel_futures=True)`` cannot stop a worker that is
    *currently executing* a hung point — only SIGTERM can. Used by the
    point-timeout path before disposing the pool.
    """
    if _pool is None:
        return
    for proc in list(getattr(_pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass


def shutdown_pool() -> None:
    """Dispose the cached worker pool (idempotent; registered atexit).

    Also called when a pool breaks mid-sweep — a fresh pool is the only
    recovery from a killed worker, and keeping the broken one cached
    would fail every later sweep in the process.
    """
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


#: Seconds slept before the single retry after a transient pool break.
POOL_RETRY_BACKOFF = 0.5


def parallel_sweep(
    points: Iterable[Mapping],
    fn: Callable[..., Mapping],
    workers: int | None = None,
    chunk: int | None = None,
    point_timeout: float | None = None,
) -> list[dict]:
    """Evaluate ``fn(**point)`` for every point, fanning out over
    ``workers`` processes.

    ``workers=None`` uses :func:`default_workers` (the CPU count);
    requests above the CPU count are clamped (:func:`effective_workers`).
    Sweeps of fewer than :data:`POOL_MIN_POINTS` points, an effective
    worker count of 1, or an unpicklable ``fn`` run serially in-process
    with identical semantics. ``chunk`` is the number of points shipped
    to a worker per task (default: enough to give each worker ~4 tasks,
    amortizing pickling without starving the pool). The pool itself is
    created once per process and reused across calls.

    ``point_timeout`` (seconds, wall clock) bounds the wait for each
    chunk's result; when set, ``chunk`` defaults to 1 so a timeout
    attributes to a single point. A hung worker is SIGTERMed, the pool
    disposed, and :class:`SweepPointError` raised with that point —
    never a silent hang. (The bound is approximate for queued chunks:
    the clock starts when the parent begins waiting on that chunk.)

    A transiently broken pool (worker OOM-killed, segfault) is retried
    once on a fresh pool after a short backoff — already-collected
    chunks are not re-evaluated. If the fresh pool breaks too, the
    remaining points finish serially in-process: degraded throughput,
    never a lost sweep.

    Row order always matches point order. Worker exceptions re-raise
    in the parent as :class:`SweepPointError` with the failing point.
    """
    points = [dict(p) for p in points]
    workers = effective_workers(workers)
    if chunk is not None and chunk < 1:
        raise ConfigError(f"chunk must be >= 1, got {chunk}")
    if point_timeout is not None and point_timeout <= 0:
        raise ConfigError(f"point_timeout must be > 0, got {point_timeout}")

    if (
        workers == 1
        or len(points) < POOL_MIN_POINTS
        or not _is_picklable(fn)
    ):
        return _serial_sweep(points, fn)

    if chunk is None:
        chunk = 1 if point_timeout is not None else max(
            1, -(-len(points) // (workers * 4))
        )

    chunks = _chunked(points, chunk)
    rows: list[dict] = []
    done = 0  # chunks fully collected into rows
    pool_breaks = 0
    while done < len(chunks):
        executor = _get_pool(min(workers, len(chunks) - done))
        if executor is None:
            rows.extend(_serial_sweep([p for c in chunks[done:] for p in c], fn))
            return rows
        try:
            futures = [executor.submit(_run_chunk, fn, c) for c in chunks[done:]]
            # collect in submission order -> deterministic row ordering;
            # ``done`` advances per collected chunk, so chunks[done] is
            # always the chunk the current future evaluated
            for future in futures:
                wait = (
                    point_timeout * len(chunks[done])
                    if point_timeout is not None
                    else None
                )
                try:
                    markers = future.result(timeout=wait)
                except FuturesTimeout:
                    point = chunks[done][0]
                    _kill_pool_workers()
                    shutdown_pool()
                    raise SweepPointError(
                        f"sweep point {point!r} exceeded point_timeout="
                        f"{point_timeout}s; worker killed",
                        point=point,
                    ) from None
                for marker in markers:
                    if marker[0] == "err":
                        _, point, exc = marker
                        if isinstance(exc, (SweepPointError, ConfigError)):
                            raise exc  # already attributed / a collision
                        raise SweepPointError(
                            f"sweep point {point!r} failed: "
                            f"{type(exc).__name__}: {exc}",
                            point=point,
                        ) from exc
                    rows.append(marker[1])
                done += 1
        except BrokenProcessPool:
            # a worker died (OOM kill, segfault); the pool is unusable —
            # dispose it so the next attempt starts clean
            shutdown_pool()
            pool_breaks += 1
            if pool_breaks > 1:
                # second break: stop trusting multiprocessing on this
                # host and finish the remaining points in-process
                rows.extend(
                    _serial_sweep([p for c in chunks[done:] for p in c], fn)
                )
                return rows
            time.sleep(POOL_RETRY_BACKOFF)
    return rows
