"""Behavioral machines under the link-contention NoC model.

The contention model must preserve all protocol invariants (it only
changes timing) and can only slow things down.
"""

import pytest

from repro.arch.config import NocConfig, small_test_config
from repro.core.decision import NeverMigrate
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.placement import first_touch
from repro.trace.synthetic import make_workload
from repro.verify import full_machine_audit


def _cfgs():
    return (
        small_test_config(num_cores=8, guest_contexts=2,
                          noc=NocConfig(contention=False)),
        small_test_config(num_cores=8, guest_contexts=2,
                          noc=NocConfig(contention=True)),
    )


@pytest.fixture(scope="module")
def hotspot():
    return make_workload("hotspot", num_threads=8, accesses_per_thread=64,
                         hot_fraction=0.5, seed=1)


class TestContentionPreservesProtocol:
    def test_em2_audits_clean_under_contention(self, hotspot):
        _, cfg = _cfgs()
        pl = first_touch(hotspot, 8)
        m = EM2Machine(hotspot, pl, cfg)
        m.run()
        full_machine_audit(m)

    def test_em2ra_audits_clean_under_contention(self, hotspot):
        _, cfg = _cfgs()
        pl = first_touch(hotspot, 8)
        m = EM2RAMachine(hotspot, pl, cfg, scheme=NeverMigrate())
        m.run()
        full_machine_audit(m)

    def test_protocol_counts_identical_without_evictions(self, hotspot):
        """With ample guest contexts (no evictions) contention changes
        *when*, never *what*: migrations and traffic are identical.
        (Under context pressure, timing shifts arrival order, which
        changes eviction victims and hence re-migration counts — that
        is protocol-correct behaviour, covered by the audit tests.)"""
        results = []
        pl = first_touch(hotspot, 8)
        for contention in (False, True):
            cfg = small_test_config(num_cores=8, guest_contexts=8,
                                    noc=NocConfig(contention=contention))
            m = EM2Machine(hotspot, pl, cfg)
            m.run()
            assert m.results()["evictions"] == 0
            results.append(m.results())
        a, b = results
        for key in ("migrations", "local_accesses", "flit_hops"):
            assert a[key] == b[key]

    def test_contention_never_faster(self, hotspot):
        pl = first_touch(hotspot, 8)
        times = []
        for cfg in _cfgs():
            m = EM2Machine(hotspot, pl, cfg)
            m.run()
            times.append(m.completion_time)
        assert times[1] >= times[0] - 1e-9

    def test_queueing_latency_recorded(self, hotspot):
        _, cfg = _cfgs()
        pl = first_touch(hotspot, 8)
        m = EM2Machine(hotspot, pl, cfg)
        m.run()
        # converging migrations on the hotspot must queue somewhere
        assert m.network.stats.latency("queueing").count > 0
