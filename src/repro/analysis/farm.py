"""Distributed sweep farm — wire protocol and coordinator side.

The farm extends :func:`repro.analysis.sweep.sweep_specs` beyond one
box: ``repro worker --listen HOST:PORT`` processes
(:mod:`repro.analysis.worker`) serve sweep points, and a coordinator
built here shards the grid across them. Everything is stdlib
(``socket``/``struct``/``threading``) — the serialization substrate
already exists, because sweep points are canonical
:class:`~repro.spec.ExperimentSpec` dicts and workloads are addressed
by ``WorkloadSpec.cache_key`` digests.

Wire format: every frame is a fixed header ``!4sBBxxI`` — magic
``b"RPFM"``, protocol version, message kind, body length — followed by
the body. Control frames carry JSON (insertion-ordered, so RESULT
rows keep the key order a local run produces); only ``TRACE_PUT``
carries pickle (a :class:`~repro.trace.events.MultiTrace` is numpy
columns, which JSON cannot ship losslessly). A frame with the wrong
magic, an unknown kind, an oversized length, or a truncated body
raises :class:`FrameError`; a version field other than
:data:`PROTOCOL_VERSION` raises :class:`ProtocolMismatch` before the
body is read, so incompatible peers are rejected at the first frame.

Session, coordinator's view of one worker::

    connect  -> HELLO            {"protocol": 1, "points": N}
    <- HELLO_ACK                 {"pid", "cpu_count", ...}
    -> TRACE_QUERY               {"digests": [cache_key, ...]}
    <- TRACE_HAVE                {"have": [cache_key, ...]}
    -> TRACE_PUT (pickle)        one per digest the worker lacks
    <- TRACE_OK                  per TRACE_PUT
    -> BEGIN
    <- NEXT                      worker pulls; this is the work-stealing
    -> CHUNK                     {"chunk_id", "indices", "specs", ...}
    <- RESULT                    {"chunk_id", "rows", "elapsed"}
    <- NEXT                      ... until the grid drains ...
    -> DONE

Pull-based stealing: workers ask (``NEXT``) whenever idle, so a fast
host simply asks more often — there is no static shard. Chunk size
adapts per worker from an EMA of its observed seconds/point, targeting
:data:`CHUNK_TARGET_SECONDS` per round trip while leaving a stealable
tail. Results stream back incrementally and are placed by point index
(first result wins), so the final row order is deterministic no matter
which worker computed what.

Failure semantics: the coordinator PINGs an idle connection every
:data:`HEARTBEAT_INTERVAL`; a worker silent past its liveness ceiling,
or whose socket errors out, is declared dead and its in-flight chunk
is re-queued to the survivors. ``point_timeout`` travels with each
chunk and doubles as the coordinator-side deadline (timeout × points +
grace) — exceeding it raises the same
:class:`~repro.analysis.parallel.SweepPointError` the local pool
raises, with the offending spec attached. Zero reachable workers
raises :class:`FarmUnavailable`, which ``sweep_specs`` degrades to the
local pool with a warning; if every worker dies mid-sweep, the
leftover points are finished locally instead of being lost.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import threading
import time
import warnings
from collections import deque

from repro.util.errors import ReproError

# -------------------------------------------------------------- wire layer
PROTOCOL_VERSION = 1
MAGIC = b"RPFM"
HEADER = struct.Struct("!4sBBxxI")  # magic, version, kind, pad, body length
MAX_FRAME = 256 * 1024 * 1024

HELLO = 1
HELLO_ACK = 2
TRACE_QUERY = 3
TRACE_HAVE = 4
TRACE_PUT = 5
TRACE_OK = 6
BEGIN = 7
NEXT = 8
CHUNK = 9
RESULT = 10
DONE = 11
PING = 12
PONG = 13
ERROR = 14

KIND_NAMES = {
    HELLO: "HELLO",
    HELLO_ACK: "HELLO_ACK",
    TRACE_QUERY: "TRACE_QUERY",
    TRACE_HAVE: "TRACE_HAVE",
    TRACE_PUT: "TRACE_PUT",
    TRACE_OK: "TRACE_OK",
    BEGIN: "BEGIN",
    NEXT: "NEXT",
    CHUNK: "CHUNK",
    RESULT: "RESULT",
    DONE: "DONE",
    PING: "PING",
    PONG: "PONG",
    ERROR: "ERROR",
}

# TRACE_PUT bodies are numpy trace columns; everything else is JSON so
# a foreign implementation could speak the control plane without
# trusting pickle for it.
_PICKLE_KINDS = frozenset({TRACE_PUT})


class FarmError(ReproError):
    """Base class for distributed-farm failures."""


class FrameError(FarmError):
    """A wire frame was truncated, oversized, or malformed."""


class ProtocolMismatch(FrameError):
    """The peer speaks a different farm protocol version."""


class FarmUnavailable(FarmError):
    """No farm worker was reachable; callers degrade to the local pool."""


def encode_frame(kind: int, payload) -> bytes:
    """One wire frame: header plus JSON (or pickle) body."""
    if kind in _PICKLE_KINDS:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    else:
        # insertion order is preserved deliberately: RESULT rows keep
        # the exact key order a local evaluation produces, so farm and
        # local sweeps render byte-identical tables
        body = json.dumps(payload).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(
            f"{KIND_NAMES.get(kind, kind)} body is {len(body)} bytes, "
            f"over the {MAX_FRAME}-byte frame ceiling"
        )
    return HEADER.pack(MAGIC, PROTOCOL_VERSION, kind, len(body)) + body


def send_frame(sock: socket.socket, kind: int, payload) -> None:
    sock.sendall(encode_frame(kind, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        piece = sock.recv(n - len(buf))
        if not piece:
            raise FrameError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes read)"
            )
        buf.extend(piece)
    return bytes(buf)


def recv_frame(sock: socket.socket) -> tuple[int, object]:
    """Read one frame; return ``(kind, payload)``.

    Raises :class:`ProtocolMismatch` on a foreign version (checked
    before the body is read) and :class:`FrameError` on anything else
    that is not a well-formed frame. ``socket.timeout`` passes through
    so callers can interleave heartbeats with blocking reads.
    """
    magic, version, kind, length = HEADER.unpack(_recv_exact(sock, HEADER.size))
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolMismatch(
            f"peer speaks farm protocol v{version}, this side v{PROTOCOL_VERSION}"
        )
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind}")
    if length > MAX_FRAME:
        raise FrameError(
            f"{KIND_NAMES[kind]} frame declares {length} bytes, "
            f"over the {MAX_FRAME}-byte ceiling"
        )
    body = _recv_exact(sock, length)
    try:
        if kind in _PICKLE_KINDS:
            return kind, pickle.loads(body)
        return kind, json.loads(body.decode("utf-8"))
    except Exception as exc:
        raise FrameError(f"malformed {KIND_NAMES[kind]} body: {exc}") from exc


def parse_hostport(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``; :class:`FarmError` otherwise."""
    host, sep, port = str(addr).rpartition(":")
    if not sep or not host:
        raise FarmError(f"farm address must be HOST:PORT, got {addr!r}")
    try:
        return host, int(port)
    except ValueError:
        raise FarmError(f"farm address {addr!r} has a non-integer port") from None


# ------------------------------------------------------------- coordinator
CONNECT_TIMEOUT = 3.0
HEARTBEAT_INTERVAL = 1.0
LIVENESS_TIMEOUT = 15.0
CHUNK_TARGET_SECONDS = 0.5
MAX_CHUNK = 64
DEADLINE_GRACE = 2.0


class _WorkerLink:
    """Coordinator-side state for one connected worker."""

    def __init__(self, addr: str, sock: socket.socket) -> None:
        self.addr = addr
        self.sock = sock
        self.sec_per_point: float | None = None  # EMA of observed latency
        self.points_done = 0
        self.chunks_done = 0
        self.traces_pushed = 0
        self.dead = False


class FarmCoordinator:
    """Shard one sweep's spec dicts across remote workers.

    ``run()`` returns the list of metrics dicts (JSON-canonical, one
    per spec, in spec order) and fills :attr:`stats` with per-worker
    accounting — chunk counts, points, trace pushes, requeues — which
    the tests and the bench read directly.
    """

    def __init__(
        self,
        spec_dicts: list[dict],
        farm: list[str],
        point_timeout: float | None = None,
        chunk: int | None = None,
        heartbeat: float = HEARTBEAT_INTERVAL,
        liveness: float = LIVENESS_TIMEOUT,
        connect_timeout: float = CONNECT_TIMEOUT,
    ) -> None:
        if not farm:
            raise FarmUnavailable("empty farm address list")
        self.spec_dicts = list(spec_dicts)
        self.farm = list(farm)
        self.point_timeout = point_timeout
        self.fixed_chunk = chunk
        self.heartbeat = heartbeat
        self.liveness = liveness
        self.connect_timeout = connect_timeout
        n = len(self.spec_dicts)
        self.rows: list[dict | None] = [None] * n
        self.remaining = n
        self.pending: deque[int] = deque(range(n))
        self.lock = threading.Lock()
        self.done_evt = threading.Event()
        self.abort_exc: Exception | None = None
        self.live_workers = 0
        self._chunk_ctr = 0
        self._build_lock = threading.Lock()
        self._trace_cache: dict[str, tuple[object, dict]] = {}
        self._workload_by_key: dict[str, dict] = {}
        for d in self.spec_dicts:
            wdict = d.get("workload")
            if wdict is not None:
                from repro.spec import WorkloadSpec

                key = WorkloadSpec.from_dict(wdict).cache_key()
                self._workload_by_key.setdefault(key, wdict)
        self.stats: dict = {
            "points": n,
            "workers": {},
            "requeues": 0,
            "chunks": 0,
            "trace_pushes": {},
            "local_leftovers": 0,
        }

    # -- public entry ------------------------------------------------------
    def run(self) -> list[dict]:
        links = self._connect_all()
        if not links:
            raise FarmUnavailable(
                f"no reachable farm workers among {', '.join(self.farm)}"
            )
        self.live_workers = len(links)
        threads = [
            threading.Thread(target=self._serve, args=(link,), daemon=True)
            for link in links
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        if self.abort_exc is not None:
            raise self.abort_exc
        leftovers = [i for i, r in enumerate(self.rows) if r is None]
        if leftovers:
            # every worker died mid-sweep: degrade, never lose points
            warnings.warn(
                f"all farm workers died; evaluating {len(leftovers)} "
                "remaining point(s) locally",
                RuntimeWarning,
                stacklevel=2,
            )
            self.stats["local_leftovers"] = len(leftovers)
            for i in leftovers:
                self.rows[i] = _eval_local(self.spec_dicts[i])
        for link in links:
            self.stats["workers"][link.addr] = {
                "points": link.points_done,
                "chunks": link.chunks_done,
                "sec_per_point": link.sec_per_point,
                "dead": link.dead,
            }
        return self.rows  # fully populated

    # -- connection management --------------------------------------------
    def _connect_all(self) -> list[_WorkerLink]:
        links = []
        for addr in self.farm:
            host, port = parse_hostport(addr)
            try:
                sock = socket.create_connection(
                    (host, port), timeout=self.connect_timeout
                )
            except OSError as exc:
                warnings.warn(
                    f"farm worker {addr} unreachable: {exc}",
                    RuntimeWarning,
                    stacklevel=3,
                )
                continue
            # handshake and trace pushes may legitimately take a while;
            # the serving loop tightens this to the heartbeat interval
            sock.settimeout(max(self.liveness, self.connect_timeout))
            links.append(_WorkerLink(addr, sock))
        return links

    def _handshake(self, link: _WorkerLink) -> None:
        send_frame(
            link.sock,
            HELLO,
            {"protocol": PROTOCOL_VERSION, "points": len(self.spec_dicts)},
        )
        kind, msg = recv_frame(link.sock)
        if kind == ERROR:
            raise FarmError(f"worker {link.addr} rejected HELLO: {msg.get('message')}")
        if kind != HELLO_ACK:
            raise FarmError(
                f"worker {link.addr} answered HELLO with "
                f"{KIND_NAMES.get(kind, kind)}"
            )

    def _negotiate_traces(self, link: _WorkerLink) -> None:
        """Trace-by-reference: digests first, bodies only where needed."""
        keys = sorted(self._workload_by_key)
        if not keys:
            return
        send_frame(link.sock, TRACE_QUERY, {"digests": keys})
        kind, msg = recv_frame(link.sock)
        if kind != TRACE_HAVE:
            raise FarmError(
                f"worker {link.addr} answered TRACE_QUERY with "
                f"{KIND_NAMES.get(kind, kind)}"
            )
        have = set(msg.get("have", []))
        for key in keys:
            if key in have:
                continue
            trace, wdict = self._trace_for(key)
            send_frame(
                link.sock,
                TRACE_PUT,
                {"key": key, "workload": wdict, "trace": trace},
            )
            kind, msg = recv_frame(link.sock)
            if kind != TRACE_OK or msg.get("key") != key:
                raise FarmError(
                    f"worker {link.addr} did not acknowledge trace {key[:12]}"
                )
            link.traces_pushed += 1
        self.stats["trace_pushes"][link.addr] = link.traces_pushed

    def _trace_for(self, key: str):
        """Build (once) the trace a worker reported missing."""
        with self._build_lock:
            cached = self._trace_cache.get(key)
            if cached is None:
                from repro.runner import build_workload
                from repro.spec import WorkloadSpec

                wdict = self._workload_by_key[key]
                cached = (build_workload(WorkloadSpec.from_dict(wdict)), wdict)
                self._trace_cache[key] = cached
            return cached

    # -- work distribution -------------------------------------------------
    def _next_chunk(self, link: _WorkerLink):
        with self.lock:
            if not self.pending:
                return None
            if self.fixed_chunk is not None:
                n = max(1, self.fixed_chunk)
            else:
                spp = link.sec_per_point
                if spp is None:
                    n = 1  # first chunk calibrates the EMA
                else:
                    n = max(1, int(CHUNK_TARGET_SECONDS / max(spp, 1e-6)))
                # leave a stealable tail for the other live workers
                tail = -(-len(self.pending) // max(1, 2 * self.live_workers))
                n = min(n, MAX_CHUNK, max(1, tail))
            n = min(n, len(self.pending))
            indices = [self.pending.popleft() for _ in range(n)]
            self._chunk_ctr += 1
            self.stats["chunks"] += 1
            chunk_id = self._chunk_ctr
        return chunk_id, indices

    def _record(self, link: _WorkerLink, indices: list[int], rows: list, elapsed) -> None:
        if len(rows) != len(indices):
            raise FarmError(
                f"worker {link.addr} returned {len(rows)} rows for "
                f"{len(indices)} points"
            )
        with self.lock:
            for i, row in zip(indices, rows):
                if self.rows[i] is None:  # first result wins after a requeue
                    self.rows[i] = row
                    self.remaining -= 1
            if self.remaining == 0:
                self.done_evt.set()
        spp = float(elapsed) / max(len(indices), 1)
        link.sec_per_point = (
            spp
            if link.sec_per_point is None
            else 0.5 * link.sec_per_point + 0.5 * spp
        )
        link.points_done += len(indices)
        link.chunks_done += 1

    def _requeue(self, link: _WorkerLink, inflight) -> None:
        with self.lock:
            link.dead = True
            self.live_workers -= 1
            if inflight is not None:
                undone = [i for i in inflight[1] if self.rows[i] is None]
                self.pending.extendleft(reversed(undone))
                if undone:
                    self.stats["requeues"] += 1

    def _abort(self, exc: Exception) -> None:
        with self.lock:
            if self.abort_exc is None:
                self.abort_exc = exc
        self.done_evt.set()

    # -- per-worker serving loop -------------------------------------------
    def _serve(self, link: _WorkerLink) -> None:
        inflight = None  # (chunk_id, indices) awaiting RESULT
        deadline = None
        try:
            self._handshake(link)
            self._negotiate_traces(link)
            send_frame(link.sock, BEGIN, {})
            link.sock.settimeout(self.heartbeat)
            last_frame = time.monotonic()
            while not self.done_evt.is_set() and self.abort_exc is None:
                try:
                    kind, msg = recv_frame(link.sock)
                except socket.timeout:
                    now = time.monotonic()
                    if deadline is not None and now > deadline:
                        idx = inflight[1][0]
                        from repro.analysis.parallel import SweepPointError

                        self._abort(
                            SweepPointError(
                                f"farm point exceeded point_timeout="
                                f"{self.point_timeout}s on worker {link.addr}",
                                point={"spec": self.spec_dicts[idx]},
                            )
                        )
                        break
                    if now - last_frame > self.liveness:
                        raise FarmError(
                            f"worker {link.addr} silent for more than "
                            f"{self.liveness:.0f}s"
                        )
                    send_frame(link.sock, PING, {})
                    continue
                last_frame = time.monotonic()
                if kind == PONG:
                    continue
                if kind == PING:
                    send_frame(link.sock, PONG, {})
                    continue
                if kind == NEXT:
                    assigned = self._next_chunk(link)
                    while assigned is None:
                        if self.done_evt.is_set() or self.abort_exc is not None:
                            break
                        if self.remaining == 0:
                            break
                        time.sleep(0.05)  # idle: another worker may die and requeue
                        assigned = self._next_chunk(link)
                    if assigned is None:
                        break
                    chunk_id, indices = assigned
                    send_frame(
                        link.sock,
                        CHUNK,
                        {
                            "chunk_id": chunk_id,
                            "indices": indices,
                            "specs": [self.spec_dicts[i] for i in indices],
                            "point_timeout": self.point_timeout,
                        },
                    )
                    inflight = (chunk_id, indices)
                    if self.point_timeout is not None:
                        deadline = (
                            time.monotonic()
                            + self.point_timeout * len(indices)
                            + DEADLINE_GRACE
                        )
                    last_frame = time.monotonic()
                    continue
                if kind == RESULT:
                    if inflight is None or msg.get("chunk_id") != inflight[0]:
                        raise FarmError(
                            f"worker {link.addr} sent RESULT for an "
                            "unexpected chunk"
                        )
                    err = msg.get("error")
                    if err is not None:
                        from repro.analysis.parallel import SweepPointError

                        idx = err.get("index", inflight[1][0])
                        self._abort(
                            SweepPointError(
                                f"farm point failed on worker {link.addr}: "
                                f"{err.get('message')}",
                                point={"spec": self.spec_dicts[idx]},
                            )
                        )
                        break
                    self._record(
                        link, inflight[1], msg["rows"], msg.get("elapsed", 0.0)
                    )
                    inflight = None
                    deadline = None
                    continue
                if kind == ERROR:
                    raise FarmError(
                        f"worker {link.addr} reported: {msg.get('message')}"
                    )
                raise FarmError(
                    f"worker {link.addr} sent unexpected "
                    f"{KIND_NAMES.get(kind, kind)}"
                )
        except (FarmError, OSError) as exc:
            # this worker is gone; survivors take over its chunk
            self._requeue(link, inflight)
            warnings.warn(
                f"farm worker {link.addr} dropped: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        finally:
            try:
                send_frame(link.sock, DONE, {})
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:
                pass


def _eval_local(spec_dict: dict) -> dict:
    """Evaluate one leftover point in-process, canonically."""
    from repro.analysis.cache import canonical_rows
    from repro.runner import run_spec_dict

    try:
        return canonical_rows([run_spec_dict(spec_dict)])[0]
    except Exception as exc:
        from repro.analysis.parallel import SweepPointError

        raise SweepPointError(
            f"local fallback point failed: {type(exc).__name__}: {exc}",
            point={"spec": spec_dict},
        ) from exc


def farm_sweep(
    spec_dicts: list[dict],
    farm: list[str],
    point_timeout: float | None = None,
    chunk: int | None = None,
    stats_out: dict | None = None,
) -> list[dict]:
    """Run ``spec_dicts`` over the farm; return metrics dicts in order.

    Raises :class:`FarmUnavailable` when no worker is reachable —
    callers (``sweep_specs``) catch that and degrade to the local pool.
    ``stats_out``, when given, is updated with the coordinator's
    accounting (chunk counts, trace pushes, requeues).
    """
    coord = FarmCoordinator(
        spec_dicts, farm, point_timeout=point_timeout, chunk=chunk
    )
    rows = coord.run()
    if stats_out is not None:
        stats_out.update(coord.stats)
    return rows
