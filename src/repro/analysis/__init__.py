"""Analysis utilities: energy model, experiment report tables."""

from repro.analysis.energy import EnergyModel, EnergyReport
from repro.analysis.reports import format_table, runlength_table, to_csv
from repro.analysis.sweep import geomean, grid, normalize, sweep

__all__ = [
    "EnergyModel",
    "EnergyReport",
    "format_table",
    "runlength_table",
    "to_csv",
    "grid",
    "sweep",
    "geomean",
    "normalize",
]
