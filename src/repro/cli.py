"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``info`` — version, available workloads and schemes.
* ``workload`` — generate a synthetic workload and save it as ``.npz``.
* ``fig2`` — print the Figure 2 run-length table for an ocean run.
* ``evaluate`` — score a decision scheme on a workload (or saved trace).
* ``optimal`` — run the §3 optimal DP on one thread and summarize.
* ``shootout`` — analytical EM² / RA-only / history / optimal comparison.

Every command prints a plain-text table; exit status is nonzero on
invalid arguments so the CLI is scriptable.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro import __version__
from repro.analysis.cache import ResultCache
from repro.analysis.reports import format_table, runlength_table
from repro.analysis.sweep import sweep
from repro.arch.config import SystemConfig
from repro.core.costs import CostModel
from repro.core.decision import (
    AlwaysMigrate,
    DistanceThreshold,
    HistoryRunLength,
    NeverMigrate,
    RandomScheme,
)
from repro.core.decision.costaware import CostAwareHistory
from repro.core.decision.optimal import optimal_cost, optimal_decisions
from repro.core.evaluation import evaluate_scheme
from repro.placement import first_touch, profile_optimal, striped
from repro.trace.io import load_multitrace, save_multitrace
from repro.trace.runlength import (
    fraction_single_access_runs,
    merge_histograms,
    run_length_histogram,
)
from repro.trace.synthetic import GENERATORS, make_workload
from repro.util.errors import ReproError


def _parse_params(pairs: list[str]) -> dict:
    """key=value pairs; values parsed as int, then float, else str."""
    out = {}
    for pair in pairs:
        if "=" not in pair:
            raise ReproError(f"--param expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        for cast in (int, float):
            try:
                out[key] = cast(raw)
                break
            except ValueError:
                continue
        else:
            out[key] = raw
    return out


def _load_or_generate(args) -> "MultiTrace":
    if getattr(args, "trace", None):
        return load_multitrace(args.trace)
    params = _parse_params(getattr(args, "param", []) or [])
    params.setdefault("num_threads", args.threads)
    return make_workload(args.workload, **params)


def _placement_for(name: str, trace, cores: int):
    if name == "first-touch":
        return first_touch(trace, cores)
    if name == "striped":
        return striped(cores)
    if name == "profile-opt":
        return profile_optimal(trace, cores)
    raise ReproError(f"unknown placement {name!r}")


def _scheme_for(name: str, cost: CostModel):
    dm = cost.topology.distance_matrix
    be = cost.break_even_run_length(0, cost.config.num_cores - 1)
    table = {
        "always-migrate": lambda: AlwaysMigrate(),
        "never-migrate": lambda: NeverMigrate(),
        "distance-1": lambda: DistanceThreshold(dm, 1),
        "distance-2": lambda: DistanceThreshold(dm, 2),
        "history": lambda: HistoryRunLength(threshold=be),
        "costaware": lambda: CostAwareHistory(cost),
        "random": lambda: RandomScheme(p=0.5, seed=0),
    }
    if name not in table:
        raise ReproError(f"unknown scheme {name!r}; options: {sorted(table)}")
    return table[name]()


SCHEME_NAMES = [
    "always-migrate",
    "never-migrate",
    "distance-1",
    "distance-2",
    "history",
    "costaware",
    "random",
]


def _cache_for(args) -> ResultCache | None:
    """Build the result cache implied by --cache-dir/--no-cache.

    Returns None when caching is off (no directory configured, or
    --no-cache given — the latter bypasses both reads and writes).
    """
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get("REPRO_CACHE_DIR")
    if cache_dir is None or getattr(args, "no_cache", False):
        return None
    return ResultCache(cache_dir)


def _cache_context(trace, config, placement_name: str) -> dict:
    """Everything besides the sweep point that determines result rows:
    the trace spec (generator name, params — including its seed — and
    thread pinning), the placement policy, and the full system config.
    The code-version salt is mixed in by :class:`ResultCache`."""
    return {
        "trace": {
            "name": trace.name,
            "params": trace.params,
            "threads": trace.num_threads,
            "accesses": trace.total_accesses,
            "native_cores": list(trace.thread_native_core),
        },
        "placement": placement_name,
        "config": config,
    }


def _eval_scheme_point(scheme: str, *, _trace, _placement, _config) -> dict:
    """Sweep callback for ``evaluate``/``shootout`` — module-level so it
    pickles into pool workers. Rebuilds the cost model per call (cheap:
    cached matrices) and drops the 'scheme' metric, which would collide
    with the sweep parameter of the same name."""
    cost = CostModel(_config)
    r = evaluate_scheme(_trace, _placement, _scheme_for(scheme, cost), cost)
    metrics = r.as_dict()
    metrics.pop("scheme")
    return metrics


# ---------------------------------------------------------------- commands
def cmd_info(args) -> int:
    print(f"repro {__version__} — EM2 (SPAA'11) reproduction")
    print(f"workloads: {', '.join(sorted(GENERATORS))}")
    print(f"schemes:   {', '.join(SCHEME_NAMES)}")
    print(f"placements: first-touch, striped, profile-opt")
    return 0


def cmd_workload(args) -> int:
    trace = _load_or_generate(args)
    path = save_multitrace(trace, args.out)
    s = trace.summary()
    print(format_table([s]))
    print(f"saved to {path}")
    return 0


def cmd_fig2(args) -> int:
    trace = make_workload(
        "ocean", num_threads=args.threads, grid_n=args.grid, iterations=args.iterations
    )
    placement = first_touch(trace, args.cores)
    hists = [
        run_length_histogram(placement.home_of(tr["addr"]), trace.thread_native_core[t])
        for t, tr in enumerate(trace.threads)
    ]
    hist = merge_histograms(hists)
    print(runlength_table(hist, max_rows=args.rows))
    print(f"\nfraction at run length 1: {fraction_single_access_runs(hist):.3f}")
    return 0


def cmd_evaluate(args) -> int:
    from functools import partial

    trace = _load_or_generate(args)
    config = SystemConfig(num_cores=args.cores)
    placement = _placement_for(args.placement, trace, args.cores)
    names = SCHEME_NAMES if args.scheme == "all" else [args.scheme]
    cache = _cache_for(args)
    rows = sweep(
        [{"scheme": name} for name in names],
        partial(_eval_scheme_point, _trace=trace, _placement=placement, _config=config),
        workers=args.workers,
        cache=cache,
        cache_extra=_cache_context(trace, config, args.placement),
    )
    if cache is not None:
        print(f"cache: {cache.stats()}", file=sys.stderr)
    if getattr(args, "csv", False):
        from repro.analysis.reports import to_csv

        print(to_csv(rows), end="")
    else:
        print(format_table(rows))
    return 0


def cmd_optimal(args) -> int:
    trace = _load_or_generate(args)
    config = SystemConfig(num_cores=args.cores)
    cost = CostModel(config)
    placement = _placement_for(args.placement, trace, args.cores)
    tr = trace.threads[args.thread]
    homes = placement.home_of(tr["addr"])
    start = trace.thread_native_core[args.thread] % args.cores
    res = optimal_decisions(homes, tr["write"], start, cost)
    print(
        format_table(
            [
                {
                    "thread": args.thread,
                    "accesses": tr.size,
                    "optimal_cost": res.total_cost,
                    "migrations": res.num_migrations,
                    "remote_accesses": res.num_remote_accesses,
                    "local": res.num_local,
                    "end_core": res.end_core,
                }
            ]
        )
    )
    return 0


def cmd_shootout(args) -> int:
    from functools import partial

    trace = _load_or_generate(args)
    config = SystemConfig(num_cores=args.cores)
    cost = CostModel(config)
    placement = _placement_for(args.placement, trace, args.cores)
    opt = sum(
        optimal_cost(
            placement.home_of(tr["addr"]),
            tr["write"],
            trace.thread_native_core[t] % args.cores,
            cost,
        )
        for t, tr in enumerate(trace.threads)
        if tr.size
    )
    cache = _cache_for(args)
    scheme_rows = sweep(
        [{"scheme": name} for name in SCHEME_NAMES],
        partial(_eval_scheme_point, _trace=trace, _placement=placement, _config=config),
        workers=args.workers,
        cache=cache,
        cache_extra=_cache_context(trace, config, args.placement),
    )
    if cache is not None:
        print(f"cache: {cache.stats()}", file=sys.stderr)
    rows = [{"scheme": "optimal (DP)", "total_cost": opt, "x_optimal": 1.0}]
    for r in scheme_rows:
        rows.append(
            {
                "scheme": r["scheme"],
                "total_cost": r["total_cost"],
                "x_optimal": r["total_cost"] / opt if opt else float("nan"),
            }
        )
    print(format_table(rows))
    return 0


def cmd_stackdepth(args) -> int:
    from repro.core.decision.stack_optimal import fixed_depth_cost, optimal_stack_depths
    from repro.stackmachine import stack_workload

    mt = stack_workload(args.kernel, num_threads=args.threads, n=args.n,
                        shared_fraction=0.75)
    config = SystemConfig(num_cores=args.cores)
    cost = CostModel(config)
    placement = first_touch(mt, args.cores)
    rows = []
    opt_cost = opt_bits = 0.0
    for t, tr in enumerate(mt.threads):
        homes = placement.home_of(tr["addr"])
        r = optimal_stack_depths(
            homes, tr["spop"], tr["spush"], t, cost, args.max_depth
        )
        opt_cost += r.total_cost
        opt_bits += r.migrated_bits
    rows.append({"depth": "optimal", "cost": opt_cost, "migrated_kbit": opt_bits / 1000})
    for depth in range(args.max_depth + 1):
        c = b = 0.0
        for t, tr in enumerate(mt.threads):
            homes = placement.home_of(tr["addr"])
            r = fixed_depth_cost(
                homes, tr["spop"], tr["spush"], t, cost, depth, args.max_depth
            )
            c += r.total_cost
            b += r.migrated_bits
        rows.append({"depth": depth, "cost": c, "migrated_kbit": b / 1000})
    print(format_table(rows))
    return 0


def cmd_dynamic(args) -> int:
    from repro.placement.dynamic import evaluate_dynamic_placement

    trace = _load_or_generate(args)
    config = SystemConfig(num_cores=args.cores)
    cost = CostModel(config)
    res = evaluate_dynamic_placement(
        trace, args.cores, _scheme_for("never-migrate", cost), cost,
        num_epochs=args.epochs, oracle=args.oracle,
    )
    print(
        format_table(
            [
                {
                    "mode": "oracle" if args.oracle else "reactive",
                    "epochs": args.epochs,
                    "dynamic_cost": res.total_cost,
                    "static_cost": res.static_cost,
                    "gain": res.improvement_over_static,
                    "rehomed_kbit": res.rehoming_bits / 1000,
                }
            ]
        )
    )
    return 0


# ---------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="EM2 (SPAA'11) reproduction toolkit"
    )
    p.add_argument(
        "--profile",
        nargs="?",
        type=int,
        const=25,
        default=None,
        metavar="N",
        help="run the command under cProfile and print the top N "
        "functions by cumulative time (default 25)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version + available components").set_defaults(
        fn=cmd_info
    )

    def add_trace_args(sp, with_out=False):
        sp.add_argument("--workload", default="ocean", choices=sorted(GENERATORS))
        sp.add_argument("--trace", help="load a saved .npz trace instead")
        sp.add_argument("--threads", type=int, default=16)
        sp.add_argument("--cores", type=int, default=16)
        sp.add_argument(
            "--placement",
            default="first-touch",
            choices=["first-touch", "striped", "profile-opt"],
        )
        sp.add_argument(
            "--param", action="append", default=[], help="generator key=value"
        )

    def add_perf_args(sp):
        sp.add_argument(
            "--workers",
            type=int,
            default=1,
            help="evaluate sweep points in N parallel processes (default 1)",
        )
        sp.add_argument(
            "--cache-dir",
            default=None,
            help="content-addressed result cache directory "
            "(default: $REPRO_CACHE_DIR, unset = no caching)",
        )
        sp.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the result cache entirely (no reads, no writes)",
        )

    sp = sub.add_parser("workload", help="generate + save a workload")
    add_trace_args(sp)
    sp.add_argument("--out", required=True)
    sp.set_defaults(fn=cmd_workload)

    sp = sub.add_parser("fig2", help="Figure 2 run-length table")
    sp.add_argument("--threads", type=int, default=64)
    sp.add_argument("--cores", type=int, default=64)
    sp.add_argument("--grid", type=int, default=386)
    sp.add_argument("--iterations", type=int, default=2)
    sp.add_argument("--rows", type=int, default=25)
    sp.set_defaults(fn=cmd_fig2)

    sp = sub.add_parser("evaluate", help="score a scheme on a workload")
    add_trace_args(sp)
    add_perf_args(sp)
    sp.add_argument("--scheme", default="all", choices=SCHEME_NAMES + ["all"])
    sp.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    sp.set_defaults(fn=cmd_evaluate)

    sp = sub.add_parser("optimal", help="optimal DP on one thread")
    add_trace_args(sp)
    sp.add_argument("--thread", type=int, default=0)
    sp.set_defaults(fn=cmd_optimal)

    sp = sub.add_parser("shootout", help="all schemes vs the DP optimum")
    add_trace_args(sp)
    add_perf_args(sp)
    sp.set_defaults(fn=cmd_shootout)

    sp = sub.add_parser("stackdepth", help="stack-EM2 depth DP vs fixed depths")
    sp.add_argument("--kernel", default="dot", choices=["dot", "reduce", "hist"])
    sp.add_argument("--threads", type=int, default=8)
    sp.add_argument("--cores", type=int, default=8)
    sp.add_argument("--n", type=int, default=48)
    sp.add_argument("--max-depth", type=int, default=8)
    sp.set_defaults(fn=cmd_stackdepth)

    sp = sub.add_parser("dynamic", help="epoch re-placement vs static first-touch")
    add_trace_args(sp)
    sp.add_argument("--epochs", type=int, default=4)
    sp.add_argument("--oracle", action="store_true")
    sp.set_defaults(fn=cmd_dynamic)

    return p


def run_profiled(fn, top_n: int = 25, stream=None):
    """Run ``fn()`` under cProfile; print the top ``top_n`` functions
    by cumulative time to ``stream`` (default stderr). Returns ``fn``'s
    result. Shared by the CLI ``--profile`` flag and the benchmark
    harness so hot-path regressions are one flag away from a profile."""
    import cProfile
    import pstats

    stream = stream if stream is not None else sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
        pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(
            top_n
        )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile is not None:
            return run_profiled(lambda: args.fn(args), args.profile)
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
