"""Per-tile simulator memory accounting and the bytes-per-tile budget.

The 1024+-core scaling work holds a hard line on how much *host* memory
the simulator spends per simulated tile: columnar cache metadata
(:class:`~repro.arch.cache.sram.TileCacheStore`), lazy topology
geometry, pooled counter matrices, and lazily-allocated NoC occupancy
replace the per-core Python object graphs that made a 1024-core build
cost megabytes per tile. :func:`tile_state_bytes` measures the actual
substrate footprint of a built machine so benches and tests can assert
the budget instead of trusting the design.

What counts as tile state: cache metadata columns + presence indexes +
the per-core cache/hierarchy wrapper objects, context files, topology
geometry (coordinates, route cache, lazy hop rows), NoC occupancy
state, and pooled per-core counters. The workload trace and per-thread
decode columns are *not* tile state — they scale with the workload,
not the machine — and are excluded.

``BYTES_PER_TILE_BUDGET`` is the documented ceiling: a freshly built
detailed machine must cost at most this many bytes of substrate per
tile at any core count from 64 to 4096. The dominant term is the cache
metadata columns (18 bytes per cache line: int64 tag + int64 stamp +
bool dirty + uint8 state), so the paper's 16 KB + 64 KB tile caches
land at ~23 KB/tile and the ``mesh-1024``/``cluster-4096`` presets'
trimmed 4 KB + 16 KB caches at ~12 KB/tile.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

#: Hard ceiling on substrate bytes per simulated tile for a freshly
#: built detailed machine (see module docstring for what counts).
BYTES_PER_TILE_BUDGET = 32 * 1024


def _sizeof(obj: Any) -> int:
    """``sys.getsizeof`` with numpy arrays priced by their buffers.

    A view into a shared store (e.g. a :class:`CacheArray` row of a
    :class:`TileCacheStore` matrix) is priced at the view header only —
    the buffer is charged once, at its owning base array.
    """
    if isinstance(obj, np.ndarray):
        header = sys.getsizeof(obj) - obj.nbytes if obj.base is None else sys.getsizeof(obj)
        return max(header, 0) + (obj.nbytes if obj.base is None else 0)
    return sys.getsizeof(obj)


def _container_bytes(obj: Any, seen: set[int]) -> int:
    """Size of ``obj`` plus one level of held references (dicts/lists)."""
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    total = _sizeof(obj)
    if isinstance(obj, dict):
        for v in obj.values():
            if id(v) not in seen and not isinstance(v, (int, float, bool, type(None))):
                seen.add(id(v))
                total += _sizeof(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            if id(v) not in seen and not isinstance(v, (int, float, bool, type(None))):
                seen.add(id(v))
                total += _sizeof(v)
    return total


def _cache_array_bytes(arr, seen: set[int]) -> int:
    total = _sizeof(arr)
    for col in (arr.tags, arr.dirty, arr.state, arr.stamps):
        base = col if col.base is None else col.base
        if id(base) not in seen:
            seen.add(id(base))
            total += base.nbytes
        total += sys.getsizeof(col) - (col.nbytes if col.base is None else 0)
    total += _container_bytes(arr._index, seen)
    if arr._policies is not None:
        total += _container_bytes(arr._policies, seen)
        total += sum(_sizeof(p) for p in arr._policies)
    return total


def _topology_bytes(topology, seen: set[int]) -> int:
    total = _sizeof(topology)
    for attr in ("_xs", "_ys", "_route_cache"):
        v = getattr(topology, attr, None)
        if v is not None:
            total += _container_bytes(v, seen)
    hop = topology.__dict__.get("hop_table")  # cached_property: absent until used
    if hop is not None:
        total += _sizeof(hop)
        rows = getattr(hop, "_rows", None)
        if rows is not None:
            total += _container_bytes(rows, seen)
            for row in rows.values():
                total += _container_bytes(row, seen)
    dm = topology.__dict__.get("distance_matrix")
    if dm is not None:
        total += _sizeof(dm)
    return total


def tile_state_bytes(machine) -> dict:
    """Substrate memory breakdown of a built machine or CC simulator.

    Returns ``{"num_cores", "total_bytes", "bytes_per_tile",
    "components": {...}}``. Accepts a
    :class:`~repro.core.machine.MigrationMachineBase` subclass or a
    :class:`~repro.coherence.simulator.DirectoryCCSimulator`.
    """
    seen: set[int] = set()
    comp: dict[str, int] = {}
    num_cores = machine.config.num_cores

    # -- cache metadata: pooled columns + per-core arrays/indexes -------
    cache_total = 0
    for store_attr in ("l1_store", "l2_store", "cache_store"):
        store = getattr(machine, store_attr, None)
        if store is not None:
            for col in (store.tags, store.dirty, store.state, store.stamps):
                if id(col) not in seen:
                    seen.add(id(col))
                    cache_total += col.nbytes
            cache_total += _sizeof(store)
    caches = getattr(machine, "caches", None)
    if caches:
        for c in caches:
            if hasattr(c, "l1"):  # CacheHierarchy
                cache_total += _sizeof(c)
                cache_total += _cache_array_bytes(c.l1, seen)
                cache_total += _cache_array_bytes(c.l2, seen)
            else:  # bare CacheArray (directory-CC private cache)
                cache_total += _cache_array_bytes(c, seen)
    comp["caches"] = cache_total

    # -- topology geometry + route/hop caches ---------------------------
    comp["topology"] = _topology_bytes(machine.topology, seen)

    # -- NoC occupancy + stats ------------------------------------------
    network = getattr(machine, "network", None)
    if network is not None:
        comp["network"] = _sizeof(network) + _container_bytes(
            network._link_free, seen
        )

    # -- pooled per-core counters ---------------------------------------
    mats = getattr(machine.stats, "_matrices", {})
    comp["counter_matrices"] = sum(m.nbytes for m in mats.values())

    # -- context files ---------------------------------------------------
    contexts = getattr(machine, "contexts", None)
    if contexts:
        ctx_total = 0
        for ctx in contexts:
            ctx_total += _sizeof(ctx)
            ctx_total += _container_bytes(ctx._guests, seen)
            ctx_total += _container_bytes(ctx._native_home, seen)
        comp["contexts"] = ctx_total

    total = sum(comp.values())
    return {
        "num_cores": num_cores,
        "total_bytes": total,
        "bytes_per_tile": total / num_cores,
        "budget_bytes_per_tile": BYTES_PER_TILE_BUDGET,
        "components": comp,
    }
