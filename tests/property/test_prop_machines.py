"""Property-based tests for the behavioral machines.

The strongest property in the repo: for *arbitrary* small multithreaded
traces, every machine drains to completion with conserved messages and
home-only caching — the paper's deadlock-freedom and sequential-
consistency premises, fuzzed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import small_test_config
from repro.core.decision import NeverMigrate, RandomScheme
from repro.core.em2 import EM2Machine
from repro.core.em2ra import EM2RAMachine
from repro.core.remote_access import RemoteAccessMachine
from repro.placement import striped
from repro.trace.events import MultiTrace, make_trace
from repro.verify import full_machine_audit

# traces: up to 4 threads, each up to 25 accesses over a handful of blocks
thread_trace = st.lists(
    st.tuples(st.integers(0, 5), st.booleans()), min_size=0, max_size=25
)
multi_trace = st.lists(thread_trace, min_size=1, max_size=4)


def _build(threads):
    built = []
    for t in threads:
        addrs = [blk * 16 for blk, _ in t]
        writes = [int(w) for _, w in t]
        built.append(make_trace(addrs, writes=writes, icounts=1))
    return MultiTrace(threads=built)


@settings(max_examples=40, deadline=None)
@given(multi_trace, st.integers(1, 3))
def test_em2_always_drains_and_audits_clean(threads, guests):
    cfg = small_test_config(num_cores=4, guest_contexts=guests)
    mt = _build(threads)
    m = EM2Machine(mt, striped(4, block_words=16), cfg)
    m.run(max_events=200_000)
    full_machine_audit(m)
    # every access is accounted exactly once
    assert (
        m.stats.counters["local_accesses"] + m.stats.counters["migrations"]
        >= mt.total_accesses
    )


@settings(max_examples=30, deadline=None)
@given(multi_trace, st.integers(0, 3))
def test_em2ra_random_scheme_drains(threads, seed):
    cfg = small_test_config(num_cores=4, guest_contexts=1)
    mt = _build(threads)
    m = EM2RAMachine(
        mt, striped(4, block_words=16), cfg, scheme=RandomScheme(p=0.5, seed=seed)
    )
    m.run(max_events=200_000)
    full_machine_audit(m)


@settings(max_examples=30, deadline=None)
@given(multi_trace)
def test_ra_only_threads_never_move(threads):
    cfg = small_test_config(num_cores=4, guest_contexts=1)
    mt = _build(threads)
    m = RemoteAccessMachine(mt, striped(4, block_words=16), cfg)
    m.run(max_events=200_000)
    full_machine_audit(m)
    assert m.stats.counters["migrations"] == 0
    assert m.stats.counters["evictions"] == 0


@settings(max_examples=25, deadline=None)
@given(multi_trace)
def test_access_accounting_exact_without_evictions(threads):
    """With ample guest contexts: local + migrations + RAs == accesses."""
    cfg = small_test_config(num_cores=4, guest_contexts=8)
    mt = _build(threads)
    m = EM2Machine(mt, striped(4, block_words=16), cfg)
    m.run(max_events=200_000)
    s = m.stats.counters
    assert s["evictions"] == 0
    assert s["local_accesses"] + s["migrations"] == mt.total_accesses


@settings(max_examples=25, deadline=None)
@given(multi_trace)
def test_determinism(threads):
    """Two identical runs produce identical statistics."""
    cfg = small_test_config(num_cores=4, guest_contexts=2)
    mt = _build(threads)
    results = []
    for _ in range(2):
        m = EM2Machine(mt, striped(4, block_words=16), cfg)
        m.run(max_events=200_000)
        results.append((m.results(), m.completion_time))
    assert results[0] == results[1]
