"""Trace persistence: NPZ container with JSON metadata sidecar fields."""

from __future__ import annotations

import json
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.trace.events import MultiTrace, validate_trace
from repro.util.errors import TraceFormatError

#: Exceptions a corrupt/truncated NPZ can surface through numpy's zip
#: reader — normalized to TraceFormatError so callers (and the trace
#: store, which treats format errors as cache misses) see one type.
_CORRUPT_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    KeyError,
    EOFError,
    json.JSONDecodeError,
    OSError,
)


def save_multitrace(mt: MultiTrace, path: str | Path) -> Path:
    """Write a :class:`MultiTrace` to a single ``.npz`` file."""
    path = Path(path)
    arrays = {f"thread_{i:05d}": tr for i, tr in enumerate(mt.threads)}
    arrays["native_cores"] = np.asarray(mt.thread_native_core, dtype=np.int64)
    meta = json.dumps({"name": mt.name, "params": mt.params, "num_threads": mt.num_threads})
    arrays["meta_json"] = np.frombuffer(meta.encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_multitrace(path: str | Path) -> MultiTrace:
    """Load a trace written by :func:`save_multitrace`.

    A missing file raises :class:`FileNotFoundError`; anything wrong
    with the file's *contents* — truncation, bit rot, a non-trace NPZ,
    broken metadata — raises :class:`TraceFormatError`.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            if "meta_json" not in data or "native_cores" not in data:
                raise TraceFormatError(f"{path} is not a repro trace container")
            meta = json.loads(bytes(data["meta_json"]).decode())
            n = int(meta["num_threads"])
            threads = []
            for i in range(n):
                key = f"thread_{i:05d}"
                if key not in data:
                    raise TraceFormatError(f"{path} missing {key}")
                tr = data[key]
                validate_trace(tr)
                threads.append(tr)
            native = data["native_cores"].tolist()
            name = meta["name"]
            params = meta["params"]
    except FileNotFoundError:
        raise
    except TraceFormatError:
        raise
    except _CORRUPT_ERRORS as exc:
        raise TraceFormatError(f"corrupt trace container {path}: {exc}") from exc
    return MultiTrace(
        threads=threads,
        thread_native_core=native,
        name=name,
        params=params,
    )
