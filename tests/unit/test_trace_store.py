"""Unit tests for the content-addressed on-disk trace store."""

import json

import numpy as np
import pytest

from repro.runner import build_workload, clear_build_memo
from repro.spec import WorkloadSpec
from repro.trace.events import MultiTrace, STACK_TRACE_DTYPE, TRACE_DTYPE, make_trace
from repro.trace.store import TRACE_STORE_SCHEMA, TraceStore, set_trace_store
from repro.util.errors import ConfigError


@pytest.fixture(autouse=True)
def _no_ambient_store():
    """Keep the process-wide store out of every test, restore after."""
    set_trace_store(None)
    clear_build_memo()
    yield
    set_trace_store(None)
    clear_build_memo()


def _flat_mt():
    return MultiTrace(
        threads=[
            make_trace([1, 2, 3], writes=[0, 1, 0], icounts=[4, 4, 4]),
            make_trace([9, 8], writes=[1, 1]),
        ],
        thread_native_core=[2, 0],
        name="flat",
        params={"alpha": 3},
    )


def _stack_mt():
    return MultiTrace(
        threads=[make_trace([1, 2], spops=[1, 2], spushes=[0, 1])],
        name="stack",
        params={},
    )


class TestRoundTrip:
    @pytest.mark.parametrize("mt_fn,dtype", [(_flat_mt, TRACE_DTYPE), (_stack_mt, STACK_TRACE_DTYPE)])
    def test_put_get_bit_identical(self, tmp_path, mt_fn, dtype):
        store = TraceStore(tmp_path)
        mt = mt_fn()
        store.put("k1", mt)
        loaded = store.get("k1")
        assert loaded is not None
        assert loaded.threads[0].dtype == dtype
        assert loaded.digest() == mt.digest()
        assert store.stats()["hits"] == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.get("nope") is None
        assert store.stats() == {
            "hits": 0, "misses": 1, "hit_rate": 0.0, "entries": 0, "bytes": 0,
        }

    def test_keys_are_salted_by_schema(self, tmp_path):
        # the entry path must change if TRACE_STORE_SCHEMA is bumped, so
        # the key cannot be the raw cache_key
        store = TraceStore(tmp_path)
        assert "k1" not in str(store.path_for("k1"))
        assert store.path_for("k1") != store.path_for("k2")
        assert TRACE_STORE_SCHEMA == 1


class TestCorruption:
    def test_corrupt_entry_is_dropped_and_counted_as_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put("k1", _flat_mt())
        path.write_bytes(b"this is not an npz file")
        assert store.get("k1") is None
        assert not path.exists()  # evicted, next put regenerates it
        assert store.stats()["misses"] == 1

    def test_truncated_entry_is_dropped(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put("k1", _flat_mt())
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get("k1") is None
        assert not path.exists()


class TestEviction:
    def test_gc_evicts_lru_first(self, tmp_path):
        store = TraceStore(tmp_path)
        import os, time

        for i, key in enumerate(["a", "b", "c"]):
            p = store.put(key, _flat_mt())
            os.utime(p, (time.time() + i, time.time() + i))  # deterministic order
        # touch "a" so "b" becomes least recently used
        os.utime(store.path_for("a"), (time.time() + 10, time.time() + 10))
        per_entry = store.total_bytes() // 3
        evicted = store.gc(2 * per_entry + 1)
        assert evicted == [store.path_for("b").stem]
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert store.get("b") is None

    def test_gc_zero_clears_everything(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put("a", _flat_mt())
        store.put("b", _stack_mt())
        assert len(store.gc(0)) == 2
        assert store.entries() == []
        assert list(tmp_path.glob("*.npz")) == []
        assert list(tmp_path.glob("*.json")) == []

    def test_gc_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ConfigError):
            TraceStore(tmp_path).gc(-1)


class TestListing:
    def test_entries_carry_sidecar_metadata(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put("k1", _flat_mt())
        (entry,) = store.entries()
        assert entry["name"] == "flat"
        assert entry["threads"] == 2
        assert entry["accesses"] == 5
        assert entry["bytes"] > 0

    def test_entries_survive_missing_sidecar(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.put("k1", _flat_mt())
        path.with_suffix(".json").unlink()
        (entry,) = store.entries()
        assert entry["key"] == path.stem
        assert "name" not in entry


class TestRunnerIntegration:
    SPEC = WorkloadSpec(name="pingpong", params={"num_threads": 4, "rounds": 8})

    def test_build_workload_populates_and_reuses_store(self, tmp_path):
        store = TraceStore(tmp_path)
        set_trace_store(store)
        first = build_workload(self.SPEC)
        assert store.path_for(self.SPEC.cache_key()).exists()
        clear_build_memo()  # force the store path, not the memo
        second = build_workload(self.SPEC)
        assert second is not first  # loaded from disk, not memoized
        assert second.digest() == first.digest()
        assert store.hits == 1

    def test_corrupt_store_entry_regenerates(self, tmp_path):
        store = TraceStore(tmp_path)
        set_trace_store(store)
        first = build_workload(self.SPEC)
        path = store.path_for(self.SPEC.cache_key())
        path.write_bytes(b"garbage")
        clear_build_memo()
        second = build_workload(self.SPEC)
        assert second.digest() == first.digest()
        assert path.exists()  # regenerated and re-stored

    def test_trace_path_workloads_bypass_store(self, tmp_path):
        from repro.trace.io import save_multitrace

        npz = tmp_path / "wl.npz"
        save_multitrace(_flat_mt(), npz)
        store = TraceStore(tmp_path / "store")
        set_trace_store(store)
        build_workload(WorkloadSpec(name="trace-file", trace_path=str(npz)))
        assert store.entries() == []

    def test_env_var_activates_store(self, tmp_path, monkeypatch):
        import repro.trace.store as mod

        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        monkeypatch.setattr(mod, "_store", None)
        monkeypatch.setattr(mod, "_store_resolved", False)
        active = mod.active_trace_store()
        assert active is not None
        assert active.root == tmp_path


class TestCacheKey:
    def test_cache_key_stable_across_instances(self):
        a = WorkloadSpec(name="ocean", params={"num_threads": 8, "grid_n": 66})
        b = WorkloadSpec(name="ocean", params={"grid_n": 66, "num_threads": 8})
        assert a.cache_key() == b.cache_key()

    def test_cache_key_distinguishes_params(self):
        a = WorkloadSpec(name="ocean", params={"num_threads": 8})
        b = WorkloadSpec(name="ocean", params={"num_threads": 16})
        assert a.cache_key() != b.cache_key()
