"""Property-based compiler verification.

Generate random expression trees and straight-line programs, compile
them to stack code, execute on the stack machine, and compare against
direct Python evaluation of the same AST. Any divergence is a codegen
or interpreter bug.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stackmachine.compiler import compile_source
from repro.stackmachine.machine import MachineFault, StackMachine

FRAME = 100_000
OUT = 500

# -- random expression source + reference evaluation ----------------------

_binops = ["+", "-", "*", "/", "%", "<", ">", "=="]


@st.composite
def expr_strings(draw, depth=0):
    """A random expression string and its Python value."""
    if depth >= 3 or draw(st.booleans()):
        n = draw(st.integers(0, 50))
        return str(n), n
    op = draw(st.sampled_from(_binops))
    left_s, left_v = draw(expr_strings(depth + 1))
    right_s, right_v = draw(expr_strings(depth + 1))
    if op in ("/", "%"):
        assume(right_v != 0)
    s = f"({left_s} {op} {right_s})"
    if op == "+":
        v = left_v + right_v
    elif op == "-":
        v = left_v - right_v
    elif op == "*":
        v = left_v * right_v
    elif op == "/":
        v = left_v // right_v
    elif op == "%":
        v = left_v - (left_v // right_v) * right_v
    elif op == "<":
        v = 1 if left_v < right_v else 0
    elif op == ">":
        v = 1 if left_v > right_v else 0
    else:
        v = 1 if left_v == right_v else 0
    return s, v


@settings(max_examples=80)
@given(expr_strings())
def test_random_expressions_match_python(pair):
    src_expr, expected = pair
    program = compile_source(f"store({OUT}, {src_expr});", FRAME)
    vm = StackMachine(program, stack_capacity=32)
    vm.run(fuel=100_000)
    assert vm.memory[OUT] == expected


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.sampled_from("abc"), expr_strings()), min_size=1, max_size=6
    )
)
def test_straight_line_assignments_match_python(assignments):
    """Sequential assignments x = expr; final variable values agree."""
    env = {}
    lines = []
    for name, (src_expr, value) in assignments:
        lines.append(f"{name} = {src_expr};")
        env[name] = value
    for i, name in enumerate(sorted(env)):
        lines.append(f"store({OUT + i}, {name});")
    program = compile_source("\n".join(lines), FRAME)
    vm = StackMachine(program, stack_capacity=32)
    vm.run(fuel=200_000)
    for i, name in enumerate(sorted(env)):
        assert vm.memory[OUT + i] == env[name]


@settings(max_examples=30)
@given(st.integers(0, 12), st.integers(1, 5))
def test_counted_loops_match_python(count, step):
    src = f"""
        acc = 0; i = 0;
        while (i < {count}) {{ acc = acc + i; i = i + {step}; }}
        store({OUT}, acc);
    """
    vm = StackMachine(compile_source(src, FRAME), stack_capacity=32)
    vm.run(fuel=500_000)
    expected = sum(range(0, count, step))
    assert vm.memory[OUT] == expected


@settings(max_examples=30)
@given(expr_strings(), st.integers(0, 100), st.integers(0, 100))
def test_if_else_selects_correct_branch(cond_pair, a, b):
    cond_src, cond_val = cond_pair
    src = f"""
        if ({cond_src}) {{ r = {a}; }} else {{ r = {b}; }}
        store({OUT}, r);
    """
    vm = StackMachine(compile_source(src, FRAME), stack_capacity=32)
    vm.run(fuel=200_000)
    assert vm.memory[OUT] == (a if cond_val else b)
