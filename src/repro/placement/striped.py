"""Striped (modulo) placement: block ``b`` homes at core ``b % P``.

The zero-information baseline: it balances capacity perfectly but
ignores affinity entirely, so private data lands on arbitrary cores
and the migration rate explodes — the foil that shows why placement
matters (§2).
"""

from __future__ import annotations

from repro.placement.base import Placement
from repro.registry import PLACEMENTS


class StripedPlacement(Placement):
    """Pure-function placement; no map is materialized (the fallback
    stripe in :class:`~repro.placement.base.Placement` IS the policy)."""

    def __init__(self, num_cores: int, block_words: int = 16) -> None:
        super().__init__(num_cores, block_words)


def striped(num_cores: int, block_words: int = 16) -> StripedPlacement:
    return StripedPlacement(num_cores, block_words)


@PLACEMENTS.register("striped", "round-robin blocks over cores (pessimal baseline)")
def _make_striped(trace, num_cores: int, **params) -> StripedPlacement:
    return striped(num_cores, **params)
