"""Trace-driven MSI directory-coherence simulator.

Execution model: deterministic round-robin interleave (access *k* of
every live thread runs before access *k+1* of any thread). Protocol
state (private caches + directories) is exact; timing is message-level.

Per-access flow:

* **hit** — line present in the private hierarchy with sufficient
  state (SHARED for loads, MODIFIED for stores): cache latency only.
* **load miss** — GETS to the line's home directory. If EXCLUSIVE
  elsewhere: FETCH to the owner, owner downgrades M->S and writes
  back; DATA to the requester; requester caches SHARED.
* **store miss/upgrade** — GETX to the directory. Every other copy is
  invalidated (INV + ACK per sharer, or FETCH_INV to an exclusive
  owner); DATA (or upgrade ACK) grants MODIFIED.
* **capacity eviction** — a victim chosen by the private cache's LRU:
  dirty (M) victims write back to the home (data message), clean (S)
  victims notify the directory (control message) so sharer lists stay
  exact.

Latency charged per miss: request hop + (max parallel invalidation /
fetch round trip, invalidations overlap) + data reply hop + cache fill,
plus DRAM when the home has no cached copy. Directory/NoC queueing is
not modeled — the same fidelity as the EM² analytical evaluators this
baseline is compared against (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.cache.hierarchy import CacheHierarchy
from repro.arch.cache.sram import CacheArray, TileCacheStore
from repro.arch.config import SystemConfig
from repro.arch.topology import Topology, topology_for
from repro.coherence.msi import DirectoryEntry, DirState, MSIState
from repro.placement.base import Placement
from repro.registry import MACHINES
from repro.sim.stats import StatSet
from repro.trace.events import MultiTrace
from repro.util.errors import ProtocolError, RetryExhaustedError

CTRL_BITS = 72  # address + message type + ids


@dataclass
class CCResult:
    completion_time: float
    per_thread_time: list[float]
    stats: dict
    traffic_bits: int

    @property
    def invalidations(self) -> int:
        return self.stats.get("count.invalidations", 0)


class DirectoryCCSimulator:
    """MSI/MESI directory coherence over private caches and the mesh.

    ``protocol="mesi"`` adds the Exclusive state: a read miss on an
    uncached line is granted E (sole clean copy), and a later write by
    the same core upgrades **silently** (no directory message) — the
    optimization that removes upgrade traffic for private
    read-then-write data, which MSI pays for on every such pattern.
    """

    name = "directory-cc"

    def __init__(
        self,
        trace: MultiTrace,
        placement: Placement,
        config: SystemConfig,
        topology: Topology | None = None,
        protocol: str = "msi",
        faults=None,
        fast_path: bool = True,
    ) -> None:
        if protocol not in ("msi", "mesi"):
            raise ProtocolError(f"unknown protocol {protocol!r}; use 'msi' or 'mesi'")
        self.protocol = protocol
        # epoch-batched fast driver (repro.core.epoch.run_cc_fast);
        # auto-disabled with a fault injector so the retry/recovery
        # accounting stays on the message-by-message path
        self.fast_path = fast_path and faults is None
        # surfaced in results()["fast_path"]: why the batched driver is
        # off, and (filled in by run_cc_fast) its engagement stats
        self._fastpath_reason = (
            None if self.fast_path else ("faults" if faults is not None else "off")
        )
        self._fastpath_stats: dict | None = None
        self.trace = trace
        self.placement = placement
        self.config = config
        self.topology = topology if topology is not None else topology_for(config)
        # coherence-visible private cache: the L2 (capacity level) with
        # L1 hit latency charged on hits via config.l1; all cores'
        # metadata lives in one pooled columnar store
        self.cache_store = TileCacheStore(config.num_cores, config.l2)
        self.caches = [
            CacheArray(config.l2, store=self.cache_store, core=c)
            for c in range(config.num_cores)
        ]
        self.directory: dict[int, DirectoryEntry] = {}
        self.stats = StatSet("cc")
        self.traffic_bits = 0
        self._line_bits = config.l2.line_bytes * 8
        self._per_hop = config.noc.router_latency + config.noc.link_latency
        self._native = [c % config.num_cores for c in trace.thread_native_core]
        # Columnar trace decode: plain-int/bool/float columns replace
        # per-record numpy structured-scalar extraction in run()
        self._addr_cols: list[list[int]] = [tr["addr"].tolist() for tr in trace.threads]
        self._write_cols: list[list[bool]] = [
            (tr["write"] != 0).tolist() for tr in trace.threads
        ]
        self._icount_cols: list[list[float]] = [
            tr["icount"].astype(np.float64).tolist() for tr in trace.threads
        ]
        self._home_cols: list[list[int]] = [
            placement.home_of(tr["addr"]).tolist() if tr.size else []
            for tr in trace.threads
        ]
        # loop-invariant hoists: cached NoC hop table, victim-address
        # shift, word size, and integer-bump counter cells
        self._hops = self.topology.hop_table
        self._flit_bits = config.noc.flit_bits
        self._word_bytes = config.word_bytes
        self._line_shift = config.l2.line_bytes.bit_length() - 1
        self._victim_home_memo: dict[int, int] = {}
        counters = self.stats.counters
        self._c_hits = counters.cell("hits")
        self._c_misses = counters.cell("misses")
        self._c_silent = counters.cell("silent_upgrades")
        self._c_inv = counters.cell("invalidations")
        self._c_wb = counters.cell("writebacks")
        self._c_dram = counters.cell("dram_fills")
        self._c_flit_hops = counters.cell("flit_hops")
        self._kind_cells: dict[str, object] = {}
        # fault plane: the simulator is synchronous (latency accounting,
        # not a DES), so recovery is a retry loop inside _msg charging
        # the detection timeout as extra latency per lost copy
        self.faults = faults
        if faults is not None:
            fspec = faults.spec
            self._retry_enabled = fspec.retries
            self._retry_timeout = fspec.retry_timeout
            self._retry_backoff = fspec.retry_backoff
            self._retry_cap = fspec.retry_cap
            self._c_retries = counters.cell("retries")
            self._c_drops_survived = counters.cell("drops_survived")
            self._c_dup_ignored = counters.cell("dup_ignored")
            self.recovery_stall_cycles = 0.0

    # -- message accounting ----------------------------------------------
    def _msg(self, src: int, dst: int, bits: int, kind: str) -> float:
        """Charge one message; return its zero-load latency."""
        flits = self.config.noc.message_flits(bits)  # memoized per size
        hops = self._hops.hop(src, dst)
        cell = self._kind_cells.get(kind)
        if cell is None:  # one cell per message kind, created on first use
            cell = self._kind_cells[kind] = self.stats.counters.cell("msg." + kind)
        cell.n += 1
        self.traffic_bits += flits * self._flit_bits
        self._c_flit_hops.n += flits * (hops if hops > 0 else 1)
        lat = hops * self._per_hop + (flits - 1)
        if self.faults is not None and src != dst:
            lat += self._msg_faults(src, dst, flits, hops, cell, kind)
        return lat

    def _msg_faults(
        self, src: int, dst: int, flits: int, hops: int, cell, kind: str
    ) -> float:
        """Extra latency from injected faults on one logical message.

        Each dropped copy costs its detection timeout (exponential
        backoff) and the retransmission's traffic; a duplicate charges
        traffic twice and is ignored at the receiver; a delayed copy
        adds its extra in-flight cycles. The clock argument is ``None``
        (no simulated time here), so link-down windows do not apply.
        """
        extra_lat = 0.0
        attempts = 0
        while True:
            action, extra = self.faults.on_message(src, dst, None)
            if action != "drop":
                break
            if not self._retry_enabled:
                raise RetryExhaustedError(
                    f"cc {kind} message {src}->{dst} lost with retries disabled"
                )
            if attempts >= self._retry_cap:
                raise RetryExhaustedError(
                    f"cc {kind} message {src}->{dst}: all {attempts + 1} copies "
                    f"lost, retry cap {self._retry_cap} exhausted"
                )
            wait = self._retry_timeout * self._retry_backoff**attempts
            attempts += 1
            self._c_retries.n += 1
            self.recovery_stall_cycles += wait
            extra_lat += wait
            # the retransmitted copy pays its own traffic
            cell.n += 1
            self.traffic_bits += flits * self._flit_bits
            self._c_flit_hops.n += flits * (hops if hops > 0 else 1)
        if attempts:
            self._c_drops_survived.n += 1
        if action == "dup":
            self._c_dup_ignored.n += 1
            cell.n += 1
            self.traffic_bits += flits * self._flit_bits
            self._c_flit_hops.n += flits * (hops if hops > 0 else 1)
        elif action == "delay":
            extra_lat += extra
        return extra_lat

    def _dir_entry(self, line: int) -> DirectoryEntry:
        entry = self.directory.get(line)
        if entry is None:
            entry = DirectoryEntry()
            self.directory[line] = entry
        return entry

    def _line(self, byte_addr: int) -> int:
        return int(byte_addr) // self.config.l2.line_bytes

    # -- cache-side helpers -------------------------------------------------
    def _probe_state(self, core: int, addr: int) -> MSIState:
        arr = self.caches[core]
        slot = arr.probe(addr)
        return MSIState(int(arr.state[slot])) if slot is not None else MSIState.INVALID

    def _fill(self, core: int, addr: int, state: MSIState) -> float:
        """Insert a line; handle the victim's coherence actions."""
        victim = self.caches[core].fill(
            addr, dirty=(state == MSIState.MODIFIED), state=int(state)
        )
        lat = 0.0
        if victim is not None:
            vaddr = self._victim_addr(core, addr, victim.tag)
            lat += self._evict_line(core, vaddr, MSIState(victim.state))
        return lat

    def _victim_addr(self, core: int, addr: int, victim_tag: int) -> int:
        arr = self.caches[core]
        si = arr.set_index(addr)
        # line_bytes is a validated power of two (SystemConfig), so the
        # shift reconstructs the byte address exactly
        return (victim_tag * arr.num_sets + si) << self._line_shift

    def _evict_line(self, core: int, addr: int, state: MSIState) -> float:
        """Victim coherence: writeback (M) or sharer removal (S).

        ``addr`` is a byte address (reconstructed from the cache tag).
        """
        line = self._line(addr)
        entry = self._dir_entry(line)
        home = self._victim_home_memo.get(line)
        if home is None:
            # victim homes recur per line; memoize the vectorized lookup
            home = self.placement.home_of_one(addr // self._word_bytes)
            self._victim_home_memo[line] = home
        if state == MSIState.MODIFIED:
            lat = self._msg(core, home, CTRL_BITS + self._line_bits, "writeback")
            self._c_wb.n += 1
            if entry.state != DirState.EXCLUSIVE or entry.owner != core:
                raise ProtocolError(
                    f"M eviction by {core} but directory says {entry.state.name}/{entry.owner}"
                )
            entry.state = DirState.UNCACHED
            entry.owner = None
            entry.sharers.clear()
        elif state == MSIState.EXCLUSIVE:
            # clean sole copy: a control notification suffices (MESI)
            lat = self._msg(core, home, CTRL_BITS, "exclusive-drop")
            if entry.state != DirState.EXCLUSIVE or entry.owner != core:
                raise ProtocolError(
                    f"E eviction by {core} but directory says {entry.state.name}/{entry.owner}"
                )
            entry.state = DirState.UNCACHED
            entry.owner = None
            entry.sharers.clear()
        else:  # SHARED
            lat = self._msg(core, home, CTRL_BITS, "sharer-drop")
            entry.sharers.discard(core)
            if not entry.sharers and entry.state == DirState.SHARED:
                entry.state = DirState.UNCACHED
        entry.check_invariants()
        return lat

    # -- the protocol -----------------------------------------------------
    def access(
        self, core: int, word_addr: int, write: bool, home: int | None = None
    ) -> float:
        """One load/store by ``core`` at a word address; returns latency.

        ``home`` is the line's home core when the caller already knows
        it (the columnar driver precomputes homes per access); left
        None, it is looked up through the placement on a miss.
        """
        cfg = self.config
        addr = int(word_addr) * self._word_bytes  # byte address for the arrays
        state = self._probe_state(core, addr)
        if state == MSIState.MODIFIED or (
            state in (MSIState.SHARED, MSIState.EXCLUSIVE) and not write
        ):
            self.caches[core].lookup(addr)  # recency + hit counters
            self._c_hits.n += 1
            return float(cfg.l1.hit_latency)
        if state == MSIState.EXCLUSIVE and write:
            # MESI's payoff: E -> M silently, no directory traffic
            arr = self.caches[core]
            slot = arr.lookup(addr)
            arr.state[slot] = int(MSIState.MODIFIED)
            arr.dirty[slot] = True
            self._c_hits.n += 1
            self._c_silent.n += 1
            return float(cfg.l1.hit_latency)

        line = self._line(addr)
        entry = self._dir_entry(line)
        if home is None:
            home = self.placement.home_of_one(word_addr)
        self._c_misses.n += 1
        lat = self._msg(core, home, CTRL_BITS, "getx" if write else "gets")

        if not write:
            # ---- GETS ------------------------------------------------
            grant = MSIState.SHARED
            if entry.state == DirState.EXCLUSIVE and entry.owner != core:
                owner = entry.owner
                oarr = self.caches[owner]
                oslot = oarr.probe(addr)
                if oslot is None:
                    raise ProtocolError(f"directory owner {owner} lost line {line:#x}")
                lat += self._msg(home, owner, CTRL_BITS, "fetch")
                if oarr.state[oslot] == int(MSIState.MODIFIED):
                    lat += self._msg(
                        owner, home, CTRL_BITS + self._line_bits, "wb-data"
                    )
                else:  # E: clean, a control ack suffices (MESI)
                    lat += self._msg(owner, home, CTRL_BITS, "downgrade-ack")
                oarr.state[oslot] = int(MSIState.SHARED)
                oarr.dirty[oslot] = False
                entry.sharers = {owner}
                entry.owner = None
                entry.state = DirState.SHARED
            elif entry.state == DirState.UNCACHED:
                lat += cfg.cost.dram_latency  # home fetches from memory
                self._c_dram.n += 1
                if self.protocol == "mesi":
                    grant = MSIState.EXCLUSIVE  # sole clean copy
            if grant == MSIState.EXCLUSIVE:
                entry.state = DirState.EXCLUSIVE
                entry.owner = core
                entry.sharers = set()
            else:
                entry.state = DirState.SHARED
                entry.owner = None
                entry.sharers.add(core)
            lat += self._msg(home, core, CTRL_BITS + self._line_bits, "data")
            lat += self._fill(core, addr, grant)
        else:
            # ---- GETX ------------------------------------------------
            if entry.state == DirState.EXCLUSIVE and entry.owner != core:
                owner = entry.owner
                oarr = self.caches[owner]
                oslot = oarr.probe(addr)
                if oslot is None:
                    raise ProtocolError(f"directory owner {owner} lost line {line:#x}")
                lat += self._msg(home, owner, CTRL_BITS, "fetch-inv")
                if oarr.state[oslot] == int(MSIState.MODIFIED):
                    lat += self._msg(
                        owner, home, CTRL_BITS + self._line_bits, "wb-data"
                    )
                else:  # E: clean copy, control ack (MESI)
                    lat += self._msg(owner, home, CTRL_BITS, "inv-ack")
                self.caches[owner].invalidate(addr)
                self._c_inv.n += 1
            elif entry.state == DirState.SHARED:
                inv_lat = 0.0
                for sharer in sorted(entry.sharers - {core}):
                    inv = self._msg(home, sharer, CTRL_BITS, "inv")
                    ack = self._msg(sharer, home, CTRL_BITS, "inv-ack")
                    inv_lat = max(inv_lat, inv + ack)  # invalidations overlap
                    self.caches[sharer].invalidate(addr)
                    self._c_inv.n += 1
                lat += inv_lat
            elif entry.state == DirState.UNCACHED:
                lat += cfg.cost.dram_latency
                self._c_dram.n += 1
            if state == MSIState.SHARED:
                # upgrade: data already present, grant only
                lat += self._msg(home, core, CTRL_BITS, "upgrade-ack")
                harr = self.caches[core]
                hslot = harr.probe(addr)
                harr.state[hslot] = int(MSIState.MODIFIED)
                harr.dirty[hslot] = True
            else:
                lat += self._msg(home, core, CTRL_BITS + self._line_bits, "data")
                lat += self._fill(core, addr, MSIState.MODIFIED)
            entry.state = DirState.EXCLUSIVE
            entry.owner = core
            entry.sharers = set()
        entry.check_invariants()
        return float(lat + cfg.l1.hit_latency)

    # -- driver -------------------------------------------------------------
    def run(self) -> CCResult:
        """Interleaved execution of the whole trace.

        Columnar driver: the round-robin walk reads plain-int columns
        (no per-record structured scalars) and serves private-cache
        hits inline — probe + recency lookup, exactly the sequence
        ``access()`` performs — skipping the directory path entirely.
        Misses and MESI silent upgrades fall through to ``access()``
        with the precomputed home. Results are bit-identical to the
        record-at-a-time driver.

        With ``fast_path`` on (the default; forced off by a fault
        injector) the epoch-batched driver runs instead — same protocol
        over the same state, lockstep numpy windows over pure-hit
        rounds, bit-identical results.
        """
        if self.fast_path:
            from repro.core.epoch import run_cc_fast

            return run_cc_fast(self)
        T = self.trace.num_threads
        times = [0.0] * T
        idx = [0] * T
        addr_cols, write_cols = self._addr_cols, self._write_cols
        icount_cols, home_cols = self._icount_cols, self._home_cols
        sizes = [len(a) for a in addr_cols]
        caches, native, wb = self.caches, self._native, self._word_bytes
        hit_lat = float(self.config.l1.hit_latency)
        c_hits = self._c_hits
        MOD = int(MSIState.MODIFIED)
        SH = int(MSIState.SHARED)
        EX = int(MSIState.EXCLUSIVE)
        active = [t for t in range(T) if sizes[t] > 0]
        while active:
            finished = False
            for t in active:
                k = idx[t]
                word = addr_cols[t][k]
                write = write_cols[t][k]
                core = native[t]
                arr = caches[core]
                byte_addr = word * wb
                slot = arr.probe(byte_addr)
                st = arr.state[slot] if slot is not None else 0
                if st == MOD or (not write and (st == SH or st == EX)):
                    arr.lookup(byte_addr)  # recency + hit counters
                    c_hits.n += 1
                    lat = hit_lat
                else:
                    lat = self.access(core, word, write, home=home_cols[t][k])
                times[t] += icount_cols[t][k] + lat
                idx[t] = k + 1
                if k + 1 == sizes[t]:
                    finished = True
            if finished:
                active = [t for t in active if idx[t] < sizes[t]]
        stats = self.stats.as_dict()
        return CCResult(
            completion_time=max(times, default=0.0),
            per_thread_time=times,
            stats=stats,
            traffic_bits=self.traffic_bits,
        )

    def directory_overhead_bits(self) -> int:
        """Total directory SRAM for the lines currently tracked —
        the scaling cost EM² eliminates (§1)."""
        return len(self.directory) * DirectoryEntry.bits(self.config.num_cores)


def cc_results(sim: DirectoryCCSimulator) -> dict:
    """Run ``sim`` and flatten its :class:`CCResult` into the metrics
    dict the golden fixtures snapshot (the registry entry shape)."""
    r = sim.run()
    out = {
        "completion_time": r.completion_time,
        "per_thread_time": r.per_thread_time,
        "traffic_bits": r.traffic_bits,
        "stats": r.stats,
        "directory_overhead_bits": sim.directory_overhead_bits(),
    }
    if sim._fastpath_stats is not None:
        out["fast_path"] = sim._fastpath_stats
    else:
        out["fast_path"] = {
            "engaged": False,
            "disabled_reason": sim._fastpath_reason,
        }
    if sim.faults is not None:
        counters = sim.stats.counters
        out["retries"] = counters["retries"]
        out["drops_survived"] = counters["drops_survived"]
        out["dup_ignored"] = counters["dup_ignored"]
        out["recovery_stall_cycles"] = sim.recovery_stall_cycles
        out.update(sim.faults.summary())
    return out


@MACHINES.register("cc-msi", "directory-MSI coherence baseline (detailed DES)")
def _run_cc_msi(trace, placement, config, scheme=None, topology=None, **params):
    sim = DirectoryCCSimulator(
        trace, placement, config, topology=topology, protocol="msi", **params
    )
    return cc_results(sim)


@MACHINES.register("cc-mesi", "directory-MESI coherence baseline (detailed DES)")
def _run_cc_mesi(trace, placement, config, scheme=None, topology=None, **params):
    sim = DirectoryCCSimulator(
        trace, placement, config, topology=topology, protocol="mesi", **params
    )
    return cc_results(sim)
