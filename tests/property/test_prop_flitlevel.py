"""Property-based tests for the flit-level NoC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.noc.flitlevel import FlitNetwork
from repro.arch.topology import Mesh2D, UnidirectionalRing
from repro.util.errors import DeadlockError


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8), st.integers(1, 6)),
        min_size=1,
        max_size=20,
    ),
    st.integers(1, 3),
    st.integers(1, 4),
)
def test_mesh_always_drains_and_conserves(packets, vcs, bufsize):
    """XY meshes are deadlock-free for any traffic: everything drains,
    exactly once each, regardless of VC count and buffer depth."""
    net = FlitNetwork(Mesh2D(3, 3), num_vcs=vcs, buffer_flits=bufsize,
                      deadlock_cycles=50_000)
    for src, dst, flits in packets:
        net.send(src, dst, num_flits=flits)
    net.run_until_drained()
    assert net.delivered == len(packets)
    assert net.pending_flits() == 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(1, 7), st.integers(1, 6)),
        min_size=1,
        max_size=16,
    )
)
def test_dateline_ring_always_drains(packets):
    """With the dateline discipline, arbitrary ring traffic drains."""
    net = FlitNetwork(
        UnidirectionalRing(8), num_vcs=2, buffer_flits=2, dateline=True,
        deadlock_cycles=50_000,
    )
    for src, off, flits in packets:
        net.send(src, (src + off) % 8, num_flits=flits)
    net.run_until_drained()
    assert net.delivered == len(packets)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 15),
    st.integers(0, 15),
    st.integers(1, 10),
)
def test_latency_lower_bound(src, dst, flits):
    """No packet beats hops + serialization: physics of the model."""
    topo = Mesh2D(4, 4)
    net = FlitNetwork(topo, num_vcs=1, buffer_flits=8)
    net.send(src, dst, num_flits=flits)
    net.run_until_drained()
    assert net.latencies[0] >= topo.distance(src, dst) + (flits - 1)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(1, 8), min_size=2, max_size=6))
def test_fifo_per_source_destination_pair(flit_counts):
    """Packets between one (src, dst) pair deliver in injection order
    (wormhole on a deterministic route cannot reorder)."""
    order = []
    net = FlitNetwork(Mesh2D(4, 1), num_vcs=1, buffer_flits=2,
                      on_deliver=lambda p, c: order.append(p))
    for i, flits in enumerate(flit_counts):
        net.send(0, 3, num_flits=flits, payload=i)
    net.run_until_drained()
    assert order == list(range(len(flit_counts)))
