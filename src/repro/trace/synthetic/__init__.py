"""Synthetic SPLASH-2-like workload generators.

The paper's only data figure is measured on SPLASH-2 OCEAN [13]; the
announcement's companion papers evaluate the usual SPLASH-2 suite. We
cannot run the original C benchmarks, so each generator reproduces the
*memory-access structure* of its namesake — the private/shared split,
the sharing pattern between threads, and the temporal structure
(sweeps, phases, transposes) — which is what determines migration
behaviour, run lengths, and placement quality.

All generators are deterministic given ``seed`` and return a
:class:`~repro.trace.events.MultiTrace`.
"""

from repro.trace.synthetic.base import WorkloadGenerator, AddressSpace
from repro.trace.synthetic.ocean import OceanGenerator
from repro.trace.synthetic.fft import FFTGenerator
from repro.trace.synthetic.lu import LUGenerator
from repro.trace.synthetic.radix import RadixGenerator
from repro.trace.synthetic.water import WaterGenerator
from repro.trace.synthetic.barnes import BarnesGenerator
from repro.trace.synthetic.cholesky import CholeskyGenerator
from repro.trace.synthetic.raytrace import RaytraceGenerator
from repro.trace.synthetic.water_spatial import WaterSpatialGenerator
from repro.trace.synthetic.micro import (
    HotspotGenerator,
    PingPongGenerator,
    PrivateOnlyGenerator,
    UniformRandomGenerator,
)

from repro.registry import WORKLOADS

# Backwards-compatible view over the workload registry: every generator
# self-registers at import (each module above carries the decorator),
# so this dict is derived, never hand-maintained.
GENERATORS = {entry.name: entry.obj for entry in WORKLOADS.items()}


def make_workload(name: str, **kwargs):
    """Instantiate a generator by name and produce its trace.

    Resolution goes through :data:`repro.registry.WORKLOADS`; an
    unknown name raises :class:`~repro.util.errors.ConfigError`
    listing the registered generators.
    """
    return WORKLOADS.get(name)(**kwargs).generate()


__all__ = [
    "WorkloadGenerator",
    "AddressSpace",
    "OceanGenerator",
    "FFTGenerator",
    "LUGenerator",
    "RadixGenerator",
    "WaterGenerator",
    "WaterSpatialGenerator",
    "BarnesGenerator",
    "CholeskyGenerator",
    "RaytraceGenerator",
    "UniformRandomGenerator",
    "HotspotGenerator",
    "PrivateOnlyGenerator",
    "PingPongGenerator",
    "GENERATORS",
    "make_workload",
]
