"""Fault models: per-message and per-step fault distributions.

A fault model answers two questions, both driven exclusively by the
injector's dedicated RNG so fault schedules are reproducible:

* :meth:`FaultModel.message_action` — for one message about to be
  injected, return ``(action, extra_delay)`` with ``action`` one of
  ``"ok"``, ``"drop"``, ``"dup"``, ``"delay"``.
* :meth:`FaultModel.stall_cycles` — for one instruction step, return
  the transient stall to charge the core (``0.0`` almost always).

Models also carry the link-down parameters (``link_down_count`` links
chosen uniformly, each down for ``link_down_cycles`` starting uniformly
in ``[0, link_down_horizon)``); the injector draws the actual windows
once a topology is bound.

Registered in :data:`repro.registry.FAULTS` under stable string names.
"""

from __future__ import annotations

from repro.registry import FAULTS
from repro.util.errors import ConfigError


def _check_rate(name: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigError(f"fault param {name} must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"fault param {name} must be in [0, 1], got {value}")
    return value


def _check_nonneg(name: str, value) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigError(f"fault param {name} must be a number, got {value!r}")
    value = float(value)
    if value < 0.0:
        raise ConfigError(f"fault param {name} must be >= 0, got {value}")
    return value


class FaultModel:
    """Base fault model: a lossless fabric (every hook is a no-op)."""

    #: True when message_action can return anything but ("ok", 0.0);
    #: lets the injector skip RNG draws entirely for fault-free axes.
    has_message_faults = False
    #: True when stall_cycles can return nonzero.
    has_stalls = False

    link_down_count = 0
    link_down_cycles = 0.0
    link_down_horizon = 0.0

    def message_action(self, rng, src: int, dst: int) -> tuple[str, float]:
        return ("ok", 0.0)

    def stall_cycles(self, rng) -> float:
        return 0.0


@FAULTS.register("iid")
class IIDFaults(FaultModel):
    """Independent per-message faults: each message is dropped,
    duplicated, or delayed with fixed probabilities; each instruction
    step stalls the core with probability ``stall_rate``."""

    def __init__(
        self,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_cycles: float = 64.0,
        stall_rate: float = 0.0,
        stall_cycles: float = 32.0,
        link_down_count: int = 0,
        link_down_cycles: float = 512.0,
        link_down_horizon: float = 65536.0,
    ) -> None:
        self.drop_rate = _check_rate("drop_rate", drop_rate)
        self.dup_rate = _check_rate("dup_rate", dup_rate)
        self.delay_rate = _check_rate("delay_rate", delay_rate)
        if self.drop_rate + self.dup_rate + self.delay_rate > 1.0:
            raise ConfigError(
                "drop_rate + dup_rate + delay_rate must not exceed 1, got "
                f"{self.drop_rate + self.dup_rate + self.delay_rate}"
            )
        self.delay_cycles = _check_nonneg("delay_cycles", delay_cycles)
        self.stall_rate = _check_rate("stall_rate", stall_rate)
        self.stall_cycles_mean = _check_nonneg("stall_cycles", stall_cycles)
        if not isinstance(link_down_count, int) or isinstance(link_down_count, bool):
            raise ConfigError(
                f"fault param link_down_count must be an int, got {link_down_count!r}"
            )
        if link_down_count < 0:
            raise ConfigError(
                f"fault param link_down_count must be >= 0, got {link_down_count}"
            )
        self.link_down_count = link_down_count
        self.link_down_cycles = _check_nonneg("link_down_cycles", link_down_cycles)
        self.link_down_horizon = _check_nonneg("link_down_horizon", link_down_horizon)
        self.has_message_faults = (
            self.drop_rate > 0 or self.dup_rate > 0 or self.delay_rate > 0
        )
        self.has_stalls = self.stall_rate > 0

    def message_action(self, rng, src: int, dst: int) -> tuple[str, float]:
        u = rng.random()
        if u < self.drop_rate:
            return ("drop", 0.0)
        u -= self.drop_rate
        if u < self.dup_rate:
            return ("dup", 0.0)
        u -= self.dup_rate
        if u < self.delay_rate:
            return ("delay", self.delay_cycles)
        return ("ok", 0.0)

    def stall_cycles(self, rng) -> float:
        if rng.random() < self.stall_rate:
            return self.stall_cycles_mean
        return 0.0


@FAULTS.register("bursty")
class BurstyFaults(FaultModel):
    """Gilbert–Elliott bursty channel: a two-state (good/bad) Markov
    chain advanced once per message. Drops cluster in the bad state;
    duplication and delay remain independent of the channel state."""

    def __init__(
        self,
        p_bad: float = 0.01,
        p_recover: float = 0.2,
        drop_rate_bad: float = 0.5,
        drop_rate_good: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_cycles: float = 64.0,
        stall_rate: float = 0.0,
        stall_cycles: float = 32.0,
        link_down_count: int = 0,
        link_down_cycles: float = 512.0,
        link_down_horizon: float = 65536.0,
    ) -> None:
        self.p_bad = _check_rate("p_bad", p_bad)
        self.p_recover = _check_rate("p_recover", p_recover)
        self.drop_rate_bad = _check_rate("drop_rate_bad", drop_rate_bad)
        self.drop_rate_good = _check_rate("drop_rate_good", drop_rate_good)
        self.dup_rate = _check_rate("dup_rate", dup_rate)
        self.delay_rate = _check_rate("delay_rate", delay_rate)
        worst = max(self.drop_rate_bad, self.drop_rate_good)
        if worst + self.dup_rate + self.delay_rate > 1.0:
            raise ConfigError(
                "drop_rate_bad/good + dup_rate + delay_rate must not exceed 1"
            )
        self.delay_cycles = _check_nonneg("delay_cycles", delay_cycles)
        self.stall_rate = _check_rate("stall_rate", stall_rate)
        self.stall_cycles_mean = _check_nonneg("stall_cycles", stall_cycles)
        if not isinstance(link_down_count, int) or isinstance(link_down_count, bool):
            raise ConfigError(
                f"fault param link_down_count must be an int, got {link_down_count!r}"
            )
        if link_down_count < 0:
            raise ConfigError(
                f"fault param link_down_count must be >= 0, got {link_down_count}"
            )
        self.link_down_count = link_down_count
        self.link_down_cycles = _check_nonneg("link_down_cycles", link_down_cycles)
        self.link_down_horizon = _check_nonneg("link_down_horizon", link_down_horizon)
        self._bad = False
        self.has_message_faults = (
            self.p_bad > 0
            and self.drop_rate_bad > 0
            or self.drop_rate_good > 0
            or self.dup_rate > 0
            or self.delay_rate > 0
        )
        self.has_stalls = self.stall_rate > 0

    def message_action(self, rng, src: int, dst: int) -> tuple[str, float]:
        if self._bad:
            if rng.random() < self.p_recover:
                self._bad = False
        elif rng.random() < self.p_bad:
            self._bad = True
        drop = self.drop_rate_bad if self._bad else self.drop_rate_good
        u = rng.random()
        if u < drop:
            return ("drop", 0.0)
        u -= drop
        if u < self.dup_rate:
            return ("dup", 0.0)
        u -= self.dup_rate
        if u < self.delay_rate:
            return ("delay", self.delay_cycles)
        return ("ok", 0.0)

    def stall_cycles(self, rng) -> float:
        if rng.random() < self.stall_rate:
            return self.stall_cycles_mean
        return 0.0
