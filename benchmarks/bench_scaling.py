"""Weak/strong-scaling study: the machine substrate from 64 to 4096 cores.

The companion measurement to the 1024+-core refactor (columnar tile
state, lazy topology geometry, hierarchical cluster topology). Two
curves per machine family:

* **weak scaling** — work per core held constant (threads and address
  region grow with the machine), so a flat accesses/second curve means
  the *simulator* substrate scales: no O(P²) table or per-core Python
  object graph is re-growing with core count.
* **strong scaling** — a fixed workload spread over ever more cores,
  which is the *simulated* machine's story: migration traffic (EM²)
  versus coherence traffic (directory MSI) as the same threads are
  striped across a larger, farther-apart address space.

Every point also records the measured per-tile substrate footprint
(:func:`repro.analysis.memsize.tile_state_bytes`) and the run fails if
any point exceeds :data:`~repro.analysis.memsize.BYTES_PER_TILE_BUDGET`
— the budget is a gate here, not a comment. The largest size also runs
EM² on the hierarchical ``cluster`` topology next to the flat mesh, so
the hub/express-link geometry shows up as a hop-count delta in the
same report.

Results merge into ``BENCH_perf.json`` (preserving whatever
``bench_perf.py`` wrote there) under a ``scaling`` section, plus flat
``scaling_*`` metrics for ``check_regression.py``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scaling.py [--smoke]

or via pytest (smoke configuration only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scaling.py
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.analysis.memsize import BYTES_PER_TILE_BUDGET, tile_state_bytes
from repro.coherence.simulator import DirectoryCCSimulator
from repro.core.em2 import EM2Machine
from repro.runner import build
from repro.spec import (
    ExperimentSpec,
    MachineSpec,
    PlacementSpec,
    TopologySpec,
    WorkloadSpec,
)

#: core counts per mode; every size uses the ``mesh-1024`` preset's
#: trimmed tile caches so curves compare substrate scaling, not cache
#: capacity differences
SIZES = {"smoke": [64, 256], "full": [64, 256, 1024, 4096]}

#: accesses per thread (weak: per-core work unit; strong: fixed total)
WEAK_APT = {"smoke": 128, "full": 1024}
STRONG_APT = {"smoke": 256, "full": 4096}
STRONG_THREADS = 32

PRESET = "mesh-1024"


def _spec(machine: str, cores: int, workload_params: dict,
          topology: str = "auto") -> ExperimentSpec:
    return ExperimentSpec(
        workload=WorkloadSpec(name="uniform", params=workload_params),
        machine=MachineSpec(name=machine, cores=cores, preset=PRESET),
        placement=PlacementSpec(name="striped"),
        topology=TopologySpec(name=topology),
    )


def _weak_params(mode: str, cores: int) -> dict:
    # one thread per 16 cores, address region proportional to the
    # machine: per-core work and per-core data are both constant
    return dict(
        num_threads=max(4, cores // 16),
        accesses_per_thread=WEAK_APT[mode],
        region_words=64 * cores,
        seed=1,
    )


def _strong_params(mode: str) -> dict:
    # identical workload at every size; only the machine grows
    return dict(
        num_threads=STRONG_THREADS,
        accesses_per_thread=STRONG_APT[mode],
        region_words=64 * 1024,
        seed=1,
    )


def _run_point(machine: str, cores: int, params: dict, repeats: int,
               topology: str = "auto") -> dict:
    """Build once, run ``repeats`` fresh instances, keep the best rate."""
    built = build(_spec(machine, cores, params, topology))
    trace = built.trace
    point: dict = {
        "cores": cores,
        "threads": int(params["num_threads"]),
        "accesses": trace.total_accesses,
        "topology": topology,
    }
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        if machine == "em2":
            m = EM2Machine(trace, built.placement, built.config,
                           topology=built.topology)
            build_s = time.perf_counter() - t0
            t1 = time.perf_counter()
            m.run()
            run_s = time.perf_counter() - t1
            res = m.results()
            point.update(
                completion_time=res["completion_time"],
                migrations=res["migrations"],
                evictions=res["evictions"],
                flit_hops=res["flit_hops"],
                fast_path=res["fast_path"],
            )
            mem = tile_state_bytes(m)
        else:
            m = DirectoryCCSimulator(trace, built.placement, built.config,
                                     topology=built.topology, protocol="msi")
            build_s = time.perf_counter() - t0
            t1 = time.perf_counter()
            r = m.run()
            run_s = time.perf_counter() - t1
            point.update(
                completion_time=r.completion_time,
                traffic_bits=r.traffic_bits,
                fast_path=(
                    m._fastpath_stats
                    if m._fastpath_stats is not None
                    else {"engaged": False,
                          "disabled_reason": m._fastpath_reason}
                ),
            )
            mem = tile_state_bytes(m)
        best = max(best, trace.total_accesses / run_s)
        point["build_seconds"] = build_s
        point["run_seconds"] = run_s
    point["accesses_per_sec"] = best
    point["bytes_per_tile"] = mem["bytes_per_tile"]
    point["within_budget"] = mem["bytes_per_tile"] <= BYTES_PER_TILE_BUDGET
    return point


def mesh1024_fastpath_parity() -> bool:
    """Bit-parity of the widened fast path at the scaling preset's
    motivating size: one P=1024 mesh point (64 threads, 32 accesses
    each — small enough for CI, wide enough to cross many cores) run
    with ``fast_path`` on and off; every simulated metric must match.
    Both machine families are checked. The ``fast_path`` sub-dict is
    engagement diagnostics and is excluded from the comparison."""
    from repro.runner import run

    params = dict(num_threads=64, accesses_per_thread=32,
                  region_words=64 * 1024, seed=1)
    for machine in ("em2", "cc-msi"):
        results = []
        for fast in (True, False):
            spec = ExperimentSpec(
                workload=WorkloadSpec(name="uniform", params=params),
                machine=MachineSpec(name=machine, cores=1024, preset=PRESET,
                                    fast_path=fast),
                placement=PlacementSpec(name="striped"),
            )
            res = run(spec)
            res.pop("fast_path", None)
            results.append(res)
        if results[0] != results[1]:
            return False
    return True


def run_scaling(mode: str = "full", repeats: int = 2) -> dict:
    """The full study: weak + strong curves for EM² and directory-MSI,
    plus the cluster-vs-mesh comparison at the largest size."""
    sizes = SIZES[mode]
    report: dict = {
        "mode": mode,
        "sizes": sizes,
        "preset": PRESET,
        "budget_bytes_per_tile": BYTES_PER_TILE_BUDGET,
        "weak": {},
        "strong": {},
    }
    for machine in ("em2", "cc-msi"):
        report["weak"][machine] = [
            _run_point(machine, n, _weak_params(mode, n), repeats) for n in sizes
        ]
        report["strong"][machine] = [
            _run_point(machine, n, _strong_params(mode), repeats) for n in sizes
        ]

    # per-P fast-path engagement next to the throughput it bought:
    # window widths/counts per size so a future regression shows up as
    # "windows stopped forming at P=1024", not just a slower number
    report["fastpath"] = {
        f"scaling_fastpath_{machine}_p{p['cores']}": dict(
            accesses_per_sec=p["accesses_per_sec"], **p["fast_path"]
        )
        for machine in ("em2", "cc-msi")
        for p in report["weak"][machine]
    }

    # hierarchical topology at the top size: same workload, mesh vs
    # cluster geometry — the hop-count delta is the express links
    top = sizes[-1]
    report["cluster_vs_mesh"] = {
        "mesh": _run_point("em2", top, _strong_params(mode), repeats),
        "cluster": _run_point("em2", top, _strong_params(mode), repeats,
                              topology="cluster"),
    }

    points = (
        [p for pts in report["weak"].values() for p in pts]
        + [p for pts in report["strong"].values() for p in pts]
        + list(report["cluster_vs_mesh"].values())
    )
    report["bytes_per_tile_max"] = max(p["bytes_per_tile"] for p in points)
    report["within_budget"] = all(p["within_budget"] for p in points)
    report["fastpath_parity"] = mesh1024_fastpath_parity()
    return report


def flat_metrics(report: dict) -> dict:
    """Top-level BENCH_perf.json keys for ``check_regression.py``."""
    top_weak_em2 = report["weak"]["em2"][-1]
    top_weak_cc = report["weak"]["cc-msi"][-1]
    return {
        "scaling_em2_accesses_per_sec": top_weak_em2["accesses_per_sec"],
        "scaling_cc_accesses_per_sec": top_weak_cc["accesses_per_sec"],
        "scaling_bytes_per_tile": report["bytes_per_tile_max"],
        "scaling_within_budget": report["within_budget"],
        "scaling_fastpath_parity": report["fastpath_parity"],
    }


def merge_into(out_path: Path, report: dict) -> None:
    """Read-modify-write ``BENCH_perf.json``: bench_perf.py's sections
    survive, the ``scaling`` section and flat metrics are replaced."""
    try:
        merged = json.loads(out_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged["scaling"] = report
    merged.update(flat_metrics(report))
    merged.setdefault("mode", report["mode"])
    merged.setdefault("cpu_count", os.cpu_count())
    out_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------- pytest
def test_scaling_smoke():
    """Smoke configuration: both families scale to 256 cores within the
    per-tile budget, and the cluster topology runs end to end."""
    report = run_scaling(mode="smoke", repeats=1)
    assert report["within_budget"], report["bytes_per_tile_max"]
    for machine in ("em2", "cc-msi"):
        for section in ("weak", "strong"):
            for p in report[section][machine]:
                assert p["accesses_per_sec"] > 0
                assert p["completion_time"] > 0
    cvm = report["cluster_vs_mesh"]
    assert cvm["cluster"]["topology"] == "cluster"
    assert cvm["cluster"]["accesses_per_sec"] > 0
    # same workload, same cores: only the geometry may differ
    assert cvm["cluster"]["accesses"] == cvm["mesh"]["accesses"]
    # fast-path engagement is recorded per size for both families
    for key, fp in report["fastpath"].items():
        assert key.startswith("scaling_fastpath_")
        assert "engaged" in fp and fp["accesses_per_sec"] > 0
    # the mesh-1024 on/off parity gate ran and held
    assert report["fastpath_parity"] is True


# ---------------------------------------------------------------- script
def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="64/256 cores only")
    ap.add_argument("--repeats", type=int, default=2,
                    help="runs per point (best-of)")
    ap.add_argument("--out", default=None,
                    help="report path (default: <repo>/BENCH_perf.json, "
                         "merged — bench_perf.py sections are preserved)")
    ap.add_argument("--profile", nargs="?", type=int, const=25, default=None,
                    metavar="N",
                    help="run the study under cProfile and print the top N "
                         "functions (default 25)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    if args.profile is not None:
        from repro.cli import run_profiled

        report = run_profiled(
            lambda: run_scaling(mode=mode, repeats=args.repeats), args.profile
        )
    else:
        report = run_scaling(mode=mode, repeats=args.repeats)

    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    )
    merge_into(out, report)

    for machine in ("em2", "cc-msi"):
        for section in ("weak", "strong"):
            for p in report[section][machine]:
                traffic = (
                    f"migrations {p['migrations']}, flit-hops {p['flit_hops']}"
                    if machine == "em2"
                    else f"traffic {p['traffic_bits']} bits"
                )
                print(
                    f"{section:6s} {machine:6s} P={p['cores']:<5d} "
                    f"{p['accesses_per_sec']:>10.0f} acc/s  "
                    f"{p['bytes_per_tile'] / 1024:6.1f} KB/tile  {traffic}"
                )
    cvm = report["cluster_vs_mesh"]
    print(
        f"cluster-vs-mesh @ P={cvm['mesh']['cores']}: "
        f"mesh {cvm['mesh']['flit_hops']} flit-hops, "
        f"cluster {cvm['cluster']['flit_hops']} flit-hops"
    )
    print(
        f"bytes/tile max {report['bytes_per_tile_max'] / 1024:.1f} KB "
        f"(budget {BYTES_PER_TILE_BUDGET / 1024:.0f} KB) — "
        f"within budget: {report['within_budget']}"
    )
    print(f"mesh-1024 fast-path on/off parity: {report['fastpath_parity']}")
    if not report["within_budget"]:
        print("FAIL: a point exceeded the per-tile memory budget")
        return 1
    if not report["fastpath_parity"]:
        print("FAIL: mesh-1024 fast-path on/off results diverged")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
