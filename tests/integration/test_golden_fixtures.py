"""Golden-fixture parity: the detailed simulators must be bit-identical.

``tests/fixtures/golden_results.json`` snapshots the ``results()``
dicts of every detailed simulator (EM², EM²-RA, RA-only, directory-CC
msi/mesi) on fixed-seed traces, captured *before* the hot-path
optimizations (columnar trace decode, cached NoC tables, counter
cells, the CC hit fast path). These tests recompute each scenario
with the current code and assert **exact** equality — any speedup
that changes a single counter, latency, or traffic bit fails here.

Regenerating the fixture is only legitimate when simulator semantics
change on purpose; see ``benchmarks/make_golden_fixtures.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
BENCH_DIR = REPO / "benchmarks"
FIXTURE = REPO / "tests" / "fixtures" / "golden_results.json"

if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import make_golden_fixtures as golden  # noqa: E402


@pytest.fixture(scope="module")
def committed() -> dict:
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def recomputed() -> dict:
    return golden.scenario_results()


def test_fixture_committed():
    assert FIXTURE.exists(), "golden fixture missing; run make_golden_fixtures.py"


def test_scenario_specs_round_trip():
    """Every scenario is a serializable ExperimentSpec: parity through
    the spec path also proves spec resolution is lossless."""
    from repro.spec import ExperimentSpec

    for key, spec_dict in golden.scenario_specs().items():
        assert ExperimentSpec.from_dict(spec_dict).to_dict() == spec_dict, key


def test_scenario_set_matches(committed, recomputed):
    assert sorted(recomputed) == sorted(committed)


@pytest.mark.parametrize(
    "scenario",
    sorted(
        f"{trace}/{arch}"
        for trace in golden.TRACES
        for arch in ("em2", "em2ra-history", "ra-only", "cc-msi", "cc-mesi")
    ),
)
def test_scenario_bit_identical(scenario, committed, recomputed):
    """Exact equality, per scenario so a mismatch names its simulator."""
    # round-trip the recomputed side through JSON so numeric types
    # compare the way the committed snapshot stored them
    fresh = json.loads(json.dumps(recomputed[scenario], sort_keys=True))
    assert fresh == committed[scenario], (
        f"{scenario} diverged from the pre-optimization snapshot; "
        "a hot-path change is no longer bit-identical"
    )
