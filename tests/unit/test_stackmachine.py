"""Unit tests for the stack-machine ISA, assembler, interpreter, cache."""

import numpy as np
import pytest

from repro.stackmachine import (
    AssemblyError,
    Instruction,
    MachineFault,
    Opcode,
    StackCache,
    StackMachine,
    assemble,
)
from repro.stackmachine.isa import STACK_EFFECT, HAS_OPERAND
from repro.util.errors import ConfigError, ProtocolError


class TestISA:
    def test_operand_requirements_enforced(self):
        with pytest.raises(ConfigError):
            Instruction(Opcode.LIT)  # needs operand
        with pytest.raises(ConfigError):
            Instruction(Opcode.ADD, operand=3)  # takes none

    def test_every_opcode_has_stack_effect(self):
        assert set(STACK_EFFECT) == set(Opcode)

    def test_repr(self):
        assert repr(Instruction(Opcode.LIT, 7)) == "lit 7"
        assert repr(Instruction(Opcode.ADD)) == "add"


class TestAssembler:
    def test_simple_program(self):
        prog = assemble("lit 2\nlit 3\nadd\nhalt")
        assert [i.opcode for i in prog] == [Opcode.LIT, Opcode.LIT, Opcode.ADD, Opcode.HALT]

    def test_labels_resolve(self):
        prog = assemble(
            """
            lit 1
            jz end
            nop
            end:
            halt
            """
        )
        assert prog[1].operand == 3  # 'end' is the 4th instruction

    def test_comments_and_blank_lines_ignored(self):
        prog = assemble("; header\n\nlit 1 ; inline\nhalt\n")
        assert len(prog) == 2

    def test_hex_operands(self):
        prog = assemble("lit 0x10\nhalt")
        assert prog[0].operand == 16

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate\nhalt")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("x:\nnop\nx:\nhalt")

    def test_missing_operand(self):
        with pytest.raises(AssemblyError, match="exactly one operand"):
            assemble("lit\nhalt")

    def test_unresolved_operand(self):
        with pytest.raises(AssemblyError, match="neither an int nor a label"):
            assemble("jmp nowhere\nhalt")


class TestStackCache:
    def test_push_pop_lifo(self):
        s = StackCache(4)
        for v in (1, 2, 3):
            s.push(v)
        assert [s.pop() for _ in range(3)] == [3, 2, 1]

    def test_overflow_spills_bottom(self):
        events = []
        s = StackCache(2, spill_hook=lambda kind, n: events.append(kind))
        s.push(1)
        s.push(2)
        s.push(3)  # spills 1
        assert s.spills == 1
        assert events == ["spill"]
        assert s.window_depth == 2
        assert s.depth == 3

    def test_underflow_refills(self):
        s = StackCache(2)
        for v in (1, 2, 3):  # 1 spilled
            s.push(v)
        assert s.pop() == 3
        assert s.pop() == 2
        assert s.pop() == 1  # refilled from backing
        assert s.refills == 1

    def test_empty_pop_faults(self):
        with pytest.raises(ProtocolError, match="underflow"):
            StackCache(2).pop()

    def test_peek_refills_when_needed(self):
        s = StackCache(3)
        for v in (1, 2, 3, 4, 5):
            s.push(v)  # 1,2 spilled
        assert s.pop() and s.pop() and s.pop()  # window empty
        assert s.peek(1) == 1  # needs refill of 2 entries
        assert s.refills >= 2

    def test_peek_beyond_capacity_rejected(self):
        s = StackCache(2)
        with pytest.raises(ProtocolError, match="capacity"):
            s.peek(2)

    def test_snapshot_order(self):
        s = StackCache(2)
        for v in (1, 2, 3, 4):
            s.push(v)
        assert s.snapshot() == [1, 2, 3, 4]

    def test_capacity_minimum(self):
        with pytest.raises(ConfigError):
            StackCache(1)


class TestStackMachine:
    def _run(self, src, memory=None, **kw):
        vm = StackMachine(assemble(src), memory=memory, **kw)
        trace = vm.run()
        return vm, trace

    def test_arithmetic(self):
        vm, _ = self._run("lit 2\nlit 3\nadd\nlit 100\nstore\nhalt")
        assert vm.memory[100] == 5

    def test_load_store_roundtrip(self):
        vm, trace = self._run(
            "lit 42\nlit 7\nstore\nlit 7\nload\nlit 8\nstore\nhalt"
        )
        assert vm.memory[8] == 42
        assert trace.size == 3  # store, load, store
        assert trace["write"].tolist() == [1, 0, 1]
        assert trace["addr"].tolist() == [7, 7, 8]

    def test_loop_with_return_stack(self):
        # sum 0..4 using the return stack as the loop counter
        vm, _ = self._run(
            """
                lit 0       ; acc
                lit 5       ; counter
                tor         ; -> rstack
            loop:
                fromr
                dup
                tor         ; peek counter
                add         ; acc += counter
                fromr
                lit 1
                sub
                dup
                tor
                jnz loop
                fromr
                drop
                lit 50
                store
                halt
            """
        )
        assert vm.memory[50] == 5 + 4 + 3 + 2 + 1

    def test_call_ret(self):
        vm, _ = self._run(
            """
                lit 3
                call double
                lit 10
                store
                halt
            double:
                dup
                add
                ret
            """
        )
        assert vm.memory[10] == 6

    def test_division_by_zero_faults(self):
        with pytest.raises(MachineFault, match="division"):
            self._run("lit 1\nlit 0\ndiv\nhalt")

    def test_negative_address_faults(self):
        with pytest.raises(MachineFault, match="negative address"):
            self._run("lit 0\nlit 1\nsub\nload\nhalt")

    def test_fuel_exhaustion(self):
        vm = StackMachine(assemble("start:\njmp start\nhalt"))
        with pytest.raises(MachineFault, match="fuel"):
            vm.run(fuel=100)

    def test_icount_counts_nonmemory_instructions(self):
        _, trace = self._run("lit 1\nlit 2\nadd\nlit 9\nstore\nhalt")
        assert trace["icount"].tolist() == [4]  # 4 non-memory before the store

    def test_self_contained_segment_has_zero_drawdown(self):
        # lit a, lit addr, store: the segment creates its own operands,
        # so a migration carrying depth 0 would NOT underflow -> spop 0
        _, trace = self._run("lit 1\nlit 9\nstore\nhalt")
        assert trace["spop"].tolist() == [0]
        assert trace["spush"].tolist() == [0]

    def test_load_leaves_result_on_stack(self):
        # lit addr, load: no drawdown below segment start; result stays
        _, trace = self._run("lit 9\nload\nlit 10\nstore\nhalt")
        assert trace["spop"][0] == 0
        assert trace["spush"][0] == 1
        # second segment (lit 10, store) consumes the loaded value from
        # BELOW its start -> drawdown 1... plus the store's own addr pop
        # is covered by its lit. Net: spop 1, spush 0.
        assert trace["spop"][1] == 1
        assert trace["spush"][1] == 0

    def test_cross_segment_drawdown(self):
        # segment 1 leaves values 1,2 on the stack; segment 2's add
        # consumes both from below its own start -> spop 2
        _, trace = self._run(
            "lit 1\nlit 2\nlit 3\nlit 9\nstore\nadd\nlit 10\nstore\nhalt"
        )
        assert trace["spop"].tolist() == [0, 2]
        # segment 1 leaves values 1,2 above its floor; segment 2 nets out
        assert trace["spush"].tolist() == [2, 0]

    def test_empty_program_rejected(self):
        with pytest.raises(MachineFault):
            StackMachine([])

    def test_step_after_halt_faults(self):
        vm = StackMachine(assemble("halt"))
        vm.run()
        with pytest.raises(MachineFault):
            vm.step()

    def test_rot_and_over(self):
        vm, _ = self._run(
            "lit 1\nlit 2\nlit 3\nrot\nlit 20\nstore\nlit 21\nstore\nlit 22\nstore\nhalt"
        )
        # after rot: stack is 2 3 1 (top); stores pop top-first
        assert vm.memory[20] == 1
        assert vm.memory[21] == 3
        assert vm.memory[22] == 2
