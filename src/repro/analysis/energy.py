"""Dynamic-energy model for the network-dominated comparison of §5.

"each migration must transfer the entire execution context ... over the
on-chip network, causing significant power consumption" — the paper's
power argument is about bits moved. The model here is the standard
technology-node-agnostic first-order one: energy = (per-bit-per-hop
link+router energy) x bit-hops + cache/DRAM access energies. Defaults
are loosely 45 nm-class ratios (the paper's era); everything is a
constructor knob, and only *ratios* between architectures are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class EnergyModel:
    """Per-event dynamic energies (picojoules)."""

    link_pj_per_bit_hop: float = 0.06  # link + router traversal, per bit per hop
    l1_pj_per_access: float = 10.0
    l2_pj_per_access: float = 30.0
    dram_pj_per_access: float = 2000.0
    context_load_pj: float = 50.0  # register-file unload/load per migration

    def __post_init__(self) -> None:
        for name in (
            "link_pj_per_bit_hop",
            "l1_pj_per_access",
            "l2_pj_per_access",
            "dram_pj_per_access",
            "context_load_pj",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    def network_energy(self, bit_hops: float) -> float:
        return self.link_pj_per_bit_hop * bit_hops

    def report(
        self,
        bit_hops: float = 0.0,
        l1_accesses: int = 0,
        l2_accesses: int = 0,
        dram_accesses: int = 0,
        migrations: int = 0,
    ) -> "EnergyReport":
        return EnergyReport(
            network_pj=self.network_energy(bit_hops),
            l1_pj=self.l1_pj_per_access * l1_accesses,
            l2_pj=self.l2_pj_per_access * l2_accesses,
            dram_pj=self.dram_pj_per_access * dram_accesses,
            context_pj=self.context_load_pj * migrations,
        )


@dataclass(frozen=True)
class EnergyReport:
    network_pj: float
    l1_pj: float = 0.0
    l2_pj: float = 0.0
    dram_pj: float = 0.0
    context_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.network_pj + self.l1_pj + self.l2_pj + self.dram_pj + self.context_pj

    def as_dict(self) -> dict[str, float]:
        return {
            "network_pj": self.network_pj,
            "l1_pj": self.l1_pj,
            "l2_pj": self.l2_pj,
            "dram_pj": self.dram_pj,
            "context_pj": self.context_pj,
            "total_pj": self.total_pj,
        }
