"""First-touch placement (the paper's configuration, Figure 2 caption).

A block is homed at the core of the thread that accesses it first. In
hardware "first" is first in real time; in a trace-driven setting we
approximate concurrent execution by interleaving the per-thread traces
round-robin (access *k* of thread *t* is globally ordered at
``k * T + t``), which matches how all threads start together after a
barrier. This ordering choice only matters for blocks that several
threads touch "simultaneously", and it is deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.placement.base import Placement
from repro.registry import PLACEMENTS
from repro.trace.events import MultiTrace


class FirstTouchPlacement(Placement):
    def __init__(self, trace: MultiTrace, num_cores: int, block_words: int = 16) -> None:
        super().__init__(num_cores, block_words)
        blocks_parts = []
        order_parts = []
        core_parts = []
        nthreads = max(trace.num_threads, 1)
        for t, tr in enumerate(trace.threads):
            if tr.size == 0:
                continue
            blocks_parts.append(self.block_of(tr["addr"].astype(np.int64)))
            order_parts.append(np.arange(tr.size, dtype=np.int64) * nthreads + t)
            core = trace.thread_native_core[t] % num_cores
            core_parts.append(np.full(tr.size, core, dtype=np.int64))
        if not blocks_parts:
            return
        blocks = np.concatenate(blocks_parts)
        order = np.concatenate(order_parts)
        cores = np.concatenate(core_parts)
        # stable argsort by global order, then first occurrence per block
        idx = np.argsort(order, kind="stable")
        blocks_sorted = blocks[idx]
        cores_sorted = cores[idx]
        uniq_blocks, first_pos = np.unique(blocks_sorted, return_index=True)
        self._set_map(uniq_blocks, cores_sorted[first_pos])


def first_touch(trace: MultiTrace, num_cores: int, block_words: int = 16) -> FirstTouchPlacement:
    """Convenience constructor mirroring the other placement helpers."""
    return FirstTouchPlacement(trace, num_cores, block_words)


PLACEMENTS.register(
    "first-touch", "home each block at its first accessor (paper default)"
)(first_touch)
