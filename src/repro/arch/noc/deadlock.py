"""Virtual-channel deadlock-freedom validation.

The paper's deadlock argument ([10], §2–3) is structural: each protocol
message class gets its own virtual network, and the "waits-for"
relation between classes must be acyclic. A migration may trigger an
eviction (migration -> eviction), an eviction terminates at the native
context (no further dependency), an RA request triggers an RA reply,
and a reply terminates. Six VCs cover EM²-RA: {migration, eviction,
RA-request, RA-reply} x {escape pairing}, plus the two coherence VCs
used only by the CC baseline.

:func:`check_vc_plan` validates an arbitrary plan: distinct VCs per
class and an acyclic dependency graph; models call it at construction
so a mis-configured protocol fails fast with
:class:`~repro.util.errors.DeadlockError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.noc.packet import VirtualNetwork
from repro.util.errors import DeadlockError


@dataclass(frozen=True)
class VCPlan:
    """VC assignment + inter-class dependency edges for one protocol."""

    name: str
    vc_of: dict[VirtualNetwork, int]
    # (a, b): consuming a message of class `a` may require injecting class `b`
    depends: frozenset[tuple[VirtualNetwork, VirtualNetwork]] = field(default_factory=frozenset)

    @property
    def num_vcs(self) -> int:
        return len(set(self.vc_of.values()))


# EM² proper: migrations may cause evictions; evictions sink at native
# contexts (guaranteed free), so the graph is a single edge.
VC_PLAN_EM2 = VCPlan(
    name="em2",
    vc_of={VirtualNetwork.MIGRATION: 0, VirtualNetwork.EVICTION: 1},
    depends=frozenset({(VirtualNetwork.MIGRATION, VirtualNetwork.EVICTION)}),
)

# EM²-RA: the remote-access subnetwork "must be separate from the
# subnetworks used for migrations" (§3) — six VCs in total, here the
# four protocol classes across dedicated VCs (the hardware splits each
# subnetwork into a VC pair; at message level one VC per class with two
# spare escape VCs is the same acyclicity structure).
VC_PLAN_EM2RA = VCPlan(
    name="em2-ra",
    vc_of={
        VirtualNetwork.MIGRATION: 0,
        VirtualNetwork.EVICTION: 1,
        VirtualNetwork.RA_REQUEST: 2,
        VirtualNetwork.RA_REPLY: 3,
    },
    depends=frozenset(
        {
            (VirtualNetwork.MIGRATION, VirtualNetwork.EVICTION),
            (VirtualNetwork.RA_REQUEST, VirtualNetwork.RA_REPLY),
        }
    ),
)

VC_PLAN_CC = VCPlan(
    name="directory-cc",
    vc_of={VirtualNetwork.COHERENCE_REQ: 4, VirtualNetwork.COHERENCE_REPLY: 5},
    depends=frozenset({(VirtualNetwork.COHERENCE_REQ, VirtualNetwork.COHERENCE_REPLY)}),
)


def check_vc_plan(plan: VCPlan, available_vcs: int) -> None:
    """Validate a VC plan; raise :class:`DeadlockError` when unsafe.

    Safety requires (i) every message class mapped to a VC id within
    the hardware's range, (ii) no two classes sharing a VC when one
    depends (transitively) on the other, and (iii) the dependency graph
    over classes being acyclic.
    """
    for vnet, vc in plan.vc_of.items():
        if not (0 <= vc < available_vcs):
            raise DeadlockError(
                f"plan {plan.name!r}: class {vnet.name} assigned VC {vc}, "
                f"but only {available_vcs} VCs exist"
            )
    for a, b in plan.depends:
        if a not in plan.vc_of or b not in plan.vc_of:
            raise DeadlockError(
                f"plan {plan.name!r}: dependency {a.name}->{b.name} references "
                "a class with no VC assignment"
            )
        if plan.vc_of[a] == plan.vc_of[b]:
            raise DeadlockError(
                f"plan {plan.name!r}: classes {a.name} and {b.name} share VC "
                f"{plan.vc_of[a]} but {a.name} depends on {b.name}"
            )
    _check_acyclic(plan)


def _check_acyclic(plan: VCPlan) -> None:
    adj: dict[VirtualNetwork, list[VirtualNetwork]] = {}
    for a, b in plan.depends:
        adj.setdefault(a, []).append(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[VirtualNetwork, int] = {}

    def visit(node: VirtualNetwork, path: list[VirtualNetwork]) -> None:
        color[node] = GRAY
        for nxt in adj.get(node, ()):
            c = color.get(nxt, WHITE)
            if c == GRAY:
                cyc = " -> ".join(n.name for n in path + [node, nxt])
                raise DeadlockError(f"plan {plan.name!r}: cyclic VC dependency {cyc}")
            if c == WHITE:
                visit(nxt, path + [node])
        color[node] = BLACK

    for node in adj:
        if color.get(node, WHITE) == WHITE:
            visit(node, [])
