"""Two-level private cache hierarchy (L1 + L2) per core.

The hierarchy is mostly-inclusive and blocking: the trace-driven core
issues one access at a time, so MSHRs are unnecessary. An access
returns an :class:`AccessResult` with the service level and latency;
DRAM fills are reported so the tile can charge the memory-controller
round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.arch.cache.sram import CacheArray, TileCacheStore
from repro.arch.config import CacheConfig


class ServiceLevel(Enum):
    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


@dataclass(frozen=True)
class AccessResult:
    level: ServiceLevel
    latency: int
    writebacks_to_memory: int = 0  # dirty L2 victims created by this access

    @property
    def hit(self) -> bool:
        return self.level is not ServiceLevel.MEMORY


class CacheHierarchy:
    """Private L1 + L2 pair for one core.

    Pass the machine-wide :class:`TileCacheStore` pools (one per level)
    plus this core's id to back both arrays with row views of the
    shared columnar state; without stores each array allocates its own
    columns (single-hierarchy tests, the directory-CC private caches).
    """

    def __init__(
        self,
        l1: CacheConfig,
        l2: CacheConfig,
        policy: str = "lru",
        l1_store: TileCacheStore | None = None,
        l2_store: TileCacheStore | None = None,
        core: int = 0,
    ) -> None:
        if l2.line_bytes != l1.line_bytes:
            from repro.util.errors import ConfigError

            raise ConfigError(
                f"L1 line size {l1.line_bytes} != L2 line size {l2.line_bytes}; "
                "mixed line sizes are not modeled"
            )
        self.l1 = CacheArray(l1, policy=policy, store=l1_store, core=core)
        self.l2 = CacheArray(l2, policy=policy, store=l2_store, core=core)
        self._l1_cfg = l1
        self._l2_cfg = l2
        self.memory_fills = 0
        # AccessResult is frozen, so the zero-writeback results can be
        # shared across accesses — the common case allocates nothing
        self._l1_hit = AccessResult(ServiceLevel.L1, l1.hit_latency)
        self._l2_hit = AccessResult(ServiceLevel.L2, l1.hit_latency + l2.hit_latency)
        self._mem_fill = AccessResult(
            ServiceLevel.MEMORY, l1.hit_latency + l2.hit_latency
        )
        # same-line memo: the L1 slot the previous access hit. A repeat
        # of that line skips the index probe and the recency update —
        # safe because a repeated touch of the just-touched slot is
        # idempotent for every policy (the stamp stays maximal, LRU
        # early-returns, PLRU rewrites the same bits, random is a
        # no-op). Reset on every L1 miss (the only path that can evict
        # the memoized line) and on invalidate().
        self._last_la = -1
        self._last_slot = 0

    def access(self, addr: int, write: bool) -> AccessResult:
        """Perform a load/store on the hierarchy, returning where it hit.

        The L1-hit case is ``CacheArray.lookup`` inlined (same counter
        and recency updates): it runs once per simulated access and the
        call frame showed up in machine-level profiles.
        """
        l1 = self.l1
        line_addr = addr >> l1._line_shift
        if line_addr == self._last_la:
            l1.hits += 1
            if write:
                l1.dirty[self._last_slot] = True
            return self._l1_hit
        slot = l1._index.get(line_addr)
        if slot is not None:
            l1.hits += 1
            l1._clock += 1
            l1.stamps[slot] = l1._clock
            if l1._policies is not None:
                l1._policies[slot // l1.ways].touch(slot % l1.ways)
            self._last_la = line_addr
            self._last_slot = slot
            if write:
                l1.dirty[slot] = True
            return self._l1_hit
        self._last_la = -1
        l1.misses += 1

        l2 = self.l2
        l2_slot = l2.lookup(addr)
        if l2_slot is not None:
            # fill into L1 from L2; dirtiness stays with the L1 copy
            dirty = bool(l2.dirty[l2_slot]) or write
            l2.dirty[l2_slot] = False
            wb_mem = self._fill_l1(addr, dirty)
            if wb_mem == 0:
                return self._l2_hit
            return AccessResult(
                ServiceLevel.L2,
                self._l1_cfg.hit_latency + self._l2_cfg.hit_latency,
                writebacks_to_memory=wb_mem,
            )

        # memory fill -> L2 then L1
        self.memory_fills += 1
        wb_mem = 0
        victim = l2.fill(addr, dirty=False)
        if victim is not None and victim.dirty:
            wb_mem += 1
        wb_mem += self._fill_l1(addr, write)
        if wb_mem == 0:
            return self._mem_fill
        return AccessResult(
            ServiceLevel.MEMORY,
            self._l1_cfg.hit_latency + self._l2_cfg.hit_latency,
            writebacks_to_memory=wb_mem,
        )

    def access_no_mem(self, addr: int, write: bool) -> AccessResult | None:
        """Like :meth:`access`, unless the access would fill from memory.

        A memory-level access returns ``None`` with the hierarchy (and
        its counters/memo) completely untouched, so the caller can fall
        back to the event-driven path which will re-issue the access
        through :meth:`access` and charge the DRAM controller at the
        correct simulated time. The epoch-batched fast path uses this
        to make DRAM fills hard batching boundaries.
        """
        l1 = self.l1
        line_addr = addr >> l1._line_shift
        if line_addr == self._last_la:
            l1.hits += 1
            if write:
                l1.dirty[self._last_slot] = True
            return self._l1_hit
        slot = l1._index.get(line_addr)
        if slot is not None:
            l1.hits += 1
            l1._clock += 1
            l1.stamps[slot] = l1._clock
            if l1._policies is not None:
                l1._policies[slot // l1.ways].touch(slot % l1.ways)
            self._last_la = line_addr
            self._last_slot = slot
            if write:
                l1.dirty[slot] = True
            return self._l1_hit
        l2 = self.l2
        l2_slot = l2.probe(addr)
        if l2_slot is None:
            return None  # memory fill: leave every bit of state untouched
        self._last_la = -1
        l1.misses += 1
        l2.hits += 1  # the lookup the scalar path would have performed
        l2._touch(l2_slot)
        dirty = bool(l2.dirty[l2_slot]) or write
        l2.dirty[l2_slot] = False
        wb_mem = self._fill_l1(addr, dirty)
        if wb_mem == 0:
            return self._l2_hit
        return AccessResult(
            ServiceLevel.L2,
            self._l1_cfg.hit_latency + self._l2_cfg.hit_latency,
            writebacks_to_memory=wb_mem,
        )

    def _fill_l1(self, addr: int, dirty: bool) -> int:
        """Fill L1; spill a dirty victim down into L2. Returns dirty-L2-victim count."""
        wb_mem = 0
        victim = self.l1.fill(addr, dirty=dirty)
        if victim is not None and victim.dirty:
            # reconstruct the victim's address within its set
            si = self.l1.set_index(addr)
            victim_addr = (victim.tag * self.l1.num_sets + si) << (
                self._l1_cfg.line_bytes.bit_length() - 1
            )  # line_bytes is a validated power of two
            l2_victim = self.l2.fill(victim_addr, dirty=True)
            if l2_victim is not None and l2_victim.dirty:
                wb_mem += 1
        return wb_mem

    def set_l1_memo(self, line_addr: int, slot: int) -> None:
        """Reseed the same-line memo after an external bulk hit apply.

        The cross-core window kernel (:func:`~repro.arch.cache.batch.
        apply_hit_windows`) touches L1 slots without going through
        :meth:`access`; it reseeds the memo here with the window's
        final line/slot so the next scalar access sees exactly the
        state a per-access walk would have left.
        """
        self._last_la = line_addr
        self._last_slot = slot

    def contains(self, addr: int) -> bool:
        """True when the line is resident at either level (no side effects)."""
        return self.l1.probe(addr) is not None or self.l2.probe(addr) is not None

    def invalidate(self, addr: int) -> bool:
        """Drop the line from both levels (CC invalidation). True if present."""
        self._last_la = -1
        a = self.l1.invalidate(addr)
        b = self.l2.invalidate(addr)
        return a is not None or b is not None

    def stats(self) -> dict[str, float]:
        return {
            "l1.hits": self.l1.hits,
            "l1.misses": self.l1.misses,
            "l1.hit_rate": self.l1.hit_rate,
            "l2.hits": self.l2.hits,
            "l2.misses": self.l2.misses,
            "l2.hit_rate": self.l2.hit_rate,
            "memory_fills": self.memory_fills,
        }
