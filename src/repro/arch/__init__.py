"""Tiled-multicore hardware substrate.

This package models the hardware context the EM² paper assumes:
a 2-D mesh of tiles, each with a multi-context core, private L1/L2
data caches, and a NoC router; DRAM controllers sit at mesh edges.
It plays the role Graphite [14] plays in the paper's experiments.
"""

from repro.arch.config import (
    CacheConfig,
    ContextConfig,
    CostConfig,
    NocConfig,
    SystemConfig,
)
from repro.arch.topology import (
    Mesh2D,
    RingTopology,
    Topology,
    TorusTopology,
    UnidirectionalRing,
)

__all__ = [
    "SystemConfig",
    "CacheConfig",
    "NocConfig",
    "ContextConfig",
    "CostConfig",
    "Topology",
    "Mesh2D",
    "TorusTopology",
    "RingTopology",
    "UnidirectionalRing",
]
