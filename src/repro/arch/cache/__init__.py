"""Private per-core data caches.

EM² caches data at its *home* core only, so no coherence state is
needed; the directory-CC baseline reuses the same arrays with a
coherence-state field. The paper's configuration is 16 KB L1 +
64 KB L2 data caches per core (Figure 2 caption).
"""

from repro.arch.cache.replacement import LRUPolicy, PseudoLRUPolicy, RandomPolicy
from repro.arch.cache.sram import CacheArray, EvictedLine, TileCacheStore
from repro.arch.cache.hierarchy import CacheHierarchy, AccessResult

__all__ = [
    "CacheArray",
    "EvictedLine",
    "TileCacheStore",
    "CacheHierarchy",
    "AccessResult",
    "LRUPolicy",
    "PseudoLRUPolicy",
    "RandomPolicy",
]
