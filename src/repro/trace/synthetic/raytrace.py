"""RAYTRACE-like workload (SPLASH-2 RAYTRACE stand-in).

RAYTRACE reads a large shared, read-only scene (BVH + primitives) with
a popularity skew (rays concentrate on the same hot geometry) and
writes only to private ray stacks and a thread-owned framebuffer band.

* shared ``scene``: Zipf-distributed read probes, 2-6 words per node
  visit — short remote read runs all over the machine;
* private ray-stack pushes/pops between scene probes — so remote runs
  are almost always length 1-2 (ideal for remote access, hopeless for
  migration amortization);
* thread-owned framebuffer rows, written locally.

A work-stealing flag region adds a small RMW-contended shared set.
"""

from __future__ import annotations

import numpy as np

from repro.trace.synthetic.base import TraceBuilder, WorkloadGenerator
from repro.registry import WORKLOADS
from repro.util.errors import ConfigError


@WORKLOADS.register("raytrace", "RAYTRACE-like shared-scene workload (SPLASH-2 stand-in)")
class RaytraceGenerator(WorkloadGenerator):
    name = "raytrace"

    def __init__(
        self,
        num_threads: int = 64,
        rays_per_thread: int = 128,
        scene_words: int = 1 << 14,
        zipf_s: float = 1.2,
        nodes_per_ray: int = 8,
        seed: int | None = 0,
    ) -> None:
        super().__init__(num_threads=num_threads, seed=seed)
        if rays_per_thread <= 0 or nodes_per_ray <= 0:
            raise ConfigError("rays_per_thread and nodes_per_ray must be positive")
        if scene_words < num_threads:
            raise ConfigError("scene must have at least one word per thread")
        if zipf_s <= 1.0:
            raise ConfigError("zipf_s must be > 1 for a proper Zipf law")
        self.rpt = rays_per_thread
        self.scene_words = scene_words
        self.zipf_s = zipf_s
        self.npr = nodes_per_ray
        self.scene_base = self.space.shared_region("scene", scene_words)
        self.fb_base = self.space.shared_region("framebuffer", num_threads * rays_per_thread)
        self.work_base = self.space.shared_region("workqueue", num_threads)

    def params(self) -> dict:
        return {
            "num_threads": self.num_threads,
            "rays_per_thread": self.rpt,
            "scene_words": self.scene_words,
            "zipf_s": self.zipf_s,
            "nodes_per_ray": self.npr,
        }

    def _zipf_nodes(self, count: int) -> np.ndarray:
        """Zipf-skewed scene offsets folded into the scene region."""
        raw = self.rng.zipf(self.zipf_s, size=count)
        return (raw - 1) % self.scene_words

    def _init_phase(self, thread: int, b: TraceBuilder) -> None:
        # each thread first-touches an equal slice of the scene (the real
        # code's scene build is parallelized the same way)
        lo = (self.scene_words * thread) // self.num_threads
        hi = (self.scene_words * (thread + 1)) // self.num_threads
        b.emit(
            self.scene_base + np.arange(lo, hi, dtype=np.int64), writes=1, icounts=1
        )
        rows = np.arange(self.rpt, dtype=np.int64)
        b.emit(self.fb_base + thread * self.rpt + rows, writes=1, icounts=1)
        b.emit_one(self.work_base + thread, write=True, icount=1)

    def _thread_trace(self, thread: int, b: TraceBuilder) -> None:
        self._init_phase(thread, b)
        stack = self.space.private_base(thread)
        for ray in range(self.rpt):
            nodes = self._zipf_nodes(self.npr)
            for d, node in enumerate(nodes.tolist()):
                # probe scene node (1-2 shared reads)
                addr = self.scene_base + int(node)
                b.emit(
                    np.array([addr, addr + 1 - (node == self.scene_words - 1)]),
                    writes=0,
                    icounts=5,
                )
                # push/pop private ray stack between probes
                b.emit_one(stack + d, write=True, icount=2)
                b.emit_one(stack + d, write=False, icount=2)
            # write the pixel (thread-owned framebuffer band)
            b.emit_one(self.fb_base + thread * self.rpt + ray, write=True, icount=3)
            # occasionally poll the work queue (contended shared RMW)
            if ray % 16 == 15:
                victim = int(self.rng.integers(0, self.num_threads))
                b.emit_one(self.work_base + victim, write=False, icount=1)
                b.emit_one(self.work_base + victim, write=True, icount=0)
