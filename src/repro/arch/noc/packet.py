"""Message and virtual-network definitions."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_ids = itertools.count()


class VirtualNetwork(enum.IntEnum):
    """Protocol classes mapped onto distinct virtual channels.

    EM² needs two virtual networks (migration + eviction) for
    deadlock-free migration [10]; EM²-RA adds the remote-access
    request/reply pair, "requiring six virtual channels in total" (§3)
    — each network here is realized as a pair of VCs in the plans in
    :mod:`repro.arch.noc.deadlock`.
    """

    MIGRATION = 0  # context moving to a home core
    EVICTION = 1  # evicted context returning to its native core
    RA_REQUEST = 2  # remote-access request
    RA_REPLY = 3  # remote-access data/ack reply
    COHERENCE_REQ = 4  # directory-CC requests (baseline)
    COHERENCE_REPLY = 5  # directory-CC replies (baseline)


@dataclass
class Message:
    """One network message (a migration context, RA request, etc.)."""

    src: int
    dst: int
    payload_bits: int
    vnet: VirtualNetwork
    kind: str = "generic"
    body: Any = None
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    inject_time: float = float("nan")
    deliver_time: float = float("nan")

    def __post_init__(self) -> None:
        if self.payload_bits < 0:
            raise ValueError("payload_bits must be >= 0")

    @property
    def latency(self) -> float:
        return self.deliver_time - self.inject_time
