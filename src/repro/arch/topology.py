"""On-chip network topologies and routing distance matrices.

The cost model (§3) and the NoC simulator both need hop distances
``dist(i, j)`` between every pair of cores, and the NoC additionally
needs the deterministic route. The default is a 2-D mesh with
dimension-ordered (XY) routing, matching the EM² hardware [8,10].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

import numpy as np

from repro.util.errors import ConfigError


class Topology(ABC):
    """Abstract core-interconnect topology."""

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ConfigError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores

    @abstractmethod
    def distance(self, src: int, dst: int) -> int:
        """Hop count of the deterministic route from ``src`` to ``dst``."""

    @abstractmethod
    def route(self, src: int, dst: int) -> list[int]:
        """Core ids along the route, inclusive of both endpoints."""

    def _check_core(self, core: int) -> None:
        if not (0 <= core < self.num_cores):
            raise ConfigError(f"core id {core} out of range [0, {self.num_cores})")

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        """(P, P) int matrix of hop distances. Cached; used by the DP."""
        mat = np.empty((self.num_cores, self.num_cores), dtype=np.int64)
        for i in range(self.num_cores):
            for j in range(self.num_cores):
                mat[i, j] = self.distance(i, j)
        mat.setflags(write=False)
        return mat

    @cached_property
    def hop_table(self) -> list[list[int]]:
        """``distance_matrix`` as nested plain-int lists.

        The per-access simulator loops index this (``hops[src][dst]``)
        instead of calling :meth:`distance`: two list subscripts on
        native ints, no coordinate math and no numpy scalar boxing.
        """
        return self.distance_matrix.tolist()

    @cached_property
    def _route_cache(self) -> dict[int, list[int]]:
        return {}

    def route_cached(self, src: int, dst: int) -> list[int]:
        """Memoized :meth:`route`. Routes are deterministic per (src,
        dst), so the contention-mode NoC walks a cached list instead of
        rebuilding the path for every message. Callers must not mutate
        the returned list."""
        key = src * self.num_cores + dst
        route = self._route_cache.get(key)
        if route is None:
            route = self._route_cache[key] = self.route(src, dst)
        return route

    def links(self) -> list[tuple[int, int]]:
        """Directed physical links (u, v) with dist(u, v) == 1."""
        out = []
        for i in range(self.num_cores):
            for j in range(self.num_cores):
                if i != j and self.distance(i, j) == 1:
                    out.append((i, j))
        return out


class Mesh2D(Topology):
    """W x H mesh with XY (dimension-ordered) routing.

    XY routing is deadlock-free within one virtual network, which is
    why the EM² deadlock argument only needs VC separation *between*
    protocol classes [10], not adaptive routing.
    """

    def __init__(self, width: int, height: int) -> None:
        super().__init__(width * height)
        self.width = width
        self.height = height

    @classmethod
    def square(cls, num_cores: int) -> "Mesh2D":
        w = int(round(num_cores**0.5))
        while w > 1 and num_cores % w:
            w -= 1
        return cls(w, num_cores // w)

    def coords(self, core: int) -> tuple[int, int]:
        """(x, y) tile coordinates of ``core``."""
        self._check_core(core)
        return core % self.width, core // self.width

    def core_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ConfigError(f"tile ({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def distance(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def route(self, src: int, dst: int) -> list[int]:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        while x != dx:  # X first
            x += 1 if dx > x else -1
            path.append(self.core_at(x, y))
        while y != dy:  # then Y
            y += 1 if dy > y else -1
            path.append(self.core_at(x, y))
        return path

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        xs = np.arange(self.num_cores) % self.width
        ys = np.arange(self.num_cores) // self.width
        mat = np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
        mat = mat.astype(np.int64)
        mat.setflags(write=False)
        return mat


class TorusTopology(Mesh2D):
    """W x H torus: mesh with wraparound links (shorter average distance)."""

    def _axis_step(self, cur: int, dst: int, extent: int) -> int:
        """Next coordinate along the shorter wrap-aware direction."""
        fwd = (dst - cur) % extent
        bwd = (cur - dst) % extent
        step = 1 if fwd <= bwd else -1
        return (cur + step) % extent

    def distance(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        ddx = min((dx - sx) % self.width, (sx - dx) % self.width)
        ddy = min((dy - sy) % self.height, (sy - dy) % self.height)
        return ddx + ddy

    def route(self, src: int, dst: int) -> list[int]:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [src]
        x, y = sx, sy
        while x != dx:
            x = self._axis_step(x, dx, self.width)
            path.append(self.core_at(x, y))
        while y != dy:
            y = self._axis_step(y, dy, self.height)
            path.append(self.core_at(x, y))
        return path

    @cached_property
    def distance_matrix(self) -> np.ndarray:
        xs = np.arange(self.num_cores) % self.width
        ys = np.arange(self.num_cores) // self.width
        dx = np.abs(xs[:, None] - xs[None, :])
        dy = np.abs(ys[:, None] - ys[None, :])
        dx = np.minimum(dx, self.width - dx)
        dy = np.minimum(dy, self.height - dy)
        mat = (dx + dy).astype(np.int64)
        mat.setflags(write=False)
        return mat


class RingTopology(Topology):
    """Unidirectional-route bidirectional ring (small-core baselines)."""

    def distance(self, src: int, dst: int) -> int:
        self._check_core(src)
        self._check_core(dst)
        fwd = (dst - src) % self.num_cores
        return min(fwd, self.num_cores - fwd)

    def route(self, src: int, dst: int) -> list[int]:
        self._check_core(src)
        self._check_core(dst)
        fwd = (dst - src) % self.num_cores
        step = 1 if fwd <= self.num_cores - fwd else -1
        path = [src]
        cur = src
        while cur != dst:
            cur = (cur + step) % self.num_cores
            path.append(cur)
        return path


class UnidirectionalRing(Topology):
    """Ring routed strictly clockwise (src -> src+1 -> ... -> dst).

    The canonical deadlock-prone topology: its single channel cycle is
    what virtual-channel datelines were invented for — used by the
    flit-level NoC tests to demonstrate real deadlock and its cure.
    """

    def distance(self, src: int, dst: int) -> int:
        self._check_core(src)
        self._check_core(dst)
        return (dst - src) % self.num_cores

    def route(self, src: int, dst: int) -> list[int]:
        self._check_core(src)
        self._check_core(dst)
        path = [src]
        cur = src
        while cur != dst:
            cur = (cur + 1) % self.num_cores
            path.append(cur)
        return path

    def links(self) -> list[tuple[int, int]]:
        return [(i, (i + 1) % self.num_cores) for i in range(self.num_cores)]


def topology_for(config) -> Mesh2D:
    """Build the default mesh for a :class:`~repro.arch.config.SystemConfig`."""
    return Mesh2D(config.width, config.height)


# ------------------------------------------------------------- registry
from repro.registry import TOPOLOGIES  # noqa: E402  (after class definitions)


# Factories take explicit parameters (no **kwargs) so a typo in a
# TopologySpec's params fails loudly instead of being swallowed.
@TOPOLOGIES.register("auto", "the default mesh for the system configuration")
def _make_auto(config):
    return topology_for(config)


@TOPOLOGIES.register("mesh", "2-D mesh with XY routing (EM2 hardware)")
def _make_mesh(config, width=None, height=None):
    return Mesh2D(width or config.width, height or config.height)


@TOPOLOGIES.register("torus", "2-D torus: mesh with wraparound links")
def _make_torus(config, width=None, height=None):
    return TorusTopology(width or config.width, height or config.height)


@TOPOLOGIES.register("ring", "bidirectional ring")
def _make_ring(config, num_cores=None):
    return RingTopology(num_cores or config.num_cores)


@TOPOLOGIES.register("uni-ring", "unidirectional ring (deadlock showcase)")
def _make_uni_ring(config, num_cores=None):
    return UnidirectionalRing(num_cores or config.num_cores)
