"""Sweep-throughput harness: serial vs parallel, cold vs warm cache.

This is the measurement companion to ISSUE 1's performance layer. It
runs one multi-point (workload x scheme) sweep four ways —

1. serial        (``workers=1``, no cache)
2. parallel      (``workers=N`` process pool, no cache)
3. cold cache    (parallel + empty content-addressed cache)
4. warm cache    (parallel + the cache populated by run 3)

— verifies all four produce identical result rows, and writes
timings, speedups, and cache hit/miss counters to ``BENCH_perf.json``.

The sweep callback is a module-level function over plain strings, so
it pickles into pool workers (closures over fixtures would silently
degrade to the serial path — by design, but useless for measuring).

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf.py [--smoke] [--workers N]

or via pytest (smoke configuration only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py

Note: parallel speedup is bounded by the machine. The report records
``cpu_count`` so a 1-core CI box showing ~1x is interpretable; the
>=2x acceptance target applies on >=4-core hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from functools import partial
from pathlib import Path

from repro.analysis.cache import ResultCache, canonical_rows
from repro.analysis.sweep import grid, sweep
from repro.arch.config import small_test_config
from repro.core.costs import CostModel
from repro.core.decision.costaware import CostAwareHistory
from repro.core.decision.history import AddressIndexedHistory, HistoryRunLength
from repro.core.evaluation import evaluate_scheme
from repro.placement import first_touch
from repro.trace.synthetic import make_workload

CORES = 16

# Each point regenerates its trace inside the worker: the generation +
# sequential scheme walk is the unit of work being parallelized.
WORKLOAD_PARAMS = {
    "full": {
        "ocean": dict(name="ocean", num_threads=16, grid_n=130, iterations=2),
        "fft": dict(name="fft", num_threads=16, points_per_thread=1024),
        "pingpong": dict(name="pingpong", num_threads=16, rounds=2048, run=4),
        "uniform": dict(name="uniform", num_threads=16, accesses_per_thread=16384),
    },
    "smoke": {
        "pingpong": dict(name="pingpong", num_threads=8, rounds=24, run=4),
        "uniform": dict(name="uniform", num_threads=8, accesses_per_thread=128),
    },
}

SCHEMES = {
    "full": ["history", "addr-history", "costaware"],
    "smoke": ["history", "costaware"],
}


def _make_scheme(name: str, cost: CostModel):
    be = cost.break_even_run_length(0, cost.config.num_cores - 1)
    if name == "history":
        return HistoryRunLength(threshold=be)
    if name == "addr-history":
        return AddressIndexedHistory(threshold=be)
    if name == "costaware":
        return CostAwareHistory(cost)
    raise ValueError(f"unknown scheme {name!r}")


def eval_point(workload: str, scheme: str, _mode: str = "full") -> dict:
    """One sweep point: generate the trace, evaluate the scheme on it."""
    params = dict(WORKLOAD_PARAMS[_mode][workload])
    trace = make_workload(params.pop("name"), **params)
    placement = first_touch(trace, CORES)
    cost = CostModel(small_test_config(num_cores=CORES))
    r = evaluate_scheme(trace, placement, _make_scheme(scheme, cost), cost)
    return {
        "total_cost": r.total_cost,
        "migrations": r.migrations,
        "remote_accesses": r.remote_accesses,
        "local_accesses": r.local_accesses,
        "traffic_bits": r.traffic_bits,
    }


def _cache_extra(mode: str) -> dict:
    return {"bench": "bench_perf", "mode": mode, "cores": CORES}


def run_harness(mode: str = "full", workers: int = 4, cache_dir: str | None = None) -> dict:
    points = grid(
        workload=sorted(WORKLOAD_PARAMS[mode]), scheme=SCHEMES[mode]
    )
    fn = partial(eval_point, _mode=mode)
    report: dict = {
        "mode": mode,
        "workers": workers,
        "points": len(points),
        "cpu_count": os.cpu_count(),
    }

    t0 = time.perf_counter()
    rows_serial = sweep(points, fn, workers=1)
    report["serial_seconds"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    rows_parallel = sweep(points, fn, workers=workers)
    report["parallel_seconds"] = time.perf_counter() - t0
    report["parallel_speedup"] = report["serial_seconds"] / report["parallel_seconds"]
    report["parallel_rows_identical"] = rows_parallel == rows_serial

    own_tmp = cache_dir is None
    if own_tmp:
        cache_dir = tempfile.mkdtemp(prefix="bench_perf_cache_")
    try:
        cold = ResultCache(cache_dir)
        cold.clear()
        t0 = time.perf_counter()
        rows_cold = sweep(
            points, fn, workers=workers, cache=cold, cache_extra=_cache_extra(mode)
        )
        report["cold_cache_seconds"] = time.perf_counter() - t0
        report["cold_cache_stats"] = cold.stats()

        warm = ResultCache(cache_dir)
        t0 = time.perf_counter()
        rows_warm = sweep(
            points, fn, workers=workers, cache=warm, cache_extra=_cache_extra(mode)
        )
        report["warm_cache_seconds"] = time.perf_counter() - t0
        report["warm_cache_stats"] = warm.stats()
        total = warm.hits + warm.misses
        report["warm_skip_fraction"] = warm.hits / total if total else 0.0
        report["warm_speedup_vs_serial"] = (
            report["serial_seconds"] / report["warm_cache_seconds"]
        )
        canon = canonical_rows(rows_serial)
        report["cold_rows_identical"] = rows_cold == canon
        report["warm_rows_identical"] = rows_warm == canon
    finally:
        if own_tmp:
            shutil.rmtree(cache_dir, ignore_errors=True)
    return report


# ---------------------------------------------------------------- pytest
def test_perf_smoke():
    """Smoke configuration: correctness of the four paths, not speed."""
    report = run_harness(mode="smoke", workers=2)
    assert report["parallel_rows_identical"]
    assert report["cold_rows_identical"]
    assert report["warm_rows_identical"]
    assert report["warm_skip_fraction"] >= 0.9
    assert report["cold_cache_stats"]["hits"] == 0


# ---------------------------------------------------------------- script
def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small fast configuration")
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--cache-dir", default=None,
                    help="cache dir to use (default: fresh tempdir; cleared "
                         "at start so the cold run is genuinely cold)")
    ap.add_argument("--out", default=None,
                    help="report path (default: <repo>/BENCH_perf.json)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run_harness(mode=mode, workers=args.workers, cache_dir=args.cache_dir)

    out = Path(args.out) if args.out else Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    ok = (
        report["parallel_rows_identical"]
        and report["cold_rows_identical"]
        and report["warm_rows_identical"]
        and report["warm_skip_fraction"] >= 0.9
    )
    print(
        f"\nserial {report['serial_seconds']:.2f}s | "
        f"parallel({args.workers}) {report['parallel_seconds']:.2f}s "
        f"({report['parallel_speedup']:.2f}x) | "
        f"warm cache {report['warm_cache_seconds']:.2f}s "
        f"(skips {report['warm_skip_fraction']:.0%} of evaluations) | "
        f"rows identical: {ok}"
    )
    if not ok:
        print("FAIL: row mismatch or warm cache skipped < 90%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
