"""Parameter-sweep utilities for the benchmark harness and examples.

A sweep is a cartesian product over named parameter lists, evaluated
by a callback returning a result dict per point. Results accumulate
into table rows ready for :func:`repro.analysis.reports.format_table`.

``sweep`` composes the two performance layers of ISSUE 1 behind its
original signature: ``workers`` fans points out over
:func:`repro.analysis.parallel.parallel_sweep`, and ``cache`` consults
a :class:`repro.analysis.cache.ResultCache` per point so warm re-runs
skip evaluation entirely. Both default off, so existing callers are
untouched.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Mapping

from repro.analysis.parallel import parallel_sweep
from repro.util.errors import ConfigError


def grid(**params: Iterable) -> list[dict]:
    """Cartesian product of parameter lists as a list of dicts.

    >>> grid(a=[1, 2], b=["x"])
    [{'a': 1, 'b': 'x'}, {'a': 2, 'b': 'x'}]
    """
    if not params:
        return [{}]
    keys = list(params)
    values = [list(params[k]) for k in keys]
    for k, v in zip(keys, values):
        if not v:
            raise ConfigError(f"sweep parameter {k!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*values)]


def sweep(
    points: Iterable[Mapping],
    fn: Callable[..., Mapping],
    workers: int = 1,
    chunk: int | None = None,
    cache: "ResultCache | None" = None,
    cache_extra: Mapping | None = None,
) -> list[dict]:
    """Evaluate ``fn(**point)`` for every point; each row merges the
    point's parameters with the returned metrics. A metric key that
    collides with a parameter key raises :class:`ConfigError` naming
    the key — silent overwrites corrupt result tables.

    ``workers > 1`` evaluates points in parallel processes (row order
    still matches point order; see
    :func:`repro.analysis.parallel.parallel_sweep`). ``cache`` skips
    points whose rows are already on disk; ``cache_extra`` folds
    context the points don't carry (trace spec/seed, cost config) into
    every cache key. Cached results pass through JSON, so with a cache
    attached *all* rows are JSON-canonicalized for uniformity.
    """
    points = [dict(p) for p in points]
    if cache is None:
        return parallel_sweep(points, fn, workers=workers, chunk=chunk)

    from repro.analysis.cache import canonical_rows

    keys = [cache.key(point=p, extra=dict(cache_extra or {})) for p in points]
    rows: list[dict | None] = []
    missing: list[int] = []
    for i, k in enumerate(keys):
        hit = cache.get(k)
        if hit is None:
            rows.append(None)
            missing.append(i)
        else:
            rows.append(hit[0])
    if missing:
        fresh = parallel_sweep(
            [points[i] for i in missing], fn, workers=workers, chunk=chunk
        )
        fresh = canonical_rows(fresh)
        for i, row in zip(missing, fresh):
            cache.put(keys[i], [row])
            rows[i] = row
    return rows


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the standard cross-workload summary statistic).

    Raises :class:`ConfigError` on non-positive inputs — a silent 0 or
    negative value in a ratio geomean is always a bug upstream.
    """
    values = list(values)
    if not values:
        return float("nan")
    for v in values:
        if v <= 0:
            raise ConfigError(f"geomean requires positive values, got {v}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize(rows: list[dict], key: str, baseline_row: int = 0) -> list[dict]:
    """Add ``key + '_norm'`` columns dividing by the baseline row's value."""
    if not rows:
        return rows
    if not (0 <= baseline_row < len(rows)):
        raise ConfigError(f"baseline_row {baseline_row} out of range")
    base = rows[baseline_row][key]
    if base == 0:
        raise ConfigError(f"baseline value for {key!r} is zero")
    for row in rows:
        row[f"{key}_norm"] = row[key] / base
    return rows
