#!/usr/bin/env python
"""Quickstart: evaluate EM² on a synthetic OCEAN run in ~20 lines.

Builds the paper's machine (64 cores), generates an ocean-like
workload (64 threads), places data with first-touch, and compares the
three §3 policies: pure EM² (always migrate), remote-access-only, and
the offline optimal decision sequence.

Run:  python examples/quickstart.py
"""

from repro import (
    AlwaysMigrate,
    CostModel,
    NeverMigrate,
    SystemConfig,
    evaluate_scheme,
    first_touch,
    make_workload,
    optimal_decisions,
)

def main() -> None:
    config = SystemConfig(num_cores=64)  # the paper's 64-core mesh
    cost = CostModel(config)

    print("generating ocean workload (64 threads)...")
    trace = make_workload("ocean", num_threads=64, grid_n=194, iterations=1)
    placement = first_touch(trace, config.num_cores)
    print(f"  {trace.total_accesses:,} accesses, "
          f"{trace.footprint():,} distinct words")

    for scheme in (AlwaysMigrate(), NeverMigrate()):
        r = evaluate_scheme(trace, placement, scheme, cost)
        print(
            f"{scheme.name:>16}: network cost {r.total_cost:>12,.0f}  "
            f"migrations {r.migrations:>7,}  remote {r.remote_accesses:>7,}  "
            f"traffic {r.traffic_bits / 1e6:7.1f} Mbit"
        )

    # the optimal offline decision DP (§3), one thread as an example
    tr = trace.threads[10]
    homes = placement.home_of(tr["addr"])
    opt = optimal_decisions(homes, tr["write"], 10, cost)
    print(
        f"\nthread 10 optimal policy: cost {opt.total_cost:,.0f} with "
        f"{opt.num_migrations} migrations + {opt.num_remote_accesses} remote accesses "
        f"({opt.num_local} local)"
    )


if __name__ == "__main__":
    main()
