"""Sweep-throughput harness: serial vs parallel, cold vs warm cache.

This is the measurement companion to ISSUE 1's performance layer. It
runs one multi-point (workload x scheme) sweep four ways —

1. serial        (``workers=1``, no cache)
2. parallel      (``workers=N`` process pool, no cache)
3. cold cache    (parallel + empty content-addressed cache)
4. warm cache    (parallel + the cache populated by run 3)

— verifies all four produce identical result rows, and writes
timings, speedups, and cache hit/miss counters to ``BENCH_perf.json``.

Every point is a partial :class:`~repro.spec.ExperimentSpec` overlay
swept through :func:`repro.analysis.sweep.sweep_specs`: pool workers
receive serialized spec dicts and rebuild through the registries
(:func:`repro.runner.run_spec_dict`), so nothing here needs to pickle
beyond plain dicts, and cache keys derive from the canonical spec
dict rather than ad-hoc context.

Run directly::

    PYTHONPATH=src python benchmarks/bench_perf.py [--smoke] [--workers N]

or via pytest (smoke configuration only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf.py

Note: parallel speedup is bounded by the machine. The report records
``cpu_count`` so a 1-core CI box showing ~1x is interpretable; the
>=2x acceptance target applies on >=4-core hardware.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.cache import ResultCache, canonical_rows
from repro.analysis.sweep import sweep_specs
from repro.runner import build, clear_build_memo
from repro.spec import ExperimentSpec, MachineSpec, PlacementSpec, WorkloadSpec

CORES = 16

# Workload sub-spec overlays per sweep axis value. Workers rebuild each
# point's trace from its spec (memoized per process), so the generation
# + sequential scheme walk is the unit of work being parallelized.
WORKLOAD_PARAMS = {
    "full": {
        "ocean": dict(name="ocean", num_threads=16, grid_n=130, iterations=2),
        "fft": dict(name="fft", num_threads=16, points_per_thread=1024),
        "pingpong": dict(name="pingpong", num_threads=16, rounds=2048, run=4),
        "uniform": dict(name="uniform", num_threads=16, accesses_per_thread=16384),
    },
    "smoke": {
        "pingpong": dict(name="pingpong", num_threads=8, rounds=24, run=4),
        "uniform": dict(name="uniform", num_threads=8, accesses_per_thread=128),
    },
}

SCHEMES = {
    "full": ["history", "addr-history", "costaware"],
    "smoke": ["history", "costaware"],
}

# ---------------------------------------------------------------- throughput
# Detailed-simulator throughput: accesses/second through the behavioral
# EM2 machine (event-driven) and the directory-CC simulator (round-robin).
# These exercise the per-access hot paths (columnar trace decode, cached
# NoC tables, counter cells) that the sweep harness above never touches.
THROUGHPUT_PARAMS = {
    "full": {
        "machine": dict(name="pingpong", num_threads=16, rounds=1500, run=8),
        "cc": dict(name="uniform", num_threads=16, accesses_per_thread=8192,
                   region_words=4096),
    },
    "smoke": {
        "machine": dict(name="pingpong", num_threads=8, rounds=250, run=8),
        "cc": dict(name="uniform", num_threads=8, accesses_per_thread=1024,
                   region_words=1024),
    },
}

# Pre-optimization accesses/second, measured on the commit before the
# hot-path overhaul (best of 3 on the same parameters above, CORES=16).
# The speedup the report prints is relative to these; they are fixed
# reference points, not re-measured.
PRE_PR_BASELINE = {
    "full": {"machine": 108913.0, "cc": 34082.0},
    "smoke": {"machine": 111222.0, "cc": 44167.0},
}


def _base_spec() -> ExperimentSpec:
    """Shared base for every sweep point; points overlay workload/scheme."""
    return ExperimentSpec(
        machine=MachineSpec(name="analytical", cores=CORES, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )


def _points(mode: str) -> list[dict]:
    """(workload x scheme) grid as partial-spec overlays."""
    pts = []
    for workload in sorted(WORKLOAD_PARAMS[mode]):
        params = dict(WORKLOAD_PARAMS[mode][workload])
        name = params.pop("name")
        for scheme in SCHEMES[mode]:
            pts.append(
                {"workload": {"name": name, "params": params}, "scheme": scheme}
            )
    return pts


def _throughput_built(mode: str, which: str, machine: str):
    """Build (never run) the throughput spec's live pieces via the
    registry path; the bench times the machine's run() alone."""
    params = dict(THROUGHPUT_PARAMS[mode][which])
    name = params.pop("name")
    spec = ExperimentSpec(
        workload=WorkloadSpec(name=name, params=params),
        machine=MachineSpec(name=machine, cores=CORES, preset="small-test"),
        placement=PlacementSpec(name="first-touch"),
    )
    return build(spec)


def _bench_machine(mode: str, repeats: int) -> dict:
    from repro.core.em2 import EM2Machine

    built = _throughput_built(mode, "machine", "em2")
    trace = built.trace
    best = 0.0
    for _ in range(repeats):
        m = EM2Machine(trace, built.placement, built.config)
        t0 = time.perf_counter()
        m.run()
        best = max(best, trace.total_accesses / (time.perf_counter() - t0))
    return {"accesses": trace.total_accesses, "accesses_per_sec": best}


def _bench_cc(mode: str, repeats: int) -> dict:
    from repro.coherence.simulator import DirectoryCCSimulator

    built = _throughput_built(mode, "cc", "cc-msi")
    trace = built.trace
    best = 0.0
    for _ in range(repeats):
        sim = DirectoryCCSimulator(trace, built.placement, built.config)
        t0 = time.perf_counter()
        sim.run()
        best = max(best, trace.total_accesses / (time.perf_counter() - t0))
    return {"accesses": trace.total_accesses, "accesses_per_sec": best}


def golden_parity() -> bool:
    """Recompute every golden scenario and compare against the committed
    fixture — the gate that makes a throughput number trustworthy: fast
    but wrong is a fail, not a win."""
    bench_dir = Path(__file__).resolve().parent
    if str(bench_dir) not in sys.path:
        sys.path.insert(0, str(bench_dir))
    import make_golden_fixtures as golden

    committed = json.loads(golden.FIXTURE_PATH.read_text())
    return golden.scenario_results() == committed


def run_throughput(mode: str = "full", repeats: int = 3) -> dict:
    """Throughput section of the report: machine + CC accesses/sec,
    speedup vs the recorded pre-PR baseline, and the parity gate."""
    machine = _bench_machine(mode, repeats)
    cc = _bench_cc(mode, repeats)
    base = PRE_PR_BASELINE[mode]
    return {
        "machine_accesses": machine["accesses"],
        "machine_accesses_per_sec": machine["accesses_per_sec"],
        "machine_speedup_vs_pre_pr": machine["accesses_per_sec"] / base["machine"],
        "cc_accesses": cc["accesses"],
        "cc_accesses_per_sec": cc["accesses_per_sec"],
        "cc_speedup_vs_pre_pr": cc["accesses_per_sec"] / base["cc"],
        "pre_pr_baseline": base,
        "golden_parity": golden_parity(),
    }


def run_harness(mode: str = "full", workers: int = 4, cache_dir: str | None = None) -> dict:
    base = _base_spec()
    points = _points(mode)
    report: dict = {
        "mode": mode,
        "workers": workers,
        "points": len(points),
        "cpu_count": os.cpu_count(),
    }

    clear_build_memo()  # the serial run pays full generation cost
    t0 = time.perf_counter()
    rows_serial = sweep_specs(base, points, workers=1)
    report["serial_seconds"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    rows_parallel = sweep_specs(base, points, workers=workers)
    report["parallel_seconds"] = time.perf_counter() - t0
    report["parallel_speedup"] = report["serial_seconds"] / report["parallel_seconds"]
    report["parallel_rows_identical"] = rows_parallel == rows_serial

    own_tmp = cache_dir is None
    if own_tmp:
        cache_dir = tempfile.mkdtemp(prefix="bench_perf_cache_")
    try:
        cold = ResultCache(cache_dir)
        cold.clear()
        t0 = time.perf_counter()
        rows_cold = sweep_specs(base, points, workers=workers, cache=cold)
        report["cold_cache_seconds"] = time.perf_counter() - t0
        report["cold_cache_stats"] = cold.stats()

        warm = ResultCache(cache_dir)
        t0 = time.perf_counter()
        rows_warm = sweep_specs(base, points, workers=workers, cache=warm)
        report["warm_cache_seconds"] = time.perf_counter() - t0
        report["warm_cache_stats"] = warm.stats()
        total = warm.hits + warm.misses
        report["warm_skip_fraction"] = warm.hits / total if total else 0.0
        report["warm_speedup_vs_serial"] = (
            report["serial_seconds"] / report["warm_cache_seconds"]
        )
        canon = canonical_rows(rows_serial)
        report["cold_rows_identical"] = rows_cold == canon
        report["warm_rows_identical"] = rows_warm == canon
    finally:
        if own_tmp:
            shutil.rmtree(cache_dir, ignore_errors=True)
    return report


# ---------------------------------------------------------------- pytest
def test_perf_smoke():
    """Smoke configuration: correctness of the four paths, not speed."""
    report = run_harness(mode="smoke", workers=2)
    assert report["parallel_rows_identical"]
    assert report["cold_rows_identical"]
    assert report["warm_rows_identical"]
    assert report["warm_skip_fraction"] >= 0.9
    assert report["cold_cache_stats"]["hits"] == 0


def test_throughput_smoke():
    """Throughput section runs and the parity gate holds (no speed
    assertion here — CI hardware varies; speed is judged by the
    regression-diff step against the committed baseline)."""
    report = run_throughput(mode="smoke", repeats=1)
    assert report["golden_parity"]
    assert report["machine_accesses_per_sec"] > 0
    assert report["cc_accesses_per_sec"] > 0


# ---------------------------------------------------------------- script
def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true", help="small fast configuration")
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--cache-dir", default=None,
                    help="cache dir to use (default: fresh tempdir; cleared "
                         "at start so the cold run is genuinely cold)")
    ap.add_argument("--out", default=None,
                    help="report path (default: <repo>/BENCH_perf.json)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="throughput repetitions per simulator (best-of)")
    ap.add_argument("--profile", nargs="?", type=int, const=25, default=None,
                    metavar="N",
                    help="profile the throughput section under cProfile and "
                         "print the top N functions (default 25)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run_harness(mode=mode, workers=args.workers, cache_dir=args.cache_dir)

    if args.profile is not None:
        from repro.cli import run_profiled

        throughput = run_profiled(
            lambda: run_throughput(mode=mode, repeats=args.repeats), args.profile
        )
    else:
        throughput = run_throughput(mode=mode, repeats=args.repeats)
    report.update(throughput)

    out = Path(args.out) if args.out else Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    ok = (
        report["parallel_rows_identical"]
        and report["cold_rows_identical"]
        and report["warm_rows_identical"]
        and report["warm_skip_fraction"] >= 0.9
        and report["golden_parity"]
    )
    print(
        f"\nserial {report['serial_seconds']:.2f}s | "
        f"parallel({args.workers}) {report['parallel_seconds']:.2f}s "
        f"({report['parallel_speedup']:.2f}x) | "
        f"warm cache {report['warm_cache_seconds']:.2f}s "
        f"(skips {report['warm_skip_fraction']:.0%} of evaluations) | "
        f"rows identical: {ok}"
    )
    print(
        f"machine {report['machine_accesses_per_sec']:.0f} acc/s "
        f"({report['machine_speedup_vs_pre_pr']:.2f}x pre-PR) | "
        f"cc {report['cc_accesses_per_sec']:.0f} acc/s "
        f"({report['cc_speedup_vs_pre_pr']:.2f}x pre-PR) | "
        f"golden parity: {report['golden_parity']}"
    )
    if not ok:
        print(
            "FAIL: row mismatch, warm cache skipped < 90%, or golden parity broken",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
