"""Combining workloads: multiprogrammed and phased traces.

Two composition operators useful for experiments beyond single-kernel
runs:

* :func:`multiprogram` — run several workloads *side by side*: their
  threads are placed on disjoint cores (space sharing, the usual
  multiprogrammed-multicore deployment);
* :func:`concat_phases` — run several workloads *one after another* on
  the same threads (program phases), which is what makes dynamic
  re-placement interesting.

Address spaces: generators built from distinct
:class:`~repro.trace.synthetic.base.AddressSpace` instances overlap in
the shared region, so ``multiprogram`` offsets each input's addresses
into a disjoint window (private regions are per-thread and get remapped
with the thread ids).
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import MultiTrace
from repro.trace.synthetic.base import PRIVATE_BASE, PRIVATE_SPAN
from repro.util.errors import ConfigError

_SHARED_WINDOW = 1 << 36  # per-program shared-address window


def _remap(trace: np.ndarray, program: int, old_tid: int, new_tid: int) -> np.ndarray:
    """Shift a thread's addresses into program-/thread-disjoint windows."""
    out = trace.copy()
    addr = out["addr"].astype(np.int64)
    private = addr >= PRIVATE_BASE
    # private: move from old thread slot to the new thread slot
    addr[private] += (new_tid - old_tid) * PRIVATE_SPAN
    # shared: shift into the program's window
    addr[~private] += program * _SHARED_WINDOW
    if addr.min() < 0 or (addr[~private] >= PRIVATE_BASE).any():
        raise ConfigError("address remap overflowed the shared window")
    out["addr"] = addr.astype(np.uint64)
    return out


def multiprogram(*traces: MultiTrace, name: str = "multiprogram") -> MultiTrace:
    """Space-share several workloads on disjoint thread/core ranges.

    Program *p*'s thread *t* becomes global thread ``offset_p + t`` with
    native core ``offset_p + native``; shared regions are shifted into
    disjoint windows so programs never alias.
    """
    if not traces:
        raise ConfigError("multiprogram needs at least one trace")
    threads: list[np.ndarray] = []
    natives: list[int] = []
    offset = 0
    for p, mt in enumerate(traces):
        for t, tr in enumerate(mt.threads):
            threads.append(_remap(tr, p, t, offset + t))
            natives.append(offset + (mt.thread_native_core[t] % max(mt.num_threads, 1)))
        offset += mt.num_threads
    return MultiTrace(
        threads=threads,
        thread_native_core=natives,
        name=name,
        params={"programs": [mt.name for mt in traces]},
    )


def concat_phases(*traces: MultiTrace, name: str = "phased") -> MultiTrace:
    """Run several workloads sequentially on the same thread set.

    All inputs must have the same thread count; thread *t*'s trace is
    the concatenation of its traces across phases. Shared regions of
    different phases are shifted apart so phase 2 cannot accidentally
    reuse phase 1's data (which would blur the phase boundary the
    dynamic-placement experiments rely on).
    """
    if not traces:
        raise ConfigError("concat_phases needs at least one trace")
    n = traces[0].num_threads
    for mt in traces:
        if mt.num_threads != n:
            raise ConfigError(
                f"phase thread counts differ: {mt.num_threads} != {n}"
            )
        if mt.is_stack != traces[0].is_stack:
            raise ConfigError("cannot mix stack and plain traces across phases")
    threads = []
    for t in range(n):
        parts = [_remap(mt.threads[t], p, t, t) for p, mt in enumerate(traces)]
        threads.append(np.concatenate(parts))
    return MultiTrace(
        threads=threads,
        thread_native_core=list(traces[0].thread_native_core),
        name=name,
        params={"phases": [mt.name for mt in traces]},
    )
