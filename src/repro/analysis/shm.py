"""Zero-copy MultiTrace distribution over POSIX shared memory.

A spec-driven sweep evaluates many (scheme, placement, machine) points
on a handful of distinct workloads. Before this module, every pool
worker *regenerated* each workload's trace from the spec — tens of MB
of address columns rebuilt per process, dominating sweep wall-clock
(BENCH_perf measured parallel "speedup" of 0.5 on the seed).

The fix: the parent generates (or loads) each distinct trace once,
:func:`publish`\\ es its columns into a
:class:`multiprocessing.shared_memory.SharedMemory` segment, and ships
workers a tiny picklable *descriptor* instead of the data. Workers
:func:`attach` read-only numpy views over the same physical pages —
zero copies, zero per-worker generation, constant memory across the
pool.

Lifecycle rules (the part that goes wrong in practice):

* The **parent** owns every segment: :func:`published_traces` is a
  context manager that unlinks all segments on exit, success or error.
  Nothing here survives the sweep — a crashed parent leaves at most
  the segments of one in-flight sweep (named ``repro_trc_*`` so they
  are identifiable in ``/dev/shm``).
* **Workers** cache attachments per process and never close them while
  views may be live (closing the mapping under a numpy view is a
  use-after-free). Attached segments are detached automatically at
  worker exit; the worker also *unregisters* the segment from the
  resource tracker — on Python ≤ 3.12 attaching registers it, and the
  tracker would otherwise unlink the parent's segment when the first
  worker exits, corrupting its siblings.
* :func:`shm_available` gates the whole path; platforms without
  ``/dev/shm`` (or with it mounted unwritable) fall back to the
  regenerate-in-worker behaviour, which is slower but always correct.
"""

from __future__ import annotations

import contextlib
import secrets
from dataclasses import dataclass

import numpy as np

from repro.trace.events import MultiTrace
from repro.util.errors import ConfigError

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

#: Every segment this module creates carries this prefix, so leaked
#: blocks are attributable (and the leak test can scan /dev/shm).
SEGMENT_PREFIX = "repro_trc_"

_available: bool | None = None


def shm_available() -> bool:
    """Whether this host can create and reopen shared-memory segments.

    Probed once per process by actually round-tripping a tiny segment;
    sweeps consult this to decide between zero-copy and the serial
    regenerate-per-worker fallback.
    """
    global _available
    if _available is None:
        _available = _probe()
    return _available


def _probe() -> bool:
    if shared_memory is None:
        return False
    seg = None
    try:
        seg = shared_memory.SharedMemory(
            create=True, size=16, name=f"{SEGMENT_PREFIX}probe_{secrets.token_hex(4)}"
        )
        # no _untrack here: the tracker coalesces same-process
        # registrations, so the creator's unlink() below unregisters
        # for both handles; an extra unregister would double-remove.
        reopened = shared_memory.SharedMemory(name=seg.name)
        reopened.close()
        return True
    except (OSError, ValueError):
        return False
    finally:
        if seg is not None:
            seg.close()
            try:
                seg.unlink()
            except OSError:
                pass


def _untrack(seg) -> None:
    """Unregister ``seg`` from the resource tracker.

    ``SharedMemory(name=...)`` registers the segment even when merely
    attaching (fixed only in newer Pythons via ``track=False``); the
    tracker then unlinks it when *this* process exits, yanking the
    segment out from under the parent and every sibling worker. Only
    the creating side should ever unlink.
    """
    if resource_tracker is None:
        return
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # tracker may be absent or already unregistered
        pass


@dataclass
class PublishedTrace:
    """A parent-side handle: the live segment plus the picklable
    descriptor workers attach with."""

    descriptor: dict
    _seg: "shared_memory.SharedMemory"

    def close(self) -> None:
        """Detach and unlink the segment (idempotent)."""
        try:
            self._seg.close()
        except (OSError, BufferError):
            pass
        try:
            self._seg.unlink()
        except (OSError, FileNotFoundError):
            pass


# Names this process created: attach() must not unregister these from
# the resource tracker — the tracker coalesces same-process
# registrations, so the creator's unlink() is the one unregister.
_published_names: set[str] = set()


def publish(mt: MultiTrace) -> PublishedTrace:
    """Copy ``mt``'s thread columns into one shared segment.

    The descriptor is plain data (segment name, dtype descr, per-thread
    row counts, native cores, workload metadata) — a few hundred bytes
    to pickle regardless of trace size.
    """
    if not shm_available():
        raise ConfigError("shared memory is not available on this host")
    dtype = mt.threads[0].dtype if mt.threads else np.dtype("u1")
    counts = [int(tr.size) for tr in mt.threads]
    total = sum(counts) * dtype.itemsize
    seg = None
    for _ in range(8):
        try:
            seg = shared_memory.SharedMemory(
                create=True,
                size=max(total, 1),
                name=f"{SEGMENT_PREFIX}{secrets.token_hex(8)}",
            )
            break
        except FileExistsError:
            continue
    if seg is None:  # pragma: no cover - 8 collisions of 64-bit names
        raise ConfigError("could not allocate a unique shared-memory segment")
    _published_names.add(seg.name)
    try:
        off = 0
        for tr, n in zip(mt.threads, counts):
            view = np.ndarray((n,), dtype=dtype, buffer=seg.buf, offset=off)
            view[:] = tr
            off += n * dtype.itemsize
        descriptor = {
            "segment": seg.name,
            "dtype": [list(f) for f in dtype.descr],
            "counts": counts,
            "native_cores": list(mt.thread_native_core),
            "name": mt.name,
            "params": dict(mt.params),
        }
    except BaseException:
        seg.close()
        try:
            seg.unlink()
        except OSError:
            pass
        raise
    return PublishedTrace(descriptor=descriptor, _seg=seg)


# Worker-side attachment cache: segment name -> (SharedMemory, MultiTrace).
# Entries are deliberately never closed while the process lives — the
# MultiTrace views alias the mapping, and a close under a live view is
# a use-after-free. A sweep publishes a handful of traces, so this
# stays tiny; the OS reclaims the mappings at process exit.
_attached: dict[str, tuple[object, MultiTrace]] = {}


def attach(descriptor: dict) -> MultiTrace:
    """A read-only :class:`MultiTrace` over the published segment.

    Views are marked non-writable: machines treat traces as immutable,
    and with shared pages a stray write would corrupt every sibling
    worker, not just this one — better to fault loudly here.
    """
    name = descriptor["segment"]
    cached = _attached.get(name)
    if cached is not None:
        return cached[1]
    if shared_memory is None:
        raise ConfigError("shared memory is not available on this host")
    seg = shared_memory.SharedMemory(name=name)
    if name not in _published_names:
        _untrack(seg)
    dtype = np.dtype([tuple(f) for f in descriptor["dtype"]])
    threads = []
    off = 0
    for n in descriptor["counts"]:
        view = np.ndarray((n,), dtype=dtype, buffer=seg.buf, offset=off)
        view.setflags(write=False)
        threads.append(view)
        off += n * dtype.itemsize
    mt = MultiTrace(
        threads=threads,
        thread_native_core=list(descriptor["native_cores"]),
        name=descriptor["name"],
        params=dict(descriptor["params"]),
    )
    _attached[name] = (seg, mt)
    return mt


def detach_all() -> None:
    """Drop every cached attachment (tests only — callers must ensure
    no views over the segments are still referenced)."""
    for seg, _ in _attached.values():
        try:
            seg.close()  # type: ignore[attr-defined]
        except (OSError, BufferError):
            pass
    _attached.clear()


@contextlib.contextmanager
def published_traces(traces: dict[str, MultiTrace]):
    """Publish every trace; yield ``{key: descriptor}``; always unlink.

    The ``finally`` is the leak guarantee: whether the sweep returns,
    raises, or a worker kills the pool, the parent unlinks every
    segment it created before the exception propagates.
    """
    published: list[PublishedTrace] = []
    try:
        descriptors = {}
        for key, mt in traces.items():
            pub = publish(mt)
            published.append(pub)
            descriptors[key] = pub.descriptor
        yield descriptors
    finally:
        for pub in published:
            pub.close()
