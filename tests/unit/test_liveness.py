"""Engine liveness ceiling: a livelocked event loop fails loudly.

``Engine.run()`` with no ``max_events`` used to spin forever on a
self-rescheduling protocol bug; it now trips a default ceiling
(:attr:`~repro.sim.engine.Engine.DEFAULT_MAX_EVENTS`) and raises
:class:`~repro.util.errors.LivenessError` naming the last scheduled
callback — the first thing a debugger needs.
"""

import pytest

from repro.sim.engine import Engine
from repro.util.errors import LivenessError, ReproError


def _spin(engine):
    engine.schedule(1.0, _spin, engine)


class _Ticker:
    def __init__(self, engine):
        self.engine = engine

    def tick(self):
        self.engine.schedule(1.0, self.tick)


def test_default_ceiling_trips_without_explicit_max_events():
    eng = Engine()
    eng.DEFAULT_MAX_EVENTS = 500  # instance override; class default is huge
    eng.schedule(0.0, _spin, eng)
    with pytest.raises(LivenessError, match="max_events=500"):
        eng.run()


def test_liveness_error_names_the_callback():
    eng = Engine()
    ticker = _Ticker(eng)
    ticker.tick()
    with pytest.raises(LivenessError, match="_Ticker.tick"):
        eng.run(max_events=100)


def test_liveness_error_is_repro_error():
    assert issubclass(LivenessError, ReproError)


def test_default_ceiling_does_not_fire_on_finite_runs():
    eng = Engine()
    eng.DEFAULT_MAX_EVENTS = 500
    fired = []
    for i in range(400):
        eng.schedule(float(i), fired.append, i)
    eng.run()
    assert len(fired) == 400


def test_explicit_max_events_beats_default():
    eng = Engine()
    eng.DEFAULT_MAX_EVENTS = 5
    fired = []
    for i in range(50):
        eng.schedule(float(i), fired.append, i)
    eng.run(max_events=1000)  # explicit bound: default ceiling not consulted
    assert len(fired) == 50
