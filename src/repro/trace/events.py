"""Trace record schema and the :class:`MultiTrace` container."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import TraceFormatError

TRACE_DTYPE = np.dtype(
    [
        ("addr", np.uint64),
        ("write", np.uint8),
        ("icount", np.uint16),
    ]
)

STACK_TRACE_DTYPE = np.dtype(
    [
        ("addr", np.uint64),
        ("write", np.uint8),
        ("icount", np.uint16),
        ("spop", np.uint8),
        ("spush", np.uint8),
    ]
)


def make_trace(
    addrs,
    writes=None,
    icounts=None,
    spops=None,
    spushes=None,
) -> np.ndarray:
    """Assemble a trace array from parallel sequences.

    ``writes`` defaults to all-loads, ``icounts`` to zero. Supplying
    either stack field selects the stack dtype (the other defaults to
    zero).
    """
    addrs = np.asarray(addrs, dtype=np.uint64)
    n = addrs.shape[0]
    stack = spops is not None or spushes is not None
    out = np.zeros(n, dtype=STACK_TRACE_DTYPE if stack else TRACE_DTYPE)
    out["addr"] = addrs
    if writes is not None:
        out["write"] = np.asarray(writes, dtype=np.uint8)
    if icounts is not None:
        out["icount"] = np.asarray(icounts, dtype=np.uint16)
    if spops is not None:
        out["spop"] = np.asarray(spops, dtype=np.uint8)
    if spushes is not None:
        out["spush"] = np.asarray(spushes, dtype=np.uint8)
    return out


def empty_trace(stack: bool = False) -> np.ndarray:
    return np.zeros(0, dtype=STACK_TRACE_DTYPE if stack else TRACE_DTYPE)


def validate_trace(trace: np.ndarray) -> None:
    """Raise :class:`TraceFormatError` unless ``trace`` matches a schema."""
    if not isinstance(trace, np.ndarray):
        raise TraceFormatError(f"trace must be a numpy array, got {type(trace).__name__}")
    if trace.dtype not in (TRACE_DTYPE, STACK_TRACE_DTYPE):
        raise TraceFormatError(
            f"trace dtype {trace.dtype} is neither TRACE_DTYPE nor STACK_TRACE_DTYPE"
        )
    if trace.ndim != 1:
        raise TraceFormatError(f"trace must be 1-D, got shape {trace.shape}")
    if trace.size and (trace["write"] > 1).any():
        raise TraceFormatError("trace 'write' field must be 0/1")


@dataclass
class MultiTrace:
    """Per-thread traces plus workload metadata.

    ``thread_native_core[t]`` is the core thread ``t`` starts on (and
    where its native context lives). Generators set it; by default
    thread ``t`` is pinned to core ``t`` (the paper runs 64 threads on
    64 cores).
    """

    threads: list[np.ndarray]
    thread_native_core: list[int] = field(default_factory=list)
    name: str = "anonymous"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for i, tr in enumerate(self.threads):
            try:
                validate_trace(tr)
            except TraceFormatError as exc:
                raise TraceFormatError(f"thread {i}: {exc}") from exc
        if not self.thread_native_core:
            self.thread_native_core = list(range(len(self.threads)))
        if len(self.thread_native_core) != len(self.threads):
            raise TraceFormatError(
                f"{len(self.thread_native_core)} native cores for "
                f"{len(self.threads)} threads"
            )

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    @property
    def total_accesses(self) -> int:
        return sum(int(t.size) for t in self.threads)

    @property
    def is_stack(self) -> bool:
        return bool(self.threads) and self.threads[0].dtype == STACK_TRACE_DTYPE

    def all_addrs(self) -> np.ndarray:
        """Concatenated address stream across threads (placement input)."""
        if not self.threads:
            return np.zeros(0, dtype=np.uint64)
        return np.concatenate([t["addr"] for t in self.threads])

    def footprint(self) -> int:
        """Number of distinct word addresses touched.

        Computed as per-thread ``np.unique`` folded through
        ``np.union1d`` — peak memory is one deduplicated thread plus
        the running union, never the concatenated address stream that
        ``all_addrs`` materializes (long traces made that allocation
        the footprint of the footprint).
        """
        union: np.ndarray | None = None
        for t in self.threads:
            if t.size == 0:
                continue
            uniq = np.unique(t["addr"])
            union = uniq if union is None else np.union1d(union, uniq)
        return 0 if union is None else int(union.size)

    def digest(self) -> str:
        """SHA-256 over the exact trace bytes (plus dtype, native cores,
        and metadata) — equal digests mean bit-identical traces.

        This is the currency of the generator-vectorization contract
        (``tests/fixtures/golden_traces.json``) and the integrity check
        of the on-disk trace store: any reordering, dtype change, or
        single-bit drift in any thread's records changes the digest.
        """
        h = hashlib.sha256()
        h.update(
            json.dumps(
                {"name": self.name, "params": self.params}, sort_keys=True, default=str
            ).encode()
        )
        h.update(np.asarray(self.thread_native_core, dtype=np.int64).tobytes())
        for tr in self.threads:
            h.update(str(tr.dtype.descr).encode())
            h.update(np.ascontiguousarray(tr).tobytes())
        return h.hexdigest()

    def summary(self) -> dict:
        return {
            "name": self.name,
            "threads": self.num_threads,
            "accesses": self.total_accesses,
            "footprint_words": self.footprint(),
            "write_fraction": (
                float(
                    sum(int(t["write"].sum()) for t in self.threads)
                    / max(self.total_accesses, 1)
                )
            ),
        }
