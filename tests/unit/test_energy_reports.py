"""Unit tests for the energy model and report formatting."""

import pytest

from repro.analysis.energy import EnergyModel, EnergyReport
from repro.analysis.reports import format_table, runlength_table
from repro.sim.stats import Histogram
from repro.util.errors import ConfigError


class TestEnergyModel:
    def test_network_energy_linear_in_bit_hops(self):
        em = EnergyModel(link_pj_per_bit_hop=0.1)
        assert em.network_energy(1000) == pytest.approx(100.0)
        assert em.network_energy(2000) == pytest.approx(2 * em.network_energy(1000))

    def test_report_totals(self):
        em = EnergyModel(
            link_pj_per_bit_hop=1.0,
            l1_pj_per_access=2.0,
            l2_pj_per_access=3.0,
            dram_pj_per_access=4.0,
            context_load_pj=5.0,
        )
        r = em.report(bit_hops=10, l1_accesses=1, l2_accesses=1, dram_accesses=1, migrations=1)
        assert r.total_pj == pytest.approx(10 + 2 + 3 + 4 + 5)

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigError):
            EnergyModel(link_pj_per_bit_hop=-1.0)

    def test_as_dict_sums(self):
        r = EnergyReport(network_pj=5.0, dram_pj=3.0)
        d = r.as_dict()
        assert d["total_pj"] == pytest.approx(8.0)

    def test_migration_energy_dominates_ra_energy(self):
        """The §5 power claim at the model level: for equal hop counts a
        migration (1.5 Kbit) moves ~8x the bits of an RA round trip."""
        em = EnergyModel()
        mig = em.network_energy(1664 * 4)  # 13 flits x 128b over 4 hops
        ra = em.network_energy((2 + 2) * 128 * 4)  # req+reply flits
        assert mig > 3 * ra


class TestFormatTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, sep, 2 rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]

    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_float_formatting(self):
        out = format_table([{"x": 0.000123, "y": 123456.0, "z": float("nan")}])
        assert "e" in out  # scientific for extremes
        assert "nan" in out


class TestRunlengthTable:
    def test_contains_fraction_column(self):
        h = Histogram()
        h.add(1, weight=5)
        h.add(4, weight=5)
        out = runlength_table(h)
        assert "cumulative" in out
        assert "0.5" in out

    def test_overflow_row(self):
        h = Histogram(max_bin=4)
        h.add(9)
        out = runlength_table(h)
        assert ">4" in out
