"""Plain-text report tables (what the benches print).

No plotting dependencies: the harness prints the same rows/series the
paper's figures plot, machine-checkably.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.sim.stats import Histogram


def format_table(rows: Iterable[Mapping[str, object]], columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    str_rows = [
        [_fmt(row.get(c, "")) for c in columns] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in str_rows)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in str_rows)
    return f"{header}\n{sep}\n{body}"


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v != v:  # nan
            return "nan"
        if abs(v) >= 1000 or (v and abs(v) < 0.01):
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def to_csv(rows: Iterable[Mapping[str, object]], columns: list[str] | None = None) -> str:
    """Render dict rows as CSV (for spreadsheet/plotting pipelines).

    Values containing commas/quotes/newlines are quoted per RFC 4180.
    """
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())

    def esc(v: object) -> str:
        s = _fmt(v) if isinstance(v, float) else str(v)
        if any(c in s for c in ',"\n'):
            return '"' + s.replace('"', '""') + '"'
        return s

    lines = [",".join(esc(c) for c in columns)]
    for row in rows:
        lines.append(",".join(esc(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"


def runlength_table(hist: Histogram, max_rows: int = 40) -> str:
    """Figure 2 as text: run length vs. accesses contributed.

    Bins are access-weighted already (the histogram is built with
    weight=run_length); this prints bin -> count plus the cumulative
    fraction so the "about half at run length 1" claim is one glance.
    """
    rows = []
    cum = 0
    for length, count in list(hist.bins().items())[:max_rows]:
        cum += count
        rows.append(
            {
                "run_length": length,
                "accesses": count,
                "fraction": count / hist.count if hist.count else float("nan"),
                "cumulative": cum / hist.count if hist.count else float("nan"),
            }
        )
    if hist.overflow:
        rows.append(
            {
                "run_length": f">{hist.max_bin}",
                "accesses": hist.overflow,
                "fraction": hist.overflow / hist.count,
                "cumulative": 1.0,
            }
        )
    return format_table(rows)
